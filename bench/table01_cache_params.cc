/**
 * @file
 * Thin wrapper over the `table01_cache_params` registry entry; the implementation
 * lives in bench/suite/table01_cache_params.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("table01_cache_params", argc, argv);
}
