/**
 * @file
 * Reproduces paper Table I: "L2 cache architecture" -- every parameter
 * recovered from user level: line size by the co-residence test,
 * capacity by the working-set sweep, associativity by the eviction
 * point of a discovered conflict group, and the replacement policy by
 * the determinism of that eviction point.
 */

#include <cstdio>

#include "attack/reverse_engineer.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);

    rt::SystemConfig cfg;
    cfg.seed = seed;
    rt::Runtime rt(cfg);
    rt::Process &attacker = rt.createProcess("attacker");

    // Calibrate thresholds (local attack on GPU 0; peer 1 for the
    // remote clusters).
    attack::TimingOracle oracle(rt, attacker);
    auto calib = oracle.calibrate(0, 1, 48, 6);

    // Find conflict groups (Algorithm 1 with grouping optimization).
    attack::FinderConfig fcfg;
    fcfg.poolPages = 140;
    attack::EvictionSetFinder finder(rt, attacker, 0, 0,
                                     calib.thresholds, fcfg);
    finder.run();

    attack::ReverseEngineer re(rt, attacker, 0, calib.thresholds);

    bench::header("capacity sweep (working set vs 2nd-pass miss rate)");
    const std::uint64_t cap_lines =
        cfg.device.l2.sizeBytes / cfg.device.l2.lineBytes;
    std::vector<std::uint64_t> counts;
    for (double f : {0.5, 0.75, 0.875, 1.0, 1.125, 1.25, 1.5, 2.0})
        counts.push_back(static_cast<std::uint64_t>(f * cap_lines));
    auto pts = re.capacitySweep(counts);
    CsvWriter csv("table01_capacity_sweep.csv");
    csv.row("resident_lines", "resident_kb", "second_pass_miss_rate");
    for (const auto &p : pts) {
        std::printf("  %8llu lines (%6.0f KiB)  miss rate %5.1f%%\n",
                    static_cast<unsigned long long>(p.residentLines),
                    p.residentLines * 128.0 / 1024.0,
                    100.0 * p.secondPassMissRate);
        csv.row(p.residentLines, p.residentLines * 128 / 1024,
                p.secondPassMissRate);
    }

    bench::header("eviction points over 12 trials (policy inference)");
    auto points = re.evictionPoints(finder, 12);
    std::printf("  ");
    for (unsigned p : points)
        std::printf("%u ", p);
    std::printf("\n  => policy: %s\n",
                attack::ReverseEngineer::classifyPolicy(
                    points, finder.associativity())
                    .c_str());

    bench::header("TABLE I: L2 cache architecture (recovered)");
    auto report = re.run(finder);
    std::printf("%s", report.toTable().c_str());
    std::printf("\npaper reference: 4 MB, 2048 sets, 128B lines, "
                "16 lines/set, LRU\n");
    std::printf("attack cost: %llu kernel launches, %llu timed probes\n",
                static_cast<unsigned long long>(finder.kernelLaunches()),
                static_cast<unsigned long long>(finder.timedProbes()));
    return 0;
}
