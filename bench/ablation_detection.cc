/**
 * @file
 * Ablation for the paper's Sec. VII detection discussion: a driver-
 * side NVLink traffic monitor distinguishes the attacks' sustained
 * fine-grained remote traffic from benign coarse-grained transfers.
 *
 * Three scenarios on the GPU0-GPU1 link:
 *  1. benign  -- a process on GPU 1 streams a remote buffer once
 *                (coarse bulk transfer, then computes locally);
 *  2. covert  -- the cross-GPU covert channel (4 sets);
 *  3. prober  -- the side-channel memorygram prober (128 sets).
 */

#include <cstdio>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "attack/side/prober.hh"
#include "bench/bench_common.hh"
#include "defense/link_monitor.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote, 0,
                               1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);

    bench::header("Sec. VII: NVLink traffic monitoring");
    CsvWriter csv("ablation_detection.csv");
    csv.row("scenario", "peak_rate_per_kcycle", "flagged");

    defense::MonitorConfig mon_cfg;
    auto report = [&](const char *name, defense::LinkMonitor &mon) {
        std::printf("  %-24s peak %8.1f legs/kcycle  -> %s\n", name,
                    mon.peakRate(),
                    mon.attackFlagged() ? "FLAGGED as attack"
                                        : "not flagged");
        csv.row(name, mon.peakRate(), mon.attackFlagged() ? 1 : 0);
    };

    // 1. Benign: one bulk remote read pass, then local compute.
    {
        defense::LinkMonitor monitor(*setup.rt, 0, 1, mon_cfg);
        monitor.start();
        rt::Process &benign = setup.rt->createProcess("benign");
        setup.rt->enablePeerAccess(benign, 1, 0);
        const std::uint32_t line = setup.rt->config().device.l2.lineBytes;
        const VAddr buf = setup.rt->deviceMalloc(benign, 0, 512 * line);
        auto kernel = [&, buf, line](rt::BlockCtx &ctx) -> sim::Task {
            // Coarse transfer: fetch the working set once...
            for (int i = 0; i < 512; ++i)
                co_await ctx.ldcg64(buf + i * line);
            // ...then work on it locally for a long time.
            co_await ctx.compute(400000);
        };
        gpu::KernelConfig kcfg;
        kcfg.name = "benign-remote";
        auto h = setup.rt->launch(benign, 1, kcfg, kernel);
        setup.rt->runUntilDone(h);
        monitor.stop();
        report("benign bulk transfer", monitor);
    }

    // 2. Covert channel.
    {
        defense::LinkMonitor monitor(*setup.rt, 0, 1, mon_cfg);
        monitor.start();
        auto pairs = aligner.alignedPairs(*setup.localFinder,
                                          *setup.remoteFinder, mapping, 4);
        attack::covert::CovertChannel channel(
            *setup.rt, *setup.local, *setup.remote, 0, 1, pairs,
            setup.calib.thresholds);
        Rng rng(seed);
        std::vector<std::uint8_t> bits(4096);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        channel.transmit(bits, rx);
        monitor.stop();
        report("covert channel (4 sets)", monitor);
    }

    // 3. Side-channel prober.
    {
        defense::LinkMonitor monitor(*setup.rt, 0, 1, mon_cfg);
        monitor.start();
        attack::side::ProberConfig pcfg;
        pcfg.monitoredSets = 128;
        pcfg.samplePeriod = 8000;
        pcfg.windowCycles = 12000;
        pcfg.duration = 800000;
        attack::side::RemoteProber prober(*setup.rt, *setup.remote, 1,
                                          *setup.remoteFinder,
                                          setup.calib.thresholds, pcfg);
        attack::side::Memorygram gram(pcfg.monitoredSets,
                                      prober.numWindows());
        auto h = prober.launch(gram, setup.rt->engine().now() + 10000);
        setup.rt->runUntilDone(h);
        monitor.stop();
        report("memorygram prober", monitor);
    }

    std::printf("\n  the attacks need sustained fine-grained NVLink "
                "traffic and stand out against coarse benign "
                "transfers -- the paper's detection premise.\n");
    std::printf("[csv] ablation_detection.csv\n");
    return 0;
}
