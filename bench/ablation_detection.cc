/**
 * @file
 * Thin wrapper over the `ablation_detection` registry entry; the implementation
 * lives in bench/suite/ablation_detection.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("ablation_detection", argc, argv);
}
