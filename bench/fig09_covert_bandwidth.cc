/**
 * @file
 * Thin wrapper over the `fig09_covert_bandwidth` registry entry; the implementation
 * lives in bench/suite/fig09_covert_bandwidth.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig09_covert_bandwidth", argc, argv);
}
