/**
 * @file
 * Reproduces paper Fig. 9: "Bandwidth and Error rate in covert
 * channel" -- bandwidth and error rate as the number of parallel cache
 * sets grows.
 *
 * The paper reports a best bandwidth of 3.95 MB/s at 4 sets with an
 * average error rate of 1.3% over 1000 runs, with additional sets
 * raising both bandwidth and error rate. Note on units: the paper's
 * probe cycles (630/950 per bit per set) bound the per-set symbol rate
 * near 1 Mbit/s, so we report Mbit/s (the shape -- linear bandwidth
 * growth, superlinear error growth -- is the reproduced claim).
 */

#include <cstdio>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote, 0,
                               1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);

    const std::size_t bits_per_run = 32768; // 32 kbit per measurement
    const int runs = 4;

    bench::header("Fig. 9: bandwidth and error rate vs parallel sets");
    CsvWriter csv("fig09_covert_bandwidth.csv");
    csv.row("sets", "bandwidth_mbit_s", "bandwidth_mbyte_s",
            "error_rate_pct");

    std::printf("  %4s  %14s  %14s  %10s\n", "sets", "BW (Mbit/s)",
                "BW (MB/s)", "error");
    for (unsigned k : {1u, 2u, 3u, 4u, 6u, 8u}) {
        auto pairs = aligner.alignedPairs(*setup.localFinder,
                                          *setup.remoteFinder, mapping, k);
        attack::covert::CovertChannel channel(
            *setup.rt, *setup.local, *setup.remote, 0, 1, pairs,
            setup.calib.thresholds);

        double bw_mbit = 0, bw_mbyte = 0, err = 0;
        Rng rng(seed ^ (k * 7919));
        for (int r = 0; r < runs; ++r) {
            std::vector<std::uint8_t> bits(bits_per_run);
            for (auto &b : bits)
                b = rng.chance(0.5) ? 1 : 0;
            std::vector<std::uint8_t> rx;
            auto stats = channel.transmit(bits, rx);
            bw_mbit += stats.bandwidthMbitPerSec;
            bw_mbyte += stats.bandwidthMBytePerSec;
            err += stats.errorRate;
        }
        bw_mbit /= runs;
        bw_mbyte /= runs;
        err /= runs;
        std::printf("  %4u  %14.3f  %14.3f  %8.2f%%\n", k, bw_mbit,
                    bw_mbyte, 100.0 * err);
        csv.row(k, bw_mbit, bw_mbyte, 100.0 * err);
    }
    std::printf("\n  paper: peak 3.95 'MB/s' at 4 sets, 1.3%% error; "
                "error grows with more sets\n");
    std::printf("[csv] fig09_covert_bandwidth.csv\n");
    return 0;
}
