/**
 * @file
 * Thin wrapper over the `perf_sim` registry entry; the implementation
 * lives in bench/suite/perf_sim.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("perf_sim", argc, argv);
}
