/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cache
 * access throughput, indexer hashing, engine scheduling, end-to-end
 * kernel memory access rate. These guard the simulation speed the
 * figure benches depend on.
 */

#include <benchmark/benchmark.h>

#include "cache/indexer.hh"
#include "cache/set_assoc_cache.hh"
#include "rt/runtime.hh"
#include "sim/engine.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace
{

using namespace gpubox;

void
BM_CacheAccess(benchmark::State &state)
{
    cache::CacheConfig cfg; // P100 L2
    cfg.policy = static_cast<cache::ReplPolicy>(state.range(0));
    cache::LinearIndexer idx(cfg.numSets(), cfg.lineBytes);
    cache::SetAssocCache cache(cfg, idx, Rng(1));
    Rng rng(2);
    PAddr a = 0;
    for (auto _ : state) {
        a = (a + 128 * (rng.uniform(4096) + 1)) & 0xffffff80ULL;
        benchmark::DoNotOptimize(cache.access(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(cache::ReplPolicy::LRU))
    ->Arg(static_cast<int>(cache::ReplPolicy::TREE_PLRU))
    ->Arg(static_cast<int>(cache::ReplPolicy::RANDOM));

void
BM_HashedIndexer(benchmark::State &state)
{
    cache::HashedPageIndexer idx(2048, 128, 64 * 1024, 0x5a17);
    PAddr a = 0;
    for (auto _ : state) {
        a += 128;
        benchmark::DoNotOptimize(idx.setFor(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashedIndexer);

void
BM_EngineActorSwitch(benchmark::State &state)
{
    const int actors = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        sim::Engine eng(1);
        for (int i = 0; i < actors; ++i) {
            eng.spawn("a", [](sim::ActorCtx &) -> sim::Task {
                for (int k = 0; k < 100; ++k)
                    co_await sim::Delay{10};
            });
        }
        state.ResumeTiming();
        eng.run();
    }
    state.SetItemsProcessed(state.iterations() * actors * 100);
}
BENCHMARK(BM_EngineActorSwitch)->Arg(4)->Arg(64)->Arg(256);

void
BM_RuntimeLdcg(benchmark::State &state)
{
    setLogEnabled(false);
    rt::SystemConfig cfg;
    rt::Runtime rt(cfg);
    rt::Process &p = rt.createProcess("bench");
    const std::uint32_t line = cfg.device.l2.lineBytes;
    const int n = 1024;
    const VAddr buf = rt.deviceMalloc(p, 0, static_cast<std::uint64_t>(n) *
                                                line);

    for (auto _ : state) {
        auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
            for (int i = 0; i < n; ++i)
                co_await ctx.ldcg64(buf + (i % n) * line);
        };
        gpu::KernelConfig kcfg;
        auto h = rt.launch(p, 0, kcfg, kernel);
        rt.runUntilDone(h);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RuntimeLdcg);

void
BM_GroupProbe(benchmark::State &state)
{
    setLogEnabled(false);
    rt::SystemConfig cfg;
    rt::Runtime rt(cfg);
    rt::Process &p = rt.createProcess("bench");
    const std::uint32_t line = cfg.device.l2.lineBytes;
    const VAddr buf = rt.deviceMalloc(p, 0, 16 * line);
    std::vector<VAddr> lines;
    for (int i = 0; i < 16; ++i)
        lines.push_back(buf + i * line);

    for (auto _ : state) {
        auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
            for (int r = 0; r < 64; ++r)
                co_await ctx.probeSet(lines);
        };
        gpu::KernelConfig kcfg;
        auto h = rt.launch(p, 0, kcfg, kernel);
        rt.runUntilDone(h);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 16);
}
BENCHMARK(BM_GroupProbe);

} // namespace
