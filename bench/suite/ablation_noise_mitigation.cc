/**
 * @file
 * Paper Sec. VI: noise mitigation via SM saturation (registry entry
 * `ablation_noise_mitigation`).
 *
 * Three covert-channel conditions over 4 sets: quiet (no co-tenant),
 * noisy (a concurrent app streams through the trojan GPU's L2), and
 * mitigated (the attacker saturates every SM's shared memory and
 * thread slots so the leftover block scheduling policy cannot place
 * the noisy application until the communication ends). One isolated
 * scenario per condition.
 */

#include <cstdlib>
#include <memory>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"
#include "victim/workload.hh"

namespace gpubox::bench
{
namespace
{

void
runCondition(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote,
                               0, 1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    auto pairs =
        aligner.alignedPairs(*setup.localFinder, *setup.remoteFinder,
                             mapping, sc.attack.covertSets);

    rt::Process &noise_proc = setup.rt->createProcess("noise");

    attack::covert::CovertChannel channel(*setup.rt, *setup.local,
                                          *setup.remote, 0, 1, pairs,
                                          setup.calib.thresholds);

    rt::KernelHandle fillers;
    std::unique_ptr<victim::Workload> noise;
    rt::KernelHandle noise_handle;
    unsigned noise_started_during_tx = 0;

    // Launched via the channel's after-launch hook so the attacker's
    // own blocks are already resident on the SMs.
    auto after_launch = [&]() {
        if (sc.attack.smSaturation) {
            // Fill every remaining SM slot: 32 KiB shared + ~1000
            // threads per idle block, two slots per SM minus the
            // four the trojan holds (paper Sec. VI).
            gpu::KernelConfig fcfg;
            fcfg.name = "sm-filler";
            fcfg.numBlocks = 2 * setup.rt->config().device.numSms;
            fcfg.threadsPerBlock = 1000;
            fcfg.sharedMemBytes = 32 * 1024;
            // Dedicated stream: the fillers must overlap the trojan
            // kernel already running on this process' default stream.
            rt::Stream &filler_stream =
                setup.rt->createStream(*setup.local, 0, "sm-filler");
            fillers = filler_stream.launch(
                fcfg, [](rt::BlockCtx &bctx) -> sim::Task {
                    while (!bctx.stopRequested())
                        co_await bctx.compute(256);
                });
        }
        if (sc.defense.coTenantNoise) {
            // A co-tenant streaming app wanting 16 KiB of shared
            // memory per block on the trojan GPU.
            victim::WorkloadConfig wcfg;
            wcfg.seed = sc.seed ^ 0x9097;
            wcfg.iterations = 12;
            wcfg.sharedMemBytes = 16 * 1024;
            noise = std::make_unique<victim::Workload>(
                *setup.rt, noise_proc, 0, victim::AppKind::VECTOR_ADD,
                wcfg);
            noise_handle = noise->launch();
        }
    };

    // Payload derived from the scenario seed alone, so every
    // condition transmits the same bits.
    Rng rng(sc.seed ^ 0xbeef);
    std::vector<std::uint8_t> bits(sc.attack.messageBits);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    auto stats = channel.transmit(bits, rx, after_launch);

    if (sc.defense.coTenantNoise)
        for (auto *b : noise_handle.blocks())
            noise_started_during_tx += b->started() ? 1 : 0;

    // Cleanup: release the SMs, let the queued noise app drain.
    if (sc.attack.smSaturation)
        fillers.requestStop();
    if (sc.defense.coTenantNoise) {
        noise_handle.requestStop();
        setup.rt->sync(noise_handle);
    }
    if (sc.attack.smSaturation)
        setup.rt->sync(fillers);

    ctx.row(sc.paramOr("condition"), 100.0 * stats.errorRate,
            stats.bandwidthMbitPerSec, noise_started_during_tx);
    ctx.metric("error_pct[" + sc.paramOr("condition") + "]",
               100.0 * stats.errorRate);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
noiseScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "noise";
    base.applyDefaults(d.seed, d.platform);
    base.attack.messageBits = 16384;

    return exp::ScenarioMatrix(base)
        .axis("condition",
              {{"quiet", [](exp::Scenario &) {}},
               {"noisy",
                [](exp::Scenario &sc) {
                    sc.defense.coTenantNoise = true;
                }},
               {"mitigated (SM saturation)",
                [](exp::Scenario &sc) {
                    sc.defense.coTenantNoise = true;
                    sc.attack.smSaturation = true;
                }}})
        .expand();
}

void
renderNoise(const exp::Report &report, std::FILE *out)
{
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out,
                         "  %-28s error %6.2f%%   BW %6.3f Mbit/s   "
                         "noise blocks running during tx: %s\n",
                         row[0].c_str(),
                         std::strtod(row[1].c_str(), nullptr),
                         std::strtod(row[2].c_str(), nullptr),
                         row[3].c_str());
        }
    }
    std::fprintf(out,
                 "\n  expectation: noisy >> quiet error; mitigation "
                 "restores the quiet error because the noise app "
                 "cannot be scheduled while the channel runs.\n");
}

} // namespace

void
registerAblationNoiseMitigation()
{
    exp::BenchSpec spec;
    spec.name = "ablation_noise_mitigation";
    spec.description =
        "Sec. VI: covert error under co-tenant noise and SM "
        "saturation";
    spec.csvHeader = {"condition", "error_rate_pct",
                      "bandwidth_mbit_s", "noise_blocks_started"};
    spec.scenarios = noiseScenarios;
    spec.run = runCondition;
    spec.render = renderNoise;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
