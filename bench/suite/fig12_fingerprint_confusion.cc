/**
 * @file
 * Paper Fig. 12: "Confusion Matrix" of the application fingerprinting
 * attack (registry entry `fig12_fingerprint_confusion`).
 *
 * The paper collects 1500 memorygram samples per application, trains
 * an image classifier on 150, validates on 150 and tests on 1200,
 * reaching 99.91% accuracy over 7200 test samples. This entry runs
 * the identical pipeline at a simulation-friendly 30 samples per app.
 */

#include "attack/side/fingerprint.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig12(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc, false, true);

    attack::side::FingerprintConfig cfg;
    cfg.prober.monitoredSets = 96;
    cfg.prober.samplePeriod = 8000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1600000;

    attack::side::Fingerprinter fp(*setup.rt, *setup.remote, 1,
                                   *setup.local, 0,
                                   *setup.remoteFinder,
                                   setup.calib.thresholds, cfg);

    std::string text =
        strf("collecting %u samples per application "
             "(%u train / %u val / %u test each)...\n",
             cfg.samplesPerApp, cfg.trainPerApp, cfg.valPerApp,
             cfg.samplesPerApp - cfg.trainPerApp - cfg.valPerApp);
    auto result = fp.run();

    text += headerText("Fig. 12: confusion matrix (test set)");
    text += result.confusion.render(result.classNames);
    text += strf("\n  validation accuracy: %.2f%%\n",
                 100.0 * result.validationAccuracy);
    text += strf("  test accuracy:       %.2f%%  (paper: 99.91%%)\n",
                 100.0 * result.testAccuracy);
    ctx.text(std::move(text));

    for (int t = 0; t < result.confusion.numClasses(); ++t)
        for (int p = 0; p < result.confusion.numClasses(); ++p)
            ctx.row(result.classNames[t], result.classNames[p],
                    result.confusion.count(t, p));

    ctx.metric("test_accuracy_pct", 100.0 * result.testAccuracy);
    ctx.metric("validation_accuracy_pct",
               100.0 * result.validationAccuracy);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig12Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig12";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerFig12FingerprintConfusion()
{
    exp::BenchSpec spec;
    spec.name = "fig12_fingerprint_confusion";
    spec.description =
        "Fig. 12: fingerprint classifier confusion matrix";
    spec.csvHeader = {"true", "predicted", "count"};
    spec.scenarios = fig12Scenarios;
    spec.run = runFig12;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
