/**
 * @file
 * Paper Fig. 15: "Memorygram for a two-epoch experiment" (registry
 * entry `fig15_epoch_inference`).
 *
 * Training epochs appear as activity bursts separated by the
 * inter-epoch synchronization gap; the epoch count (a hyperparameter)
 * is recovered from the memorygram's temporal profile. One isolated
 * scenario per epoch count.
 */

#include <cstdlib>

#include "attack/side/model_extract.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig15(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const unsigned epochs = static_cast<unsigned>(
        std::strtoul(sc.paramOr("epochs").c_str(), nullptr, 0));
    auto setup = AttackSetup::create(sc, false, true);

    attack::side::ExtractionConfig cfg;
    cfg.prober.monitoredSets = 256;
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 2600000;
    cfg.mlpBase.batchesPerEpoch = 3;
    cfg.mlpBase.interEpochGapCycles = 250000;

    attack::side::ModelExtractor extractor(
        *setup.rt, *setup.remote, 1, *setup.local, 0,
        *setup.remoteFinder, setup.calib.thresholds, cfg);

    HeatmapOptions opt;
    opt.maxRows = 20;
    opt.maxCols = 100;

    auto run = extractor.observe(128, epochs);
    const unsigned inferred =
        attack::side::ModelExtractor::inferEpochs(run.gram);
    std::string text =
        headerText("Fig. 15: memorygram, " + std::to_string(epochs) +
                   " training epoch(s)");
    text += run.gram.trimmed().render(opt);
    text += "  temporal profile (misses per window):\n  ";
    for (std::size_t w = 0; w < run.gram.numWindows(); ++w) {
        const auto m = run.gram.windowMisses(w);
        text += m > 40 ? '#' : (m > 5 ? '+' : '.');
        ctx.row(epochs, w, m, inferred);
    }
    text += strf("\n  => inferred epochs: %u (true: %u) %s\n",
                 inferred, epochs, inferred == epochs ? "ok" : "WRONG");
    ctx.text(std::move(text));

    ctx.metric(strf("inferred_epochs[true=%u]", epochs), inferred);
    ctx.metric("inference_correct", inferred == epochs ? 1.0 : 0.0);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig15Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig15";
    base.applyDefaults(d.seed, d.platform);

    std::vector<exp::ScenarioMatrix::Point> points;
    for (unsigned e : {1u, 2u, 3u})
        points.emplace_back(strf("%u", e), [](exp::Scenario &) {});
    return exp::ScenarioMatrix(base).axis("epochs", points).expand();
}

} // namespace

void
registerFig15EpochInference()
{
    exp::BenchSpec spec;
    spec.name = "fig15_epoch_inference";
    spec.description =
        "Fig. 15: training-epoch recovery from the temporal profile";
    spec.csvHeader = {"epochs_true", "window", "window_misses",
                      "epochs_inferred"};
    spec.scenarios = fig15Scenarios;
    spec.run = runFig15;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
