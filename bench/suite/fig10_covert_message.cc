/**
 * @file
 * Paper Fig. 10: "Cross GPU covert message received by spy process"
 * (registry entry `fig10_covert_message`) -- the spy-side probe-time
 * trace while the trojan transmits "Hello! How are you? ": ~630
 * cycles when a '0' is sent (the spy's lines survive) and ~950 cycles
 * when a '1' is sent (the trojan evicted them).
 */

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig10(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote,
                               0, 1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    // Single set: the Fig. 10 trace follows one cache set.
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 1);
    attack::covert::CovertChannel channel(
        *setup.rt, *setup.local, *setup.remote, 0, 1, pairs,
        setup.calib.thresholds);

    const std::string message = "Hello! How are you? ";
    std::string decoded;
    auto stats = channel.transmitMessage(message, decoded);

    std::string text = headerText(
        "Fig. 10: spy probe trace of the covert message");
    text += strf("  sent:    \"%s\"\n", message.c_str());
    text += strf("  decoded: \"%s\"\n", decoded.c_str());
    text += strf("  bits: %zu, errors: %zu (%.2f%%), bandwidth %.3f "
                 "Mbit/s\n\n",
                 stats.bitsSent, stats.bitErrors,
                 100.0 * stats.errorRate, stats.bandwidthMbitPerSec);

    // ASCII trace of the first 12 characters (96 symbols).
    const auto bits = attack::covert::CovertChannel::toBits(message);
    for (std::size_t i = 0; i < stats.probeTraceSet0.size(); ++i)
        ctx.row(i, static_cast<int>(bits[i]), stats.probeTraceSet0[i]);

    text += "  probe cycles per symbol (first 96; '#'=miss level "
            "~950, '.'=hit level ~630):\n  ";
    double zero_sum = 0, one_sum = 0;
    std::size_t zero_n = 0, one_n = 0;
    for (std::size_t i = 0; i < stats.probeTraceSet0.size(); ++i) {
        if (i < 96) {
            text += stats.probeTraceSet0[i] >
                            setup.calib.thresholds.remoteBoundary
                        ? '#'
                        : '.';
            if (i % 48 == 47)
                text += "\n  ";
        }
        if (bits[i]) {
            one_sum += stats.probeTraceSet0[i];
            ++one_n;
        } else {
            zero_sum += stats.probeTraceSet0[i];
            ++zero_n;
        }
    }
    const double avg0 = zero_sum / static_cast<double>(zero_n);
    const double avg1 = one_sum / static_cast<double>(one_n);
    text += strf("\n  average probe time while sending '0': %.0f "
                 "cycles (paper: 630)\n",
                 avg0);
    text += strf("  average probe time while sending '1': %.0f "
                 "cycles (paper: 950)\n",
                 avg1);
    ctx.text(std::move(text));

    ctx.metric("error_pct", 100.0 * stats.errorRate);
    ctx.metric("bw_mbit_s", stats.bandwidthMbitPerSec);
    ctx.metric("avg_probe_cycles_bit0", avg0);
    ctx.metric("avg_probe_cycles_bit1", avg1);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig10Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig10";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerFig10CovertMessage()
{
    exp::BenchSpec spec;
    spec.name = "fig10_covert_message";
    spec.description =
        "Fig. 10: spy probe trace of a covert text message";
    spec.csvHeader = {"symbol", "bit", "probe_cycles"};
    spec.scenarios = fig10Scenarios;
    spec.run = runFig10;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
