/**
 * @file
 * Paper Sec. VII *triggered* partitioning proposal, GPUGuard-style
 * (registry entry `ablation_dynamic_defense`): the box runs
 * unpartitioned until an NVLink monitor detects sustained
 * fine-grained traffic, then flips the L2s into isolated slices. A
 * covert transmission that starts clean is severed mid-flight: the
 * error rate per message quarter jumps to ~50% (random decoding)
 * right after the trigger.
 */

#include <cstdlib>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "defense/dynamic_partitioner.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runDynamicDefense(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote,
                               0, 1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 4);
    attack::covert::CovertChannel channel(*setup.rt, *setup.local,
                                          *setup.remote, 0, 1, pairs,
                                          setup.calib.thresholds);

    // A deliberately sluggish detection criterion (sustained traffic
    // for ~2.4M cycles) so the severing lands mid-message and the
    // before/after contrast is visible; with the default LinkMonitor
    // criterion the channel dies within the first percent of the
    // message (see ablation_detection).
    defense::MonitorConfig mcfg;
    mcfg.sampleWindow = 60000;
    mcfg.flagRatePerKcycle = 20.0;
    mcfg.consecutiveWindows = 40;
    defense::DynamicPartitioner guard(
        *setup.rt, 0, 1, 2, {{setup.local, 0u}, {setup.remote, 1u}},
        mcfg);
    guard.start();

    const Cycles tx_start = setup.rt->engine().now();
    Rng rng(sc.seed ^ 0xd34d);
    std::vector<std::uint8_t> bits(16384);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    auto stats = channel.transmit(bits, rx);
    guard.stop();

    std::string text = headerText(
        "Sec. VII: triggered (GPUGuard-style) partitioning");
    text += strf("  defense triggered: %s",
                 guard.triggered() ? "yes" : "no");
    double trigger_pct = -1.0;
    if (guard.triggered()) {
        trigger_pct = 100.0 *
                      static_cast<double>(guard.triggerTime() -
                                          tx_start) /
                      static_cast<double>(stats.elapsedCycles);
        text += strf(" %.0f%% into the message", trigger_pct);
    }
    text += strf("\n  overall error: %.2f%%\n\n",
                 100.0 * stats.errorRate);

    text += "  error per message quarter:\n";
    const std::size_t q = bits.size() / 4;
    for (int i = 0; i < 4; ++i) {
        std::size_t errors = 0;
        for (std::size_t j = i * q; j < (i + 1) * q; ++j)
            errors += bits[j] != rx[j] ? 1 : 0;
        const double pct = 100.0 * static_cast<double>(errors) /
                           static_cast<double>(q);
        text += strf("    Q%d: %6.2f%%\n", i + 1, pct);
        ctx.row(i + 1, pct);
        ctx.metric(strf("error_pct[q%d]", i + 1), pct);
    }
    text += "\n  expectation: early quarters clean, quarters after "
            "the trigger ~50% (the channel is severed while the "
            "attackers keep transmitting).\n";
    ctx.text(std::move(text));

    ctx.metric("triggered", guard.triggered() ? 1.0 : 0.0);
    ctx.metric("overall_error_pct", 100.0 * stats.errorRate);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
dynamicDefenseScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "guard";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerAblationDynamicDefense()
{
    exp::BenchSpec spec;
    spec.name = "ablation_dynamic_defense";
    spec.description =
        "Sec. VII: triggered partitioning severs a covert message "
        "mid-flight";
    spec.csvHeader = {"quarter", "error_rate_pct"};
    spec.scenarios = dynamicDefenseScenarios;
    spec.run = runDynamicDefense;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
