/**
 * @file
 * Paper Fig. 6: "Eviction set aliasing issue" (registry entry
 * `fig06_aliasing`).
 *
 * Naive per-target eviction set discovery does not reveal which
 * physical set a discovered eviction set indexes, so independently
 * discovered sets can alias and cause self-eviction noise. Discover
 * sets for random targets naively, measure the alias rate with the
 * combine-and-rechase test, deduplicate, and verify the survivors
 * are alias-free.
 */

#include <algorithm>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig06(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc, true, false);
    auto &finder = *setup.localFinder;

    // Naive discovery for 12 random target pages. The draw range is
    // capped at the platform's pool size (the 140-page range keeps the
    // historical DGX-1 target sequence).
    const int num_targets = 12;
    const int target_range = std::min(140, finder.poolPages());
    Rng rng(sc.seed ^ 0xa11a5);
    std::vector<int> targets;
    while (targets.size() < static_cast<std::size_t>(num_targets)) {
        const int t = static_cast<int>(
            rng.uniform(static_cast<std::uint64_t>(target_range)));
        bool dup = false;
        for (int u : targets)
            dup |= (u == t);
        if (!dup)
            targets.push_back(t);
    }

    std::string text = headerText(
        "Fig. 6: naive eviction set discovery + alias test");
    std::vector<attack::EvictionSet> sets;
    for (int t : targets) {
        sets.push_back(finder.naiveSetFor(t));
        text += strf("  target page %3d -> eviction set of %zu lines\n",
                     t, sets.back().lines.size());
    }

    // Pairwise alias testing (the dedup step of Sec. III-B).
    int alias_pairs = 0;
    int checked = 0;
    int correct = 0;
    std::vector<bool> drop(sets.size(), false);
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            const bool alias = finder.aliasTest(sets[i], sets[j]);
            const bool truth =
                setup.rt->l2SetOf(*setup.local, sets[i].lines[0]) ==
                setup.rt->l2SetOf(*setup.local, sets[j].lines[0]);
            ++checked;
            if (alias == truth)
                ++correct;
            if (alias) {
                ++alias_pairs;
                drop[j] = true;
            }
            ctx.row(i, j, alias ? 1 : 0, truth ? 1 : 0);
        }
    }

    int kept = 0;
    for (bool d : drop)
        kept += d ? 0 : 1;

    text += strf("\n  %d/%d pairs alias (same physical set)\n",
                 alias_pairs, checked);
    text += strf("  alias-test agreement with ground truth: %d/%d\n",
                 correct, checked);
    text += strf("  after dedup: %d unique sets kept of %d "
                 "discovered\n",
                 kept, num_targets);

    // Verify the kept sets are mutually alias-free.
    int residual = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        if (drop[i])
            continue;
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            if (drop[j])
                continue;
            residual += finder.aliasTest(sets[i], sets[j]) ? 1 : 0;
        }
    }
    text += strf("  residual alias pairs after dedup: %d (expect 0)\n",
                 residual);
    ctx.text(std::move(text));

    ctx.metric("alias_pairs", alias_pairs);
    ctx.metric("alias_test_correct", correct);
    ctx.metric("alias_test_checked", checked);
    ctx.metric("residual_alias_pairs", residual);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig06Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig06";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerFig06Aliasing()
{
    exp::BenchSpec spec;
    spec.name = "fig06_aliasing";
    spec.description =
        "Fig. 6: alias rate of naive eviction sets and dedup";
    spec.csvHeader = {"set_a", "set_b", "aliases", "truth"};
    spec.scenarios = fig06Scenarios;
    spec.run = runFig06;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
