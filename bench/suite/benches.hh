/**
 * @file
 * Registration entry points for every figure/table/ablation bench.
 * The suite avoids static-initializer self-registration (fragile
 * under static-library dead-stripping): each translation unit exports
 * an explicit register function and registerAllBenches() calls them
 * in paper order exactly once.
 */

#ifndef GPUBOX_BENCH_SUITE_BENCHES_HH
#define GPUBOX_BENCH_SUITE_BENCHES_HH

namespace gpubox::bench
{

void registerPerfSim();
void registerPerfShard();
void registerFig04AccessTiming();
void registerFig05EvsetValidation();
void registerFig06Aliasing();
void registerFig07Alignment();
void registerFig09CovertBandwidth();
void registerFig10CovertMessage();
void registerFig11MemorygramApps();
void registerFig12FingerprintConfusion();
void registerFig13Table02MlpMisses();
void registerFig14MlpMemorygram();
void registerFig15EpochInference();
void registerTable01CacheParams();
void registerAblationReplacement();
void registerAblationNoiseMitigation();
void registerAblationMigDefense();
void registerAblationDetection();
void registerAblationDynamicDefense();
void registerExtensionMultiGpu();

/** Register the whole suite (idempotent). */
void registerAllBenches();

} // namespace gpubox::bench

#endif // GPUBOX_BENCH_SUITE_BENCHES_HH
