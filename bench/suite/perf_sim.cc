/**
 * @file
 * Simulator performance sweep (registry entry `perf_sim`).
 *
 * Ablates the simulator's own hot paths -- cache access throughput
 * per replacement policy, indexer hashing, engine actor scheduling,
 * end-to-end kernel memory access rate -- as one scenario matrix.
 * Everything printed and written to the CSV is a *simulated* quantity
 * and is byte-identical for any thread count; host wall-clock goes to
 * stderr and the results sink only.
 */

#include <cstdlib>

#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "cache/indexer.hh"
#include "cache/set_assoc_cache.hh"
#include "exp/registry.hh"
#include "rt/runtime.hh"
#include "sim/engine.hh"

namespace gpubox::bench
{
namespace
{

struct PerfMetrics
{
    std::uint64_t items = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t checksum = 0;
    std::uint64_t engineSteps = 0;
    Cycles simCycles = 0;
};

PerfMetrics
runCacheAccess(const exp::Scenario &sc)
{
    cache::CacheConfig ccfg; // P100 L2
    ccfg.policy = cache::replPolicyFromName(sc.paramOr("policy"));
    cache::LinearIndexer idx(ccfg.numSets(), ccfg.lineBytes);
    cache::SetAssocCache cache(ccfg, idx, Rng(sc.seed));

    PerfMetrics m;
    m.items = 2'000'000;
    PAddr a = 0;
    // Address stream keyed by the seed only (not the scenario name),
    // so every policy is measured on the identical access sequence.
    Rng addr_rng = Rng(sc.seed).split(0xacce55);
    for (std::uint64_t i = 0; i < m.items; ++i) {
        a = (a + 128 * (addr_rng.uniform(4096) + 1)) & 0xffffff80ULL;
        const auto out = cache.access(a);
        m.hits += out.hit ? 1 : 0;
        m.evictions += out.evicted ? 1 : 0;
        m.checksum += out.evictedLine + a;
    }
    return m;
}

PerfMetrics
runHashedIndexer(const exp::Scenario &sc)
{
    cache::HashedPageIndexer idx(2048, 128, 64 * 1024,
                                 sc.seed ^ 0x5a17);
    PerfMetrics m;
    m.items = 4'000'000;
    PAddr a = 0;
    for (std::uint64_t i = 0; i < m.items; ++i) {
        a += 128;
        m.checksum += idx.setFor(a);
    }
    return m;
}

PerfMetrics
runEngineActors(const exp::Scenario &sc)
{
    const unsigned actors = static_cast<unsigned>(
        std::strtoul(sc.paramOr("actors").c_str(), nullptr, 0));
    sim::Engine eng(sc.seed);
    for (unsigned i = 0; i < actors; ++i) {
        eng.spawn("a", [](sim::ActorCtx &) -> sim::Task {
            for (int k = 0; k < 100; ++k)
                co_await sim::Delay{10};
        });
    }
    eng.run();

    PerfMetrics m;
    const auto stats = eng.stats();
    m.items = static_cast<std::uint64_t>(actors) * 100;
    m.engineSteps = stats.steps;
    m.simCycles = stats.now;
    m.checksum = stats.spawned;
    return m;
}

PerfMetrics
runRuntimeLdcg(const exp::Scenario &sc)
{
    rt::Runtime rt(sc.system);
    rt::Process &p = rt.createProcess("bench");
    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int n = 1024;
    const int launches = 32;
    const VAddr buf =
        rt.deviceMalloc(p, 0, static_cast<std::uint64_t>(n) * line);

    // All launches queue on one stream and drain FIFO; the single
    // sync at the end replaces the old per-launch runUntilDone.
    rt::Stream &stream = rt.stream(p, 0);
    std::uint64_t latency_sum = 0;
    for (int l = 0; l < launches; ++l) {
        auto kernel = [&](rt::BlockCtx &bctx) -> sim::Task {
            for (int i = 0; i < n; ++i) {
                const Cycles t0 = bctx.actor().now();
                co_await bctx.ldcg64(buf + (i % n) * line);
                latency_sum += bctx.actor().now() - t0;
            }
        };
        gpu::KernelConfig kcfg;
        stream.launch(kcfg, kernel);
    }
    rt.sync(stream);

    PerfMetrics m;
    const auto metrics = rt.metrics();
    m.items = static_cast<std::uint64_t>(n) * launches;
    m.engineSteps = metrics.engine.steps;
    m.simCycles = metrics.engine.now;
    m.checksum = latency_sum;
    return m;
}

PerfMetrics
runGroupProbe(const exp::Scenario &sc)
{
    rt::Runtime rt(sc.system);
    rt::Process &p = rt.createProcess("bench");
    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int lines_n = 16;
    const int rounds = 64;
    const int launches = 32;
    const VAddr buf = rt.deviceMalloc(p, 0, lines_n * line);
    std::vector<VAddr> lines;
    for (int i = 0; i < lines_n; ++i)
        lines.push_back(buf + i * line);

    rt::Stream &stream = rt.stream(p, 0);
    std::uint64_t probe_sum = 0;
    for (int l = 0; l < launches; ++l) {
        auto kernel = [&](rt::BlockCtx &bctx) -> sim::Task {
            for (int r = 0; r < rounds; ++r) {
                auto res = co_await bctx.probeSet(lines);
                probe_sum += res.totalCycles;
            }
        };
        gpu::KernelConfig kcfg;
        stream.launch(kcfg, kernel);
    }
    rt.sync(stream);

    PerfMetrics m;
    const auto metrics = rt.metrics();
    m.items = static_cast<std::uint64_t>(lines_n) * rounds * launches;
    m.engineSteps = metrics.engine.steps;
    m.simCycles = metrics.engine.now;
    m.checksum = probe_sum;
    return m;
}

void
runPerfScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const std::string kernel = sc.paramOr("kernel");
    PerfMetrics m;
    if (kernel == "cache_access")
        m = runCacheAccess(sc);
    else if (kernel == "hashed_indexer")
        m = runHashedIndexer(sc);
    else if (kernel == "engine_actors")
        m = runEngineActors(sc);
    else if (kernel == "runtime_ldcg")
        m = runRuntimeLdcg(sc);
    else if (kernel == "group_probe")
        m = runGroupProbe(sc);
    else
        fatal("perf_sim: unknown kernel '", kernel, "'");

    ctx.row(kernel, sc.paramOr("policy", "-"), sc.paramOr("actors", "-"),
            sc.seed, m.items, m.hits, m.evictions, m.checksum,
            m.engineSteps, m.simCycles);
    ctx.metric("items", static_cast<double>(m.items));
    ctx.metric("sim_cycles", static_cast<double>(m.simCycles));
    ctx.metric("engine_steps", static_cast<double>(m.engineSteps));
}

std::vector<exp::Scenario>
perfScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "perf";
    base.applyDefaults(d.seed, d.platform);
    const auto keep = [](exp::Scenario &) {};

    std::vector<exp::Scenario> scenarios;
    auto add = [&](std::vector<exp::Scenario> v) {
        scenarios.insert(scenarios.end(),
                         std::make_move_iterator(v.begin()),
                         std::make_move_iterator(v.end()));
    };
    add(exp::ScenarioMatrix(base)
            .axis("kernel", {{"cache_access", keep}})
            .axis("policy",
                  {{"lru", keep}, {"tree-plru", keep}, {"random", keep}})
            .expand());
    add(exp::ScenarioMatrix(base)
            .axis("kernel", {{"hashed_indexer", keep}})
            .expand());
    add(exp::ScenarioMatrix(base)
            .axis("kernel", {{"engine_actors", keep}})
            .axis("actors", {{"4", keep}, {"64", keep}, {"256", keep}})
            .expand());
    add(exp::ScenarioMatrix(base)
            .axis("kernel", {{"runtime_ldcg", keep}})
            .expand());
    add(exp::ScenarioMatrix(base)
            .axis("kernel", {{"group_probe", keep}})
            .expand());
    return scenarios;
}

void
renderPerf(const exp::Report &report, std::FILE *out)
{
    std::fprintf(out,
                 "\n  %-16s %-10s %-7s %10s %10s %10s %18s %12s %14s\n",
                 "kernel", "policy", "actors", "items", "hits",
                 "evicted", "checksum", "steps", "sim_cycles");
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out,
                         "  %-16s %-10s %-7s %10s %10s %10s %18s %12s "
                         "%14s\n",
                         row[0].c_str(), row[1].c_str(), row[2].c_str(),
                         row[4].c_str(), row[5].c_str(), row[6].c_str(),
                         row[7].c_str(), row[8].c_str(),
                         row[9].c_str());
        }
    }
}

} // namespace

void
registerPerfSim()
{
    exp::BenchSpec spec;
    spec.name = "perf_sim";
    spec.description =
        "simulator hot-path throughput sweep (cache, indexer, engine, "
        "runtime)";
    spec.csvHeader = {"kernel",   "policy",       "actors",
                      "seed",     "items",        "hits",
                      "evictions", "checksum",    "engine_steps",
                      "sim_cycles"};
    spec.scenarios = perfScenarios;
    spec.run = runPerfScenario;
    spec.render = renderPerf;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
