/**
 * @file
 * Ablation (registry entry `ablation_replacement`): how much of the
 * attack survives when the L2 replacement policy is not true LRU?
 *
 * The paper's Table I finds deterministic (LRU-like) replacement, and
 * every stage of the attack leans on it. This entry re-runs those
 * stages under true LRU, tree-PLRU and randomized replacement -- one
 * isolated scenario per policy.
 */

#include <cstdlib>

#include "attack/covert/channel.hh"
#include "attack/reverse_engineer.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runPolicyScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const std::string name =
        cache::replPolicyName(sc.system.device.l2.policy);

    rt::Runtime rt(sc.system);
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0, 48, 6);

    bool finder_ok = true;
    unsigned assoc = 0;
    std::string policy_report = "n/a";
    double error_pct = 100.0;
    try {
        attack::FinderConfig fcfg;
        fcfg.poolPages = scaledPoolPages(sc, sc.attack.finderPoolPages);
        attack::EvictionSetFinder tf(rt, trojan, 0, 0,
                                     calib.thresholds, fcfg);
        tf.run();
        assoc = tf.associativity();

        attack::ReverseEngineer re(rt, trojan, 0, calib.thresholds);
        policy_report = attack::ReverseEngineer::classifyPolicy(
            re.evictionPoints(tf, 10), assoc);

        attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds,
                                     fcfg);
        sf.run();
        attack::SetAligner aligner(rt, trojan, spy, 0, 1,
                                   calib.thresholds);
        auto mapping = aligner.alignGroups(tf, sf);
        auto pairs = aligner.alignedPairs(tf, sf, mapping,
                                          sc.attack.covertSets);
        attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1,
                                              pairs, calib.thresholds);
        Rng rng(sc.seed ^ 0xab1a);
        std::vector<std::uint8_t> bits(sc.attack.messageBits);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        auto stats = channel.transmit(bits, rx);
        error_pct = 100.0 * stats.errorRate;
    } catch (const FatalError &e) {
        finder_ok = false;
        ctx.note(std::string("attack pipeline failed: ") + e.what());
    }

    ctx.row(name, finder_ok ? 1 : 0, assoc, policy_report, error_pct);
    ctx.metric("channel_error_pct[" + name + "]", error_pct);
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
replacementScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "replacement";
    base.applyDefaults(d.seed, d.platform);

    std::vector<exp::ScenarioMatrix::Point> points;
    for (auto policy :
         {cache::ReplPolicy::LRU, cache::ReplPolicy::TREE_PLRU,
          cache::ReplPolicy::RANDOM}) {
        points.emplace_back(cache::replPolicyName(policy),
                            [policy](exp::Scenario &sc) {
                                sc.system.device.l2.policy = policy;
                            });
    }
    return exp::ScenarioMatrix(base).axis("policy", points).expand();
}

void
renderReplacement(const exp::Report &report, std::FILE *out)
{
    std::fprintf(out, "\n  %-10s %-8s %-6s %-16s %s\n", "policy",
                 "finder", "assoc", "inferred", "channel error");
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out, "  %-10s %-8s %-6s %-16s %s%%\n",
                         row[0].c_str(),
                         row[1] == "1" ? "ok" : "FAILED",
                         row[2].c_str(), row[3].c_str(),
                         row[4].c_str());
        }
    }
    std::fprintf(out,
                 "\n  expectation: LRU -> clean attack; tree-PLRU -> "
                 "attack still works (deterministic-ish eviction); "
                 "randomized -> eviction sets unreliable and the "
                 "channel degrades or fails.\n");
}

} // namespace

void
registerAblationReplacement()
{
    exp::BenchSpec spec;
    spec.name = "ablation_replacement";
    spec.description =
        "attack stages under LRU / tree-PLRU / random replacement";
    spec.csvHeader = {"policy", "finder_ok", "associativity",
                      "policy_report", "channel_error_pct"};
    spec.scenarios = replacementScenarios;
    spec.run = runPolicyScenario;
    spec.render = renderReplacement;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
