/**
 * @file
 * Paper Fig. 5: "Validating the eviction set determination" (registry
 * entry `fig05_evset_validation`).
 *
 * For both the local and the remote GPU, sweep the number of conflict
 * set lines accessed between two probes of a target line: the probe
 * time steps from the hit level to the miss level at exactly the
 * associativity (16). The local scenario additionally runs the cyclic
 * access trace over associativity/associativity+1 lines that shows
 * the deterministic LRU thrash ruling out randomized replacement.
 */

#include <algorithm>

#include "attack/evset_validator.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig05(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const std::string mode = sc.paramOr("mode");
    auto setup = AttackSetup::create(sc);

    const unsigned assoc = setup.localFinder->associativity();
    // 48 as in the figure, capped by the conflict lines available;
    // computed from both finders so both sweeps share one length.
    const unsigned max_lines = std::min<unsigned>(
        assoc * 3,
        static_cast<unsigned>(
            std::min(setup.localFinder->groups()[0].size(),
                     setup.remoteFinder->groups()[0].size()) -
            1));

    attack::EvictionSetFinder &finder =
        mode == "local" ? *setup.localFinder : *setup.remoteFinder;
    rt::Process &proc =
        mode == "local" ? *setup.local : *setup.remote;
    const GpuId exec = mode == "local" ? 0 : 1;

    attack::EvictionSetValidator validator(*setup.rt, proc, exec, 0,
                                           setup.calib.thresholds);
    auto set = finder.evictionSet(0, 1, max_lines + 1);
    auto series = validator.sweep(set, max_lines);

    std::string text =
        headerText("Fig. 5 sweep, " + mode +
                   " GPU (probe cycles vs lines accessed)");
    for (std::size_t i = 0; i < series.linesAccessed.size(); ++i) {
        text += strf("  n=%2u  %5.0f cycles  %s\n",
                     series.linesAccessed[i], series.probeCycles[i],
                     series.probeMissed[i] ? "MISS" : "hit");
        ctx.row(mode, series.linesAccessed[i], series.probeCycles[i],
                series.probeMissed[i] ? 1 : 0);
    }
    for (std::size_t i = 0; i < series.linesAccessed.size(); ++i) {
        if (series.probeMissed[i]) {
            text += strf("  => first eviction after %u accesses "
                         "(paper: every 16th)\n",
                         series.linesAccessed[i]);
            ctx.metric("first_eviction_lines[" + mode + "]",
                       series.linesAccessed[i]);
            break;
        }
    }

    if (mode == "local") {
        // Cyclic trace: assoc+1 same-set lines accessed cyclically --
        // every access misses (deterministic LRU); assoc lines --
        // every access hits after warmup.
        text += headerText("cyclic trace (LRU determinism)");
        attack::EvictionSetValidator cyc_validator(
            *setup.rt, *setup.local, 0, 0, setup.calib.thresholds);
        auto cyc_set = setup.localFinder->evictionSet(0, 2, assoc + 1);
        for (unsigned k : {assoc, assoc + 1}) {
            auto trace = cyc_validator.cyclicTrace(cyc_set, k, k * 3);
            unsigned misses = 0;
            for (std::size_t i = k; i < trace.size(); ++i)
                if (setup.calib.thresholds.isLocalMiss(trace[i]))
                    ++misses;
            text += strf("  %u lines cycled: %u/%zu post-warmup "
                         "misses\n",
                         k, misses, trace.size() - k);
            ctx.metric(strf("cyclic_misses[%u]", k), misses);
        }
    }
    ctx.text(std::move(text));
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig05Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig05";
    base.applyDefaults(d.seed, d.platform);
    const auto keep = [](exp::Scenario &) {};
    return exp::ScenarioMatrix(base)
        .axis("mode", {{"local", keep}, {"remote", keep}})
        .expand();
}

} // namespace

void
registerFig05EvsetValidation()
{
    exp::BenchSpec spec;
    spec.name = "fig05_evset_validation";
    spec.description =
        "Fig. 5: probe-time step at the associativity, local + remote";
    spec.csvHeader = {"mode", "lines_accessed", "probe_cycles",
                      "missed"};
    spec.scenarios = fig05Scenarios;
    spec.run = runFig05;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
