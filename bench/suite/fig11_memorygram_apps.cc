/**
 * @file
 * Paper Fig. 11: "Memorygram of 6 applications" (registry entry
 * `fig11_memorygram_apps`).
 *
 * The remote spy probes 256 L2 cache sets of the victim GPU while
 * each of the six HPC applications runs, and renders the (set x time)
 * miss matrix. One isolated scenario per application, so the six
 * memorygrams collect in parallel under `--threads N`.
 */

#include "attack/side/fingerprint.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig11(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc, false, true);

    attack::side::FingerprintConfig cfg;
    cfg.prober.monitoredSets = 256; // as in the paper's figure
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1600000;
    attack::side::Fingerprinter fp(*setup.rt, *setup.remote, 1,
                                   *setup.local, 0,
                                   *setup.remoteFinder,
                                   setup.calib.thresholds, cfg);

    HeatmapOptions opt;
    opt.maxRows = 24;
    opt.maxCols = 96;

    const auto kind = sc.app;
    auto gram = fp.collectSample(kind, sc.seed ^ 0xf00d).trimmed();
    std::string text =
        headerText("Fig. 11 memorygram: " + victim::appName(kind) +
                   " (" + victim::appShortName(kind) + ")");
    text += gram.render(opt);
    text += strf("  total misses: %llu over %zu sets x %zu windows\n",
                 static_cast<unsigned long long>(gram.totalMisses()),
                 gram.numSets(), gram.numWindows());
    ctx.text(std::move(text));

    for (std::size_t s = 0; s < gram.numSets(); ++s)
        for (std::size_t w = 0; w < gram.numWindows(); ++w)
            if (gram.missAt(s, w) > 0)
                ctx.row(victim::appShortName(kind), s, w,
                        gram.missAt(s, w));

    ctx.metric("misses[" + victim::appShortName(kind) + "]",
               static_cast<double>(gram.totalMisses()));
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig11Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig11";
    base.applyDefaults(d.seed, d.platform);

    std::vector<exp::ScenarioMatrix::Point> points;
    for (auto kind : victim::allAppKinds()) {
        points.emplace_back(victim::appShortName(kind),
                            [kind](exp::Scenario &sc) {
                                sc.app = kind;
                            });
    }
    return exp::ScenarioMatrix(base).axis("app", points).expand();
}

} // namespace

void
registerFig11MemorygramApps()
{
    exp::BenchSpec spec;
    spec.name = "fig11_memorygram_apps";
    spec.description =
        "Fig. 11: memorygrams of the six HPC applications";
    spec.csvHeader = {"app", "set", "window", "misses"};
    spec.scenarios = fig11Scenarios;
    spec.run = runFig11;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
