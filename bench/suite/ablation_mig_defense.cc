/**
 * @file
 * Paper Sec. VII partitioning defense: MIG-style isolated L2 way
 * slices (registry entry `ablation_mig_defense`).
 *
 * Baseline: the full cross-GPU covert pipeline works. With 2-way-
 * partitioned L2s and the trojan/spy in different slices, the
 * trojan's primes can no longer evict the spy's lines: Algorithm 2
 * finds no colliding group and the channel is dead. The attacker
 * still works *within* its slice (it measures associativity 8) --
 * exactly the paper's point that MIG isolates co-tenants rather than
 * fixing the microarchitecture.
 */

#include <cstdlib>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runSlices(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const unsigned slices =
        sc.defense.migPartitioning ? sc.defense.migSlices : 1;

    rt::Runtime rt(sc.system);
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    if (slices > 1) {
        rt.enableMigPartitioning(slices);
        rt.assignPartition(trojan, 0);
        rt.assignPartition(spy, 1);
    }

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0, 48, 6);

    attack::FinderConfig fcfg;
    fcfg.poolPages = scaledPoolPages(sc, sc.attack.finderPoolPages);
    attack::EvictionSetFinder tf(rt, trojan, 0, 0, calib.thresholds,
                                 fcfg);
    tf.run();
    attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds,
                                 fcfg);
    sf.run();

    const unsigned assoc = tf.associativity();

    attack::SetAligner aligner(rt, trojan, spy, 0, 1,
                               calib.thresholds);
    auto mapping = aligner.alignGroups(tf, sf);
    int matched_groups = 0;
    for (int m : mapping)
        matched_groups += m >= 0 ? 1 : 0;

    bool channel_possible = false;
    double error_pct = 100.0;
    if (matched_groups > 0) {
        auto pairs = aligner.alignedPairs(tf, sf, mapping,
                                          sc.attack.covertSets);
        attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1,
                                              pairs, calib.thresholds);
        Rng rng(sc.seed ^ 0x311c);
        std::vector<std::uint8_t> bits(sc.attack.messageBits);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        error_pct = 100.0 * channel.transmit(bits, rx).errorRate;
        channel_possible = true;
    }

    ctx.row(slices, assoc, matched_groups, channel_possible ? 1 : 0,
            error_pct);
    ctx.metric(strf("matched_groups[slices=%u]", slices),
               matched_groups);
    ctx.metric(strf("channel_possible[slices=%u]", slices),
               channel_possible ? 1.0 : 0.0);
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
migScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "mig";
    base.applyDefaults(d.seed, d.platform);
    base.attack.finderPoolPages = 224;

    return exp::ScenarioMatrix(base)
        .axis("slices", {{"1", [](exp::Scenario &) {}},
                         {"2",
                          [](exp::Scenario &sc) {
                              sc.defense.migPartitioning = true;
                              sc.defense.migSlices = 2;
                          }}})
        .expand();
}

void
renderMig(const exp::Report &report, std::FILE *out)
{
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out,
                         "  %s slice(s): attacker measures "
                         "associativity %2s, Algorithm-2 matches %s "
                         "group(s) -> %s",
                         row[0].c_str(), row[1].c_str(),
                         row[2].c_str(),
                         row[3] == "1" ? "channel up"
                                       : "CHANNEL DEAD");
            if (row[3] == "1")
                std::fprintf(out, " (error %.2f%%)",
                             std::strtod(row[4].c_str(), nullptr));
            std::fprintf(out, "\n");
        }
    }
    std::fprintf(out,
                 "\n  with isolated slices the trojan cannot evict "
                 "the spy's lines, so no eviction set pair ever "
                 "collides: the paper's partitioning defense closes "
                 "the channel (at the cost of halving each tenant's "
                 "effective L2 associativity).\n");
}

} // namespace

void
registerAblationMigDefense()
{
    exp::BenchSpec spec;
    spec.name = "ablation_mig_defense";
    spec.description =
        "Sec. VII: MIG-style L2 way partitioning kills the channel";
    spec.csvHeader = {"l2_slices", "attacker_measured_assoc",
                      "matched_groups", "channel_possible",
                      "error_pct"};
    spec.scenarios = migScenarios;
    spec.run = runSlices;
    spec.render = renderMig;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
