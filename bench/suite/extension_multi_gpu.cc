/**
 * @file
 * Cross-system attack sweep (registry entry `extension_multi_gpu`).
 *
 * The paper demonstrates its attacks on one machine -- the DGX-1 --
 * and argues in the closing discussion that the NUMA-L2 channel
 * generalizes to NVSwitch boxes and other multi-GPU systems. This
 * entry runs the full end-to-end pipeline (online calibration,
 * eviction-set discovery, alignment, covert transmission, memorygram
 * fingerprinting) once per registered platform descriptor and reports
 * covert-channel bandwidth/error-rate and fingerprint accuracy per
 * platform. The spy sits on the GPU *farthest* from the victim that
 * the platform grants peer access to, so routed multi-hop attacks
 * (quad-ring: two NVLink hops) are exercised alongside the paper's
 * single-hop case.
 */

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/side/fingerprint.hh"
#include "attack/timing_oracle.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"
#include "rt/platform.hh"

namespace gpubox::bench
{
namespace
{

/**
 * The most distant GPU the platform lets a spy attack GPU 0 from:
 * maximal hop count among peer-reachable GPUs, lowest id on ties
 * (deterministic).
 */
GpuId
farthestSpyGpu(const rt::Runtime &rt)
{
    GpuId best = 1;
    int best_hops = -1;
    for (GpuId g = 1; g < rt.numGpus(); ++g) {
        if (!rt.peerReachable(g, 0))
            continue;
        const int hops = rt.config().topology.hopCount(g, 0);
        if (hops > best_hops) {
            best = g;
            best_hops = hops;
        }
    }
    return best;
}

void
runCrossPlatform(const exp::Scenario &sc, exp::RunContext &ctx)
{
    rt::Runtime rt(sc.system);
    const GpuId victim_gpu = 0;
    const GpuId spy_gpu = farthestSpyGpu(rt);
    const int hops = rt.config().topology.hopCount(spy_gpu, victim_gpu);

    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    std::string text = headerText(
        "cross-system sweep: platform " + sc.system.platform);
    text += strf("  %d GPUs on '%s' topology, spy GPU %d -> victim "
                 "GPU %d over route %s (%d hop%s)\n",
                 rt.numGpus(), rt.config().topology.name().c_str(),
                 spy_gpu, victim_gpu,
                 rt.config().topology
                     .routeString(spy_gpu, victim_gpu)
                     .c_str(),
                 hops, hops == 1 ? "" : "s");

    // Online calibration against this platform's timing (no baked
    // thresholds anywhere downstream).
    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(spy_gpu, victim_gpu, 48, 6);
    text += strf("  calibrated clusters: LH %.0f / LM %.0f / RH %.0f "
                 "/ RM %.0f cycles\n",
                 calib.thresholds.localHitCenter,
                 calib.thresholds.localMissCenter,
                 calib.thresholds.remoteHitCenter,
                 calib.thresholds.remoteMissCenter);

    attack::FinderConfig fcfg;
    fcfg.poolPages = 40 * static_cast<int>(pageColors(sc));
    auto tf = std::make_unique<attack::EvictionSetFinder>(
        rt, trojan, victim_gpu, victim_gpu, calib.thresholds, fcfg);
    tf->run();
    auto sf = std::make_unique<attack::EvictionSetFinder>(
        rt, spy, spy_gpu, victim_gpu, calib.thresholds, fcfg);
    sf->run();

    attack::SetAligner aligner(rt, trojan, spy, victim_gpu, spy_gpu,
                               calib.thresholds);
    auto mapping = aligner.alignGroups(*tf, *sf);
    auto pairs = aligner.alignedPairs(*tf, *sf, mapping,
                                      sc.attack.covertSets);

    // Covert channel: the symbol period derives from the calibrated
    // remote-miss latency, so slow fabrics get longer symbols instead
    // of a corrupted channel.
    attack::covert::CovertChannel channel(rt, trojan, spy, victim_gpu,
                                          spy_gpu, std::move(pairs),
                                          calib.thresholds);
    Rng rng(sc.seed ^ 0x9999);
    std::vector<std::uint8_t> payload(sc.attack.messageBits);
    for (auto &b : payload)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    auto stats = channel.transmit(payload, rx);
    text += strf("  covert channel (%u sets): %6.3f Mbit/s, error "
                 "%.2f%%\n",
                 sc.attack.covertSets, stats.bandwidthMbitPerSec,
                 100.0 * stats.errorRate);

    // Fingerprinting at a sweep-friendly sample count: enough to
    // separate the six applications, cheap enough to repeat on four
    // platforms.
    attack::side::FingerprintConfig fpcfg;
    fpcfg.samplesPerApp = 6;
    fpcfg.trainPerApp = 3;
    fpcfg.valPerApp = 1;
    fpcfg.prober.monitoredSets = 64;
    fpcfg.prober.samplePeriod = 8000;
    fpcfg.prober.windowCycles = 12000;
    fpcfg.prober.duration = 800000;
    attack::side::Fingerprinter fp(rt, spy, spy_gpu, trojan,
                                   victim_gpu, *sf, calib.thresholds,
                                   fpcfg);
    auto fpres = fp.run();
    text += strf("  fingerprint accuracy over %d apps: %.1f%% test, "
                 "%.1f%% validation\n",
                 fpres.confusion.numClasses(),
                 100.0 * fpres.testAccuracy,
                 100.0 * fpres.validationAccuracy);

    const rt::Platform &plat = rt::platformByName(sc.system.platform);
    ctx.row(sc.system.platform, plat.linkGen, hops,
            stats.bandwidthMbitPerSec, 100.0 * stats.errorRate,
            100.0 * fpres.testAccuracy);
    ctx.metric(strf("covert_bw_mbit_s[platform=%s]",
                    sc.system.platform.c_str()),
               stats.bandwidthMbitPerSec);
    ctx.metric(strf("covert_err_pct[platform=%s]", sc.system.platform.c_str()),
               100.0 * stats.errorRate);
    ctx.metric(strf("fp_acc_pct[platform=%s]", sc.system.platform.c_str()),
               100.0 * fpres.testAccuracy);
    ctx.text(std::move(text));
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
crossPlatformScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "xplat";
    base.applyDefaults(d.seed, d.platform);
    base.attack.covertSets = 4;
    base.attack.messageBits = 16384;

    // Sweep every registered platform; a `--platform` override focuses
    // the sweep on that single system.
    const std::vector<std::string> names =
        d.platform.empty() ? rt::platformNames()
                           : std::vector<std::string>{d.platform};
    std::vector<exp::ScenarioMatrix::Point> points;
    for (const std::string &name : names) {
        points.emplace_back(name, [name](exp::Scenario &sc) {
            sc.setPlatform(name);
        });
    }
    return exp::ScenarioMatrix(base).axis("platform", points).expand();
}

void
renderCrossPlatform(const exp::Report &report, std::FILE *out)
{
    std::fprintf(out, "%s",
                 headerText("cross-system summary: the NUMA-L2 channel "
                            "per platform")
                     .c_str());
    std::fprintf(out, "  %-16s %-10s %4s  %12s  %9s  %8s\n", "platform",
                 "link", "hops", "BW (Mbit/s)", "error", "fp acc");
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out,
                         "  %-16s %-10s %4s  %12.3f  %8.2f%%  %7.1f%%\n",
                         row[0].c_str(), row[1].c_str(), row[2].c_str(),
                         std::strtod(row[3].c_str(), nullptr),
                         std::strtod(row[4].c_str(), nullptr),
                         std::strtod(row[5].c_str(), nullptr));
        }
    }
    std::fprintf(out,
                 "\n  the channel survives every descriptor -- NVSwitch "
                 "any-pair access, routed two-hop rings, even PCIe -- "
                 "with bandwidth set by the fabric's latency, the "
                 "generalization the paper's closing discussion "
                 "predicts\n");
}

} // namespace

void
registerExtensionMultiGpu()
{
    exp::BenchSpec spec;
    spec.name = "extension_multi_gpu";
    spec.description =
        "cross-system sweep: covert bandwidth/error and fingerprint "
        "accuracy per platform descriptor";
    spec.csvHeader = {"platform",      "link_gen",       "hops",
                      "covert_mbit_s", "covert_err_pct", "fp_acc_pct"};
    spec.scenarios = crossPlatformScenarios;
    spec.run = runCrossPlatform;
    spec.render = renderCrossPlatform;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
