/**
 * @file
 * Extension the paper leaves as future work (registry entry
 * `extension_multi_gpu`; Sec. I: "Using additional parallelism
 * (e.g., involving additional GPUs) can further improve bandwidth,
 * but we did not explore this"): run independent covert channels
 * over the L2 caches of several GPUs of the box at the same time and
 * aggregate their bandwidth.
 *
 * Channel A: trojan on GPU 0, spy on GPU 1, sets in GPU 0's L2.
 * Channel B: trojan on GPU 2, spy on GPU 3, sets in GPU 2's L2.
 * (0-1 and 2-3 are NVLink pairs inside the DGX-1's first quad; the
 * two channels share no L2 and no link.)
 */

#include <algorithm>
#include <memory>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

struct Lane
{
    rt::Process *trojan;
    rt::Process *spy;
    GpuId trojanGpu;
    GpuId spyGpu;
    std::unique_ptr<attack::EvictionSetFinder> tf;
    std::unique_ptr<attack::EvictionSetFinder> sf;
    std::unique_ptr<attack::covert::CovertChannel> channel;
};

void
runMultiGpu(const exp::Scenario &sc, exp::RunContext &ctx)
{
    rt::Runtime rt(sc.system);

    const std::pair<GpuId, GpuId> lanes_gpus[] = {{0, 1}, {2, 3}};
    std::vector<Lane> lanes;

    std::string text = headerText(
        "extension: covert channels over multiple GPU pairs");
    for (auto [tg, sg] : lanes_gpus) {
        Lane lane;
        lane.trojanGpu = tg;
        lane.spyGpu = sg;
        lane.trojan = &rt.createProcess("trojan" + std::to_string(tg));
        lane.spy = &rt.createProcess("spy" + std::to_string(sg));

        attack::TimingOracle oracle(rt, *lane.spy);
        auto calib = oracle.calibrate(sg, tg, 48, 6);

        attack::FinderConfig fcfg;
        fcfg.poolPages = 160;
        lane.tf = std::make_unique<attack::EvictionSetFinder>(
            rt, *lane.trojan, tg, tg, calib.thresholds, fcfg);
        lane.tf->run();
        lane.sf = std::make_unique<attack::EvictionSetFinder>(
            rt, *lane.spy, sg, tg, calib.thresholds, fcfg);
        lane.sf->run();

        attack::SetAligner aligner(rt, *lane.trojan, *lane.spy, tg,
                                   sg, calib.thresholds);
        auto mapping = aligner.alignGroups(*lane.tf, *lane.sf);
        auto pairs =
            aligner.alignedPairs(*lane.tf, *lane.sf, mapping, 4);
        lane.channel =
            std::make_unique<attack::covert::CovertChannel>(
                rt, *lane.trojan, *lane.spy, tg, sg, pairs,
                calib.thresholds);
        text += strf("  lane GPU%d->GPU%d ready (4 aligned sets)\n",
                     tg, sg);
        lanes.push_back(std::move(lane));
    }

    // Same payload split across the lanes; both transmissions run
    // concurrently in simulated time because transmit() only drives
    // the engine until its own kernels finish.
    Rng rng(sc.seed ^ 0x9999);
    std::vector<std::uint8_t> payload(32768);
    for (auto &b : payload)
        b = rng.chance(0.5) ? 1 : 0;

    // Single lane baseline.
    std::vector<std::uint8_t> rx;
    auto stats1 = lanes[0].channel->transmit(payload, rx);
    text += strf("\n  1 lane : %6.3f Mbit/s, error %.2f%%\n",
                 stats1.bandwidthMbitPerSec, 100.0 * stats1.errorRate);
    ctx.row(1, stats1.bandwidthMbitPerSec, 100.0 * stats1.errorRate);
    ctx.metric("bw_mbit_s[lanes=1]", stats1.bandwidthMbitPerSec);

    // Two lanes in parallel: half the payload each; wall time is the
    // slower lane's, so aggregate bandwidth ~doubles.
    std::vector<std::uint8_t> half_a(
        payload.begin(), payload.begin() + payload.size() / 2);
    std::vector<std::uint8_t> half_b(
        payload.begin() + payload.size() / 2, payload.end());
    std::vector<std::uint8_t> rx_a, rx_b;
    // Launch lane B inside lane A's after-launch hook so both run in
    // the same simulated interval.
    attack::covert::ChannelStats stats_b;
    auto stats_a = lanes[0].channel->transmit(half_a, rx_a, [&]() {
        stats_b = lanes[1].channel->transmit(half_b, rx_b);
    });
    const double agg =
        static_cast<double>(payload.size()) /
        (static_cast<double>(std::max(stats_a.elapsedCycles,
                                      stats_b.elapsedCycles)) /
         (rt.timing().clockGhz * 1e9)) /
        1e6;
    const double worst_err =
        100.0 * std::max(stats_a.errorRate, stats_b.errorRate);
    text += strf("  2 lanes: %6.3f Mbit/s aggregate, worst error "
                 "%.2f%%\n",
                 agg, worst_err);
    ctx.row(2, agg, worst_err);
    ctx.metric("bw_mbit_s[lanes=2]", agg);
    ctx.metric("worst_error_pct[lanes=2]", worst_err);

    text += "\n  additional GPU pairs multiply the channel capacity "
            "without sharing any L2 or NVLink resource -- the "
            "parallelism headroom the paper points out.\n";
    ctx.text(std::move(text));
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
multiGpuScenarios(std::uint64_t seed)
{
    exp::Scenario base;
    base.name = "multi_gpu";
    base.seed = seed;
    base.system.seed = seed;
    return {base};
}

} // namespace

void
registerExtensionMultiGpu()
{
    exp::BenchSpec spec;
    spec.name = "extension_multi_gpu";
    spec.description =
        "future-work extension: aggregate covert bandwidth over "
        "disjoint GPU pairs";
    spec.csvHeader = {"lanes", "aggregate_mbit_s", "worst_error_pct"};
    spec.scenarios = multiGpuScenarios;
    spec.run = runMultiGpu;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
