/**
 * @file
 * Cross-system attack sweep (registry entry `extension_multi_gpu`).
 *
 * The paper demonstrates its attacks on one machine -- the DGX-1 --
 * and argues in the closing discussion that the NUMA-L2 channel
 * generalizes to NVSwitch boxes and other multi-GPU systems. This
 * entry runs the full end-to-end pipeline (online calibration,
 * eviction-set discovery, alignment, covert transmission, memorygram
 * fingerprinting) once per registered platform descriptor and reports
 * covert-channel bandwidth/error-rate and fingerprint accuracy per
 * platform. The spy sits on the GPU *farthest* from the victim that
 * the platform grants peer access to, so routed multi-hop attacks
 * (quad-ring: two NVLink hops, switched fabrics: through real switch
 * nodes) are exercised alongside the paper's single-hop case.
 *
 * Three comparisons the switched-fabric and superpod layers added:
 *
 *  - On MIG-sliced descriptors (dgx2-mig2) the trojan and spy land in
 *    different L2 slices, so the prime+probe channel dies the way the
 *    Sec. VII defense predicts -- while the fabric stays shared.
 *  - The cross-pair *port-contention* channel (attack::covert::
 *    PortChannel) signals through a shared switch crossbar or link
 *    between two fully disjoint GPU pairs: no eviction sets, immune
 *    to MIG, impossible on point-to-point boxes.
 *  - The cross-*box* variant puts all four GPUs in four different
 *    chassis of the dgx-superpod, so the only shared hardware is the
 *    inter-box RDMA spine: the channel is impossible on every
 *    single-chassis platform and invisible to every intra-box
 *    defense, MIG included. Per-spine-port occupancy metrics report
 *    the defender's best remaining vantage point. The sweep
 *    quantifies where each machine's seam helps or hurts each attack.
 */

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "attack/covert/channel.hh"
#include "attack/covert/port_channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/side/fingerprint.hh"
#include "attack/timing_oracle.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"
#include "rt/platform.hh"

namespace gpubox::bench
{
namespace
{

/** Cross-pair channel payload: small enough to stay a fraction of the
 *  sweep's cost at one bit per symbol, big enough for a stable error
 *  percentage. */
constexpr std::size_t kXPairBits = 1024;

/**
 * The most distant GPU the platform lets a spy attack GPU 0 from:
 * maximal hop count among peer-reachable GPUs, lowest id on ties
 * (deterministic).
 */
GpuId
farthestSpyGpu(const rt::Runtime &rt)
{
    GpuId best = 1;
    int best_hops = -1;
    for (GpuId g = 1; g < rt.numGpus(); ++g) {
        if (!rt.peerReachable(g, 0))
            continue;
        const int hops = rt.config().topology.hopCount(g, 0);
        if (hops > best_hops) {
            best = g;
            best_hops = hops;
        }
    }
    return best;
}

void
runCrossPlatform(const exp::Scenario &sc, exp::RunContext &ctx)
{
    rt::Runtime rt(sc.system);
    const noc::Topology &topo = rt.config().topology;
    const GpuId victim_gpu = 0;
    const GpuId spy_gpu = farthestSpyGpu(rt);
    const int hops = topo.hopCount(spy_gpu, victim_gpu);

    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    // MIG-sliced descriptors boot already partitioned; co-tenants get
    // different slices, the administrative setup the descriptor
    // models. The fabric is NOT partitioned.
    const unsigned slices = sc.system.migSlices;
    if (slices > 1) {
        rt.assignPartition(trojan, 0);
        rt.assignPartition(spy, 1);
    }

    std::string text = headerText(
        "cross-system sweep: platform " + sc.system.platform);
    text += strf("  %d GPUs on '%s' topology (%d switch node%s), spy "
                 "GPU %d -> victim GPU %d over route %s (%d hop%s)\n",
                 rt.numGpus(), rt.config().topology.name().c_str(),
                 rt.config().topology.numSwitches(),
                 rt.config().topology.numSwitches() == 1 ? "" : "s",
                 spy_gpu, victim_gpu,
                 rt.config().topology
                     .routeString(spy_gpu, victim_gpu)
                     .c_str(),
                 hops, hops == 1 ? "" : "s");
    if (slices > 1)
        text += strf("  administrative MIG: %u-way L2 slices, trojan "
                     "slice 0 / spy slice 1\n",
                     slices);

    // Online calibration against this platform's timing (no baked
    // thresholds anywhere downstream).
    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(spy_gpu, victim_gpu, 48, 6);
    text += strf("  calibrated clusters: LH %.0f / LM %.0f / RH %.0f "
                 "/ RM %.0f cycles\n",
                 calib.thresholds.localHitCenter,
                 calib.thresholds.localMissCenter,
                 calib.thresholds.remoteHitCenter,
                 calib.thresholds.remoteMissCenter);

    attack::FinderConfig fcfg;
    fcfg.poolPages = 40 * static_cast<int>(pageColors(sc));
    auto tf = std::make_unique<attack::EvictionSetFinder>(
        rt, trojan, victim_gpu, victim_gpu, calib.thresholds, fcfg);
    tf->run();
    auto sf = std::make_unique<attack::EvictionSetFinder>(
        rt, spy, spy_gpu, victim_gpu, calib.thresholds, fcfg);
    sf->run();

    attack::SetAligner aligner(rt, trojan, spy, victim_gpu, spy_gpu,
                               calib.thresholds);
    auto mapping = aligner.alignGroups(*tf, *sf);
    int matched_groups = 0;
    for (int m : mapping)
        matched_groups += m >= 0 ? 1 : 0;

    // L2 prime+probe covert channel: the symbol period derives from
    // the calibrated remote-miss latency, so slow fabrics get longer
    // symbols instead of a corrupted channel. On MIG-sliced boxes the
    // trojan cannot evict the spy's lines, Algorithm 2 matches no
    // group and the channel is dead -- exactly Sec. VII.
    double covert_bw = 0.0;
    double covert_err_pct = 100.0;
    if (matched_groups > 0) {
        auto pairs = aligner.alignedPairs(*tf, *sf, mapping,
                                          sc.attack.covertSets);
        attack::covert::CovertChannel channel(rt, trojan, spy,
                                              victim_gpu, spy_gpu,
                                              std::move(pairs),
                                              calib.thresholds);
        Rng rng(sc.seed ^ 0x9999);
        std::vector<std::uint8_t> payload(sc.attack.messageBits);
        for (auto &b : payload)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        auto stats = channel.transmit(payload, rx);
        covert_bw = stats.bandwidthMbitPerSec;
        covert_err_pct = 100.0 * stats.errorRate;
        text += strf("  L2 covert channel (%u sets): %6.3f Mbit/s, "
                     "error %.2f%%\n",
                     sc.attack.covertSets, covert_bw, covert_err_pct);
        if (topo.crossIsland(spy_gpu, victim_gpu))
            text += "    (spy probes the victim L2 from another "
                    "chassis: the few-hundred-cycle hit/miss signal "
                    "drowns in spine queueing -- prime+probe needs "
                    "chassis locality)\n";
    } else {
        text += "  L2 covert channel: DEAD (no eviction-set pair "
                "collides across the MIG slices)\n";
    }

    // Cross-pair port-contention channel: trojan floods its own
    // (victim, spy) route while a second, fully disjoint GPU pair
    // listens for crossbar/port queueing on the shared switch.
    double xpair_bw = 0.0;
    double xpair_err_pct = 50.0;
    attack::covert::GpuPair tpair{victim_gpu, spy_gpu};
    attack::covert::GpuPair spair;
    if (attack::covert::PortChannel::findInterferingPair(rt, tpair,
                                                         &spair)) {
        attack::covert::PortChannel port(rt, trojan, spy, tpair, spair);
        Rng rng(sc.seed ^ 0x70c7);
        std::vector<std::uint8_t> payload(kXPairBits);
        for (auto &b : payload)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        auto stats = port.transmit(payload, rx);
        xpair_bw = stats.bandwidthMbitPerSec;
        xpair_err_pct = 100.0 * stats.errorRate;
        text += strf("  cross-pair port channel %d-%d ~> %d-%d via "
                     "%s: %6.3f Mbit/s, error %.2f%% (symbol %llu "
                     "cycles)\n",
                     tpair.src, tpair.dst, spair.src, spair.dst,
                     port.sharedResourceString().c_str(), xpair_bw,
                     xpair_err_pct,
                     static_cast<unsigned long long>(
                         port.symbolCycles()));
    } else {
        text += "  cross-pair port channel: IMPOSSIBLE (no disjoint "
                "pair shares a switch or link with the attack "
                "route)\n";
    }

    // Cross-box port channel: the same contention medium, but with
    // all four GPUs in four *different* chassis, so the only hardware
    // the two routes can share is the inter-box RDMA spine. No
    // intra-box defense -- MIG slicing, plane partitioning, per-box
    // link monitors -- can even observe this traffic, let alone stop
    // it. On single-chassis platforms the channel is structurally
    // impossible: there is no second box to signal to.
    double xbox_bw = 0.0;
    double xbox_err_pct = 50.0;
    attack::covert::GpuPair xspair;
    if (topo.numIslands() < 2) {
        text += "  cross-box port channel: IMPOSSIBLE (single "
                "chassis: every route stays inside the box; only a "
                "multi-box spine offers a cross-chassis medium)\n";
    } else if (attack::covert::PortChannel::findCrossBoxInterferingPair(
                   rt, tpair, &xspair)) {
        attack::covert::PortChannel xport(rt, trojan, spy, tpair,
                                          xspair);
        Rng rng(sc.seed ^ 0xb0c5);
        std::vector<std::uint8_t> payload(kXPairBits);
        for (auto &b : payload)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        auto stats = xport.transmit(payload, rx);
        xbox_bw = stats.bandwidthMbitPerSec;
        xbox_err_pct = 100.0 * stats.errorRate;
        text += strf("  cross-box port channel %d-%d ~> %d-%d "
                     "(chassis %d-%d ~> %d-%d) via %s: %6.3f Mbit/s, "
                     "error %.2f%% (symbol %llu cycles)\n",
                     tpair.src, tpair.dst, xspair.src, xspair.dst,
                     topo.island(tpair.src), topo.island(tpair.dst),
                     topo.island(xspair.src), topo.island(xspair.dst),
                     xport.sharedResourceString().c_str(), xbox_bw,
                     xbox_err_pct,
                     static_cast<unsigned long long>(
                         xport.symbolCycles()));
    } else {
        text += "  cross-box port channel: no four-chassis pair "
                "shares a spine with the attack route\n";
    }

    // Fingerprinting at a sweep-friendly sample count: enough to
    // separate the six applications, cheap enough to repeat per
    // platform.
    attack::side::FingerprintConfig fpcfg;
    fpcfg.samplesPerApp = 6;
    fpcfg.trainPerApp = 3;
    fpcfg.valPerApp = 1;
    fpcfg.prober.monitoredSets = 64;
    fpcfg.prober.samplePeriod = 8000;
    fpcfg.prober.windowCycles = 12000;
    fpcfg.prober.duration = 800000;
    attack::side::Fingerprinter fp(rt, spy, spy_gpu, trojan,
                                   victim_gpu, *sf, calib.thresholds,
                                   fpcfg);
    auto fpres = fp.run();
    text += strf("  fingerprint accuracy over %d apps: %.1f%% test, "
                 "%.1f%% validation\n",
                 fpres.confusion.numClasses(),
                 100.0 * fpres.testAccuracy,
                 100.0 * fpres.validationAccuracy);

    // Per-port occupancy of the fabric after the whole pipeline: how
    // much of the traffic actually crossed switch nodes, and how hot
    // the hottest directed port ran (schema v3 results sink).
    std::uint64_t switch_crossings = 0;
    for (noc::NodeId swn = topo.numGpus(); swn < topo.numNodes(); ++swn)
        switch_crossings += rt.fabric().switchCrossings(swn);
    std::uint64_t max_port = 0;
    for (const noc::Link &l : topo.links()) {
        max_port = std::max(max_port,
                            rt.fabric().portTransfers(l.first, l.second));
        max_port = std::max(max_port,
                            rt.fabric().portTransfers(l.second, l.first));
    }
    if (topo.numSwitches() > 0)
        text += strf("  fabric: %llu transfers, %llu switch "
                     "crossings, hottest port %llu transfers\n",
                     static_cast<unsigned long long>(
                         rt.fabric().totalTransfers()),
                     static_cast<unsigned long long>(switch_crossings),
                     static_cast<unsigned long long>(max_port));

    const rt::Platform &plat = rt::platformByName(sc.system.platform);
    ctx.row(sc.system.platform, plat.linkGen, hops, covert_bw,
            covert_err_pct, xpair_bw, xpair_err_pct, xbox_bw,
            xbox_err_pct, 100.0 * fpres.testAccuracy);
    const char *pn = sc.system.platform.c_str();

    // Per-spine-port occupancy: how the cross-chassis traffic spread
    // over the spine switches and which NIC->spine port ran hottest.
    // The defender's view from the spine, per switch.
    for (noc::NodeId swn = topo.numGpus(); swn < topo.numNodes();
         ++swn) {
        if (topo.switchRole(swn) != noc::SwitchRole::Spine)
            continue;
        std::uint64_t hottest = 0;
        for (noc::NodeId peer : topo.peersOf(swn)) {
            hottest = std::max(hottest,
                               rt.fabric().portTransfers(peer, swn));
            hottest = std::max(hottest,
                               rt.fabric().portTransfers(swn, peer));
        }
        const std::string sname = topo.nodeName(swn);
        text += strf("  spine occupancy: %s %llu crossings, hottest "
                     "port %llu transfers\n",
                     sname.c_str(),
                     static_cast<unsigned long long>(
                         rt.fabric().switchCrossings(swn)),
                     static_cast<unsigned long long>(hottest));
        ctx.metric(strf("spine_crossings[platform=%s,spine=%s]", pn,
                        sname.c_str()),
                   static_cast<double>(
                       rt.fabric().switchCrossings(swn)));
        ctx.metric(strf("spine_port_max_transfers[platform=%s,"
                        "spine=%s]",
                        pn, sname.c_str()),
                   static_cast<double>(hottest));
    }
    ctx.metric(strf("covert_bw_mbit_s[platform=%s]", pn), covert_bw);
    ctx.metric(strf("covert_err_pct[platform=%s]", pn), covert_err_pct);
    ctx.metric(strf("xpair_bw_mbit_s[platform=%s]", pn), xpair_bw);
    ctx.metric(strf("xpair_err_pct[platform=%s]", pn), xpair_err_pct);
    ctx.metric(strf("xbox_bw_mbit_s[platform=%s]", pn), xbox_bw);
    ctx.metric(strf("xbox_err_pct[platform=%s]", pn), xbox_err_pct);
    ctx.metric(strf("fp_acc_pct[platform=%s]", pn),
               100.0 * fpres.testAccuracy);
    ctx.metric(strf("calib_center_lh[platform=%s]", pn),
               calib.thresholds.localHitCenter);
    ctx.metric(strf("calib_center_lm[platform=%s]", pn),
               calib.thresholds.localMissCenter);
    ctx.metric(strf("calib_center_rh[platform=%s]", pn),
               calib.thresholds.remoteHitCenter);
    ctx.metric(strf("calib_center_rm[platform=%s]", pn),
               calib.thresholds.remoteMissCenter);
    ctx.metric(strf("switch_crossings[platform=%s]", pn),
               static_cast<double>(switch_crossings));
    ctx.metric(strf("max_port_transfers[platform=%s]", pn),
               static_cast<double>(max_port));
    ctx.text(std::move(text));
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
crossPlatformScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "xplat";
    base.applyDefaults(d.seed, d.platform);
    base.attack.covertSets = 4;
    base.attack.messageBits = 16384;

    // Sweep every registered platform; a `--platform` override focuses
    // the sweep on that single system.
    const std::vector<std::string> names =
        d.platform.empty() ? rt::platformNames()
                           : std::vector<std::string>{d.platform};
    std::vector<exp::ScenarioMatrix::Point> points;
    for (const std::string &name : names) {
        points.emplace_back(name, [name](exp::Scenario &sc) {
            sc.setPlatform(name);
        });
    }
    return exp::ScenarioMatrix(base).axis("platform", points).expand();
}

void
renderCrossPlatform(const exp::Report &report, std::FILE *out)
{
    std::fprintf(out,
                 "%s",
                 headerText("cross-system summary: L2 channel vs "
                            "cross-pair and cross-box port channels "
                            "per platform")
                     .c_str());
    std::fprintf(out,
                 "  %-16s %-16s %4s  %19s  %19s  %19s  %7s\n",
                 "platform", "link", "hops", "L2 covert (err)",
                 "port ch. (err)", "xbox ch. (err)", "fp acc");
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(
                out,
                "  %-16s %-16s %4s  %10.3f (%5.1f%%)  %10.3f "
                "(%5.1f%%)  %10.3f (%5.1f%%)  %6.1f%%\n",
                row[0].c_str(), row[1].c_str(), row[2].c_str(),
                std::strtod(row[3].c_str(), nullptr),
                std::strtod(row[4].c_str(), nullptr),
                std::strtod(row[5].c_str(), nullptr),
                std::strtod(row[6].c_str(), nullptr),
                std::strtod(row[7].c_str(), nullptr),
                std::strtod(row[8].c_str(), nullptr),
                std::strtod(row[9].c_str(), nullptr));
        }
    }
    std::fprintf(
        out,
        "\n  the L2 channel survives every single-chassis descriptor "
        "that shares an L2 -- it dies on the MIG-sliced box, and on "
        "the superpod its cross-box probe drowns in spine queueing -- "
        "while the cross-pair port channel needs a switched fabric: "
        "zero on point-to-point machines, alive through every shared "
        "crossbar, MIG or not; the cross-box channel goes further "
        "still: it is impossible on every single-chassis machine and "
        "survives on the superpod's shared spine, where no intra-box "
        "defense can even see it\n");
}

} // namespace

void
registerExtensionMultiGpu()
{
    exp::BenchSpec spec;
    spec.name = "extension_multi_gpu";
    spec.description =
        "cross-system sweep: L2 + cross-pair + cross-box port covert "
        "channels and fingerprint accuracy per platform descriptor";
    spec.csvHeader = {"platform",       "link_gen",
                      "hops",           "covert_mbit_s",
                      "covert_err_pct", "xpair_mbit_s",
                      "xpair_err_pct",  "xbox_mbit_s",
                      "xbox_err_pct",   "fp_acc_pct"};
    spec.scenarios = crossPlatformScenarios;
    spec.run = runCrossPlatform;
    spec.render = renderCrossPlatform;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
