/**
 * @file
 * Helpers shared by the registry bench entries: printf-style string
 * formatting for RunContext::text blocks and the standard simulated-
 * cycle metric every Runtime-backed scenario records.
 */

#ifndef GPUBOX_BENCH_SUITE_SUITE_COMMON_HH
#define GPUBOX_BENCH_SUITE_SUITE_COMMON_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/experiment_runner.hh"
#include "rt/runtime.hh"

namespace gpubox::bench
{

/** printf into a std::string (two-pass, any length). */
inline std::string
strf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

/** Section header matching the classic bench output style. */
inline std::string
headerText(const std::string &title)
{
    return "\n==== " + title + " ====\n";
}

/**
 * Record the scenario's simulated-cycle count -- the deterministic
 * "how much work" metric the results sink tracks alongside host wall
 * clock.
 */
inline void
simCyclesMetric(exp::RunContext &ctx, rt::Runtime &rt)
{
    ctx.metric("sim_cycles",
               static_cast<double>(rt.metrics().engine.now));
}

} // namespace gpubox::bench

#endif // GPUBOX_BENCH_SUITE_SUITE_COMMON_HH
