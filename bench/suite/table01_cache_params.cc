/**
 * @file
 * Paper Table I: "L2 cache architecture" (registry entry
 * `table01_cache_params`) -- every parameter recovered from user
 * level: line size by the co-residence test, capacity by the
 * working-set sweep, associativity by the eviction point of a
 * discovered conflict group, and the replacement policy by the
 * determinism of that eviction point.
 */

#include "attack/reverse_engineer.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runTable01(const exp::Scenario &sc, exp::RunContext &ctx)
{
    rt::Runtime rt(sc.system);
    rt::Process &attacker = rt.createProcess("attacker");

    // Calibrate thresholds (local attack on GPU 0; peer 1 for the
    // remote clusters).
    attack::TimingOracle oracle(rt, attacker);
    auto calib = oracle.calibrate(0, 1, 48, 6);

    // Find conflict groups (Algorithm 1 with grouping optimization).
    attack::FinderConfig fcfg;
    fcfg.poolPages = scaledPoolPages(sc, 140);
    attack::EvictionSetFinder finder(rt, attacker, 0, 0,
                                     calib.thresholds, fcfg);
    finder.run();

    attack::ReverseEngineer re(rt, attacker, 0, calib.thresholds);

    std::string text = headerText(
        "capacity sweep (working set vs 2nd-pass miss rate)");
    const std::uint64_t cap_lines = sc.system.device.l2.sizeBytes /
                                    sc.system.device.l2.lineBytes;
    std::vector<std::uint64_t> counts;
    for (double f : {0.5, 0.75, 0.875, 1.0, 1.125, 1.25, 1.5, 2.0})
        counts.push_back(static_cast<std::uint64_t>(f * cap_lines));
    auto pts = re.capacitySweep(counts);
    for (const auto &p : pts) {
        text += strf("  %8llu lines (%6.0f KiB)  miss rate %5.1f%%\n",
                     static_cast<unsigned long long>(p.residentLines),
                     p.residentLines * 128.0 / 1024.0,
                     100.0 * p.secondPassMissRate);
        ctx.row(p.residentLines, p.residentLines * 128 / 1024,
                p.secondPassMissRate);
    }

    text += headerText(
        "eviction points over 12 trials (policy inference)");
    auto points = re.evictionPoints(finder, 12);
    text += "  ";
    for (unsigned p : points)
        text += strf("%u ", p);
    text += strf("\n  => policy: %s\n",
                 attack::ReverseEngineer::classifyPolicy(
                     points, finder.associativity())
                     .c_str());

    text += headerText("TABLE I: L2 cache architecture (recovered)");
    auto report = re.run(finder);
    text += report.toTable();
    text += "\npaper reference: 4 MB, 2048 sets, 128B lines, "
            "16 lines/set, LRU\n";
    text += strf("attack cost: %llu kernel launches, %llu timed "
                 "probes\n",
                 static_cast<unsigned long long>(
                     finder.kernelLaunches()),
                 static_cast<unsigned long long>(finder.timedProbes()));
    ctx.text(std::move(text));

    ctx.metric("kernel_launches",
               static_cast<double>(finder.kernelLaunches()));
    ctx.metric("timed_probes",
               static_cast<double>(finder.timedProbes()));
    ctx.metric("recovered_associativity", finder.associativity());
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
table01Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "table01";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerTable01CacheParams()
{
    exp::BenchSpec spec;
    spec.name = "table01_cache_params";
    spec.description =
        "Table I: user-level recovery of the L2 architecture";
    spec.csvHeader = {"resident_lines", "resident_kb",
                      "second_pass_miss_rate"};
    spec.scenarios = table01Scenarios;
    spec.run = runTable01;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
