/**
 * @file
 * Paper Fig. 13 + Table II (registry entry `fig13_table02_mlp_misses`):
 * per-set cache misses observed while the MLP victim trains with
 * 64/128/256/512 hidden neurons. The absolute counts are smaller than
 * the paper's full-length runs, but the monotone separation -- the
 * signal the attack classifies -- is preserved. One isolated scenario
 * per width; Table II and the width inference are rendered from the
 * collected rows after the sweep.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "attack/side/model_extract.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"
#include "util/histogram.hh"

namespace gpubox::bench
{
namespace
{

attack::side::ExtractionConfig
extractionConfig()
{
    attack::side::ExtractionConfig cfg;
    cfg.prober.monitoredSets = 256; // scaled from the paper's 1024
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1500000;
    cfg.mlpBase.batchesPerEpoch = 3;
    return cfg;
}

void
runFig13(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const unsigned neurons = static_cast<unsigned>(
        std::strtoul(sc.paramOr("neurons").c_str(), nullptr, 0));
    auto setup = AttackSetup::create(sc, false, true);

    attack::side::ModelExtractor extractor(
        *setup.rt, *setup.remote, 1, *setup.local, 0,
        *setup.remoteFinder, setup.calib.thresholds,
        extractionConfig());

    auto run = extractor.observe(neurons);

    std::string text =
        headerText("Fig. 13: misses per monitored set, " +
                   std::to_string(neurons) + " neurons");
    double max_m = 1;
    for (std::size_t s = 0; s < run.gram.numSets(); ++s)
        max_m = std::max(max_m,
                         static_cast<double>(run.gram.setMisses(s)));
    Histogram h(0, max_m + 1, 16);
    for (std::size_t s = 0; s < run.gram.numSets(); ++s) {
        h.add(static_cast<double>(run.gram.setMisses(s)));
        ctx.row(neurons, s, run.gram.setMisses(s));
    }
    text += h.render(48);
    ctx.text(std::move(text));

    ctx.metric(strf("avg_misses[n=%u]", neurons),
               run.avgMissesPerSet);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig13Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig13";
    base.applyDefaults(d.seed, d.platform);

    std::vector<exp::ScenarioMatrix::Point> points;
    for (unsigned n : {64u, 128u, 256u, 512u})
        points.emplace_back(strf("%u", n), [](exp::Scenario &) {});
    return exp::ScenarioMatrix(base).axis("neurons", points).expand();
}

void
renderFig13(const exp::Report &report, std::FILE *out)
{
    // Recover (neurons -> average misses per monitored set) from the
    // recorded rows; rows are (neurons, set, total_misses).
    std::map<unsigned, std::pair<double, std::size_t>> acc;
    for (const auto &row : report.allRows()) {
        const unsigned n = static_cast<unsigned>(
            std::strtoul(row[0].c_str(), nullptr, 0));
        acc[n].first += std::strtod(row[2].c_str(), nullptr);
        acc[n].second += 1;
    }
    std::vector<std::pair<unsigned, double>> refs;
    for (const auto &[n, sum_count] : acc)
        refs.emplace_back(n, sum_count.first /
                                 static_cast<double>(
                                     sum_count.second));

    std::fprintf(out, "%s",
                 headerText("TABLE II: average misses over all "
                            "monitored sets")
                     .c_str());
    std::fprintf(out, "  %-20s %s\n", "Number of Neurons",
                 "Average Number of Misses");
    for (const auto &[n, avg] : refs)
        std::fprintf(out, "  %-20u %.1f\n", n, avg);
    std::fprintf(out,
                 "\n  paper (full-length run, 1024 sets): 64->5653, "
                 "128->6846, 256->8744, 512->10197\n");

    // The attack's inference step: each run's average classifies back
    // to its own width via the nearest reference.
    std::fprintf(out, "%s",
                 headerText("width inference (nearest reference)")
                     .c_str());
    for (const auto &[n, avg] : refs) {
        unsigned guess = 0;
        double best = -1;
        for (const auto &[rn, ravg] : refs) {
            const double d = std::abs(avg - ravg);
            if (best < 0 || d < best) {
                best = d;
                guess = rn;
            }
        }
        std::fprintf(out,
                     "  observed avg %8.1f -> inferred %3u neurons "
                     "(true: %3u) %s\n",
                     avg, guess, n, guess == n ? "ok" : "WRONG");
    }
}

} // namespace

void
registerFig13Table02MlpMisses()
{
    exp::BenchSpec spec;
    spec.name = "fig13_table02_mlp_misses";
    spec.description =
        "Fig. 13 / Table II: MLP per-set misses vs hidden width";
    spec.csvHeader = {"neurons", "set", "total_misses"};
    spec.scenarios = fig13Scenarios;
    spec.run = runFig13;
    spec.render = renderFig13;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
