/**
 * @file
 * Paper Fig. 14: "Memorygram of the MLP application" (registry entry
 * `fig14_mlp_memorygram`) with 128 vs 512 hidden neurons -- the
 * 512-neuron run paints a visibly denser, longer memorygram because
 * the weight matrices streamed every minibatch are four times larger.
 */

#include <cstdlib>

#include "attack/side/model_extract.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig14(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const unsigned neurons = static_cast<unsigned>(
        std::strtoul(sc.paramOr("neurons").c_str(), nullptr, 0));
    auto setup = AttackSetup::create(sc, false, true);

    attack::side::ExtractionConfig cfg;
    cfg.prober.monitoredSets = 256;
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1500000;
    cfg.mlpBase.batchesPerEpoch = 3;

    attack::side::ModelExtractor extractor(
        *setup.rt, *setup.remote, 1, *setup.local, 0,
        *setup.remoteFinder, setup.calib.thresholds, cfg);

    HeatmapOptions opt;
    opt.maxRows = 24;
    opt.maxCols = 96;

    auto run = extractor.observe(neurons);
    std::string text = headerText("Fig. 14: MLP memorygram, " +
                                  std::to_string(neurons) + " neurons");
    text += run.gram.trimmed().render(opt);
    text += strf("  total misses %llu, avg %.1f per set\n",
                 static_cast<unsigned long long>(run.totalMisses),
                 run.avgMissesPerSet);
    ctx.text(std::move(text));

    for (std::size_t s = 0; s < run.gram.numSets(); ++s)
        for (std::size_t w = 0; w < run.gram.numWindows(); ++w)
            if (run.gram.missAt(s, w) > 0)
                ctx.row(neurons, s, w, run.gram.missAt(s, w));

    ctx.metric(strf("total_misses[n=%u]", neurons),
               static_cast<double>(run.totalMisses));
    ctx.metric(strf("avg_misses[n=%u]", neurons), run.avgMissesPerSet);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig14Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig14";
    base.applyDefaults(d.seed, d.platform);

    std::vector<exp::ScenarioMatrix::Point> points;
    for (unsigned n : {128u, 512u})
        points.emplace_back(strf("%u", n), [](exp::Scenario &) {});
    return exp::ScenarioMatrix(base).axis("neurons", points).expand();
}

} // namespace

void
registerFig14MlpMemorygram()
{
    exp::BenchSpec spec;
    spec.name = "fig14_mlp_memorygram";
    spec.description =
        "Fig. 14: MLP memorygram density at 128 vs 512 neurons";
    spec.csvHeader = {"neurons", "set", "window", "misses"};
    spec.scenarios = fig14Scenarios;
    spec.run = runFig14;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
