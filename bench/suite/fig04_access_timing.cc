/**
 * @file
 * Paper Fig. 4: "Local and remote GPU access time" (registry entry
 * `fig04_access_timing`).
 *
 * The spy measures, entirely from user level, the access latency of
 * cold and warm ldcg loads to a local buffer and to a buffer on an
 * NVLink peer. Four clusters emerge -- local L2 hit, local miss
 * (HBM), remote L2 hit, remote miss -- and the k-means boundaries
 * between them become the attack's hit/miss thresholds.
 */

#include "attack/timing_oracle.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"
#include "util/histogram.hh"

namespace gpubox::bench
{
namespace
{

void
runFig04(const exp::Scenario &sc, exp::RunContext &ctx)
{
    rt::Runtime rt(sc.system);
    rt::Process &spy = rt.createProcess("spy");

    attack::TimingOracle oracle(rt, spy);
    // 48 accesses per loop as in the paper, more rounds for a smooth
    // histogram.
    auto calib = oracle.calibrate(/*local=*/0, /*remote=*/1, 48, 24);

    std::string text =
        headerText("Fig. 4: local and remote GPU access time (cycles)");
    Histogram hist(200, 1100, 45);
    for (double v : calib.allSamples())
        hist.add(v);
    text += hist.render(64);

    text += headerText("k-means clusters (4)");
    const char *labels[4] = {"local L2 hit", "local miss (HBM)",
                             "remote L2 hit", "remote miss"};
    for (int i = 0; i < 4; ++i) {
        text += strf("  %-18s center %7.1f cycles   (%zu samples)\n",
                     labels[i], calib.clusters.centers[i],
                     calib.clusters.sizes[i]);
    }
    text += strf("  thresholds: local hit/miss @ %.1f, "
                 "remote hit/miss @ %.1f\n",
                 calib.thresholds.localBoundary,
                 calib.thresholds.remoteBoundary);
    text += "  paper reference: ~270 / ~450 / ~630 / ~950 cycles\n";
    ctx.text(std::move(text));

    auto dump = [&](const char *name, const std::vector<double> &v) {
        for (double t : v)
            ctx.row(name, t);
    };
    dump("local_hit", calib.localHitSamples);
    dump("local_miss", calib.localMissSamples);
    dump("remote_hit", calib.remoteHitSamples);
    dump("remote_miss", calib.remoteMissSamples);

    ctx.metric("local_boundary_cycles", calib.thresholds.localBoundary);
    ctx.metric("remote_boundary_cycles",
               calib.thresholds.remoteBoundary);
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
fig04Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig04";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerFig04AccessTiming()
{
    exp::BenchSpec spec;
    spec.name = "fig04_access_timing";
    spec.description =
        "Fig. 4: local/remote access-time clusters and thresholds";
    spec.csvHeader = {"class", "cycles"};
    spec.scenarios = fig04Scenarios;
    spec.run = runFig04;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
