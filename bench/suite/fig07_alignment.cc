/**
 * @file
 * Paper Fig. 7 / Algorithm 2: "Eviction set alignment among multiple
 * processes" (registry entry `fig07_alignment`).
 *
 * The trojan hammers one of its eviction sets while the spy times
 * passes over each of its own candidate sets: the colliding candidate
 * shows the remote-miss average (~950 cy); non-colliding candidates
 * stay at the remote-hit level (~630 cy). The page-window structure
 * reduces the search to one run per (trojan group, spy group) pair.
 */

#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig07(const exp::Scenario &sc, exp::RunContext &ctx)
{
    auto setup = AttackSetup::create(sc);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote,
                               0, 1, setup.calib.thresholds);

    std::string text = headerText(
        "Algorithm 2 runs: trojan group 0 vs all spy groups");
    const auto tset = setup.localFinder->evictionSet(0, 0);
    for (std::size_t sg = 0; sg < setup.remoteFinder->numGroups();
         ++sg) {
        const auto sset = setup.remoteFinder->evictionSet(sg, 0);
        auto run = aligner.testPair(tset, sset);
        text += strf("  TE_A(group 0) vs SE(group %zu): avg %6.1f "
                     "cycles  -> %s\n",
                     sg, run.avgProbeCycles,
                     run.matched ? "MATCHED (contention)"
                                 : "no collision");
        ctx.row(0, sg, run.avgProbeCycles, run.matched ? 1 : 0);
    }

    text += headerText("full group alignment");
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    int matched = 0;
    int wrong = 0;
    for (std::size_t tg = 0; tg < mapping.size(); ++tg) {
        const bool truth =
            mapping[tg] >= 0 &&
            setup.rt->l2SetOf(*setup.local,
                              setup.localFinder->evictionSet(tg, 0)
                                  .lines[0]) ==
                setup.rt->l2SetOf(
                    *setup.remote,
                    setup.remoteFinder->evictionSet(mapping[tg], 0)
                        .lines[0]);
        matched += mapping[tg] >= 0 ? 1 : 0;
        wrong += truth ? 0 : 1;
        text += strf("  trojan group %zu <-> spy group %d   "
                     "(ground truth: %s)\n",
                     tg, mapping[tg], truth ? "correct" : "WRONG");
    }
    text += strf("  Algorithm-2 runs executed: %llu "
                 "(vs %zu x %zu naive set pairs)\n",
                 static_cast<unsigned long long>(
                     aligner.runsExecuted()),
                 setup.localFinder->coveringSets().size(),
                 setup.remoteFinder->coveringSets().size());

    // A matched group pair extends to every in-page offset: verify on
    // a few derived channel pairs.
    text += headerText("derived channel set pairs (offset extension)");
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 6);
    int misaligned = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const SetIndex t =
            setup.rt->l2SetOf(*setup.local, pairs[i].first.lines[0]);
        const SetIndex s =
            setup.rt->l2SetOf(*setup.remote, pairs[i].second.lines[0]);
        misaligned += t == s ? 0 : 1;
        text += strf("  pair %zu: trojan set %4u, spy set %4u  %s\n",
                     i, t, s, t == s ? "aligned" : "MISALIGNED");
    }
    ctx.text(std::move(text));

    ctx.metric("algorithm2_runs",
               static_cast<double>(aligner.runsExecuted()));
    ctx.metric("matched_groups", matched);
    ctx.metric("wrong_group_matches", wrong);
    ctx.metric("misaligned_channel_pairs", misaligned);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig07Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig07";
    base.applyDefaults(d.seed, d.platform);
    return {base};
}

} // namespace

void
registerFig07Alignment()
{
    exp::BenchSpec spec;
    spec.name = "fig07_alignment";
    spec.description =
        "Fig. 7 / Alg. 2: cross-process eviction set alignment";
    spec.csvHeader = {"trojan_group", "spy_group", "avg_probe_cycles",
                      "matched"};
    spec.scenarios = fig07Scenarios;
    spec.run = runFig07;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
