/**
 * @file
 * Paper Sec. VII detection discussion (registry entry
 * `ablation_detection`): a driver-side NVLink traffic monitor
 * distinguishes the attacks' sustained fine-grained remote traffic
 * from benign coarse-grained transfers.
 *
 * Three isolated scenarios on the GPU0-GPU1 link: benign (one bulk
 * remote pass, then local compute), the covert channel (4 sets), and
 * the side-channel memorygram prober (128 sets).
 */

#include <cstdlib>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "attack/side/prober.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "defense/link_monitor.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runDetection(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const std::string mode = sc.paramOr("mode");
    defense::MonitorConfig mon_cfg;

    double peak_rate = 0.0;
    bool flagged = false;
    std::string label;

    if (mode == "benign") {
        label = "benign bulk transfer";
        // Coarse transfer: fetch the working set once, then work on
        // it locally for a long time. No attack setup needed.
        rt::SystemConfig cfg = sc.system;
        rt::Runtime rt(cfg);
        defense::LinkMonitor monitor(rt, 0, 1, mon_cfg);
        monitor.start();
        rt::Process &benign = rt.createProcess("benign");
        rt.enablePeerAccess(benign, 1, 0).orFatal();
        const std::uint32_t line = rt.config().device.l2.lineBytes;
        const VAddr buf = rt.deviceMalloc(benign, 0, 512 * line);
        auto kernel = [&, buf, line](rt::BlockCtx &bctx) -> sim::Task {
            for (int i = 0; i < 512; ++i)
                co_await bctx.ldcg64(buf + i * line);
            co_await bctx.compute(400000);
        };
        gpu::KernelConfig kcfg;
        kcfg.name = "benign-remote";
        rt::Stream &stream = rt.stream(benign, 1);
        stream.launch(kcfg, kernel);
        rt.sync(stream);
        monitor.stop();
        peak_rate = monitor.peakRate();
        flagged = monitor.attackFlagged();
        simCyclesMetric(ctx, rt);
    } else if (mode == "covert") {
        label = "covert channel (4 sets)";
        auto setup = AttackSetup::create(sc);
        attack::SetAligner aligner(*setup.rt, *setup.local,
                                   *setup.remote, 0, 1,
                                   setup.calib.thresholds);
        auto mapping = aligner.alignGroups(*setup.localFinder,
                                           *setup.remoteFinder);
        defense::LinkMonitor monitor(*setup.rt, 0, 1, mon_cfg);
        monitor.start();
        auto pairs = aligner.alignedPairs(
            *setup.localFinder, *setup.remoteFinder, mapping, 4);
        attack::covert::CovertChannel channel(
            *setup.rt, *setup.local, *setup.remote, 0, 1, pairs,
            setup.calib.thresholds);
        Rng rng(sc.seed);
        std::vector<std::uint8_t> bits(4096);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        channel.transmit(bits, rx);
        monitor.stop();
        peak_rate = monitor.peakRate();
        flagged = monitor.attackFlagged();
        simCyclesMetric(ctx, *setup.rt);
    } else { // prober
        label = "memorygram prober";
        auto setup = AttackSetup::create(sc, false, true);
        defense::LinkMonitor monitor(*setup.rt, 0, 1, mon_cfg);
        monitor.start();
        attack::side::ProberConfig pcfg;
        pcfg.monitoredSets = 128;
        pcfg.samplePeriod = 8000;
        pcfg.windowCycles = 12000;
        pcfg.duration = 800000;
        attack::side::RemoteProber prober(*setup.rt, *setup.remote, 1,
                                          *setup.remoteFinder,
                                          setup.calib.thresholds,
                                          pcfg);
        attack::side::Memorygram gram(pcfg.monitoredSets,
                                      prober.numWindows());
        rt::Stream &spy_stream =
            setup.rt->createStream(*setup.remote, 1, "det-prober");
        prober.prime(spy_stream);
        prober.monitor(spy_stream, gram,
                       setup.rt->engine().now() + 10000);
        setup.rt->sync(spy_stream);
        monitor.stop();
        peak_rate = monitor.peakRate();
        flagged = monitor.attackFlagged();
        simCyclesMetric(ctx, *setup.rt);
    }

    std::string text =
        strf("  %-24s peak %8.1f legs/kcycle  -> %s\n", label.c_str(),
             peak_rate,
             flagged ? "FLAGGED as attack" : "not flagged");
    ctx.text(std::move(text));
    ctx.row(label, peak_rate, flagged ? 1 : 0);
    ctx.metric("peak_rate[" + mode + "]", peak_rate);
    ctx.metric("flagged[" + mode + "]", flagged ? 1.0 : 0.0);
}

std::vector<exp::Scenario>
detectionScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "detection";
    base.applyDefaults(d.seed, d.platform);
    const auto keep = [](exp::Scenario &) {};
    return exp::ScenarioMatrix(base)
        .axis("mode",
              {{"benign", keep}, {"covert", keep}, {"prober", keep}})
        .expand();
}

void
renderDetection(const exp::Report &, std::FILE *out)
{
    std::fprintf(out,
                 "\n  the attacks need sustained fine-grained NVLink "
                 "traffic and stand out against coarse benign "
                 "transfers -- the paper's detection premise.\n");
}

} // namespace

void
registerAblationDetection()
{
    exp::BenchSpec spec;
    spec.name = "ablation_detection";
    spec.description =
        "Sec. VII: NVLink monitor flags attacks, not benign bulk "
        "transfers";
    spec.csvHeader = {"scenario", "peak_rate_per_kcycle", "flagged"};
    spec.scenarios = detectionScenarios;
    spec.run = runDetection;
    spec.render = renderDetection;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
