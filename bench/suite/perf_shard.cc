/**
 * @file
 * Sharded-engine scaling sweep (registry entry `perf_shard`).
 *
 * The workload the island-sharded engine exists for: K independent
 * per-island tenants on a multi-chassis platform, each running
 * island-local kernels and an intra-island DMA on its own process.
 * Tenants never touch each other's islands, so under `--shards N` the
 * runtime keeps them in disjoint schedule groups and the conduction
 * loop advances them on parallel workers -- while every row below is
 * a simulated quantity (per-tenant latency checksums, merged engine
 * counters) and stays byte-identical at any shard count.
 *
 * The phase structure is deliberately bulk-synchronous -- enqueue all
 * tenants' work, then sync the streams in tenant order -- which is
 * the pattern the sharded engine makes exact at any shard count (see
 * sim/sharded_engine.hh's window-granularity note).
 */

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"
#include "noc/topology.hh"
#include "rt/runtime.hh"

namespace gpubox::bench
{
namespace
{

/** Tenants are capped so the gigapod sweep stays bench-sized; the cap
 *  still leaves every shard count up to 16 with distinct islands. */
constexpr int kMaxTenants = 16;

void
runShardScaling(const exp::Scenario &sc, exp::RunContext &ctx)
{
    rt::Runtime rt(sc.system);
    const noc::Topology &topo = rt.config().topology;
    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int lines_n = 512;
    const int launches = static_cast<int>(
        std::strtoul(sc.paramOr("launches").c_str(), nullptr, 0));
    const int tenants = std::min(topo.numIslands(), kMaxTenants);

    // First two GPUs of each occupied island: the tenant's compute
    // GPU and its intra-island DMA peer.
    std::vector<GpuId> gpu_a(tenants, -1), gpu_b(tenants, -1);
    for (GpuId g = 0; g < rt.numGpus(); ++g) {
        const int isl = topo.island(g);
        if (isl < 0 || isl >= tenants)
            continue;
        if (gpu_a[isl] < 0)
            gpu_a[isl] = g;
        else if (gpu_b[isl] < 0)
            gpu_b[isl] = g;
    }

    std::vector<rt::Process *> procs(tenants);
    std::vector<rt::Stream *> streams(tenants);
    std::vector<std::uint64_t> sums(tenants, 0);
    std::uint64_t items = 0;

    // Enqueue phase: every tenant's kernels and DMA go in before any
    // sync. Each tenant touches only its own island's GPUs, memory
    // and stream, so the schedule groups stay disjoint.
    for (int t = 0; t < tenants; ++t) {
        const GpuId a = gpu_a[t];
        const GpuId b = gpu_b[t] >= 0 ? gpu_b[t] : a;
        procs[t] = &rt.createProcess(strf("tenant%d", t));
        rt::Process &p = *procs[t];
        const VAddr buf = rt.deviceMalloc(
            p, a, static_cast<std::uint64_t>(lines_n) * line);
        const VAddr peer = rt.deviceMalloc(
            p, b, static_cast<std::uint64_t>(lines_n) * line);
        streams[t] = &rt.stream(p, a);
        rt::Stream &stream = *streams[t];

        // Intra-island DMA: exercises the coupling hooks without
        // leaving the island (a and b share a chassis).
        stream.memcpyAsync(buf, peer,
                           static_cast<std::uint64_t>(lines_n) * line);

        for (int l = 0; l < launches; ++l) {
            // Tenant-keyed stride so tenants do distinct (but
            // island-local) access patterns.
            const int stride = 1 + (t % 7);
            auto kernel = [=, &sum = sums[static_cast<std::size_t>(t)]](
                              rt::BlockCtx &bctx) -> sim::Task {
                for (int i = 0; i < lines_n; ++i) {
                    const Cycles t0 = bctx.actor().now();
                    co_await bctx.ldcg64(
                        buf + ((i * stride) % lines_n) * line);
                    sum += bctx.actor().now() - t0;
                }
            };
            gpu::KernelConfig kcfg;
            stream.launch(kcfg, kernel);
        }
        items += static_cast<std::uint64_t>(lines_n) * launches;
    }

    // Sync phase, in tenant order (deterministic drain order).
    for (int t = 0; t < tenants; ++t)
        rt.sync(*streams[t]);

    std::uint64_t checksum = 0;
    for (int t = 0; t < tenants; ++t)
        checksum += sums[static_cast<std::size_t>(t)] *
                    static_cast<std::uint64_t>(t + 1);

    const auto stats = rt.metrics().engine;
    ctx.row(sc.system.platform, tenants, launches, sc.seed, items,
            checksum, stats.steps, stats.now);
    ctx.metric("items", static_cast<double>(items));
    ctx.metric("engine_steps", static_cast<double>(stats.steps));
    simCyclesMetric(ctx, rt);
}

std::vector<exp::Scenario>
shardScenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "shard";
    base.applyDefaults(d.seed, d.platform);
    const auto keep = [](exp::Scenario &) {};

    // Multi-island platforms only (the bench is about island
    // parallelism); `--platform` focuses the sweep as usual.
    std::vector<exp::ScenarioMatrix::Point> points;
    if (d.platform.empty()) {
        for (const char *name : {"dgx-superpod", "dgx-gigapod"}) {
            points.emplace_back(name, [name](exp::Scenario &sc) {
                sc.setPlatform(name);
            });
        }
    } else {
        const std::string name = d.platform;
        points.emplace_back(name, [name](exp::Scenario &sc) {
            sc.setPlatform(name);
        });
    }
    return exp::ScenarioMatrix(base)
        .axis("platform", points)
        .axis("launches", {{"4", keep}, {"16", keep}})
        .expand();
}

void
renderShard(const exp::Report &report, std::FILE *out)
{
    std::fprintf(out, "\n  %-16s %8s %9s %12s %18s %12s %14s\n",
                 "platform", "tenants", "launches", "items",
                 "checksum", "steps", "sim_cycles");
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out,
                         "  %-16s %8s %9s %12s %18s %12s %14s\n",
                         row[0].c_str(), row[1].c_str(), row[2].c_str(),
                         row[4].c_str(), row[5].c_str(), row[6].c_str(),
                         row[7].c_str());
        }
    }
}

} // namespace

void
registerPerfShard()
{
    exp::BenchSpec spec;
    spec.name = "perf_shard";
    spec.description =
        "island-sharded engine scaling: independent per-island "
        "tenants on the multi-chassis platforms";
    spec.csvHeader = {"platform", "tenants",  "launches",
                      "seed",     "items",    "checksum",
                      "engine_steps", "sim_cycles"};
    spec.scenarios = shardScenarios;
    spec.run = runShardScaling;
    spec.render = renderShard;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
