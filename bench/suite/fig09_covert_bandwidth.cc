/**
 * @file
 * Paper Fig. 9: "Bandwidth and Error rate in covert channel"
 * (registry entry `fig09_covert_bandwidth`) -- bandwidth and error
 * rate as the number of parallel cache sets grows.
 *
 * One isolated scenario per set count (own Runtime and attack setup),
 * fanned out by the ExperimentRunner. The paper reports a best
 * bandwidth of 3.95 MB/s at 4 sets with 1.3% error over 1000 runs;
 * the reproduced claim is the shape -- linear bandwidth growth,
 * superlinear error growth.
 */

#include <cstdlib>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "bench/suite/benches.hh"
#include "bench/suite/suite_common.hh"
#include "exp/registry.hh"

namespace gpubox::bench
{
namespace
{

void
runFig09(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const unsigned k = sc.attack.covertSets;
    auto setup = AttackSetup::create(sc);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote,
                               0, 1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, k);
    attack::covert::CovertChannel channel(
        *setup.rt, *setup.local, *setup.remote, 0, 1, pairs,
        setup.calib.thresholds);

    const std::size_t bits_per_run = 32768; // 32 kbit per measurement
    const int runs = 4;

    double bw_mbit = 0, bw_mbyte = 0, err = 0;
    Rng rng(sc.seed ^ (k * 7919));
    for (int r = 0; r < runs; ++r) {
        std::vector<std::uint8_t> bits(bits_per_run);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        auto stats = channel.transmit(bits, rx);
        bw_mbit += stats.bandwidthMbitPerSec;
        bw_mbyte += stats.bandwidthMBytePerSec;
        err += stats.errorRate;
    }
    bw_mbit /= runs;
    bw_mbyte /= runs;
    err /= runs;

    ctx.row(k, bw_mbit, bw_mbyte, 100.0 * err);
    ctx.metric(strf("bw_mbit_s[sets=%u]", k), bw_mbit);
    ctx.metric(strf("error_pct[sets=%u]", k), 100.0 * err);
    simCyclesMetric(ctx, *setup.rt);
}

std::vector<exp::Scenario>
fig09Scenarios(const exp::ScenarioDefaults &d)
{
    exp::Scenario base;
    base.name = "fig09";
    base.applyDefaults(d.seed, d.platform);

    std::vector<exp::ScenarioMatrix::Point> points;
    for (unsigned k : {1u, 2u, 3u, 4u, 6u, 8u}) {
        points.emplace_back(strf("%u", k), [k](exp::Scenario &sc) {
            sc.attack.covertSets = k;
        });
    }
    return exp::ScenarioMatrix(base).axis("sets", points).expand();
}

void
renderFig09(const exp::Report &report, std::FILE *out)
{
    std::fprintf(out, "%s", headerText("Fig. 9: bandwidth and error "
                                       "rate vs parallel sets")
                                .c_str());
    std::fprintf(out, "  %4s  %14s  %14s  %10s\n", "sets",
                 "BW (Mbit/s)", "BW (MB/s)", "error");
    for (const auto &res : report.results) {
        for (const auto &row : res.rows) {
            std::fprintf(out, "  %4s  %14.3f  %14.3f  %8.2f%%\n",
                         row[0].c_str(),
                         std::strtod(row[1].c_str(), nullptr),
                         std::strtod(row[2].c_str(), nullptr),
                         std::strtod(row[3].c_str(), nullptr));
        }
    }
    std::fprintf(out,
                 "\n  paper: peak 3.95 'MB/s' at 4 sets, 1.3%% error; "
                 "error grows with more sets\n");
}

} // namespace

void
registerFig09CovertBandwidth()
{
    exp::BenchSpec spec;
    spec.name = "fig09_covert_bandwidth";
    spec.description =
        "Fig. 9: covert-channel bandwidth/error vs parallel sets";
    spec.csvHeader = {"sets", "bandwidth_mbit_s", "bandwidth_mbyte_s",
                      "error_rate_pct"};
    spec.scenarios = fig09Scenarios;
    spec.run = runFig09;
    spec.render = renderFig09;
    exp::BenchRegistry::instance().add(std::move(spec));
}

} // namespace gpubox::bench
