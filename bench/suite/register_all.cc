#include "bench/suite/benches.hh"

namespace gpubox::bench
{

void
registerAllBenches()
{
    static bool done = false;
    if (done)
        return;
    done = true;

    registerPerfSim();
    registerPerfShard();
    registerTable01CacheParams();
    registerFig04AccessTiming();
    registerFig05EvsetValidation();
    registerFig06Aliasing();
    registerFig07Alignment();
    registerFig09CovertBandwidth();
    registerFig10CovertMessage();
    registerFig11MemorygramApps();
    registerFig12FingerprintConfusion();
    registerFig13Table02MlpMisses();
    registerFig14MlpMemorygram();
    registerFig15EpochInference();
    registerAblationReplacement();
    registerAblationNoiseMitigation();
    registerAblationMigDefense();
    registerAblationDetection();
    registerAblationDynamicDefense();
    registerExtensionMultiGpu();
}

} // namespace gpubox::bench
