/**
 * @file
 * Reproduces paper Fig. 5: "Validating the eviction set determination".
 *
 * For both the local and the remote GPU, sweep the number of conflict
 * set lines accessed between two probes of a target line: the probe
 * time steps from the hit level to the miss level at exactly the
 * associativity (16), and a cyclic access trace over 17 lines shows
 * the deterministic LRU thrash that rules out randomized replacement.
 */

#include <algorithm>
#include <cstdio>

#include "attack/evset_validator.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    const unsigned assoc = setup.localFinder->associativity();
    // 48 as in the figure, capped by the conflict lines available.
    const unsigned max_lines = std::min<unsigned>(
        assoc * 3,
        static_cast<unsigned>(
            std::min(setup.localFinder->groups()[0].size(),
                     setup.remoteFinder->groups()[0].size()) -
            1));

    CsvWriter csv("fig05_evset_validation.csv");
    csv.row("mode", "lines_accessed", "probe_cycles", "missed");

    auto run_sweep = [&](const char *mode,
                         attack::EvictionSetFinder &finder, GpuId exec,
                         rt::Process &proc) {
        attack::EvictionSetValidator validator(
            *setup.rt, proc, exec, 0, setup.calib.thresholds);
        auto set = finder.evictionSet(0, 1, max_lines + 1);
        auto series = validator.sweep(set, max_lines);
        bench::header(std::string("Fig. 5 sweep, ") + mode +
                      " GPU (probe cycles vs lines accessed)");
        for (std::size_t i = 0; i < series.linesAccessed.size(); ++i) {
            std::printf("  n=%2u  %5.0f cycles  %s\n",
                        series.linesAccessed[i], series.probeCycles[i],
                        series.probeMissed[i] ? "MISS" : "hit");
            csv.row(mode, series.linesAccessed[i], series.probeCycles[i],
                    series.probeMissed[i] ? 1 : 0);
        }
        // Find the eviction step.
        for (std::size_t i = 0; i < series.linesAccessed.size(); ++i) {
            if (series.probeMissed[i]) {
                std::printf("  => first eviction after %u accesses "
                            "(paper: every 16th)\n",
                            series.linesAccessed[i]);
                break;
            }
        }
    };

    run_sweep("local", *setup.localFinder, 0, *setup.local);
    run_sweep("remote", *setup.remoteFinder, 1, *setup.remote);

    // Cyclic trace: 17 same-set lines accessed cyclically -- every
    // access misses (deterministic LRU); 16 lines -- every access
    // hits after warmup.
    bench::header("cyclic trace (LRU determinism)");
    attack::EvictionSetValidator validator(*setup.rt, *setup.local, 0, 0,
                                           setup.calib.thresholds);
    auto set = setup.localFinder->evictionSet(0, 2, assoc + 1);
    for (unsigned k : {assoc, assoc + 1}) {
        auto trace = validator.cyclicTrace(set, k, k * 3);
        unsigned misses = 0;
        for (std::size_t i = k; i < trace.size(); ++i)
            if (setup.calib.thresholds.isLocalMiss(trace[i]))
                ++misses;
        std::printf("  %u lines cycled: %u/%zu post-warmup misses\n", k,
                    misses, trace.size() - k);
    }
    std::printf("\n[csv] fig05_evset_validation.csv\n");
    return 0;
}
