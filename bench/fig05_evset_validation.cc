/**
 * @file
 * Thin wrapper over the `fig05_evset_validation` registry entry; the implementation
 * lives in bench/suite/fig05_evset_validation.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig05_evset_validation", argc, argv);
}
