/**
 * @file
 * Unified bench driver: lists (`--list`, machine-readable
 * `--list-json`), filters (`--only fig09,fig11`) and runs any subset
 * of the registered figure/table/ablation benches in parallel via the
 * ExperimentRunner -- on any registered platform descriptor
 * (`--platform dgx2-nvswitch`) -- with the usual determinism
 * guarantee (stdout and CSVs byte-identical for any `--threads`),
 * and writes the structured perf trajectory to BENCH_results.json.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchDriverMain(argc, argv);
}
