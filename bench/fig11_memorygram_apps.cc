/**
 * @file
 * Reproduces paper Fig. 11: "Memorygram of 6 applications".
 *
 * The remote spy probes 256 L2 cache sets of the victim GPU while each
 * of the six HPC applications runs, and renders the (set x time) miss
 * matrix. Each application leaves a visibly distinct footprint:
 * streaming fronts (VA), a hot stripe (HG), sparse slow fronts (BS),
 * banded reuse (MM), scattered writes (QR) and phase structure (WT).
 */

#include <cstdio>

#include "attack/side/fingerprint.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed, false, true);

    attack::side::FingerprintConfig cfg;
    cfg.prober.monitoredSets = 256; // as in the paper's figure
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1600000;
    attack::side::Fingerprinter fp(*setup.rt, *setup.remote, 1,
                                   *setup.local, 0, *setup.remoteFinder,
                                   setup.calib.thresholds, cfg);

    HeatmapOptions opt;
    opt.maxRows = 24;
    opt.maxCols = 96;

    CsvWriter csv("fig11_memorygram_apps.csv");
    csv.row("app", "set", "window", "misses");

    for (auto kind : victim::allAppKinds()) {
        auto gram = fp.collectSample(kind, seed ^ 0xf00d).trimmed();
        bench::header("Fig. 11 memorygram: " + victim::appName(kind) +
                      " (" + victim::appShortName(kind) + ")");
        std::printf("%s", gram.render(opt).c_str());
        std::printf("  total misses: %llu over %zu sets x %zu windows\n",
                    static_cast<unsigned long long>(gram.totalMisses()),
                    gram.numSets(), gram.numWindows());
        for (std::size_t s = 0; s < gram.numSets(); ++s)
            for (std::size_t w = 0; w < gram.numWindows(); ++w)
                if (gram.missAt(s, w) > 0)
                    csv.row(victim::appShortName(kind), s, w,
                            gram.missAt(s, w));
    }
    std::printf("\n[csv] fig11_memorygram_apps.csv\n");
    return 0;
}
