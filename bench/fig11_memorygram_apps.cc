/**
 * @file
 * Thin wrapper over the `fig11_memorygram_apps` registry entry; the implementation
 * lives in bench/suite/fig11_memorygram_apps.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig11_memorygram_apps", argc, argv);
}
