/**
 * @file
 * Reproduces paper Fig. 12: "Confusion Matrix" of the application
 * fingerprinting attack.
 *
 * The paper collects 1500 memorygram samples per application, trains
 * an image classifier on 150, validates on 150 and tests on 1200,
 * reaching 99.91% accuracy over 7200 test samples. This harness runs
 * the identical pipeline at a simulation-friendly 30 samples per app
 * (12 train / 4 validation / 14 test); pass a larger count as argv[2]
 * to scale up.
 */

#include <cstdio>
#include <cstdlib>

#include "attack/side/fingerprint.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed, false, true);

    attack::side::FingerprintConfig cfg;
    cfg.prober.monitoredSets = 96;
    cfg.prober.samplePeriod = 8000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1600000;
    if (argc > 2)
        cfg.samplesPerApp = static_cast<unsigned>(std::atoi(argv[2]));

    attack::side::Fingerprinter fp(*setup.rt, *setup.remote, 1,
                                   *setup.local, 0, *setup.remoteFinder,
                                   setup.calib.thresholds, cfg);

    std::printf("collecting %u samples per application "
                "(%u train / %u val / %u test each)...\n",
                cfg.samplesPerApp, cfg.trainPerApp, cfg.valPerApp,
                cfg.samplesPerApp - cfg.trainPerApp - cfg.valPerApp);
    auto result = fp.run();

    bench::header("Fig. 12: confusion matrix (test set)");
    std::printf("%s", result.confusion.render(result.classNames).c_str());
    std::printf("\n  validation accuracy: %.2f%%\n",
                100.0 * result.validationAccuracy);
    std::printf("  test accuracy:       %.2f%%  (paper: 99.91%%)\n",
                100.0 * result.testAccuracy);

    CsvWriter csv("fig12_fingerprint_confusion.csv");
    csv.row("true", "predicted", "count");
    for (int t = 0; t < result.confusion.numClasses(); ++t)
        for (int p = 0; p < result.confusion.numClasses(); ++p)
            csv.row(result.classNames[t], result.classNames[p],
                    result.confusion.count(t, p));
    std::printf("\n[csv] fig12_fingerprint_confusion.csv\n");
    return 0;
}
