/**
 * @file
 * Thin wrapper over the `fig12_fingerprint_confusion` registry entry; the implementation
 * lives in bench/suite/fig12_fingerprint_confusion.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig12_fingerprint_confusion", argc, argv);
}
