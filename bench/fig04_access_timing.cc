/**
 * @file
 * Thin wrapper over the `fig04_access_timing` registry entry; the implementation
 * lives in bench/suite/fig04_access_timing.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig04_access_timing", argc, argv);
}
