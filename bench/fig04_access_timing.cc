/**
 * @file
 * Reproduces paper Fig. 4: "Local and remote GPU access time".
 *
 * The spy measures, entirely from user level, the access latency of
 * cold and warm ldcg loads to a local buffer and to a buffer on an
 * NVLink peer. Four clusters emerge: local L2 hit, local miss (HBM),
 * remote L2 hit, remote miss. The k-means boundaries between clusters
 * become the attack's hit/miss thresholds.
 *
 * Output: a histogram (ASCII) + cluster table + fig04_access_timing.csv.
 */

#include <cstdio>

#include "attack/timing_oracle.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"
#include "util/histogram.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);

    rt::SystemConfig cfg;
    cfg.seed = seed;
    rt::Runtime rt(cfg);
    rt::Process &spy = rt.createProcess("spy");

    attack::TimingOracle oracle(rt, spy);
    // 48 accesses per loop as in the paper, more rounds for a smooth
    // histogram.
    auto calib = oracle.calibrate(/*local=*/0, /*remote=*/1, 48, 24);

    bench::header("Fig. 4: local and remote GPU access time (cycles)");

    Histogram hist(200, 1100, 45);
    for (double v : calib.allSamples())
        hist.add(v);
    std::printf("%s", hist.render(64).c_str());

    bench::header("k-means clusters (4)");
    const char *labels[4] = {"local L2 hit", "local miss (HBM)",
                             "remote L2 hit", "remote miss"};
    for (int i = 0; i < 4; ++i) {
        std::printf("  %-18s center %7.1f cycles   (%zu samples)\n",
                    labels[i], calib.clusters.centers[i],
                    calib.clusters.sizes[i]);
    }
    std::printf("  thresholds: local hit/miss @ %.1f, "
                "remote hit/miss @ %.1f\n",
                calib.thresholds.localBoundary,
                calib.thresholds.remoteBoundary);
    std::printf("  paper reference: ~270 / ~450 / ~630 / ~950 cycles\n");

    CsvWriter csv("fig04_access_timing.csv");
    csv.row("class", "cycles");
    auto dump = [&](const char *name, const std::vector<double> &v) {
        for (double t : v)
            csv.row(name, t);
    };
    dump("local_hit", calib.localHitSamples);
    dump("local_miss", calib.localMissSamples);
    dump("remote_hit", calib.remoteHitSamples);
    dump("remote_miss", calib.remoteMissSamples);
    std::printf("\n[csv] fig04_access_timing.csv (%zu rows)\n",
                csv.rowsWritten());
    return 0;
}
