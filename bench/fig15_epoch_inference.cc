/**
 * @file
 * Reproduces paper Fig. 15: "Memorygram for a two-epoch experiment".
 *
 * Training epochs appear as activity bursts separated by the
 * inter-epoch synchronization gap; the epoch count (a hyperparameter)
 * is recovered from the memorygram's temporal profile.
 */

#include <cstdio>

#include "attack/side/model_extract.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed, false, true);

    attack::side::ExtractionConfig cfg;
    cfg.prober.monitoredSets = 256;
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 2600000;
    cfg.mlpBase.batchesPerEpoch = 3;
    cfg.mlpBase.interEpochGapCycles = 250000;

    attack::side::ModelExtractor extractor(
        *setup.rt, *setup.remote, 1, *setup.local, 0,
        *setup.remoteFinder, setup.calib.thresholds, cfg);

    HeatmapOptions opt;
    opt.maxRows = 20;
    opt.maxCols = 100;

    CsvWriter csv("fig15_epoch_inference.csv");
    csv.row("epochs_true", "window", "window_misses", "epochs_inferred");

    for (unsigned epochs : {1u, 2u, 3u}) {
        auto run = extractor.observe(128, epochs);
        const unsigned inferred =
            attack::side::ModelExtractor::inferEpochs(run.gram);
        bench::header("Fig. 15: memorygram, " + std::to_string(epochs) +
                      " training epoch(s)");
        std::printf("%s", run.gram.trimmed().render(opt).c_str());
        std::printf("  temporal profile (misses per window):\n  ");
        for (std::size_t w = 0; w < run.gram.numWindows(); ++w) {
            const auto m = run.gram.windowMisses(w);
            std::printf("%c", m > 40 ? '#' : (m > 5 ? '+' : '.'));
            csv.row(epochs, w, m, inferred);
        }
        std::printf("\n  => inferred epochs: %u (true: %u) %s\n",
                    inferred, epochs,
                    inferred == epochs ? "ok" : "WRONG");
    }
    std::printf("\n[csv] fig15_epoch_inference.csv\n");
    return 0;
}
