/**
 * @file
 * Thin wrapper over the `fig15_epoch_inference` registry entry; the implementation
 * lives in bench/suite/fig15_epoch_inference.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig15_epoch_inference", argc, argv);
}
