/**
 * @file
 * Reproduces paper Fig. 7 / Algorithm 2: "Eviction set alignment among
 * multiple processes".
 *
 * The trojan hammers one of its eviction sets while the spy times
 * passes over each of its own candidate sets: the colliding candidate
 * shows the remote-miss average (~950 cy); non-colliding candidates
 * stay at the remote-hit level (~630 cy). The page-window structure
 * reduces the search to one run per (trojan group, spy group) pair,
 * and a group match extends to every in-page offset.
 */

#include <cstdio>

#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote, 0,
                               1, setup.calib.thresholds);

    bench::header("Algorithm 2 runs: trojan group 0 vs all spy groups");
    CsvWriter csv("fig07_alignment.csv");
    csv.row("trojan_group", "spy_group", "avg_probe_cycles", "matched");

    const auto tset = setup.localFinder->evictionSet(0, 0);
    for (std::size_t sg = 0; sg < setup.remoteFinder->numGroups(); ++sg) {
        const auto sset = setup.remoteFinder->evictionSet(sg, 0);
        auto run = aligner.testPair(tset, sset);
        std::printf("  TE_A(group 0) vs SE(group %zu): avg %6.1f cycles"
                    "  -> %s\n",
                    sg, run.avgProbeCycles,
                    run.matched ? "MATCHED (contention)" : "no collision");
        csv.row(0, sg, run.avgProbeCycles, run.matched ? 1 : 0);
    }

    bench::header("full group alignment");
    auto mapping = aligner.alignGroups(*setup.localFinder,
                                       *setup.remoteFinder);
    for (std::size_t tg = 0; tg < mapping.size(); ++tg) {
        const bool truth =
            mapping[tg] >= 0 &&
            setup.rt->l2SetOf(*setup.local,
                              setup.localFinder->evictionSet(tg, 0)
                                  .lines[0]) ==
                setup.rt->l2SetOf(
                    *setup.remote,
                    setup.remoteFinder->evictionSet(mapping[tg], 0)
                        .lines[0]);
        std::printf("  trojan group %zu <-> spy group %d   "
                    "(ground truth: %s)\n",
                    tg, mapping[tg], truth ? "correct" : "WRONG");
    }
    std::printf("  Algorithm-2 runs executed: %llu "
                "(vs %zu x %zu naive set pairs)\n",
                static_cast<unsigned long long>(aligner.runsExecuted()),
                setup.localFinder->coveringSets().size(),
                setup.remoteFinder->coveringSets().size());

    // A matched group pair extends to every in-page offset: verify on
    // a few derived channel pairs.
    bench::header("derived channel set pairs (offset extension)");
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 6);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const SetIndex t =
            setup.rt->l2SetOf(*setup.local, pairs[i].first.lines[0]);
        const SetIndex s =
            setup.rt->l2SetOf(*setup.remote, pairs[i].second.lines[0]);
        std::printf("  pair %zu: trojan set %4u, spy set %4u  %s\n", i, t,
                    s, t == s ? "aligned" : "MISALIGNED");
    }
    std::printf("\n[csv] fig07_alignment.csv\n");
    return 0;
}
