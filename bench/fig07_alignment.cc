/**
 * @file
 * Thin wrapper over the `fig07_alignment` registry entry; the implementation
 * lives in bench/suite/fig07_alignment.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig07_alignment", argc, argv);
}
