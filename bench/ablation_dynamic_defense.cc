/**
 * @file
 * Ablation for the paper's Sec. VII *triggered* partitioning proposal
 * (GPUGuard-style): the box runs unpartitioned until an NVLink monitor
 * detects sustained fine-grained traffic, then flips the L2s into
 * isolated slices. A covert transmission that starts clean is severed
 * mid-flight: the error rate per message quarter jumps to ~50 %
 * (random decoding) right after the trigger.
 */

#include <cstdio>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "defense/dynamic_partitioner.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote, 0,
                               1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 4);
    attack::covert::CovertChannel channel(*setup.rt, *setup.local,
                                          *setup.remote, 0, 1, pairs,
                                          setup.calib.thresholds);

    // A deliberately sluggish detection criterion (sustained traffic
    // for ~2.4M cycles) so the severing lands mid-message and the
    // before/after contrast is visible; with the default LinkMonitor
    // criterion the channel dies within the first percent of the
    // message (see ablation_detection).
    defense::MonitorConfig mcfg;
    mcfg.sampleWindow = 60000;
    mcfg.flagRatePerKcycle = 20.0;
    mcfg.consecutiveWindows = 40;
    defense::DynamicPartitioner guard(
        *setup.rt, 0, 1, 2,
        {{setup.local, 0u}, {setup.remote, 1u}}, mcfg);
    guard.start();

    const Cycles tx_start = setup.rt->engine().now();
    Rng rng(seed ^ 0xd34d);
    std::vector<std::uint8_t> bits(16384);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    auto stats = channel.transmit(bits, rx);
    guard.stop();

    bench::header("Sec. VII: triggered (GPUGuard-style) partitioning");
    std::printf("  defense triggered: %s", guard.triggered() ? "yes" : "no");
    if (guard.triggered())
        std::printf(" %.0f%% into the message",
                    100.0 *
                        static_cast<double>(guard.triggerTime() -
                                            tx_start) /
                        static_cast<double>(stats.elapsedCycles));
    std::printf("\n  overall error: %.2f%%\n\n", 100.0 * stats.errorRate);

    CsvWriter csv("ablation_dynamic_defense.csv");
    csv.row("quarter", "error_rate_pct");
    std::printf("  error per message quarter:\n");
    const std::size_t q = bits.size() / 4;
    for (int i = 0; i < 4; ++i) {
        std::size_t errors = 0;
        for (std::size_t j = i * q; j < (i + 1) * q; ++j)
            errors += bits[j] != rx[j] ? 1 : 0;
        const double pct =
            100.0 * static_cast<double>(errors) / static_cast<double>(q);
        std::printf("    Q%d: %6.2f%%\n", i + 1, pct);
        csv.row(i + 1, pct);
    }
    std::printf("\n  expectation: early quarters clean, quarters after "
                "the trigger ~50%% (the channel is severed while the "
                "attackers keep transmitting).\n");
    std::printf("[csv] ablation_dynamic_defense.csv\n");
    return 0;
}
