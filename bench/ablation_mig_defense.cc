/**
 * @file
 * Ablation for the paper's Sec. VII partitioning defense: MIG-style
 * isolated L2 way slices.
 *
 * Baseline: the full cross-GPU covert pipeline works (alignment finds
 * colliding sets, the channel transmits). With 2-way-partitioned L2s
 * and the trojan/spy assigned to different slices, the trojan's primes
 * can no longer evict the spy's lines: Algorithm 2 finds no colliding
 * group and the channel is dead. The attacker still works *within*
 * its slice (it measures associativity 8), which is exactly the
 * paper's point that MIG isolates co-tenants rather than fixing the
 * microarchitecture.
 */

#include <cstdio>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

namespace
{

struct Outcome
{
    unsigned assoc = 0;
    int matched_groups = 0;
    double error_pct = 100.0;
    bool channel_possible = false;
};

Outcome
runPipeline(std::uint64_t seed, unsigned slices)
{
    rt::SystemConfig cfg;
    cfg.seed = seed;
    rt::Runtime rt(cfg);
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    if (slices > 1) {
        rt.enableMigPartitioning(slices);
        rt.assignPartition(trojan, 0);
        rt.assignPartition(spy, 1);
    }

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0, 48, 6);

    attack::FinderConfig fcfg;
    fcfg.poolPages = 224;
    attack::EvictionSetFinder tf(rt, trojan, 0, 0, calib.thresholds,
                                 fcfg);
    tf.run();
    attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds, fcfg);
    sf.run();

    Outcome out;
    out.assoc = tf.associativity();

    attack::SetAligner aligner(rt, trojan, spy, 0, 1, calib.thresholds);
    setLogEnabled(false);
    auto mapping = aligner.alignGroups(tf, sf);
    for (int m : mapping)
        out.matched_groups += m >= 0 ? 1 : 0;

    if (out.matched_groups > 0) {
        auto pairs = aligner.alignedPairs(tf, sf, mapping, 4);
        attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1,
                                              pairs, calib.thresholds);
        Rng rng(seed ^ 0x311c);
        std::vector<std::uint8_t> bits(8192);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        out.error_pct = 100.0 * channel.transmit(bits, rx).errorRate;
        out.channel_possible = true;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);

    bench::header("Sec. VII: MIG-style L2 way partitioning");
    CsvWriter csv("ablation_mig_defense.csv");
    csv.row("l2_slices", "attacker_measured_assoc", "matched_groups",
            "channel_possible", "error_pct");

    for (unsigned slices : {1u, 2u}) {
        auto out = runPipeline(seed, slices);
        std::printf("  %u slice(s): attacker measures associativity %2u, "
                    "Algorithm-2 matches %d group(s) -> %s",
                    slices, out.assoc, out.matched_groups,
                    out.channel_possible ? "channel up" : "CHANNEL DEAD");
        if (out.channel_possible)
            std::printf(" (error %.2f%%)", out.error_pct);
        std::printf("\n");
        csv.row(slices, out.assoc, out.matched_groups,
                out.channel_possible ? 1 : 0, out.error_pct);
    }

    std::printf("\n  with isolated slices the trojan cannot evict the "
                "spy's lines, so no eviction set pair ever collides: "
                "the paper's partitioning defense closes the channel "
                "(at the cost of halving each tenant's effective L2 "
                "associativity).\n");
    std::printf("[csv] ablation_mig_defense.csv\n");
    return 0;
}
