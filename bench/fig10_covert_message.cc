/**
 * @file
 * Reproduces paper Fig. 10: "Cross GPU covert message received by spy
 * process" -- the spy-side probe-time trace while the trojan transmits
 * "Hello! How are you? ": ~630 cycles when a '0' is sent (the spy's
 * lines survive) and ~950 cycles when a '1' is sent (the trojan
 * evicted them).
 */

#include <cstdio>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote, 0,
                               1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    // Single set: the Fig. 10 trace follows one cache set.
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 1);
    attack::covert::CovertChannel channel(*setup.rt, *setup.local,
                                          *setup.remote, 0, 1, pairs,
                                          setup.calib.thresholds);

    const std::string message = "Hello! How are you? ";
    std::string decoded;
    auto stats = channel.transmitMessage(message, decoded);

    bench::header("Fig. 10: spy probe trace of the covert message");
    std::printf("  sent:    \"%s\"\n", message.c_str());
    std::printf("  decoded: \"%s\"\n", decoded.c_str());
    std::printf("  bits: %zu, errors: %zu (%.2f%%), bandwidth %.3f "
                "Mbit/s\n\n",
                stats.bitsSent, stats.bitErrors, 100.0 * stats.errorRate,
                stats.bandwidthMbitPerSec);

    // ASCII trace of the first 12 characters (96 symbols), with the
    // transmitted bit under each sample.
    const auto bits = attack::covert::CovertChannel::toBits(message);
    CsvWriter csv("fig10_covert_message.csv");
    csv.row("symbol", "bit", "probe_cycles");
    for (std::size_t i = 0; i < stats.probeTraceSet0.size(); ++i)
        csv.row(i, static_cast<int>(bits[i]), stats.probeTraceSet0[i]);

    std::printf("  probe cycles per symbol (first 96; '#'=miss level "
                "~950, '.'=hit level ~630):\n  ");
    double zero_sum = 0, one_sum = 0;
    std::size_t zero_n = 0, one_n = 0;
    for (std::size_t i = 0; i < stats.probeTraceSet0.size(); ++i) {
        if (i < 96) {
            std::printf("%c",
                        stats.probeTraceSet0[i] >
                                setup.calib.thresholds.remoteBoundary
                            ? '#'
                            : '.');
            if (i % 48 == 47)
                std::printf("\n  ");
        }
        if (bits[i]) {
            one_sum += stats.probeTraceSet0[i];
            ++one_n;
        } else {
            zero_sum += stats.probeTraceSet0[i];
            ++zero_n;
        }
    }
    std::printf("\n  average probe time while sending '0': %.0f cycles "
                "(paper: 630)\n",
                zero_sum / static_cast<double>(zero_n));
    std::printf("  average probe time while sending '1': %.0f cycles "
                "(paper: 950)\n",
                one_sum / static_cast<double>(one_n));
    std::printf("\n[csv] fig10_covert_message.csv\n");
    return 0;
}
