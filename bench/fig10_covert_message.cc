/**
 * @file
 * Thin wrapper over the `fig10_covert_message` registry entry; the implementation
 * lives in bench/suite/fig10_covert_message.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig10_covert_message", argc, argv);
}
