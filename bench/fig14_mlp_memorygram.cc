/**
 * @file
 * Thin wrapper over the `fig14_mlp_memorygram` registry entry; the implementation
 * lives in bench/suite/fig14_mlp_memorygram.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig14_mlp_memorygram", argc, argv);
}
