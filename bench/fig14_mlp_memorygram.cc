/**
 * @file
 * Reproduces paper Fig. 14: "Memorygram of the MLP application" with
 * 128 vs 512 hidden neurons -- the 512-neuron run paints a visibly
 * denser, longer memorygram because the weight matrices streamed every
 * minibatch are four times larger.
 */

#include <cstdio>

#include "attack/side/model_extract.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed, false, true);

    attack::side::ExtractionConfig cfg;
    cfg.prober.monitoredSets = 256;
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1500000;
    cfg.mlpBase.batchesPerEpoch = 3;

    attack::side::ModelExtractor extractor(
        *setup.rt, *setup.remote, 1, *setup.local, 0,
        *setup.remoteFinder, setup.calib.thresholds, cfg);

    HeatmapOptions opt;
    opt.maxRows = 24;
    opt.maxCols = 96;

    CsvWriter csv("fig14_mlp_memorygram.csv");
    csv.row("neurons", "set", "window", "misses");

    for (unsigned neurons : {128u, 512u}) {
        auto run = extractor.observe(neurons);
        bench::header("Fig. 14: MLP memorygram, " +
                      std::to_string(neurons) + " neurons");
        std::printf("%s", run.gram.trimmed().render(opt).c_str());
        std::printf("  total misses %llu, avg %.1f per set\n",
                    static_cast<unsigned long long>(run.totalMisses),
                    run.avgMissesPerSet);
        for (std::size_t s = 0; s < run.gram.numSets(); ++s)
            for (std::size_t w = 0; w < run.gram.numWindows(); ++w)
                if (run.gram.missAt(s, w) > 0)
                    csv.row(neurons, s, w, run.gram.missAt(s, w));
    }
    std::printf("\n[csv] fig14_mlp_memorygram.csv\n");
    return 0;
}
