/**
 * @file
 * Reproduces paper Sec. VI: noise mitigation via SM saturation.
 *
 * Three covert-channel conditions over 4 sets:
 *  1. quiet      -- no other workload on the trojan GPU;
 *  2. noisy      -- a concurrent application streams through the
 *                   trojan GPU's L2, corrupting the channel;
 *  3. mitigated  -- right after its own blocks are resident, the
 *                   attacker launches idle filler blocks that saturate
 *                   every SM's shared memory and thread slots, so the
 *                   leftover block scheduling policy cannot place the
 *                   noisy application until the communication ends.
 */

#include <cstdio>
#include <memory>

#include "attack/covert/channel.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"
#include "victim/workload.hh"

using namespace gpubox;

namespace
{

struct Condition
{
    const char *name;
    bool with_noise;
    bool with_saturation;
};

} // namespace

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed);

    attack::SetAligner aligner(*setup.rt, *setup.local, *setup.remote, 0,
                               1, setup.calib.thresholds);
    auto mapping =
        aligner.alignGroups(*setup.localFinder, *setup.remoteFinder);
    auto pairs = aligner.alignedPairs(*setup.localFinder,
                                      *setup.remoteFinder, mapping, 4);

    rt::Process &noise_proc = setup.rt->createProcess("noise");

    bench::header("Sec. VI: covert channel error under noise");
    CsvWriter csv("ablation_noise_mitigation.csv");
    csv.row("condition", "error_rate_pct", "bandwidth_mbit_s",
            "noise_blocks_started");

    const Condition conditions[] = {
        {"quiet", false, false},
        {"noisy", true, false},
        {"mitigated (SM saturation)", true, true},
    };

    for (const auto &cond : conditions) {
        attack::covert::CovertChannel channel(
            *setup.rt, *setup.local, *setup.remote, 0, 1, pairs,
            setup.calib.thresholds);

        rt::KernelHandle fillers;
        std::unique_ptr<victim::Workload> noise;
        rt::KernelHandle noise_handle;
        unsigned noise_started_during_tx = 0;

        // Launched via the channel's after-launch hook so the
        // attacker's own blocks are already resident on the SMs.
        auto after_launch = [&]() {
            if (cond.with_saturation) {
                // Fill every remaining SM slot: 32 KiB shared + ~1000
                // threads per idle block, two slots per SM minus the
                // four the trojan holds (paper Sec. VI).
                gpu::KernelConfig fcfg;
                fcfg.name = "sm-filler";
                fcfg.numBlocks =
                    2 * setup.rt->config().device.numSms;
                fcfg.threadsPerBlock = 1000;
                fcfg.sharedMemBytes = 32 * 1024;
                fillers = setup.rt->launch(
                    *setup.local, 0, fcfg,
                    [](rt::BlockCtx &ctx) -> sim::Task {
                        while (!ctx.stopRequested())
                            co_await ctx.compute(256);
                    });
            }
            if (cond.with_noise) {
                // A co-tenant streaming app wanting 16 KiB of shared
                // memory per block on the trojan GPU.
                victim::WorkloadConfig wcfg;
                wcfg.seed = seed ^ 0x9097;
                wcfg.iterations = 12;
                wcfg.sharedMemBytes = 16 * 1024;
                noise = std::make_unique<victim::Workload>(
                    *setup.rt, noise_proc, 0,
                    victim::AppKind::VECTOR_ADD, wcfg);
                noise_handle = noise->launch();
            }
        };

        Rng rng(seed ^ 0xbeef);
        std::vector<std::uint8_t> bits(16384);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        auto stats = channel.transmit(bits, rx, after_launch);

        if (cond.with_noise)
            for (auto *b : noise_handle.blocks())
                noise_started_during_tx += b->started() ? 1 : 0;

        // Cleanup: release the SMs, let the queued noise app drain.
        if (cond.with_saturation)
            fillers.requestStop();
        if (cond.with_noise) {
            noise_handle.requestStop();
            setup.rt->runUntilDone(noise_handle);
        }
        if (cond.with_saturation)
            setup.rt->runUntilDone(fillers);

        std::printf("  %-28s error %6.2f%%   BW %6.3f Mbit/s   "
                    "noise blocks running during tx: %u\n",
                    cond.name, 100.0 * stats.errorRate,
                    stats.bandwidthMbitPerSec, noise_started_during_tx);
        csv.row(cond.name, 100.0 * stats.errorRate,
                stats.bandwidthMbitPerSec, noise_started_during_tx);
    }
    std::printf("\n  expectation: noisy >> quiet error; mitigation "
                "restores the quiet error because the noise app cannot "
                "be scheduled while the channel runs.\n");
    std::printf("[csv] ablation_noise_mitigation.csv\n");
    return 0;
}
