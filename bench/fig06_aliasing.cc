/**
 * @file
 * Thin wrapper over the `fig06_aliasing` registry entry; the implementation
 * lives in bench/suite/fig06_aliasing.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig06_aliasing", argc, argv);
}
