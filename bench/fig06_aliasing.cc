/**
 * @file
 * Reproduces paper Fig. 6: "Eviction set aliasing issue".
 *
 * Naive per-target eviction set discovery does not reveal which
 * physical set a discovered eviction set indexes, so independently
 * discovered sets can alias (map to the same physical set) and cause
 * self-eviction noise during the attack. This bench discovers eviction
 * sets for a number of random targets naively, measures the alias rate
 * with the combine-and-rechase test, deduplicates, and verifies the
 * surviving sets are alias-free.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed, true, false);
    auto &finder = *setup.localFinder;

    // Naive discovery for 12 random target pages.
    const int num_targets = 12;
    Rng rng(seed ^ 0xa11a5);
    std::vector<int> targets;
    while (targets.size() < num_targets) {
        const int t = static_cast<int>(rng.uniform(140));
        bool dup = false;
        for (int u : targets)
            dup |= (u == t);
        if (!dup)
            targets.push_back(t);
    }

    bench::header("Fig. 6: naive eviction set discovery + alias test");
    std::vector<attack::EvictionSet> sets;
    for (int t : targets) {
        sets.push_back(finder.naiveSetFor(t));
        std::printf("  target page %3d -> eviction set of %zu lines\n", t,
                    sets.back().lines.size());
    }

    // Pairwise alias testing (the dedup step of Sec. III-B).
    CsvWriter csv("fig06_aliasing.csv");
    csv.row("set_a", "set_b", "aliases", "truth");
    int alias_pairs = 0;
    int checked = 0;
    int correct = 0;
    std::vector<bool> drop(sets.size(), false);
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            const bool alias = finder.aliasTest(sets[i], sets[j]);
            const bool truth =
                setup.rt->l2SetOf(*setup.local, sets[i].lines[0]) ==
                setup.rt->l2SetOf(*setup.local, sets[j].lines[0]);
            ++checked;
            if (alias == truth)
                ++correct;
            if (alias) {
                ++alias_pairs;
                drop[j] = true;
            }
            csv.row(i, j, alias ? 1 : 0, truth ? 1 : 0);
        }
    }

    int kept = 0;
    for (bool d : drop)
        kept += d ? 0 : 1;

    std::printf("\n  %d/%d pairs alias (same physical set)\n",
                alias_pairs, checked);
    std::printf("  alias-test agreement with ground truth: %d/%d\n",
                correct, checked);
    std::printf("  after dedup: %d unique sets kept of %d discovered\n",
                kept, num_targets);

    // Verify the kept sets are mutually alias-free.
    int residual = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        if (drop[i])
            continue;
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            if (drop[j])
                continue;
            residual += finder.aliasTest(sets[i], sets[j]) ? 1 : 0;
        }
    }
    std::printf("  residual alias pairs after dedup: %d (expect 0)\n",
                residual);
    std::printf("\n[csv] fig06_aliasing.csv\n");
    return 0;
}
