/**
 * @file
 * Ablation: how much of the attack survives when the L2 replacement
 * policy is not true LRU?
 *
 * The paper's Table I finds deterministic (LRU-like) replacement, and
 * every stage of the attack leans on it: the eviction set finder's
 * monotone eviction point, the validator's clean step at the
 * associativity, and the covert channel's reliable eviction of the
 * spy's lines. This bench re-runs those stages under true LRU,
 * tree-PLRU and randomized replacement.
 */

#include <cstdio>

#include "attack/covert/channel.hh"
#include "attack/reverse_engineer.hh"
#include "attack/set_aligner.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);

    bench::header("replacement policy ablation");
    CsvWriter csv("ablation_replacement.csv");
    csv.row("policy", "finder_ok", "associativity", "policy_report",
            "channel_error_pct");

    for (auto policy : {cache::ReplPolicy::LRU,
                        cache::ReplPolicy::TREE_PLRU,
                        cache::ReplPolicy::RANDOM}) {
        const std::string name = cache::replPolicyName(policy);
        std::printf("\n-- policy: %s --\n", name.c_str());

        rt::SystemConfig cfg;
        cfg.seed = seed;
        cfg.device.l2.policy = policy;
        rt::Runtime rt(cfg);
        rt::Process &trojan = rt.createProcess("trojan");
        rt::Process &spy = rt.createProcess("spy");

        attack::TimingOracle oracle(rt, spy);
        auto calib = oracle.calibrate(1, 0, 48, 6);

        bool finder_ok = true;
        unsigned assoc = 0;
        std::string policy_report = "n/a";
        double error_pct = 100.0;
        try {
            attack::FinderConfig fcfg;
            fcfg.poolPages = 140;
            attack::EvictionSetFinder tf(rt, trojan, 0, 0,
                                         calib.thresholds, fcfg);
            tf.run();
            assoc = tf.associativity();

            attack::ReverseEngineer re(rt, trojan, 0, calib.thresholds);
            policy_report = attack::ReverseEngineer::classifyPolicy(
                re.evictionPoints(tf, 10), assoc);

            attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds,
                                         fcfg);
            sf.run();
            attack::SetAligner aligner(rt, trojan, spy, 0, 1,
                                       calib.thresholds);
            auto mapping = aligner.alignGroups(tf, sf);
            auto pairs = aligner.alignedPairs(tf, sf, mapping, 4);
            attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1,
                                                  pairs,
                                                  calib.thresholds);
            Rng rng(seed ^ 0xab1a);
            std::vector<std::uint8_t> bits(8192);
            for (auto &b : bits)
                b = rng.chance(0.5) ? 1 : 0;
            std::vector<std::uint8_t> rx;
            auto stats = channel.transmit(bits, rx);
            error_pct = 100.0 * stats.errorRate;
        } catch (const FatalError &e) {
            finder_ok = false;
            std::printf("  attack pipeline failed: %s\n", e.what());
        }

        std::printf("  finder: %s, measured associativity: %u\n",
                    finder_ok ? "ok" : "FAILED", assoc);
        std::printf("  inferred replacement: %s\n", policy_report.c_str());
        std::printf("  covert channel error over 4 sets: %.2f%%\n",
                    error_pct);
        csv.row(name, finder_ok ? 1 : 0, assoc, policy_report,
                error_pct);
    }

    std::printf("\n  expectation: LRU -> clean attack; tree-PLRU -> "
                "attack still works (deterministic-ish eviction); "
                "randomized -> eviction sets unreliable and the channel "
                "degrades or fails.\n");
    std::printf("[csv] ablation_replacement.csv\n");
    return 0;
}
