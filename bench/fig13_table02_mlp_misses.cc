/**
 * @file
 * Reproduces paper Fig. 13 + Table II: per-set cache misses observed
 * while the MLP victim trains with 64/128/256/512 hidden neurons, and
 * the average misses per monitored set that separate the
 * configurations (paper: 5653 / 6846 / 8744 / 10197 for a full-length
 * training run over 1024 monitored sets; our runs are shorter, so the
 * absolute counts are smaller but the monotone separation -- the
 * signal the attack classifies -- is preserved).
 */

#include <cstdio>

#include "attack/side/model_extract.hh"
#include "bench/bench_common.hh"
#include "util/csv.hh"
#include "util/histogram.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::uint64_t seed = bench::benchSeed(argc, argv);
    auto setup = bench::AttackSetup::create(seed, false, true);

    attack::side::ExtractionConfig cfg;
    cfg.prober.monitoredSets = 256; // scaled from the paper's 1024
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1500000;
    cfg.mlpBase.batchesPerEpoch = 3;

    attack::side::ModelExtractor extractor(
        *setup.rt, *setup.remote, 1, *setup.local, 0,
        *setup.remoteFinder, setup.calib.thresholds, cfg);

    auto runs = extractor.sweepNeurons();

    CsvWriter csv("fig13_table02_mlp_misses.csv");
    csv.row("neurons", "set", "total_misses");

    for (const auto &run : runs) {
        bench::header("Fig. 13: misses per monitored set, " +
                      std::to_string(run.neurons) + " neurons");
        double max_m = 1;
        for (std::size_t s = 0; s < run.gram.numSets(); ++s)
            max_m = std::max(
                max_m, static_cast<double>(run.gram.setMisses(s)));
        Histogram h(0, max_m + 1, 16);
        for (std::size_t s = 0; s < run.gram.numSets(); ++s) {
            h.add(static_cast<double>(run.gram.setMisses(s)));
            csv.row(run.neurons, s, run.gram.setMisses(s));
        }
        std::printf("%s", h.render(48).c_str());
    }

    bench::header("TABLE II: average misses over all monitored sets");
    std::printf("  %-20s %s\n", "Number of Neurons",
                "Average Number of Misses");
    for (const auto &run : runs)
        std::printf("  %-20u %.1f\n", run.neurons, run.avgMissesPerSet);
    std::printf("\n  paper (full-length run, 1024 sets): 64->5653, "
                "128->6846, 256->8744, 512->10197\n");

    // The attack's inference step: each run's average classifies back
    // to its own width.
    bench::header("width inference (nearest reference)");
    for (const auto &run : runs) {
        const unsigned guess = attack::side::ModelExtractor::inferNeurons(
            run.avgMissesPerSet, runs);
        std::printf("  observed avg %8.1f -> inferred %3u neurons "
                    "(true: %3u) %s\n",
                    run.avgMissesPerSet, guess, run.neurons,
                    guess == run.neurons ? "ok" : "WRONG");
    }
    std::printf("\n[csv] fig13_table02_mlp_misses.csv\n");
    return 0;
}
