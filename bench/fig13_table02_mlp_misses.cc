/**
 * @file
 * Thin wrapper over the `fig13_table02_mlp_misses` registry entry; the implementation
 * lives in bench/suite/fig13_table02_mlp_misses.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("fig13_table02_mlp_misses", argc, argv);
}
