/**
 * @file
 * Shared helpers for the figure/table benches: standard attack setup
 * (calibration + finders) on the full DGX-1 geometry and output paths.
 */

#ifndef GPUBOX_BENCH_BENCH_COMMON_HH
#define GPUBOX_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::bench
{

/** Default seed for all figure benches (override via argv[1]). */
inline std::uint64_t
benchSeed(int argc, char **argv, std::uint64_t def = 2023)
{
    if (argc > 1)
        return std::strtoull(argv[1], nullptr, 0);
    return def;
}

/**
 * Command line of the ExperimentRunner-driven sweeps: a positional
 * seed (compatible with benchSeed) plus `--seed N`, `--threads N`
 * and `--out file.csv`. Thread count only affects wall time, never
 * the recorded results.
 */
struct BenchArgs
{
    std::uint64_t seed = 2023;
    unsigned threads = 1;
    std::string out;
};

inline BenchArgs
parseBenchArgs(int argc, char **argv, std::uint64_t default_seed = 2023)
{
    BenchArgs args;
    args.seed = default_seed;
    auto usage_exit = [&](const std::string &msg) {
        std::fprintf(stderr,
                     "%s: %s\nusage: %s [seed] [--seed N] "
                     "[--threads N] [--out file.csv]\n",
                     argv[0], msg.c_str(), argv[0]);
        std::exit(2);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next_val = [&]() -> const char * {
            if (i + 1 >= argc)
                usage_exit("missing value after " + a);
            return argv[++i];
        };
        if (a == "--seed")
            args.seed = std::strtoull(next_val(), nullptr, 0);
        else if (a == "--threads")
            args.threads = static_cast<unsigned>(
                std::strtoul(next_val(), nullptr, 0));
        else if (a == "--out")
            args.out = next_val();
        else if (!a.empty() && a[0] != '-')
            args.seed = std::strtoull(a.c_str(), nullptr, 0);
        else
            usage_exit("unknown flag " + a);
    }
    return args;
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/**
 * The standard cross-GPU attack setup on a full DGX-1: a trojan (or
 * victim) process on GPU 0 and a spy process on GPU 1, calibrated
 * thresholds, and eviction-set finders for both processes over GPU 0
 * memory.
 */
struct AttackSetup
{
    std::unique_ptr<rt::Runtime> rt;
    rt::Process *local = nullptr;  // on GPU 0 (trojan / victim owner)
    rt::Process *remote = nullptr; // on GPU 1 (spy)
    attack::CalibrationResult calib;
    std::unique_ptr<attack::EvictionSetFinder> localFinder;
    std::unique_ptr<attack::EvictionSetFinder> remoteFinder;

    static AttackSetup
    create(std::uint64_t seed, bool need_local_finder = true,
           bool need_remote_finder = true)
    {
        AttackSetup s;
        rt::SystemConfig cfg;
        cfg.seed = seed;
        s.rt = std::make_unique<rt::Runtime>(cfg);
        s.local = &s.rt->createProcess("local");
        s.remote = &s.rt->createProcess("spy");

        attack::TimingOracle oracle(*s.rt, *s.remote);
        s.calib = oracle.calibrate(/*local=*/1, /*remote=*/0, 48, 6);

        attack::FinderConfig fcfg;
        fcfg.poolPages = 224; // ~56 pages per color: room for the
                              // 48-line sweeps of Fig. 5
        if (need_local_finder) {
            s.localFinder = std::make_unique<attack::EvictionSetFinder>(
                *s.rt, *s.local, 0, 0, s.calib.thresholds, fcfg);
            s.localFinder->run();
        }
        if (need_remote_finder) {
            s.remoteFinder = std::make_unique<attack::EvictionSetFinder>(
                *s.rt, *s.remote, 1, 0, s.calib.thresholds, fcfg);
            s.remoteFinder->run();
        }
        return s;
    }
};

} // namespace gpubox::bench

#endif // GPUBOX_BENCH_BENCH_COMMON_HH
