/**
 * @file
 * Shared helper for the figure/table benches: the standard attack
 * setup (calibration + finders) on the full DGX-1 geometry.
 */

#ifndef GPUBOX_BENCH_BENCH_COMMON_HH
#define GPUBOX_BENCH_BENCH_COMMON_HH

#include <memory>

#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::bench
{

/**
 * The standard cross-GPU attack setup on a full DGX-1: a trojan (or
 * victim) process on GPU 0 and a spy process on GPU 1, calibrated
 * thresholds, and eviction-set finders for both processes over GPU 0
 * memory.
 */
struct AttackSetup
{
    std::unique_ptr<rt::Runtime> rt;
    rt::Process *local = nullptr;  // on GPU 0 (trojan / victim owner)
    rt::Process *remote = nullptr; // on GPU 1 (spy)
    attack::CalibrationResult calib;
    std::unique_ptr<attack::EvictionSetFinder> localFinder;
    std::unique_ptr<attack::EvictionSetFinder> remoteFinder;

    static AttackSetup
    create(std::uint64_t seed, bool need_local_finder = true,
           bool need_remote_finder = true)
    {
        AttackSetup s;
        rt::SystemConfig cfg;
        cfg.seed = seed;
        s.rt = std::make_unique<rt::Runtime>(cfg);
        s.local = &s.rt->createProcess("local");
        s.remote = &s.rt->createProcess("spy");

        attack::TimingOracle oracle(*s.rt, *s.remote);
        s.calib = oracle.calibrate(/*local=*/1, /*remote=*/0, 48, 6);

        attack::FinderConfig fcfg;
        fcfg.poolPages = 224; // ~56 pages per color: room for the
                              // 48-line sweeps of Fig. 5
        if (need_local_finder) {
            s.localFinder = std::make_unique<attack::EvictionSetFinder>(
                *s.rt, *s.local, 0, 0, s.calib.thresholds, fcfg);
            s.localFinder->run();
        }
        if (need_remote_finder) {
            s.remoteFinder = std::make_unique<attack::EvictionSetFinder>(
                *s.rt, *s.remote, 1, 0, s.calib.thresholds, fcfg);
            s.remoteFinder->run();
        }
        return s;
    }
};

} // namespace gpubox::bench

#endif // GPUBOX_BENCH_BENCH_COMMON_HH
