/**
 * @file
 * Shared helper for the figure/table benches: the standard attack
 * setup (calibration + finders) on the scenario's platform.
 */

#ifndef GPUBOX_BENCH_BENCH_COMMON_HH
#define GPUBOX_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <memory>

#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "cache/indexer.hh"
#include "exp/scenario.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::bench
{

/**
 * Page colors of the scenario's L2 geometry (set windows a page can
 * land in); finder pools are sized per color so discovery works from
 * the 2-color PCIe box to the 8-color NVSwitch-class L2. Delegates to
 * the indexer's own formula so pool sizing can never drift from the
 * cache's real color count.
 */
inline std::uint32_t
pageColors(const exp::Scenario &sc)
{
    const auto &l2 = sc.system.device.l2;
    return cache::HashedPageIndexer::colorCount(
        l2.numSets(), l2.lineBytes, sc.system.pageBytes);
}

/**
 * Scale a pool size tuned on the 4-color DGX-1 geometry to the
 * scenario's color count, keeping the pages-per-color density the
 * knob was calibrated for (identical on dgx1-p100).
 */
inline int
scaledPoolPages(const exp::Scenario &sc, unsigned dgx1_pages)
{
    return static_cast<int>(dgx1_pages * pageColors(sc) / 4);
}

/**
 * The standard cross-GPU attack setup on the scenario's platform: a
 * trojan (or victim) process on GPU 0 and a spy process on GPU 1,
 * thresholds k-means-calibrated against that platform's timing, and
 * eviction-set finders for both processes over GPU 0 memory. GPUs 0
 * and 1 are adjacent on every registered platform, so the same pair
 * works from the DGX-1 cube-mesh to the PCIe box.
 */
struct AttackSetup
{
    std::unique_ptr<rt::Runtime> rt;
    rt::Process *local = nullptr;  // on GPU 0 (trojan / victim owner)
    rt::Process *remote = nullptr; // on GPU 1 (spy)
    attack::CalibrationResult calib;
    std::unique_ptr<attack::EvictionSetFinder> localFinder;
    std::unique_ptr<attack::EvictionSetFinder> remoteFinder;

    static AttackSetup
    create(const exp::Scenario &sc, bool need_local_finder = true,
           bool need_remote_finder = true)
    {
        AttackSetup s;
        s.rt = std::make_unique<rt::Runtime>(sc.system);
        s.local = &s.rt->createProcess("local");
        s.remote = &s.rt->createProcess("spy");

        attack::TimingOracle oracle(*s.rt, *s.remote);
        s.calib = oracle.calibrate(/*local=*/1, /*remote=*/0, 48, 6);

        attack::FinderConfig fcfg;
        fcfg.poolPages = 56 * static_cast<int>(pageColors(sc));
        // 56 pages per color: room for the 48-line sweeps of Fig. 5
        // on every platform geometry (DGX-1: 4 colors -> 224 pages).
        if (need_local_finder) {
            s.localFinder = std::make_unique<attack::EvictionSetFinder>(
                *s.rt, *s.local, 0, 0, s.calib.thresholds, fcfg);
            s.localFinder->run();
        }
        if (need_remote_finder) {
            s.remoteFinder = std::make_unique<attack::EvictionSetFinder>(
                *s.rt, *s.remote, 1, 0, s.calib.thresholds, fcfg);
            s.remoteFinder->run();
        }
        return s;
    }
};

} // namespace gpubox::bench

#endif // GPUBOX_BENCH_BENCH_COMMON_HH
