/**
 * @file
 * Thin wrapper over the `extension_multi_gpu` registry entry; the implementation
 * lives in bench/suite/extension_multi_gpu.cc and is shared with the `gpubox_bench`
 * driver.
 */

#include "bench/suite/benches.hh"
#include "exp/registry.hh"

int
main(int argc, char **argv)
{
    gpubox::bench::registerAllBenches();
    return gpubox::exp::benchMain("extension_multi_gpu", argc, argv);
}
