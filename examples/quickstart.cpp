/**
 * @file
 * Quickstart: build a simulated DGX-1, run a kernel on one GPU that
 * touches memory on an NVLink peer, and watch the NUMA caching rule
 * (remote data caches in the *remote* L2) plus the four latency
 * classes the attacks in this library exploit.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "rt/runtime.hh"
#include "util/stats.hh"

using namespace gpubox;

int
main()
{
    // An 8-GPU DGX-1 with Tesla P100 geometry (56 SMs, 4 MiB 16-way
    // L2, hybrid cube-mesh NVLink) is the default configuration.
    rt::SystemConfig config;
    config.seed = 1;
    rt::Runtime rt(config);

    std::printf("gpubox quickstart: %d GPUs, topology '%s'\n",
                rt.numGpus(), rt.topology().name().c_str());

    rt::Process &proc = rt.createProcess("quickstart");

    // Allocate one buffer on GPU 0 (local to our kernel) and one on
    // GPU 1 (a single-hop NVLink peer).
    const std::uint32_t line = config.device.l2.lineBytes;
    const int n = 32;
    const VAddr local = rt.deviceMalloc(proc, 0, n * line);
    const VAddr remote = rt.deviceMalloc(proc, 1, n * line);

    // Peer access works only between NVLink-connected GPUs -- exactly
    // like cudaDeviceEnablePeerAccess on the real box (and like it,
    // the call returns a typed status instead of aborting).
    rt.enablePeerAccess(proc, 0, 1).orFatal();

    RunningStats local_cold, local_warm, remote_cold, remote_warm;

    auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
        for (int pass = 0; pass < 2; ++pass) {
            for (int i = 0; i < n; ++i) {
                const Cycles t0 = ctx.clock();
                co_await ctx.ldcg64(local + i * line);
                const Cycles dt = ctx.clock() - t0;
                (pass ? local_warm : local_cold).add(double(dt));
            }
        }
        for (int pass = 0; pass < 2; ++pass) {
            for (int i = 0; i < n; ++i) {
                const Cycles t0 = ctx.clock();
                co_await ctx.ldcg64(remote + i * line);
                const Cycles dt = ctx.clock() - t0;
                (pass ? remote_warm : remote_cold).add(double(dt));
            }
        }
    };

    // Kernels launch asynchronously on CUDA-style streams; the host
    // joins the queue with sync(), as cudaStreamSynchronize would.
    gpu::KernelConfig cfg;
    cfg.name = "quickstart";
    rt::Stream &stream = rt.stream(proc, 0);
    stream.launch(cfg, kernel);
    rt.sync(stream);

    std::printf("\naccess latencies measured from GPU 0 (cycles):\n");
    std::printf("  %-28s mean %7.1f  [%5.0f, %5.0f]\n", "local  L2 miss (HBM):",
                local_cold.mean(), local_cold.min(), local_cold.max());
    std::printf("  %-28s mean %7.1f  [%5.0f, %5.0f]\n", "local  L2 hit:",
                local_warm.mean(), local_warm.min(), local_warm.max());
    std::printf("  %-28s mean %7.1f  [%5.0f, %5.0f]\n", "remote L2 miss (NVLink):",
                remote_cold.mean(), remote_cold.min(), remote_cold.max());
    std::printf("  %-28s mean %7.1f  [%5.0f, %5.0f]\n", "remote L2 hit  (NVLink):",
                remote_warm.mean(), remote_warm.min(), remote_warm.max());

    // The NUMA property at the heart of the paper: the remote buffer
    // is cached in GPU 1's L2 even though only GPU 0 touched it.
    const PAddr rp = proc.space().translate(remote);
    std::printf("\nremote line cached in GPU1 L2: %s, in GPU0 L2: %s\n",
                rt.device(1).l2().probe(rp) ? "yes" : "no",
                rt.device(0).l2().probe(rp) ? "yes" : "no");
    std::printf("=> an attacker on GPU 1 can Prime+Probe data that GPU 0 "
                "reads remotely.\n");
    return 0;
}
