/**
 * @file
 * Multi-tenant overlap demo -- the scenario the stream/event API
 * exists for and the old launch()+runUntilDone() pattern could not
 * express: TWO victim processes time-share GPU 0 while a spy on GPU 1
 * monitors GPU 0's L2 through NVLink, all overlapped in simulated
 * time.
 *
 * Orchestration is pure CUDA idiom: the spy primes its eviction sets
 * and records an event; both victim streams wait on that event, so
 * the victims start exactly when monitoring is ready (no tuned delay
 * constants); events around each victim kernel give per-tenant
 * runtimes via Event::elapsed.
 *
 *   ./build/examples/multi_tenant
 */

#include <algorithm>
#include <cstdio>

#include "attack/evset_finder.hh"
#include "attack/side/memorygram.hh"
#include "attack/side/prober.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "victim/workload.hh"

using namespace gpubox;

int
main()
{
    setLogEnabled(false);

    rt::SystemConfig config; // the DGX-1
    config.seed = 57;
    rt::Runtime rt(config);

    rt::Process &spy = rt.createProcess("spy");
    rt::Process &tenant_a = rt.createProcess("tenantA");
    rt::Process &tenant_b = rt.createProcess("tenantB");

    std::printf("calibrating + building eviction sets over the shared "
                "GPU 0...\n");
    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(/*spy gpu=*/1, /*victim gpu=*/0);
    attack::EvictionSetFinder finder(rt, spy, 1, 0, calib.thresholds);
    finder.run();

    attack::side::ProberConfig pcfg;
    pcfg.monitoredSets = 64;
    pcfg.samplePeriod = 8000;
    pcfg.windowCycles = 12000;
    pcfg.duration = 1600000;
    attack::side::RemoteProber prober(rt, spy, 1, finder,
                                      calib.thresholds, pcfg);
    attack::side::Memorygram gram(pcfg.monitoredSets,
                                  prober.numWindows());

    // One stream per tenant process plus the spy's stream; events
    // stage the cross-stream dependencies.
    rt::Stream &spy_stream = rt.createStream(spy, 1, "spy");
    rt::Stream &a_stream = rt.createStream(tenant_a, 0, "tenantA");
    rt::Stream &b_stream = rt.createStream(tenant_b, 0, "tenantB");
    rt::Event &primed = rt.createEvent("primed");
    rt::Event &a_begin = rt.createEvent("a-begin");
    rt::Event &a_end = rt.createEvent("a-end");
    rt::Event &b_begin = rt.createEvent("b-begin");
    rt::Event &b_end = rt.createEvent("b-end");

    // Spy: prime -> record -> monitor, all queued up front.
    const Cycles t0 = rt.engine().now() + 2 * pcfg.samplePeriod;
    prober.prime(spy_stream);
    spy_stream.record(primed);
    auto monitor_handle = prober.monitor(spy_stream, gram, t0);

    // Tenant A streams vectoradd, tenant B multiplies matrices; both
    // wait for the spy's priming event, then overlap on GPU 0.
    victim::WorkloadConfig wcfg_a;
    wcfg_a.seed = 11;
    wcfg_a.iterations = 3;
    victim::Workload app_a(rt, tenant_a, 0, victim::AppKind::VECTOR_ADD,
                           wcfg_a);
    victim::WorkloadConfig wcfg_b;
    wcfg_b.seed = 22;
    victim::Workload app_b(rt, tenant_b, 0, victim::AppKind::MATRIX_MUL,
                           wcfg_b);

    a_stream.wait(primed);
    a_stream.record(a_begin);
    app_a.launch(a_stream);
    a_stream.record(a_end);

    b_stream.wait(primed);
    b_stream.record(b_begin);
    app_b.launch(b_stream);
    b_stream.record(b_end);

    std::printf("running 2 tenants + 1 spy, three streams "
                "overlapped...\n\n");
    rt.sync(a_stream);
    rt.sync(b_stream);
    monitor_handle.requestStop();
    rt.sync(spy_stream);

    const double ghz = rt.timing().clockGhz;
    const auto ms = [ghz](Cycles c) {
        return static_cast<double>(c) / (ghz * 1e6);
    };
    std::printf("  both tenants released by event '%s' at cycle %llu\n",
                primed.name().c_str(),
                static_cast<unsigned long long>(primed.when()));
    std::printf("  tenant A (vectoradd):  %8.3f ms simulated\n",
                ms(a_end.elapsed(a_begin)));
    std::printf("  tenant B (matrixmul):  %8.3f ms simulated\n",
                ms(b_end.elapsed(b_begin)));
    const Cycles overlap_start =
        std::max(a_begin.when(), b_begin.when());
    const Cycles overlap_end = std::min(a_end.when(), b_end.when());
    std::printf("  co-residency window:   %8.3f ms (both tenants "
                "active)\n\n",
                ms(overlap_end > overlap_start
                       ? overlap_end - overlap_start
                       : 0));

    std::printf("spy memorygram of the mixed tenants (stream front + "
                "tile bursts superposed):\n");
    HeatmapOptions opt;
    opt.maxRows = 16;
    opt.maxCols = 80;
    std::printf("%s", gram.trimmed().render(opt).c_str());
    std::printf("\ntotal misses observed: %llu; the spy separated "
                "neither tenant's traffic from the other's -- it sees "
                "the union of both L2 footprints.\n",
                static_cast<unsigned long long>(gram.totalMisses()));
    return 0;
}
