/**
 * @file
 * Application fingerprinting demo (paper Sec. V-A): a spy on GPU 1
 * monitors GPU 0's L2 through NVLink, records memorygrams of whatever
 * runs there, trains a classifier, and then identifies "unknown"
 * victim runs.
 *
 *   ./build/examples/app_fingerprint
 */

#include <cstdio>

#include "attack/evset_finder.hh"
#include "attack/side/fingerprint.hh"
#include "attack/timing_oracle.hh"
#include "ml/softmax.hh"
#include "rt/runtime.hh"

using namespace gpubox;

int
main()
{
    setLogEnabled(false);

    rt::SystemConfig config;
    config.seed = 21;
    rt::Runtime rt(config);
    rt::Process &spy = rt.createProcess("spy");
    rt::Process &victim = rt.createProcess("victim");

    std::printf("calibrating + building eviction sets on the victim "
                "GPU...\n");
    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0);
    attack::EvictionSetFinder finder(rt, spy, 1, 0, calib.thresholds);
    finder.run();

    attack::side::FingerprintConfig cfg;
    cfg.samplesPerApp = 12;
    cfg.trainPerApp = 6;
    cfg.valPerApp = 2;
    cfg.prober.monitoredSets = 96;
    cfg.prober.samplePeriod = 8000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 1600000;
    attack::side::Fingerprinter fp(rt, spy, 1, victim, 0, finder,
                                   calib.thresholds, cfg);

    std::printf("collecting %u memorygrams per app and training the "
                "classifier...\n\n",
                cfg.samplesPerApp);
    auto result = fp.run();

    std::printf("%s\n", result.confusion.render(result.classNames).c_str());

    // Show one memorygram so the signal is visible.
    std::printf("example memorygram (%s):\n",
                victim::appName(victim::AppKind::WALSH_TRANSFORM).c_str());
    auto gram =
        fp.collectSample(victim::AppKind::WALSH_TRANSFORM, 999).trimmed();
    HeatmapOptions opt;
    opt.maxRows = 20;
    opt.maxCols = 80;
    std::printf("%s", gram.render(opt).c_str());

    std::printf("\nthe spy never ran code on GPU 0; everything was "
                "observed through GPU 0's L2 from GPU 1 via NVLink.\n");
    return 0;
}
