/**
 * @file
 * MLP model extraction demo (paper Sec. V-B): while a victim trains a
 * one-hidden-layer MLP on GPU 0, a spy on GPU 1 measures per-set L2
 * miss intensity and recovers (a) the hidden-layer width and (b) the
 * number of training epochs.
 *
 *   ./build/examples/model_extraction
 */

#include <cstdio>

#include "attack/evset_finder.hh"
#include "attack/side/model_extract.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

using namespace gpubox;

int
main()
{
    setLogEnabled(false);

    rt::SystemConfig config;
    config.seed = 33;
    rt::Runtime rt(config);
    rt::Process &spy = rt.createProcess("spy");
    rt::Process &victim = rt.createProcess("victim");

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0);
    attack::EvictionSetFinder finder(rt, spy, 1, 0, calib.thresholds);
    finder.run();

    attack::side::ExtractionConfig cfg;
    cfg.prober.samplePeriod = 12000;
    cfg.prober.windowCycles = 12000;
    cfg.prober.duration = 2000000;
    attack::side::ModelExtractor extractor(rt, spy, 1, victim, 0, finder,
                                           calib.thresholds, cfg);

    std::printf("building the reference profile (observing training "
                "runs of known widths)...\n");
    auto refs = extractor.sweepNeurons();
    for (const auto &r : refs)
        std::printf("  %3u neurons -> avg %.1f misses per monitored "
                    "set\n",
                    r.neurons, r.avgMissesPerSet);

    // Now observe an "unknown" victim and infer its configuration.
    const unsigned secret_width = 256;
    const unsigned secret_epochs = 2;
    std::printf("\nvictim trains its secret model...\n");
    auto run = extractor.observe(secret_width, secret_epochs);

    // Infer the epoch count first; the reference profile was built
    // from single-epoch runs, so per-epoch miss intensity is what
    // separates the widths.
    const unsigned epochs =
        attack::side::ModelExtractor::inferEpochs(run.gram);
    const double per_epoch =
        run.avgMissesPerSet / static_cast<double>(epochs ? epochs : 1);
    const unsigned width =
        attack::side::ModelExtractor::inferNeurons(per_epoch, refs);

    std::printf("  observed: avg %.1f misses/set (%.1f per epoch)\n",
                run.avgMissesPerSet, per_epoch);
    std::printf("  inferred hidden width: %u (truth: %u)\n", width,
                secret_width);
    std::printf("  inferred epochs:       %u (truth: %u)\n", epochs,
                secret_epochs);

    HeatmapOptions opt;
    opt.maxRows = 16;
    opt.maxCols = 90;
    std::printf("\nmemorygram of the secret run (epoch bursts visible):\n%s",
                run.gram.trimmed().render(opt).c_str());
    return 0;
}
