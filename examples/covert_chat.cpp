/**
 * @file
 * End-to-end covert channel demo: a trojan process on GPU 0 sends a
 * text message (argv[1], or a default) to a spy process on GPU 1
 * through the shared L2 cache of GPU 0, over NVLink, exactly as in
 * paper Sec. IV. Every attack stage runs from scratch: timing
 * calibration, eviction set discovery in both processes, Algorithm-2
 * alignment, then the prime+probe transmission.
 *
 *   ./build/examples/covert_chat "my secret message"
 */

#include <cstdio>
#include <string>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

using namespace gpubox;

int
main(int argc, char **argv)
{
    setLogEnabled(false);
    const std::string message =
        argc > 1 ? argv[1] : "Hello! How are you? Meet me in L2 set 42.";

    rt::SystemConfig config; // the DGX-1
    config.seed = 7;
    rt::Runtime rt(config);

    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    std::printf("[1/4] reverse engineering timing thresholds...\n");
    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(/*spy gpu=*/1, /*victim gpu=*/0);
    std::printf("      local hit/miss boundary: %.0f cycles, "
                "remote: %.0f cycles\n",
                calib.thresholds.localBoundary,
                calib.thresholds.remoteBoundary);

    std::printf("[2/4] discovering eviction sets (both processes, "
                "buffers on GPU 0)...\n");
    attack::EvictionSetFinder tfinder(rt, trojan, 0, 0, calib.thresholds);
    tfinder.run();
    attack::EvictionSetFinder sfinder(rt, spy, 1, 0, calib.thresholds);
    sfinder.run();
    std::printf("      trojan: %zu conflict groups, associativity %u; "
                "spy: %zu groups\n",
                tfinder.numGroups(), tfinder.associativity(),
                sfinder.numGroups());

    std::printf("[3/4] aligning eviction sets across processes "
                "(Algorithm 2)...\n");
    attack::SetAligner aligner(rt, trojan, spy, 0, 1, calib.thresholds);
    auto mapping = aligner.alignGroups(tfinder, sfinder);
    auto pairs = aligner.alignedPairs(tfinder, sfinder, mapping, 4);
    std::printf("      %zu aligned channel sets ready\n", pairs.size());

    std::printf("[4/4] transmitting %zu bytes over the L2 covert "
                "channel...\n\n",
                message.size());
    attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1, pairs,
                                          calib.thresholds);
    std::string decoded;
    auto stats = channel.transmitMessage(message, decoded);

    std::printf("  trojan sent: \"%s\"\n", message.c_str());
    std::printf("  spy decoded: \"%s\"\n", decoded.c_str());
    std::printf("\n  %zu bits, %zu bit errors (%.2f%%), %.2f Mbit/s "
                "across GPUs\n",
                stats.bitsSent, stats.bitErrors, 100.0 * stats.errorRate,
                stats.bandwidthMbitPerSec);
    return 0;
}
