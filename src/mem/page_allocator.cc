#include "mem/page_allocator.hh"

#include <algorithm>

#include "util/log.hh"

namespace gpubox::mem
{

PageAllocator::PageAllocator(std::uint64_t num_frames, Rng rng)
    : numFrames_(num_frames), used_(num_frames, false)
{
    if (num_frames == 0)
        fatal("PageAllocator with zero frames");
    freeList_.resize(num_frames);
    for (std::uint64_t i = 0; i < num_frames; ++i)
        freeList_[i] = i;
    rng.shuffle(freeList_);
}

std::uint64_t
PageAllocator::alloc()
{
    if (freeList_.empty())
        fatal("PageAllocator: out of physical frames (", numFrames_,
              " total)");
    const std::uint64_t frame = freeList_.back();
    freeList_.pop_back();
    used_[frame] = true;
    return frame;
}

std::vector<std::uint64_t>
PageAllocator::allocMany(std::uint64_t n)
{
    std::vector<std::uint64_t> frames;
    frames.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        frames.push_back(alloc());
    return frames;
}

void
PageAllocator::free(std::uint64_t frame)
{
    if (frame >= numFrames_)
        fatal("PageAllocator::free: frame ", frame, " out of range");
    if (!used_[frame])
        fatal("PageAllocator::free: double free of frame ", frame);
    used_[frame] = false;
    freeList_.push_back(frame);
}

} // namespace gpubox::mem
