#include "mem/address.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::mem
{

namespace
{
constexpr unsigned kFrameBits = 32;
constexpr std::uint64_t kFrameMask = (1ULL << kFrameBits) - 1;
/** 12 bits admit pod-scale GPU counts (dgx-gigapod: 1024). Widening
 *  the field moves no existing bit: ids below 256 pack to the same
 *  PAddr bytes as the old 8-bit field, so per-platform results are
 *  unchanged. */
constexpr unsigned kGpuBits = 12;
} // namespace

AddressCodec::AddressCodec(std::uint64_t page_bytes)
    : pageBytes_(page_bytes)
{
    if (!isPowerOf2(page_bytes))
        fatal("page size must be a power of two, got ", page_bytes);
    pageShift_ = floorLog2(page_bytes);
    if (pageShift_ + kFrameBits + kGpuBits > 64)
        fatal("page size too large for the PAddr layout");
}

PAddr
AddressCodec::pack(GpuId gpu, std::uint64_t frame, std::uint64_t offset) const
{
    if (offset >= pageBytes_)
        fatal("offset ", offset, " exceeds page size ", pageBytes_);
    if (frame > kFrameMask)
        fatal("frame number ", frame, " exceeds the frame field");
    if (gpu < 0 || gpu >= (1 << kGpuBits))
        fatal("gpu id ", gpu, " out of range");
    return (static_cast<PAddr>(gpu) << (kFrameBits + pageShift_)) |
           (frame << pageShift_) | offset;
}

PhysLoc
AddressCodec::unpack(PAddr addr) const
{
    PhysLoc loc;
    loc.offset = addr & (pageBytes_ - 1);
    loc.frame = (addr >> pageShift_) & kFrameMask;
    loc.gpu = static_cast<GpuId>(addr >> (kFrameBits + pageShift_));
    return loc;
}

GpuId
AddressCodec::gpuOf(PAddr addr) const
{
    return static_cast<GpuId>(addr >> (kFrameBits + pageShift_));
}

std::uint64_t
AddressCodec::frameOf(PAddr addr) const
{
    return (addr >> pageShift_) & kFrameMask;
}

std::uint64_t
AddressCodec::offsetOf(PAddr addr) const
{
    return addr & (pageBytes_ - 1);
}

PAddr
AddressCodec::pageBase(PAddr addr) const
{
    return addr & ~(static_cast<PAddr>(pageBytes_) - 1);
}

} // namespace gpubox::mem
