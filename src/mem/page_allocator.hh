/**
 * @file
 * Randomized physical frame allocator, one per GPU.
 *
 * Real GPU drivers hand out physically discontiguous frames; the attack
 * paper exploits the fact that an unprivileged process cannot predict
 * virtual-to-physical placement and must discover eviction sets online.
 * The allocator therefore shuffles its free list with the system seed.
 */

#ifndef GPUBOX_MEM_PAGE_ALLOCATOR_HH
#define GPUBOX_MEM_PAGE_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::mem
{

/** Allocates physical frames of one GPU's HBM in randomized order. */
class PageAllocator
{
  public:
    /**
     * @param num_frames total frames of HBM managed
     * @param rng seeded stream used to shuffle the free list
     */
    PageAllocator(std::uint64_t num_frames, Rng rng);

    /** Allocate one frame; fatal() when memory is exhausted. */
    std::uint64_t alloc();

    /** Allocate @p n frames. */
    std::vector<std::uint64_t> allocMany(std::uint64_t n);

    /** Return a frame to the pool. */
    void free(std::uint64_t frame);

    std::uint64_t numFrames() const { return numFrames_; }
    std::uint64_t freeFrames() const { return freeList_.size(); }
    std::uint64_t usedFrames() const { return numFrames_ - freeList_.size(); }

  private:
    std::uint64_t numFrames_;
    std::vector<std::uint64_t> freeList_; // back() is next to hand out
    std::vector<bool> used_;
};

} // namespace gpubox::mem

#endif // GPUBOX_MEM_PAGE_ALLOCATOR_HH
