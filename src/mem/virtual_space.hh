/**
 * @file
 * Per-process virtual address space: page table plus backing store.
 *
 * A process allocates buffers on a chosen GPU (device memory) and the
 * space maps each virtual page to a randomly allocated physical frame
 * of that GPU. Buffer bytes are backed by host vectors so pointer-chase
 * attack kernels can store real next-indices in simulated memory.
 */

#ifndef GPUBOX_MEM_VIRTUAL_SPACE_HH
#define GPUBOX_MEM_VIRTUAL_SPACE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <unordered_map>
#include <vector>

#include "mem/address.hh"
#include "mem/page_allocator.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/types.hh"

namespace gpubox::mem
{

/** One device-memory allocation within a virtual space. */
struct Allocation
{
    VAddr base = 0;
    std::uint64_t size = 0;
    GpuId gpu = -1;
    std::vector<std::uint64_t> frames; // one per page, in order
};

/** Per-process unified virtual address space over all GPUs. */
class VirtualSpace
{
  public:
    /**
     * @param codec shared physical address codec
     * @param base first virtual address handed out (CUDA-like high VA)
     */
    explicit VirtualSpace(const AddressCodec &codec,
                          VAddr base = 0x7f0000000000ULL);

    /**
     * Allocate @p bytes of device memory on @p gpu using @p allocator
     * for physical frames. Rounds up to whole pages.
     * @return base virtual address of the new buffer
     */
    VAddr allocate(std::uint64_t bytes, GpuId gpu, PageAllocator &allocator);

    /** Release a buffer previously returned by allocate(). */
    void release(VAddr base, PageAllocator &allocator);

    /**
     * Translate a mapped virtual address; fatal() when unmapped.
     * A small direct-mapped page memo (a software TLB) short-circuits
     * the table walk for the common case of probe loops cycling
     * through a bounded working set of pages; release() flushes it.
     */
    PAddr
    translate(VAddr va) const
    {
        const std::uint64_t page = codec_.pageBytes();
        const VAddr vpage = va & ~(page - 1);
        const std::size_t slot =
            (va >> codec_.pageShift()) & (kTlbSlots - 1);
        if (vpage != tlbVpage_[slot]) {
            auto it = pageMap_.find(vpage);
            if (it == pageMap_.end()) {
                fatal("VirtualSpace::translate: unmapped address 0x",
                      std::hex, va);
            }
            tlbVpage_[slot] = vpage;
            tlbFrame_[slot] = it->second;
        }
#if GPUBOX_CHECKED_ENABLED
        else {
            // TLB-vs-page-table coherence: a cached translation must
            // agree with the page map it memoizes (release() flushes,
            // so a stale hit here is a flush bug).
            auto it = pageMap_.find(vpage);
            GPUBOX_INVARIANT(it != pageMap_.end(),
                             "VirtualSpace TLB coherence: cached page 0x",
                             std::hex, vpage, " is no longer mapped");
            GPUBOX_INVARIANT(it->second == tlbFrame_[slot],
                             "VirtualSpace TLB coherence: page 0x",
                             std::hex, vpage, " cached frame 0x",
                             tlbFrame_[slot],
                             " disagrees with the page map's 0x",
                             it->second);
        }
#endif
        return tlbFrame_[slot] | (va & (page - 1));
    }

    /** @return true when @p va falls inside a live allocation. */
    bool isMapped(VAddr va) const;

    /** Allocation metadata lookup by base address. */
    const Allocation &allocationAt(VAddr base) const;

    /** Typed backing-store access (host-side view of device memory). */
    template <typename T>
    T
    read(VAddr va) const
    {
        const std::uint8_t *p = bytePtr(va, sizeof(T));
        T v;
        std::memcpy(&v, p, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(VAddr va, const T &v)
    {
        std::uint8_t *p = const_cast<std::uint8_t *>(bytePtr(va, sizeof(T)));
        std::memcpy(p, &v, sizeof(T));
    }

    std::uint64_t bytesAllocated() const { return bytesAllocated_; }

    /**
     * @name Bulk backing-store access (DMA engines)
     * Chunked span resolution -- one region lookup per contiguous
     * run instead of per byte. Every touched byte must be mapped.
     * @{
     */
    void copyBytes(VAddr dst, VAddr src, std::uint64_t len);
    void setBytes(VAddr dst, std::uint8_t value, std::uint64_t len);
    /** @} */

  private:
    /** Pointer into the backing store; checks bounds of the access. */
    const std::uint8_t *bytePtr(VAddr va, std::uint64_t len) const;

    /**
     * Longest contiguous backing-store run at @p va (capped at
     * @p max_len), written to @p span_len; fatal() when unmapped.
     */
    const std::uint8_t *spanPtr(VAddr va, std::uint64_t max_len,
                                std::uint64_t &span_len) const;

    struct Region
    {
        Allocation alloc;
        std::vector<std::uint8_t> bytes;
    };

    /**
     * Region containing @p va, via a one-entry memo over the region
     * map (access runs hammer one buffer). Map nodes are stable under
     * insertion, so the memo only drops on release(); returns null
     * when @p va precedes every region.
     */
    const Region *
    regionOf(VAddr va) const
    {
        const Region *r = lastRegion_;
        if (r && va >= r->alloc.base && va - r->alloc.base < r->alloc.size)
            return r;
        auto it = regions_.upper_bound(va);
        if (it == regions_.begin())
            return nullptr;
        --it;
        lastRegion_ = &it->second;
        return lastRegion_;
    }

    const AddressCodec &codec_;
    VAddr nextBase_;
    std::map<VAddr, Region> regions_;             // keyed by base VA
    /**
     * vpage base -> frame base. Deterministic despite the unordered
     * container because it is only ever probed by key (find /
     * count / erase-by-key) -- no code iterates it, so its hash
     * order can never leak into results. detlint's unordered-iter
     * rule enforces that this stays true; switch to std::map before
     * adding any walk over the mappings.
     */
    std::unordered_map<VAddr, PAddr> pageMap_;
    std::uint64_t bytesAllocated_ = 0;
    /** translate() memo: 1 is never a page-aligned address, so it is a
     *  safe "empty" sentinel. */
    static constexpr std::size_t kTlbSlots = 256;
    mutable std::array<VAddr, kTlbSlots> tlbVpage_;
    mutable std::array<PAddr, kTlbSlots> tlbFrame_;
    /** regionOf() memo; dropped whenever a region is erased. */
    mutable const Region *lastRegion_ = nullptr;

    void
    flushTlb() const
    {
        tlbVpage_.fill(1);
        tlbFrame_.fill(0);
        lastRegion_ = nullptr;
    }
};

} // namespace gpubox::mem

#endif // GPUBOX_MEM_VIRTUAL_SPACE_HH
