/**
 * @file
 * Physical address codec for the multi-GPU NUMA address space.
 *
 * A physical address identifies the owning GPU (whose HBM holds the
 * page and whose L2 caches it -- the paper's central reverse-engineered
 * property), the frame number within that GPU's memory and the byte
 * offset within the page.
 */

#ifndef GPUBOX_MEM_ADDRESS_HH
#define GPUBOX_MEM_ADDRESS_HH

#include <cstdint>

#include "util/types.hh"

namespace gpubox::mem
{

/** Decoded form of a PAddr. */
struct PhysLoc
{
    GpuId gpu;
    std::uint64_t frame;
    std::uint64_t offset;

    bool
    operator==(const PhysLoc &o) const
    {
        return gpu == o.gpu && frame == o.frame && offset == o.offset;
    }
};

/**
 * Packs/unpacks physical addresses for a given page size.
 * Layout (msb..lsb): [gpu : 8][frame : 32][offset : pageShift].
 */
class AddressCodec
{
  public:
    /** @param page_bytes page size; must be a power of two. */
    explicit AddressCodec(std::uint64_t page_bytes);

    std::uint64_t pageBytes() const { return pageBytes_; }
    unsigned pageShift() const { return pageShift_; }

    PAddr pack(GpuId gpu, std::uint64_t frame, std::uint64_t offset) const;
    PhysLoc unpack(PAddr addr) const;

    GpuId gpuOf(PAddr addr) const;
    std::uint64_t frameOf(PAddr addr) const;
    std::uint64_t offsetOf(PAddr addr) const;

    /** Physical address of the first byte of the page holding @p addr. */
    PAddr pageBase(PAddr addr) const;

  private:
    std::uint64_t pageBytes_;
    unsigned pageShift_;
};

} // namespace gpubox::mem

#endif // GPUBOX_MEM_ADDRESS_HH
