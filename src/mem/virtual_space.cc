#include "mem/virtual_space.hh"

#include <algorithm>

#include "util/bitops.hh"

namespace gpubox::mem
{

VirtualSpace::VirtualSpace(const AddressCodec &codec, VAddr base)
    : codec_(codec), nextBase_(base)
{
    flushTlb();
}

VAddr
VirtualSpace::allocate(std::uint64_t bytes, GpuId gpu,
                       PageAllocator &allocator)
{
    if (bytes == 0)
        fatal("VirtualSpace::allocate: zero-byte allocation");
    const std::uint64_t page = codec_.pageBytes();
    const std::uint64_t pages = divCeil(bytes, page);

    Region region;
    region.alloc.base = nextBase_;
    region.alloc.size = pages * page;
    region.alloc.gpu = gpu;
    region.alloc.frames = allocator.allocMany(pages);
    region.bytes.assign(pages * page, 0);

    for (std::uint64_t i = 0; i < pages; ++i) {
        const VAddr vpage = region.alloc.base + i * page;
        GPUBOX_ASSERT(pageMap_.count(vpage) == 0,
                      "VirtualSpace page map: page 0x", std::hex, vpage,
                      " mapped twice");
        pageMap_[vpage] = codec_.pack(gpu, region.alloc.frames[i], 0);
    }

    const VAddr base = region.alloc.base;
    bytesAllocated_ += region.alloc.size;
    // Leave an unmapped guard gap between allocations.
    nextBase_ += region.alloc.size + page;
    regions_.emplace(base, std::move(region));
    return base;
}

void
VirtualSpace::release(VAddr base, PageAllocator &allocator)
{
    auto it = regions_.find(base);
    if (it == regions_.end())
        fatal("VirtualSpace::release: no allocation at ", base);
    const Allocation &alloc = it->second.alloc;
    const std::uint64_t page = codec_.pageBytes();
    for (std::uint64_t i = 0; i < alloc.frames.size(); ++i) {
        allocator.free(alloc.frames[i]);
        const std::size_t erased = pageMap_.erase(alloc.base + i * page);
        GPUBOX_ASSERT(erased == 1, "VirtualSpace page map: page 0x",
                      std::hex, alloc.base + i * page,
                      " of a live allocation was not mapped");
    }
    bytesAllocated_ -= alloc.size;
    regions_.erase(it);
    flushTlb(); // pages just unmapped
}

bool
VirtualSpace::isMapped(VAddr va) const
{
    const std::uint64_t page = codec_.pageBytes();
    return pageMap_.count(va & ~(page - 1)) != 0;
}

const Allocation &
VirtualSpace::allocationAt(VAddr base) const
{
    auto it = regions_.find(base);
    if (it == regions_.end())
        fatal("VirtualSpace::allocationAt: no allocation at ", base);
    return it->second.alloc;
}

const std::uint8_t *
VirtualSpace::bytePtr(VAddr va, std::uint64_t len) const
{
    const Region *region = regionOf(va);
    if (!region)
        fatal("VirtualSpace: access to unmapped address 0x", std::hex, va);
    const VAddr off = va - region->alloc.base;
    if (off + len > region->alloc.size)
        fatal("VirtualSpace: access of ", len, " bytes at offset ", off,
              " overruns allocation of ", region->alloc.size, " bytes");
    return region->bytes.data() + off;
}

const std::uint8_t *
VirtualSpace::spanPtr(VAddr va, std::uint64_t max_len,
                      std::uint64_t &span_len) const
{
    const Region *region = regionOf(va);
    if (!region)
        fatal("VirtualSpace: access to unmapped address 0x", std::hex, va);
    const VAddr off = va - region->alloc.base;
    if (off >= region->alloc.size)
        fatal("VirtualSpace: access to unmapped address 0x", std::hex, va);
    span_len = std::min<std::uint64_t>(max_len, region->alloc.size - off);
    return region->bytes.data() + off;
}

void
VirtualSpace::copyBytes(VAddr dst, VAddr src, std::uint64_t len)
{
    while (len > 0) {
        std::uint64_t src_span = 0;
        std::uint64_t dst_span = 0;
        const std::uint8_t *sp = spanPtr(src, len, src_span);
        auto *dp = const_cast<std::uint8_t *>(spanPtr(dst, len, dst_span));
        const std::uint64_t n = std::min(src_span, dst_span);
        // memmove: src and dst may overlap inside one allocation.
        std::memmove(dp, sp, n);
        src += n;
        dst += n;
        len -= n;
    }
}

void
VirtualSpace::setBytes(VAddr dst, std::uint8_t value, std::uint64_t len)
{
    while (len > 0) {
        std::uint64_t span = 0;
        auto *dp = const_cast<std::uint8_t *>(spanPtr(dst, len, span));
        std::memset(dp, value, span);
        dst += span;
        len -= span;
    }
}

} // namespace gpubox::mem
