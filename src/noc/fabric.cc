#include "noc/fabric.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::noc
{

Fabric::Fabric(const Topology &topo, const LinkParams &params,
               const SwitchParams &switch_params)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params),
             switch_params)
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link,
               const SwitchParams &switch_params)
    : Fabric(topo, std::move(per_link),
             std::vector<SwitchParams>(
                 static_cast<std::size_t>(topo.numSwitches()),
                 switch_params))
{}

Fabric::Fabric(const Topology &topo, const LinkParams &params,
               std::vector<SwitchParams> per_switch)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params),
             std::move(per_switch))
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link,
               std::vector<SwitchParams> per_switch)
    : topo_(topo), numNodes_(topo.numNodes()),
      params_(std::move(per_link)), switchParams_(std::move(per_switch))
{
    if (params_.size() != topo.links().size())
        fatal("fabric over '", topo.name(), "' needs ",
              topo.links().size(), " per-link parameter sets, got ",
              params_.size());
    if (switchParams_.size() !=
        static_cast<std::size_t>(topo.numSwitches()))
        fatal("fabric over '", topo.name(), "' needs ",
              topo.numSwitches(), " per-switch parameter sets, got ",
              switchParams_.size());
    meters_.reserve(params_.size() * 2);
    isPortLink_.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const LinkParams &p = params_[i];
        if (p.bytesPerCycle == 0)
            fatal("fabric link bytesPerCycle must be positive");
        const auto [a, b] = topo.links()[i];
        isPortLink_.push_back(topo.isSwitch(a) || topo.isSwitch(b));
        // Both direction slots exist for every link; GPU-to-GPU links
        // only ever use slot 0 (portMeter()).
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
    }
    for (const SwitchParams &sp : switchParams_) {
        crossbarMeters_.emplace_back(sp.windowCycles,
                                     sp.freeSlotsPerWindow,
                                     sp.queueCyclesPerExtra);
    }
    perDir_.assign(params_.size() * 2, 0);
    crossings_.assign(static_cast<std::size_t>(topo.numSwitches()), 0);
    buildRouteTables();
#if GPUBOX_CHECKED_ENABLED
    auditRouteTables();
#endif
}

void
Fabric::auditRouteTables() const
{
#if GPUBOX_CHECKED_ENABLED
    const int nodes = topo_.numNodes();
    for (NodeId from = 0; from < nodes; ++from) {
        for (NodeId to = 0; to < nodes; ++to) {
            const PairRoute &pr =
                pairRoutes_[static_cast<std::size_t>(from) * nodes + to];
            if (from == to) {
                GPUBOX_INVARIANT(pr.count == 0,
                                 "route table: self-route of node ",
                                 from, " has ", pr.count, " legs");
                continue;
            }
            const PairRoute &rev =
                pairRoutes_[static_cast<std::size_t>(to) * nodes + from];
            GPUBOX_INVARIANT(pr.count == rev.count,
                             "route table: asymmetric routes ", from,
                             "->", to, " (", pr.count, " legs) vs ", to,
                             "->", from, " (", rev.count, " legs) on '",
                             topo_.name(), "'");
            if (pr.count == 0)
                continue;
            GPUBOX_INVARIANT(
                static_cast<int>(pr.count) == topo_.hopCount(from, to),
                "route table: route ", from, "->", to, " has ",
                pr.count, " legs but the topology distance is ",
                topo_.hopCount(from, to), " on '", topo_.name(), "'");
            GPUBOX_INVARIANT(pr.baseCycles == rev.baseCycles,
                             "route table: asymmetric base cost ",
                             pr.baseCycles, " vs ", rev.baseCycles,
                             " for pair (", from, ",", to, ") on '",
                             topo_.name(), "'");
            GPUBOX_INVARIANT(pr.bottleneckBpc == rev.bottleneckBpc,
                             "route table: asymmetric bottleneck ",
                             pr.bottleneckBpc, " vs ", rev.bottleneckBpc,
                             " for pair (", from, ",", to, ") on '",
                             topo_.name(), "'");
            GPUBOX_INVARIANT(
                static_cast<std::size_t>(pr.begin) + pr.count <=
                    legs_.size(),
                "route table: route ", from, "->", to,
                " points past the compiled leg store (", pr.begin, "+",
                pr.count, " of ", legs_.size(), ")");
            Cycles base = 0;
            for (std::uint32_t i = 0; i < pr.count; ++i) {
                const RouteLeg &leg = legs_[pr.begin + i];
                GPUBOX_INVARIANT(leg.meter < meters_.size(),
                                 "route table: leg ", i, " of route ",
                                 from, "->", to, " names port meter ",
                                 leg.meter, " of ", meters_.size());
                GPUBOX_INVARIANT(
                    leg.crossbar < static_cast<std::int32_t>(
                                       crossbarMeters_.size()),
                    "route table: leg ", i, " of route ", from, "->",
                    to, " crosses switch ", leg.crossbar, " of ",
                    crossbarMeters_.size());
                base += leg.hopCycles + leg.crossbarCycles;
            }
            GPUBOX_INVARIANT(base == pr.baseCycles,
                             "route table: cached base cost ",
                             pr.baseCycles, " of route ", from, "->",
                             to, " disagrees with its legs (", base,
                             ") on '", topo_.name(), "'");
        }
    }
#endif
}

void
Fabric::auditPortConservation() const
{
#if GPUBOX_CHECKED_ENABLED
    std::uint64_t legTotal = 0;
    for (std::size_t i = 0; i < perDir_.size(); ++i) {
        legTotal += perDir_[i];
        GPUBOX_INVARIANT(meters_[i].totalRequests() == perDir_[i],
                         "port conservation: meter ", i, " served ",
                         meters_[i].totalRequests(),
                         " requests but the directed counter says ",
                         perDir_[i]);
    }
    GPUBOX_INVARIANT(legTotal == transfers_,
                     "port conservation: ", legTotal,
                     " directed port records vs ", transfers_,
                     " charged legs on '", topo_.name(), "'");
    std::uint64_t crossTotal = 0;
    for (std::size_t s = 0; s < crossings_.size(); ++s) {
        crossTotal += crossings_[s];
        GPUBOX_INVARIANT(
            crossbarMeters_[s].totalRequests() == crossings_[s],
            "port conservation: crossbar ", s, " metered ",
            crossbarMeters_[s].totalRequests(),
            " crossings but the counter says ", crossings_[s]);
    }
    GPUBOX_INVARIANT(crossTotal <= transfers_,
                     "port conservation: ", crossTotal,
                     " crossbar crossings exceed ", transfers_,
                     " charged legs on '", topo_.name(), "'");
#endif
}

#if GPUBOX_CHECKED_ENABLED
void
Fabric::debugCorruptRouteForAudit()
{
    if (legs_.empty())
        fatal("debugCorruptRouteForAudit needs a routed topology");
    // Desynchronize one leg from its route's cached base cost: the
    // next auditRouteTables() must report the stale aggregate.
    ++legs_[0].hopCycles;
}
#endif

void
Fabric::buildRouteTables()
{
    const int nodes = topo_.numNodes();
    pairRoutes_.assign(static_cast<std::size_t>(nodes) * nodes,
                       PairRoute{});
    for (NodeId from = 0; from < nodes; ++from) {
        for (NodeId to = 0; to < nodes; ++to) {
            if (from == to)
                continue;
            const std::vector<NodeId> &path = topo_.route(from, to);
            if (path.size() < 2)
                continue; // unreachable; charge-time fatal
            PairRoute pr;
            pr.begin = static_cast<std::uint32_t>(legs_.size());
            pr.count = static_cast<std::uint32_t>(path.size() - 1);
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const NodeId u = path[i];
                const NodeId v = path[i + 1];
                const int link = topo_.linkIndex(u, v);
                const LinkParams &p = params_[link];
                RouteLeg leg;
                leg.meter =
                    static_cast<std::uint32_t>(dirIndex(link, u, v));
                leg.crossbar =
                    topo_.isSwitch(v) && i + 2 < path.size()
                        ? static_cast<std::int32_t>(v - topo_.numGpus())
                        : -1;
                leg.hopCycles = p.hopCycles;
                leg.crossbarCycles =
                    leg.crossbar >= 0
                        ? switchParams_[static_cast<std::size_t>(
                                            leg.crossbar)]
                              .crossbarCycles
                        : 0;
                legs_.push_back(leg);
                pr.baseCycles += p.hopCycles + leg.crossbarCycles;
                pr.bottleneckBpc =
                    pr.bottleneckBpc == 0
                        ? p.bytesPerCycle
                        : std::min(pr.bottleneckBpc, p.bytesPerCycle);
            }
            pairRoutes_[static_cast<std::size_t>(from) * nodes + to] =
                pr;
        }
    }
}

const Fabric::PairRoute &
Fabric::pairRoute(NodeId from, NodeId to) const
{
    if (from < 0 || from >= topo_.numNodes() || to < 0 ||
        to >= topo_.numNodes()) {
        // Same out-of-range diagnostic as querying the topology.
        topo_.route(from, to);
    }
    return pairRoutes_[static_cast<std::size_t>(from) *
                           topo_.numNodes() +
                       to];
}

ContentionMeter &
Fabric::portMeter(int link, NodeId from, NodeId to)
{
    return meters_[dirIndex(link, from, to)];
}

const ContentionMeter &
Fabric::portMeter(int link, NodeId from, NodeId to) const
{
    return meters_[dirIndex(link, from, to)];
}

Cycles
Fabric::routeBaseCycles(NodeId from, NodeId to) const
{
    const PairRoute &pr = pairRoute(from, to);
    if (pr.count == 0)
        fatal("fabric base-cost query between nodes ", from, " and ",
              to, " which share no route on topology '", topo_.name(),
              "'");
    return pr.baseCycles;
}

Cycles
Fabric::transferCycles(NodeId from, NodeId to, Cycles now,
                       std::uint64_t bytes)
{
    return chargeRoute(from, to, now, bytes);
}

std::uint32_t
Fabric::linkOccupancy(NodeId from, NodeId to, Cycles now) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return portMeter(link, from, to).occupancy(now);
}

std::uint32_t
Fabric::crossbarOccupancy(NodeId sw, Cycles now) const
{
    if (!topo_.isSwitch(sw))
        return 0;
    return crossbarMeters_[static_cast<std::size_t>(sw -
                                                    topo_.numGpus())]
        .occupancy(now);
}

std::uint64_t
Fabric::switchCrossings(NodeId sw) const
{
    if (!topo_.isSwitch(sw))
        return 0;
    return crossings_[static_cast<std::size_t>(sw - topo_.numGpus())];
}

const SwitchParams &
Fabric::switchParamsOf(NodeId sw) const
{
    if (!topo_.isSwitch(sw))
        fatal("fabric switch-parameter query on node ", sw,
              " which is not a switch on topology '", topo_.name(),
              "'");
    return switchParams_[static_cast<std::size_t>(sw -
                                                  topo_.numGpus())];
}

std::uint64_t
Fabric::portTransfers(NodeId from, NodeId to) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return perDir_[dirIndex(link, from, to)];
}

std::uint64_t
Fabric::linkTransfers(NodeId a, NodeId b) const
{
    const int link = topo_.linkIndex(a, b);
    if (link < 0)
        return 0;
    return perDir_[static_cast<std::size_t>(link) * 2] +
           perDir_[static_cast<std::size_t>(link) * 2 + 1];
}

void
Fabric::resetStats()
{
#if GPUBOX_CHECKED_ENABLED
    // The traffic about to be discarded must balance before it goes.
    auditPortConservation();
#endif
    for (auto &m : meters_)
        m.reset();
    for (auto &m : crossbarMeters_)
        m.reset();
    std::fill(perDir_.begin(), perDir_.end(), 0);
    std::fill(crossings_.begin(), crossings_.end(), 0);
    transfers_ = 0;
}

} // namespace gpubox::noc
