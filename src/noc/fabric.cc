#include "noc/fabric.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::noc
{

Fabric::Fabric(const Topology &topo, const LinkParams &params,
               const SwitchParams &switch_params)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params),
             switch_params)
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link,
               const SwitchParams &switch_params)
    : Fabric(topo, std::move(per_link),
             std::vector<SwitchParams>(
                 static_cast<std::size_t>(topo.numSwitches()),
                 switch_params))
{}

Fabric::Fabric(const Topology &topo, const LinkParams &params,
               std::vector<SwitchParams> per_switch)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params),
             std::move(per_switch))
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link,
               std::vector<SwitchParams> per_switch)
    : topo_(topo), numNodes_(topo.numNodes()),
      params_(std::move(per_link)), switchParams_(std::move(per_switch))
{
    if (params_.size() != topo.links().size())
        fatal("fabric over '", topo.name(), "' needs ",
              topo.links().size(), " per-link parameter sets, got ",
              params_.size());
    if (switchParams_.size() !=
        static_cast<std::size_t>(topo.numSwitches()))
        fatal("fabric over '", topo.name(), "' needs ",
              topo.numSwitches(), " per-switch parameter sets, got ",
              switchParams_.size());
    meters_.reserve(params_.size() * 2);
    isPortLink_.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const LinkParams &p = params_[i];
        if (p.bytesPerCycle == 0)
            fatal("fabric link bytesPerCycle must be positive");
        const auto [a, b] = topo.links()[i];
        isPortLink_.push_back(topo.isSwitch(a) || topo.isSwitch(b));
        // Both direction slots exist for every link; GPU-to-GPU links
        // only ever use slot 0 (portMeter()).
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
    }
    for (const SwitchParams &sp : switchParams_) {
        crossbarMeters_.emplace_back(sp.windowCycles,
                                     sp.freeSlotsPerWindow,
                                     sp.queueCyclesPerExtra);
    }
    perDir_.assign(params_.size() * 2, 0);
    crossings_.assign(static_cast<std::size_t>(topo.numSwitches()), 0);
    buildRouteTables();
}

void
Fabric::buildRouteTables()
{
    const int nodes = topo_.numNodes();
    pairRoutes_.assign(static_cast<std::size_t>(nodes) * nodes,
                       PairRoute{});
    for (NodeId from = 0; from < nodes; ++from) {
        for (NodeId to = 0; to < nodes; ++to) {
            if (from == to)
                continue;
            const std::vector<NodeId> &path = topo_.route(from, to);
            if (path.size() < 2)
                continue; // unreachable; charge-time fatal
            PairRoute pr;
            pr.begin = static_cast<std::uint32_t>(legs_.size());
            pr.count = static_cast<std::uint32_t>(path.size() - 1);
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const NodeId u = path[i];
                const NodeId v = path[i + 1];
                const int link = topo_.linkIndex(u, v);
                const LinkParams &p = params_[link];
                RouteLeg leg;
                leg.meter =
                    static_cast<std::uint32_t>(dirIndex(link, u, v));
                leg.crossbar =
                    topo_.isSwitch(v) && i + 2 < path.size()
                        ? static_cast<std::int32_t>(v - topo_.numGpus())
                        : -1;
                leg.hopCycles = p.hopCycles;
                leg.crossbarCycles =
                    leg.crossbar >= 0
                        ? switchParams_[static_cast<std::size_t>(
                                            leg.crossbar)]
                              .crossbarCycles
                        : 0;
                legs_.push_back(leg);
                pr.baseCycles += p.hopCycles + leg.crossbarCycles;
                pr.bottleneckBpc =
                    pr.bottleneckBpc == 0
                        ? p.bytesPerCycle
                        : std::min(pr.bottleneckBpc, p.bytesPerCycle);
            }
            pairRoutes_[static_cast<std::size_t>(from) * nodes + to] =
                pr;
        }
    }
}

const Fabric::PairRoute &
Fabric::pairRoute(NodeId from, NodeId to) const
{
    if (from < 0 || from >= topo_.numNodes() || to < 0 ||
        to >= topo_.numNodes()) {
        // Same out-of-range diagnostic as querying the topology.
        topo_.route(from, to);
    }
    return pairRoutes_[static_cast<std::size_t>(from) *
                           topo_.numNodes() +
                       to];
}

ContentionMeter &
Fabric::portMeter(int link, NodeId from, NodeId to)
{
    return meters_[dirIndex(link, from, to)];
}

const ContentionMeter &
Fabric::portMeter(int link, NodeId from, NodeId to) const
{
    return meters_[dirIndex(link, from, to)];
}

Cycles
Fabric::routeBaseCycles(NodeId from, NodeId to) const
{
    const PairRoute &pr = pairRoute(from, to);
    if (pr.count == 0)
        fatal("fabric base-cost query between nodes ", from, " and ",
              to, " which share no route on topology '", topo_.name(),
              "'");
    return pr.baseCycles;
}

Cycles
Fabric::transferCycles(NodeId from, NodeId to, Cycles now,
                       std::uint64_t bytes)
{
    return chargeRoute(from, to, now, bytes);
}

std::uint32_t
Fabric::linkOccupancy(NodeId from, NodeId to, Cycles now) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return portMeter(link, from, to).occupancy(now);
}

std::uint32_t
Fabric::crossbarOccupancy(NodeId sw, Cycles now) const
{
    if (!topo_.isSwitch(sw))
        return 0;
    return crossbarMeters_[static_cast<std::size_t>(sw -
                                                    topo_.numGpus())]
        .occupancy(now);
}

std::uint64_t
Fabric::switchCrossings(NodeId sw) const
{
    if (!topo_.isSwitch(sw))
        return 0;
    return crossings_[static_cast<std::size_t>(sw - topo_.numGpus())];
}

const SwitchParams &
Fabric::switchParamsOf(NodeId sw) const
{
    if (!topo_.isSwitch(sw))
        fatal("fabric switch-parameter query on node ", sw,
              " which is not a switch on topology '", topo_.name(),
              "'");
    return switchParams_[static_cast<std::size_t>(sw -
                                                  topo_.numGpus())];
}

std::uint64_t
Fabric::portTransfers(NodeId from, NodeId to) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return perDir_[dirIndex(link, from, to)];
}

std::uint64_t
Fabric::linkTransfers(NodeId a, NodeId b) const
{
    const int link = topo_.linkIndex(a, b);
    if (link < 0)
        return 0;
    return perDir_[static_cast<std::size_t>(link) * 2] +
           perDir_[static_cast<std::size_t>(link) * 2 + 1];
}

void
Fabric::resetStats()
{
    for (auto &m : meters_)
        m.reset();
    for (auto &m : crossbarMeters_)
        m.reset();
    std::fill(perDir_.begin(), perDir_.end(), 0);
    std::fill(crossings_.begin(), crossings_.end(), 0);
    transfers_ = 0;
}

} // namespace gpubox::noc
