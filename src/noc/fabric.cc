#include "noc/fabric.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::noc
{

Fabric::Fabric(const Topology &topo, const LinkParams &params,
               const SwitchParams &switch_params)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params),
             switch_params)
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link,
               const SwitchParams &switch_params)
    : Fabric(topo, std::move(per_link),
             std::vector<SwitchParams>(
                 static_cast<std::size_t>(topo.numSwitches()),
                 switch_params))
{}

Fabric::Fabric(const Topology &topo, const LinkParams &params,
               std::vector<SwitchParams> per_switch)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params),
             std::move(per_switch))
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link,
               std::vector<SwitchParams> per_switch)
    : topo_(topo), numGpus_(topo.numGpus()),
      params_(std::move(per_link)), switchParams_(std::move(per_switch))
{
    if (params_.size() != topo.links().size())
        fatal("fabric over '", topo.name(), "' needs ",
              topo.links().size(), " per-link parameter sets, got ",
              params_.size());
    if (switchParams_.size() !=
        static_cast<std::size_t>(topo.numSwitches()))
        fatal("fabric over '", topo.name(), "' needs ",
              topo.numSwitches(), " per-switch parameter sets, got ",
              switchParams_.size());
    meters_.reserve(params_.size() * 2);
    isPortLink_.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const LinkParams &p = params_[i];
        if (p.bytesPerCycle == 0)
            fatal("fabric link bytesPerCycle must be positive");
        const auto [a, b] = topo.links()[i];
        isPortLink_.push_back(topo.isSwitch(a) || topo.isSwitch(b));
        // Both direction slots exist for every link; GPU-to-GPU links
        // only ever use slot 0 (portMeter()).
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
    }
    for (const SwitchParams &sp : switchParams_) {
        crossbarMeters_.emplace_back(sp.windowCycles,
                                     sp.freeSlotsPerWindow,
                                     sp.queueCyclesPerExtra);
    }
    perDir_.assign(params_.size() * 2, 0);
    crossings_.assign(static_cast<std::size_t>(topo.numSwitches()), 0);
    // No eager route compilation: GPU-pair rows fill on first
    // traversal (gpuPairRoute), switch-endpoint traffic is charged
    // straight off the topology.
    gpuRows_.resize(static_cast<std::size_t>(numGpus_));
#if GPUBOX_CHECKED_ENABLED
    auditRouteTables();
#endif
}

void
Fabric::auditRouteTables() const
{
#if GPUBOX_CHECKED_ENABLED
    const int nodes = topo_.numNodes();
    // Part 1: the topology's on-demand routes themselves -- reverse
    // symmetry, hop-count minimality and link adjacency. Exhaustive
    // on anything up to superpod size, strided on pod-scale graphs
    // (the route rule is uniform, so a stride still covers every
    // node/role combination).
    const int stride = nodes <= 320 ? 1 : nodes / 96 + 1;
    for (NodeId a = 0; a < nodes; a += stride) {
        for (NodeId b = a; b < nodes; b += stride) {
            const std::vector<NodeId> fwd = topo_.route(a, b).toVector();
            const RouteView rev = topo_.route(b, a);
            GPUBOX_INVARIANT(
                std::equal(fwd.rbegin(), fwd.rend(), rev.begin(),
                           rev.end()),
                "route audit: route ", a, "->", b,
                " is not the reverse of ", b, "->", a, " on '",
                topo_.name(), "'");
            if (a == b) {
                GPUBOX_INVARIANT(fwd.size() == 1 && fwd[0] == a,
                                 "route audit: self-route of node ", a,
                                 " is not {", a, "} on '", topo_.name(),
                                 "'");
                continue;
            }
            const int hops = topo_.hopCount(a, b);
            GPUBOX_INVARIANT(
                fwd.empty() ? hops == -1
                            : static_cast<int>(fwd.size()) == hops + 1,
                "route audit: route ", a, "->", b, " has ", fwd.size(),
                " nodes but the topology distance is ", hops, " on '",
                topo_.name(), "'");
            for (std::size_t i = 0; i + 1 < fwd.size(); ++i) {
                GPUBOX_INVARIANT(
                    topo_.linkIndex(fwd[i], fwd[i + 1]) >= 0,
                    "route audit: route ", a, "->", b, " hops ",
                    fwd[i], "->", fwd[i + 1],
                    " across a missing link on '", topo_.name(), "'");
            }
        }
    }
    // Part 2: every lazily compiled pair must match a fresh route
    // walk leg for leg, and its cached aggregates must match its
    // legs.
    for (NodeId from = 0; from < numGpus_; ++from) {
        const GpuRow *row = gpuRows_[static_cast<std::size_t>(from)]
                                .get();
        if (!row)
            continue;
        for (NodeId to = 0; to < numGpus_; ++to) {
            const PairRoute &pr = row->pairs[static_cast<std::size_t>(to)];
            if (pr.begin == kUncompiled)
                continue;
            const std::vector<NodeId> path =
                topo_.route(from, to).toVector();
            if (path.size() < 2) {
                GPUBOX_INVARIANT(pr.count == 0,
                                 "route table: routeless pair ", from,
                                 "->", to, " compiled ", pr.count,
                                 " legs on '", topo_.name(), "'");
                continue;
            }
            GPUBOX_INVARIANT(
                static_cast<std::size_t>(pr.count) + 1 == path.size(),
                "route table: route ", from, "->", to, " compiled ",
                pr.count, " legs but the topology path has ",
                path.size() - 1, " hops on '", topo_.name(), "'");
            GPUBOX_INVARIANT(
                static_cast<std::size_t>(pr.begin) + pr.count <=
                    row->legs.size(),
                "route table: route ", from, "->", to,
                " points past the compiled leg store (", pr.begin, "+",
                pr.count, " of ", row->legs.size(), ")");
            Cycles base = 0;
            std::uint32_t bottleneck = 0;
            for (std::uint32_t i = 0; i < pr.count; ++i) {
                const RouteLeg &leg = row->legs[pr.begin + i];
                const NodeId u = path[i];
                const NodeId v = path[i + 1];
                const int link = topo_.linkIndex(u, v);
                const LinkParams &p =
                    params_[static_cast<std::size_t>(link)];
                GPUBOX_INVARIANT(
                    leg.meter == dirIndex(link, u, v),
                    "route table: leg ", i, " of route ", from, "->",
                    to, " meters slot ", leg.meter,
                    " but the topology hop ", u, "->", v, " is slot ",
                    dirIndex(link, u, v));
                const std::int32_t xbar =
                    topo_.isSwitch(v) && i + 1 < pr.count
                        ? static_cast<std::int32_t>(v - topo_.numGpus())
                        : -1;
                GPUBOX_INVARIANT(leg.crossbar == xbar,
                                 "route table: leg ", i, " of route ",
                                 from, "->", to, " crosses crossbar ",
                                 leg.crossbar, " but the topology says ",
                                 xbar);
                GPUBOX_INVARIANT(
                    leg.hopCycles == p.hopCycles,
                    "route table: leg ", i, " of route ", from, "->",
                    to, " charges ", leg.hopCycles,
                    " hop cycles but link ", link, " costs ",
                    p.hopCycles);
                const Cycles xcycles =
                    xbar >= 0 ? switchParams_[static_cast<std::size_t>(
                                                  xbar)]
                                    .crossbarCycles
                              : 0;
                GPUBOX_INVARIANT(leg.crossbarCycles == xcycles,
                                 "route table: leg ", i, " of route ",
                                 from, "->", to, " charges ",
                                 leg.crossbarCycles,
                                 " crossbar cycles, expected ", xcycles);
                base += leg.hopCycles + leg.crossbarCycles;
                bottleneck = bottleneck == 0
                                 ? p.bytesPerCycle
                                 : std::min(bottleneck, p.bytesPerCycle);
            }
            GPUBOX_INVARIANT(base == pr.baseCycles,
                             "route table: cached base cost ",
                             pr.baseCycles, " of route ", from, "->",
                             to, " disagrees with its legs (", base,
                             ") on '", topo_.name(), "'");
            GPUBOX_INVARIANT(bottleneck == pr.bottleneckBpc,
                             "route table: cached bottleneck ",
                             pr.bottleneckBpc, " of route ", from, "->",
                             to, " disagrees with its links (",
                             bottleneck, ") on '", topo_.name(), "'");
        }
    }
#endif
}

void
Fabric::auditPortConservation() const
{
#if GPUBOX_CHECKED_ENABLED
    std::uint64_t legTotal = 0;
    for (std::size_t i = 0; i < perDir_.size(); ++i) {
        legTotal += perDir_[i];
        GPUBOX_INVARIANT(meters_[i].totalRequests() == perDir_[i],
                         "port conservation: meter ", i, " served ",
                         meters_[i].totalRequests(),
                         " requests but the directed counter says ",
                         perDir_[i]);
    }
    const std::uint64_t charged =
        transfers_.load(std::memory_order_relaxed);
    GPUBOX_INVARIANT(legTotal == charged,
                     "port conservation: ", legTotal,
                     " directed port records vs ", charged,
                     " charged legs on '", topo_.name(), "'");
    std::uint64_t crossTotal = 0;
    for (std::size_t s = 0; s < crossings_.size(); ++s) {
        crossTotal += crossings_[s];
        GPUBOX_INVARIANT(
            crossbarMeters_[s].totalRequests() == crossings_[s],
            "port conservation: crossbar ", s, " metered ",
            crossbarMeters_[s].totalRequests(),
            " crossings but the counter says ", crossings_[s]);
    }
    GPUBOX_INVARIANT(crossTotal <= charged,
                     "port conservation: ", crossTotal,
                     " crossbar crossings exceed ", charged,
                     " charged legs on '", topo_.name(), "'");
#endif
}

#if GPUBOX_CHECKED_ENABLED
void
Fabric::debugCorruptRouteForAudit()
{
    // Lazy compilation may not have materialized any leg yet: force
    // the first routed GPU pair in, then desynchronize one leg from
    // its route's compiled form -- the next auditRouteTables() must
    // report the mismatch.
    GpuRow *row = gpuRows_.empty() ? nullptr : gpuRows_[0].get();
    if (!row || row->legs.empty()) {
        for (NodeId to = 1; to < numGpus_; ++to) {
            if (topo_.reachable(0, to)) {
                (void)gpuRowFor(0, to);
                break;
            }
        }
        row = gpuRows_.empty() ? nullptr : gpuRows_[0].get();
    }
    if (!row || row->legs.empty())
        fatal("debugCorruptRouteForAudit needs a routed topology");
    ++row->legs[0].hopCycles;
}
#endif

const Fabric::GpuRow &
Fabric::gpuRowFor(NodeId from, NodeId to) const
{
    auto &row = gpuRows_[static_cast<std::size_t>(from)];
    if (!row)
        row = std::make_unique<GpuRow>(static_cast<std::size_t>(numGpus_));
    if (row->pairs[static_cast<std::size_t>(to)].begin == kUncompiled)
        compilePair(from, to, *row);
    return *row;
}

void
Fabric::compilePair(NodeId from, NodeId to, GpuRow &row) const
{
    PairRoute &pr = row.pairs[static_cast<std::size_t>(to)];
    const RouteView path = topo_.route(from, to);
    pr.begin = static_cast<std::uint32_t>(row.legs.size());
    if (path.size() < 2)
        return; // self or unreachable: compiled as "no route"
    pr.count = static_cast<std::uint32_t>(path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const NodeId u = path[i];
        const NodeId v = path[i + 1];
        const int link = topo_.linkIndex(u, v);
        const LinkParams &p = params_[static_cast<std::size_t>(link)];
        RouteLeg leg;
        leg.meter = static_cast<std::uint32_t>(dirIndex(link, u, v));
        leg.crossbar =
            topo_.isSwitch(v) && i + 2 < path.size()
                ? static_cast<std::int32_t>(v - topo_.numGpus())
                : -1;
        leg.hopCycles = p.hopCycles;
        leg.crossbarCycles =
            leg.crossbar >= 0
                ? switchParams_[static_cast<std::size_t>(leg.crossbar)]
                      .crossbarCycles
                : 0;
        row.legs.push_back(leg);
        pr.baseCycles += p.hopCycles + leg.crossbarCycles;
        pr.bottleneckBpc =
            pr.bottleneckBpc == 0
                ? p.bytesPerCycle
                : std::min(pr.bottleneckBpc, p.bytesPerCycle);
    }
    compiledPairs_.fetch_add(1, std::memory_order_relaxed);
}

Cycles
Fabric::chargeRoute(NodeId from, NodeId to, Cycles now,
                    std::uint64_t bytes)
{
    if (from >= 0 && from < numGpus_ && to >= 0 && to < numGpus_) {
        const GpuRow &row = gpuRowFor(from, to);
        const PairRoute &pr = row.pairs[static_cast<std::size_t>(to)];
        if (pr.count == 0)
            fatal("fabric traverse between nodes ", from, " and ", to,
                  " which share no route on topology '", topo_.name(),
                  "'");
        return chargeCompiled(row, pr, now, bytes);
    }
    return chargeUncached(from, to, now, bytes);
}

Cycles
Fabric::chargeUncached(NodeId from, NodeId to, Cycles now,
                       std::uint64_t bytes)
{
    // topo_.route carries the out-of-range diagnostic.
    const RouteView path = topo_.route(from, to);
    if (path.size() < 2)
        fatal("fabric traverse between nodes ", from, " and ", to,
              " which share no route on topology '", topo_.name(),
              "'");
    Cycles total = 0;
    std::uint32_t bottleneck = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const NodeId u = path[i];
        const NodeId v = path[i + 1];
        const int link = topo_.linkIndex(u, v);
        const LinkParams &p = params_[static_cast<std::size_t>(link)];
        const std::size_t slot = dirIndex(link, u, v);
        transfers_.fetch_add(1, std::memory_order_relaxed);
        ++perDir_[slot];
        const Cycles queue = meters_[slot].record(now + total);
        total += p.hopCycles + queue;
        if (topo_.isSwitch(v) && i + 2 < path.size()) {
            const std::size_t sw =
                static_cast<std::size_t>(v - topo_.numGpus());
            ++crossings_[sw];
            const Cycles xqueue =
                crossbarMeters_[sw].record(now + total);
            total += switchParams_[sw].crossbarCycles + xqueue;
        }
        bottleneck = bottleneck == 0
                         ? p.bytesPerCycle
                         : std::min(bottleneck, p.bytesPerCycle);
    }
    if (bytes > 0)
        total += divCeil(bytes, static_cast<std::uint64_t>(bottleneck));
    return total;
}

ContentionMeter &
Fabric::portMeter(int link, NodeId from, NodeId to)
{
    return meters_[dirIndex(link, from, to)];
}

const ContentionMeter &
Fabric::portMeter(int link, NodeId from, NodeId to) const
{
    return meters_[dirIndex(link, from, to)];
}

Cycles
Fabric::routeBaseCycles(NodeId from, NodeId to) const
{
    if (from >= 0 && from < numGpus_ && to >= 0 && to < numGpus_) {
        const GpuRow &row = gpuRowFor(from, to);
        const PairRoute &pr = row.pairs[static_cast<std::size_t>(to)];
        if (pr.count == 0)
            fatal("fabric base-cost query between nodes ", from,
                  " and ", to, " which share no route on topology '",
                  topo_.name(), "'");
        return pr.baseCycles;
    }
    const RouteView path = topo_.route(from, to);
    if (path.size() < 2)
        fatal("fabric base-cost query between nodes ", from, " and ",
              to, " which share no route on topology '", topo_.name(),
              "'");
    Cycles base = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const NodeId v = path[i + 1];
        const int link = topo_.linkIndex(path[i], v);
        base += params_[static_cast<std::size_t>(link)].hopCycles;
        if (topo_.isSwitch(v) && i + 2 < path.size())
            base += switchParams_[static_cast<std::size_t>(
                                      v - topo_.numGpus())]
                        .crossbarCycles;
    }
    return base;
}

Cycles
Fabric::transferCycles(NodeId from, NodeId to, Cycles now,
                       std::uint64_t bytes)
{
    return chargeRoute(from, to, now, bytes);
}

std::uint32_t
Fabric::linkOccupancy(NodeId from, NodeId to, Cycles now) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return portMeter(link, from, to).occupancy(now);
}

std::uint32_t
Fabric::crossbarOccupancy(NodeId sw, Cycles now) const
{
    if (!topo_.isSwitch(sw))
        return 0;
    return crossbarMeters_[static_cast<std::size_t>(sw -
                                                    topo_.numGpus())]
        .occupancy(now);
}

std::uint64_t
Fabric::switchCrossings(NodeId sw) const
{
    if (!topo_.isSwitch(sw))
        return 0;
    return crossings_[static_cast<std::size_t>(sw - topo_.numGpus())];
}

const SwitchParams &
Fabric::switchParamsOf(NodeId sw) const
{
    if (!topo_.isSwitch(sw))
        fatal("fabric switch-parameter query on node ", sw,
              " which is not a switch on topology '", topo_.name(),
              "'");
    return switchParams_[static_cast<std::size_t>(sw -
                                                  topo_.numGpus())];
}

std::uint64_t
Fabric::portTransfers(NodeId from, NodeId to) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return perDir_[dirIndex(link, from, to)];
}

std::uint64_t
Fabric::linkTransfers(NodeId a, NodeId b) const
{
    const int link = topo_.linkIndex(a, b);
    if (link < 0)
        return 0;
    return perDir_[static_cast<std::size_t>(link) * 2] +
           perDir_[static_cast<std::size_t>(link) * 2 + 1];
}

Cycles
Fabric::minCrossIslandBaseCycles() const
{
    // One representative GPU per island (the first in id order): the
    // route rule is uniform within an island, so representative pairs
    // cover every distinct cross-island route shape.
    std::vector<NodeId> reps;
    std::vector<int> seen;
    for (NodeId g = 0; g < numGpus_; ++g) {
        const int isl = topo_.island(g);
        if (std::find(seen.begin(), seen.end(), isl) == seen.end()) {
            seen.push_back(isl);
            reps.push_back(g);
        }
    }
    if (reps.size() < 2)
        fatal("minCrossIslandBaseCycles on topology '", topo_.name(),
              "' which has fewer than two islands");
    Cycles best = ~Cycles{0};
    for (std::size_t i = 0; i < reps.size(); ++i) {
        for (std::size_t j = i + 1; j < reps.size(); ++j) {
            // Straight off the on-demand route: no pair compilation,
            // no meter traffic (routes are reverse-symmetric, so one
            // direction suffices).
            const RouteView path = topo_.route(reps[i], reps[j]);
            if (path.size() < 2)
                continue;
            Cycles base = 0;
            for (std::size_t k = 0; k + 1 < path.size(); ++k) {
                const NodeId v = path[k + 1];
                const int link = topo_.linkIndex(path[k], v);
                base += params_[static_cast<std::size_t>(link)].hopCycles;
                if (topo_.isSwitch(v) && k + 2 < path.size())
                    base += switchParams_[static_cast<std::size_t>(
                                              v - topo_.numGpus())]
                                .crossbarCycles;
            }
            best = std::min(best, base);
        }
    }
    if (best == ~Cycles{0})
        fatal("minCrossIslandBaseCycles: no island pair is routable on "
              "topology '",
              topo_.name(), "'");
    return best;
}

void
Fabric::resetStats()
{
#if GPUBOX_CHECKED_ENABLED
    // The traffic about to be discarded must balance before it goes.
    auditPortConservation();
#endif
    for (auto &m : meters_)
        m.reset();
    for (auto &m : crossbarMeters_)
        m.reset();
    std::fill(perDir_.begin(), perDir_.end(), 0);
    std::fill(crossings_.begin(), crossings_.end(), 0);
    transfers_.store(0, std::memory_order_relaxed);
}

} // namespace gpubox::noc
