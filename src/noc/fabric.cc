#include "noc/fabric.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::noc
{

Fabric::Fabric(const Topology &topo, const LinkParams &params)
    : Fabric(topo, std::vector<LinkParams>(topo.links().size(), params))
{}

Fabric::Fabric(const Topology &topo, std::vector<LinkParams> per_link)
    : topo_(topo), params_(std::move(per_link))
{
    if (params_.size() != topo.links().size())
        fatal("fabric over '", topo.name(), "' needs ",
              topo.links().size(), " per-link parameter sets, got ",
              params_.size());
    meters_.reserve(params_.size());
    for (const LinkParams &p : params_) {
        if (p.bytesPerCycle == 0)
            fatal("fabric link bytesPerCycle must be positive");
        meters_.emplace_back(p.windowCycles, p.freeSlotsPerWindow,
                             p.queueCyclesPerExtra);
    }
    perLink_.assign(params_.size(), 0);
}

Cycles
Fabric::chargeRoute(GpuId from, GpuId to, Cycles now, std::uint64_t bytes)
{
    const std::vector<GpuId> &path = topo_.route(from, to);
    if (path.size() < 2)
        fatal("fabric traverse between GPUs ", from, " and ", to,
              " which share no NVLink route on topology '",
              topo_.name(), "'");
    Cycles total = 0;
    std::uint32_t bottleneck = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const int link = topo_.linkIndex(path[i], path[i + 1]);
        ++transfers_;
        ++perLink_[link];
        const LinkParams &p = params_[link];
        // Later hops see the link state at their own arrival time.
        const Cycles queue = meters_[link].record(now + total);
        total += p.hopCycles + queue;
        bottleneck = bottleneck == 0
                         ? p.bytesPerCycle
                         : std::min(bottleneck, p.bytesPerCycle);
    }
    if (bytes > 0)
        total += divCeil(bytes, static_cast<std::uint64_t>(bottleneck));
    return total;
}

Cycles
Fabric::traverse(GpuId from, GpuId to, Cycles now)
{
    return chargeRoute(from, to, now, 0);
}

Cycles
Fabric::transferCycles(GpuId from, GpuId to, Cycles now,
                       std::uint64_t bytes)
{
    return chargeRoute(from, to, now, bytes);
}

std::uint32_t
Fabric::linkOccupancy(GpuId from, GpuId to, Cycles now) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return meters_[link].occupancy(now);
}

std::uint64_t
Fabric::linkTransfers(GpuId a, GpuId b) const
{
    const int link = topo_.linkIndex(a, b);
    if (link < 0)
        return 0;
    return perLink_[link];
}

void
Fabric::resetStats()
{
    for (auto &m : meters_)
        m.reset();
    std::fill(perLink_.begin(), perLink_.end(), 0);
    transfers_ = 0;
}

} // namespace gpubox::noc
