#include "noc/fabric.hh"

#include "util/log.hh"

namespace gpubox::noc
{

Fabric::Fabric(const Topology &topo, const FabricParams &params)
    : topo_(topo), params_(params)
{
    meters_.assign(topo.links().size(),
                   ContentionMeter(params.windowCycles,
                                   params.freeSlotsPerWindow,
                                   params.queueCyclesPerExtra));
    perLink_.assign(topo.links().size(), 0);
}

Cycles
Fabric::traverse(GpuId from, GpuId to, Cycles now)
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        fatal("fabric traverse between non-adjacent GPUs ", from, " and ",
              to, " (multi-hop routing is not peer-accessible)");
    ++transfers_;
    ++perLink_[link];
    const Cycles queue = meters_[link].record(now);
    return params_.hopCycles + queue;
}

std::uint32_t
Fabric::linkOccupancy(GpuId from, GpuId to, Cycles now) const
{
    const int link = topo_.linkIndex(from, to);
    if (link < 0)
        return 0;
    return meters_[link].occupancy(now);
}

std::uint64_t
Fabric::linkTransfers(GpuId a, GpuId b) const
{
    const int link = topo_.linkIndex(a, b);
    if (link < 0)
        return 0;
    return perLink_[link];
}

void
Fabric::resetStats()
{
    for (auto &m : meters_)
        m.reset();
    std::fill(perLink_.begin(), perLink_.end(), 0);
    transfers_ = 0;
}

} // namespace gpubox::noc
