/**
 * @file
 * Inter-GPU interconnect topologies.
 *
 * The default is the DGX-1 (P100) hybrid cube-mesh of Fig. 1 in the
 * paper: eight GPUs, four NVLink-V1 ports each, two quads with cross
 * links. Every topology precomputes deterministic shortest-path route
 * tables at construction time: the route between two GPUs is the
 * minimal-hop path whose ties break toward the lowest next-hop id
 * (computed from the lower endpoint; the reverse direction reuses the
 * reversed path, so routes are symmetric by construction). Whether a
 * runtime lets peer access ride those routes is a *platform* decision
 * (rt::Platform::peerOverRoutes), not a property of the graph.
 */

#ifndef GPUBOX_NOC_TOPOLOGY_HH
#define GPUBOX_NOC_TOPOLOGY_HH

#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace gpubox::noc
{

/** Undirected link between two GPUs. */
using Link = std::pair<GpuId, GpuId>;

/** Static interconnect graph with precomputed route tables. */
class Topology
{
  public:
    /** The 8-GPU DGX-1 hybrid cube-mesh (NVLink-V1, degree 4). */
    static Topology dgx1();

    /** Every GPU pair directly linked (NVSwitch / PCIe-switch style).
     *  Fatal for @p num_gpus < 2. */
    static Topology fullyConnected(int num_gpus);

    /** Simple ring; used by tests and small experiments. Fatal for
     *  @p num_gpus < 3 (a 2-node "ring" is a duplicate link). */
    static Topology ring(int num_gpus);

    /**
     * Arbitrary user-defined graph. Links are validated: endpoints in
     * range, no self links, no duplicates (in either orientation).
     */
    static Topology custom(std::string name, int num_gpus,
                           std::vector<Link> links);

    int numGpus() const { return numGpus_; }
    const std::string &name() const { return name_; }
    const std::vector<Link> &links() const { return links_; }

    /** @return true when a and b share a direct NVLink. */
    bool connected(GpuId a, GpuId b) const;

    /** Index into links() for the pair, or -1 when not connected. */
    int linkIndex(GpuId a, GpuId b) const;

    /** Number of NVLink ports in use on @p gpu. */
    int degree(GpuId gpu) const;

    /** All single-hop peers of @p gpu. */
    std::vector<GpuId> peersOf(GpuId gpu) const;

    /** @name Precomputed shortest-path routes @{ */

    /**
     * Links on the shortest route between @p a and @p b: 0 for a==b,
     * -1 when no route exists (or either id is out of range).
     */
    int hopCount(GpuId a, GpuId b) const;

    /** True when some NVLink path (any length) joins the GPUs. */
    bool reachable(GpuId a, GpuId b) const;

    /**
     * The deterministic shortest route from @p a to @p b, inclusive of
     * both endpoints ({a} when a==b, empty when unreachable). Fatal
     * for out-of-range ids.
     */
    const std::vector<GpuId> &route(GpuId a, GpuId b) const;

    /** Human-readable route, e.g. "0 -> 4 -> 5"; "(none)" when absent. */
    std::string routeString(GpuId a, GpuId b) const;

    /** @} */

  private:
    Topology(std::string name, int num_gpus, std::vector<Link> links);

    /** All-pairs BFS distances + materialized routes (see file doc). */
    void buildRouteTables();

    std::size_t pairIndex(GpuId a, GpuId b) const;

    std::string name_;
    int numGpus_;
    std::vector<Link> links_;
    std::vector<int> linkOf_;  // numGpus*numGpus -> link index or -1
    std::vector<int> dist_;    // numGpus*numGpus -> hops or -1
    std::vector<std::vector<GpuId>> routes_; // numGpus*numGpus paths
};

} // namespace gpubox::noc

#endif // GPUBOX_NOC_TOPOLOGY_HH
