/**
 * @file
 * Inter-GPU interconnect topologies.
 *
 * The default is the DGX-1 (P100) hybrid cube-mesh of Fig. 1 in the
 * paper: eight GPUs, four NVLink-V1 ports each, two quads with cross
 * links. Peer access -- and therefore the attack -- is only possible
 * between directly connected (single-hop) GPUs; the runtime refuses
 * to enable peer access otherwise, mirroring the real CUDA error.
 */

#ifndef GPUBOX_NOC_TOPOLOGY_HH
#define GPUBOX_NOC_TOPOLOGY_HH

#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace gpubox::noc
{

/** Undirected link between two GPUs. */
using Link = std::pair<GpuId, GpuId>;

/** Static interconnect graph. */
class Topology
{
  public:
    /** The 8-GPU DGX-1 hybrid cube-mesh (NVLink-V1, degree 4). */
    static Topology dgx1();

    /** Every GPU pair directly linked (e.g. NVSwitch-style). */
    static Topology fullyConnected(int num_gpus);

    /** Simple ring; used by tests and small experiments. */
    static Topology ring(int num_gpus);

    int numGpus() const { return numGpus_; }
    const std::string &name() const { return name_; }
    const std::vector<Link> &links() const { return links_; }

    /** @return true when a and b share a direct NVLink. */
    bool connected(GpuId a, GpuId b) const;

    /** Index into links() for the pair, or -1 when not connected. */
    int linkIndex(GpuId a, GpuId b) const;

    /** Number of NVLink ports in use on @p gpu. */
    int degree(GpuId gpu) const;

    /** All single-hop peers of @p gpu. */
    std::vector<GpuId> peersOf(GpuId gpu) const;

  private:
    Topology(std::string name, int num_gpus, std::vector<Link> links);

    std::string name_;
    int numGpus_;
    std::vector<Link> links_;
    std::vector<int> linkOf_; // numGpus*numGpus -> link index or -1
};

} // namespace gpubox::noc

#endif // GPUBOX_NOC_TOPOLOGY_HH
