/**
 * @file
 * Inter-GPU interconnect topologies over a mixed node graph.
 *
 * A topology's nodes are GPU endpoints followed by switch (router)
 * nodes: ids [0, numGpus) are GPUs, ids [numGpus, numNodes) are
 * switches. The paper's DGX-1 (P100) hybrid cube-mesh of Fig. 1 is a
 * pure endpoint graph (no switches); NVSwitch-class boxes model each
 * crossbar plane as a first-class switch node whose ports are the
 * links attached to it, so routes between GPUs traverse the switch
 * and contention becomes visible to every pair sharing it.
 *
 * Routes are deterministic shortest paths computed *on demand*: the
 * route between two nodes is the minimal-hop path whose ties break
 * toward the lowest next-hop id (walked from the lower endpoint; the
 * reverse direction is the reversed path, so routes are symmetric by
 * construction). One deliberate exception keeps switched fabrics from
 * collapsing onto a single plane: when *all* tied next-hop candidates
 * are switches, the pair stripes across them by (src + dst) modulo
 * the candidate count -- still a pure function of the endpoints, so
 * routes stay symmetric and byte-stable, but disjoint pairs spread
 * over the planes the way real NVSwitch traffic does. Whether a
 * runtime lets peer access ride those routes is a *platform* decision
 * (rt::Platform::peerOverRoutes), not a property of the graph.
 *
 * Storage is O(nodes + links), not O(nodes^2) paths: the constructor
 * retains only a CSR adjacency structure plus a distance oracle --
 * a BFS-filled 16-bit all-pairs table on small flat graphs, or the
 * closed-form chassis/NIC/spine distance rule on superpods (where an
 * n^2 table would already be megabytes at one thousand GPUs). route()
 * replays the greedy tie-break walk against that oracle into a
 * thread-local scratch buffer and returns a non-owning RouteView, so
 * the hot path never allocates and a 1024-GPU pod constructs in
 * microseconds instead of materializing ~6M path vectors.
 */

#ifndef GPUBOX_NOC_TOPOLOGY_HH
#define GPUBOX_NOC_TOPOLOGY_HH

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace gpubox::noc
{

/** Graph node id: a GPU ([0,numGpus)) or a switch ([numGpus,numNodes)). */
using NodeId = GpuId;

/** What a topology node is. */
enum class NodeKind
{
    Gpu,
    Switch,
};

/**
 * What a switch node does in the fabric. Crossbar planes are the
 * intra-chassis NVSwitch model of PR 5; NIC and Spine nodes extend
 * the graph past one chassis: each GPU's NIC bridges it onto the
 * inter-box spine switches (the per-direction NIC in/out port-meter
 * model of the dycz0fx task-graph simulator, SNIPPETS.md Snippet 2).
 * All three are NodeKind::Switch, so the fabric's per-direction port
 * meters and per-switch crossbar contention apply uniformly.
 */
enum class SwitchRole
{
    Crossbar,
    Nic,
    Spine,
};

/** Undirected link between two nodes (GPU or switch endpoints). */
using Link = std::pair<NodeId, NodeId>;

/**
 * Non-owning view of one route, inclusive of both endpoints. Returned
 * by Topology::route(); the nodes live in a thread-local scratch
 * buffer, so a view is INVALIDATED by the next route()/routeString()
 * call on the same thread -- copy (toVector()) before requesting a
 * second route if both must be held.
 */
class RouteView
{
  public:
    using value_type = NodeId;
    using const_iterator = const NodeId *;

    RouteView() = default;
    RouteView(const NodeId *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    const NodeId *begin() const { return data_; }
    const NodeId *end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    NodeId operator[](std::size_t i) const { return data_[i]; }
    NodeId front() const { return data_[0]; }
    NodeId back() const { return data_[size_ - 1]; }

    /** Owning copy, for callers that must outlive the scratch. */
    std::vector<NodeId> toVector() const { return {begin(), end()}; }

  private:
    const NodeId *data_ = nullptr;
    std::size_t size_ = 0;
};

inline bool
operator==(RouteView a, RouteView b)
{
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

inline bool
operator==(RouteView a, const std::vector<NodeId> &b)
{
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

inline std::ostream &
operator<<(std::ostream &os, RouteView v)
{
    os << '[';
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? " " : "") << v[i];
    return os << ']';
}

/** Static interconnect graph with on-demand deterministic routing. */
class Topology
{
  public:
    /** The 8-GPU DGX-1 hybrid cube-mesh (NVLink-V1, degree 4). */
    static Topology dgx1();

    /** Every GPU pair directly linked (PCIe-switch style, no modelled
     *  switch node). Fatal for @p num_gpus < 2. */
    static Topology fullyConnected(int num_gpus);

    /** Simple ring; used by tests and small experiments. Fatal for
     *  @p num_gpus < 3 (a 2-node "ring" is a duplicate link). */
    static Topology ring(int num_gpus);

    /**
     * NVSwitch-style crossbar fabric: @p num_planes switch nodes, each
     * linked to every GPU, so any GPU pair is two hops apart and
     * stripes deterministically across the planes by (a + b) modulo
     * @p num_planes. Fatal for num_gpus < 2 or num_planes < 1.
     */
    static Topology crossbar(std::string name, int num_gpus,
                             int num_planes);

    /**
     * Arbitrary user-defined endpoint graph (no switches). Links are
     * validated: endpoints in range, no self links, no duplicates (in
     * either orientation).
     */
    static Topology custom(std::string name, int num_gpus,
                           std::vector<Link> links);

    /**
     * Arbitrary mixed graph: @p num_gpus endpoints plus
     * @p num_switches switch nodes (ids numGpus..numGpus+numSwitches).
     * Same link validation as custom(); additionally every switch must
     * have at least one attached link (an unplugged switch is a
     * descriptor bug).
     */
    static Topology switched(std::string name, int num_gpus,
                             int num_switches, std::vector<Link> links);

    /**
     * Multi-chassis superpod: @p num_boxes switched islands of
     * @p gpus_per_box GPUs behind @p planes_per_box NVSwitch crossbar
     * planes each, joined through one NIC node per GPU onto
     * @p num_spines shared spine switches (every NIC links to every
     * spine). Intra-box routes stay two plane hops exactly like
     * crossbar(); cross-box routes run gpu -> nic -> spine -> nic ->
     * gpu and stripe across the spines by (src + dst) modulo
     * @p num_spines, never touching a plane -- so the spine is the
     * *only* hardware two cross-chassis pairs can share. Node order:
     * GPUs box-major, then planes box-major, then NICs gpu-major,
     * then spines. Fatal for num_boxes < 2, gpus_per_box < 2,
     * planes_per_box < 1 or num_spines < 1.
     *
     * Because the shape is regular, distances follow a closed form
     * and the constructor skips the all-pairs BFS entirely -- a pod
     * constructs in O(links) regardless of size.
     */
    static Topology superpod(std::string name, int num_boxes,
                             int gpus_per_box, int planes_per_box,
                             int num_spines);

    /** GPU endpoints only (devices a runtime instantiates). */
    int numGpus() const { return numGpus_; }
    /** GPUs + switches. */
    int numNodes() const { return numNodes_; }
    int numSwitches() const { return numNodes_ - numGpus_; }

    const std::string &name() const { return name_; }
    const std::vector<Link> &links() const { return links_; }

    /** Kind of node @p n; fatal for out-of-range ids. */
    NodeKind kind(NodeId n) const;
    bool isSwitch(NodeId n) const
    {
        return n >= numGpus_ && n < numNodes_;
    }
    bool isGpu(NodeId n) const { return n >= 0 && n < numGpus_; }

    /** Role of switch node @p n (Crossbar on every non-superpod
     *  topology); fatal unless @p n is a switch. */
    SwitchRole switchRole(NodeId n) const;

    /** Switch nodes carrying @p role. */
    int numSwitchesOfRole(SwitchRole role) const;

    /**
     * Chassis (island) of node @p n: the box index on superpod
     * topologies, 0 everywhere on single-chassis graphs, -1 for
     * chassis-less spine switches. Fatal for out-of-range ids.
     */
    int island(NodeId n) const;

    /** Number of chassis islands (1 on single-box topologies). */
    int numIslands() const { return numIslands_; }

    /** True when both nodes sit in (different) chassis islands. */
    bool crossIsland(NodeId a, NodeId b) const
    {
        return island(a) >= 0 && island(b) >= 0 &&
               island(a) != island(b);
    }

    /** Display name: GPUs print their id ("3"), switches "sw<k>" /
     *  "nic<k>" / "spine<k>" with k the index within the role. Fatal
     *  when out of range. */
    std::string nodeName(NodeId n) const;

    /** @return true when a and b share a direct link. */
    bool connected(NodeId a, NodeId b) const;

    /** Index into links() for the pair, or -1 when not connected. */
    int linkIndex(NodeId a, NodeId b) const;

    /** Number of ports (attached links) on node @p n. */
    int degree(NodeId n) const;

    /** All single-hop neighbours of @p n (GPUs and switches). */
    std::vector<NodeId> peersOf(NodeId n) const;

    /** @name On-demand shortest-path routes @{ */

    /**
     * Links on the shortest route between @p a and @p b: 0 for a==b,
     * -1 when no route exists (or either id is out of range).
     */
    int hopCount(NodeId a, NodeId b) const;

    /** True when some path (any length) joins the nodes. */
    bool reachable(NodeId a, NodeId b) const;

    /**
     * The deterministic shortest route from @p a to @p b, inclusive of
     * both endpoints ({a} when a==b, empty when unreachable). Fatal
     * for out-of-range ids. The returned view aliases a thread-local
     * scratch buffer and is invalidated by the next route() call on
     * this thread (any Topology instance) -- see RouteView.
     */
    RouteView route(NodeId a, NodeId b) const;

    /** Human-readable route, e.g. "0 -> sw1 -> 5"; "(none)" absent. */
    std::string routeString(NodeId a, NodeId b) const;

    /**
     * Bytes retained for routing after construction: the CSR
     * adjacency arrays plus the BFS distance table (zero-sized on
     * superpods, which use the closed-form oracle). This is the whole
     * per-instance routing footprint -- there is no per-pair state.
     */
    std::size_t routeTableBytes() const;

    /** True when distances come from the closed-form superpod rule
     *  instead of a stored BFS table. */
    bool usesClosedFormDistances() const { return pod_.boxes > 0; }

    /** @} */

  private:
    /** Regular-shape descriptor; boxes == 0 on non-pod graphs. */
    struct PodSpec
    {
        int boxes = 0;
        int gpusPerBox = 0;
        int planesPerBox = 0;
        int spines = 0;
    };

    Topology(std::string name, int num_gpus, int num_switches,
             std::vector<Link> links, PodSpec pod);

    /** All-pairs BFS into the 16-bit dist_ table (flat graphs only). */
    void buildDistanceTable();

    /** Closed-form superpod distance (pod_ set); -1 never occurs. */
    int podDistance(NodeId a, NodeId b) const;

    /** Distance oracle: dist_ lookup or podDistance(). Both ids must
     *  be in range. */
    int nodeDistance(NodeId a, NodeId b) const;

    /** Refresh per-role switch indices after assigning switchRoles_. */
    void recomputeRoleIndices();

    std::string name_;
    int numGpus_;
    int numNodes_;
    std::vector<Link> links_;
    /** @name CSR adjacency (peers ascending per node) @{ */
    std::vector<int> adjOff_;      // numNodes_+1 offsets
    std::vector<NodeId> adjPeers_; // neighbour ids
    std::vector<int> adjLinks_;    // parallel index into links_
    /** @} */
    std::vector<std::int16_t> dist_; // n*n BFS hops (-1 unreachable);
                                     // empty on pods
    PodSpec pod_;
    std::vector<SwitchRole> switchRoles_; // one per switch
    std::vector<int> roleIndex_; // per switch: index within its role
    std::vector<int> islandOf_;  // per node: chassis id or -1
    int numIslands_ = 1;
};

} // namespace gpubox::noc

#endif // GPUBOX_NOC_TOPOLOGY_HH
