#include "noc/topology.hh"

#include <algorithm>
#include <deque>

#include "util/log.hh"

namespace gpubox::noc
{

Topology::Topology(std::string name, int num_gpus, std::vector<Link> links)
    : name_(std::move(name)), numGpus_(num_gpus), links_(std::move(links))
{
    if (num_gpus <= 0)
        fatal("topology '", name_, "' needs at least one GPU, got ",
              num_gpus);
    linkOf_.assign(static_cast<std::size_t>(numGpus_) * numGpus_, -1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        auto [a, b] = links_[i];
        if (a < 0 || b < 0 || a >= numGpus_ || b >= numGpus_)
            fatal("topology '", name_, "': link (", a, ",", b,
                  ") references a GPU outside [0,", numGpus_, ")");
        if (a == b)
            fatal("topology '", name_, "': GPU ", a,
                  " cannot be linked to itself");
        if (linkOf_[a * numGpus_ + b] != -1)
            fatal("topology '", name_, "': duplicate link (", a, ",", b,
                  ")");
        linkOf_[a * numGpus_ + b] = static_cast<int>(i);
        linkOf_[b * numGpus_ + a] = static_cast<int>(i);
    }
    buildRouteTables();
}

void
Topology::buildRouteTables()
{
    const int n = numGpus_;
    dist_.assign(static_cast<std::size_t>(n) * n, -1);

    // All-pairs BFS. Neighbour visitation order is by ascending id, so
    // the distances (and everything derived below) are deterministic.
    for (GpuId src = 0; src < n; ++src) {
        int *d = &dist_[static_cast<std::size_t>(src) * n];
        d[src] = 0;
        std::deque<GpuId> frontier{src};
        while (!frontier.empty()) {
            const GpuId at = frontier.front();
            frontier.pop_front();
            for (GpuId next = 0; next < n; ++next) {
                if (d[next] == -1 && connected(at, next)) {
                    d[next] = d[at] + 1;
                    frontier.push_back(next);
                }
            }
        }
    }

    // Materialized routes. For a <= b walk greedily from a, picking at
    // every step the lowest-id neighbour that still lies on a shortest
    // path; the b -> a route is the exact reversal, making every route
    // symmetric (and byte-identical across constructions) by design.
    routes_.assign(static_cast<std::size_t>(n) * n, {});
    for (GpuId a = 0; a < n; ++a) {
        routes_[pairIndex(a, a)] = {a};
        for (GpuId b = a + 1; b < n; ++b) {
            if (dist_[pairIndex(a, b)] < 0)
                continue; // unreachable: leave both routes empty
            std::vector<GpuId> path{a};
            GpuId at = a;
            while (at != b) {
                const int remaining = dist_[pairIndex(at, b)];
                for (GpuId next = 0; next < n; ++next) {
                    if (connected(at, next) &&
                        dist_[pairIndex(next, b)] == remaining - 1) {
                        path.push_back(next);
                        at = next;
                        break; // lowest next-hop id wins the tie
                    }
                }
            }
            std::vector<GpuId> back(path.rbegin(), path.rend());
            routes_[pairIndex(a, b)] = std::move(path);
            routes_[pairIndex(b, a)] = std::move(back);
        }
    }
}

std::size_t
Topology::pairIndex(GpuId a, GpuId b) const
{
    return static_cast<std::size_t>(a) * numGpus_ + b;
}

Topology
Topology::dgx1()
{
    // Paper Fig. 1: two quads (0-3 and 4-7), each internally fully
    // connected, plus one cross link per GPU. Degree 4 everywhere.
    std::vector<Link> links = {
        {0, 1}, {0, 2}, {0, 3}, {0, 4},
        {1, 2}, {1, 3}, {1, 5},
        {2, 3}, {2, 6},
        {3, 7},
        {4, 5}, {4, 6}, {4, 7},
        {5, 6}, {5, 7},
        {6, 7},
    };
    return Topology("dgx1", 8, std::move(links));
}

Topology
Topology::fullyConnected(int num_gpus)
{
    if (num_gpus < 2)
        fatal("fullyConnected topology needs at least 2 GPUs, got ",
              num_gpus);
    std::vector<Link> links;
    for (GpuId a = 0; a < num_gpus; ++a)
        for (GpuId b = a + 1; b < num_gpus; ++b)
            links.emplace_back(a, b);
    return Topology("fully-connected", num_gpus, std::move(links));
}

Topology
Topology::ring(int num_gpus)
{
    if (num_gpus < 3)
        fatal("ring topology needs at least 3 GPUs, got ", num_gpus,
              " (a 2-GPU ring would duplicate its only link; use "
              "fullyConnected(2) for a single-link pair)");
    std::vector<Link> links;
    for (GpuId a = 0; a < num_gpus; ++a)
        links.emplace_back(a, (a + 1) % num_gpus);
    return Topology("ring", num_gpus, std::move(links));
}

Topology
Topology::custom(std::string name, int num_gpus, std::vector<Link> links)
{
    return Topology(std::move(name), num_gpus, std::move(links));
}

bool
Topology::connected(GpuId a, GpuId b) const
{
    return linkIndex(a, b) >= 0;
}

int
Topology::linkIndex(GpuId a, GpuId b) const
{
    if (a < 0 || b < 0 || a >= numGpus_ || b >= numGpus_)
        return -1;
    return linkOf_[static_cast<std::size_t>(a) * numGpus_ + b];
}

int
Topology::degree(GpuId gpu) const
{
    int d = 0;
    for (GpuId other = 0; other < numGpus_; ++other)
        if (other != gpu && connected(gpu, other))
            ++d;
    return d;
}

std::vector<GpuId>
Topology::peersOf(GpuId gpu) const
{
    std::vector<GpuId> peers;
    for (GpuId other = 0; other < numGpus_; ++other)
        if (other != gpu && connected(gpu, other))
            peers.push_back(other);
    return peers;
}

int
Topology::hopCount(GpuId a, GpuId b) const
{
    if (a < 0 || b < 0 || a >= numGpus_ || b >= numGpus_)
        return -1;
    return dist_[pairIndex(a, b)];
}

bool
Topology::reachable(GpuId a, GpuId b) const
{
    return hopCount(a, b) >= 0;
}

const std::vector<GpuId> &
Topology::route(GpuId a, GpuId b) const
{
    if (a < 0 || b < 0 || a >= numGpus_ || b >= numGpus_)
        fatal("topology '", name_, "': route query (", a, ",", b,
              ") is out of range (", numGpus_, " GPUs)");
    return routes_[pairIndex(a, b)];
}

std::string
Topology::routeString(GpuId a, GpuId b) const
{
    const std::vector<GpuId> &path = route(a, b);
    if (path.empty())
        return "(none)";
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i)
            out += " -> ";
        out += std::to_string(path[i]);
    }
    return out;
}

} // namespace gpubox::noc
