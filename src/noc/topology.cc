#include "noc/topology.hh"

#include <algorithm>

#include "util/log.hh"

namespace gpubox::noc
{

Topology::Topology(std::string name, int num_gpus, std::vector<Link> links)
    : name_(std::move(name)), numGpus_(num_gpus), links_(std::move(links))
{
    if (num_gpus <= 0)
        fatal("topology needs at least one GPU");
    linkOf_.assign(static_cast<std::size_t>(numGpus_) * numGpus_, -1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        auto [a, b] = links_[i];
        if (a < 0 || b < 0 || a >= numGpus_ || b >= numGpus_ || a == b)
            fatal("topology link (", a, ",", b, ") is invalid");
        if (linkOf_[a * numGpus_ + b] != -1)
            fatal("duplicate topology link (", a, ",", b, ")");
        linkOf_[a * numGpus_ + b] = static_cast<int>(i);
        linkOf_[b * numGpus_ + a] = static_cast<int>(i);
    }
}

Topology
Topology::dgx1()
{
    // Paper Fig. 1: two quads (0-3 and 4-7), each internally fully
    // connected, plus one cross link per GPU. Degree 4 everywhere.
    std::vector<Link> links = {
        {0, 1}, {0, 2}, {0, 3}, {0, 4},
        {1, 2}, {1, 3}, {1, 5},
        {2, 3}, {2, 6},
        {3, 7},
        {4, 5}, {4, 6}, {4, 7},
        {5, 6}, {5, 7},
        {6, 7},
    };
    return Topology("dgx1", 8, std::move(links));
}

Topology
Topology::fullyConnected(int num_gpus)
{
    std::vector<Link> links;
    for (GpuId a = 0; a < num_gpus; ++a)
        for (GpuId b = a + 1; b < num_gpus; ++b)
            links.emplace_back(a, b);
    return Topology("fully-connected", num_gpus, std::move(links));
}

Topology
Topology::ring(int num_gpus)
{
    std::vector<Link> links;
    if (num_gpus == 2) {
        links.emplace_back(0, 1);
    } else {
        for (GpuId a = 0; a < num_gpus; ++a)
            links.emplace_back(a, (a + 1) % num_gpus);
    }
    return Topology("ring", num_gpus, std::move(links));
}

bool
Topology::connected(GpuId a, GpuId b) const
{
    return linkIndex(a, b) >= 0;
}

int
Topology::linkIndex(GpuId a, GpuId b) const
{
    if (a < 0 || b < 0 || a >= numGpus_ || b >= numGpus_)
        return -1;
    return linkOf_[static_cast<std::size_t>(a) * numGpus_ + b];
}

int
Topology::degree(GpuId gpu) const
{
    int d = 0;
    for (GpuId other = 0; other < numGpus_; ++other)
        if (other != gpu && connected(gpu, other))
            ++d;
    return d;
}

std::vector<GpuId>
Topology::peersOf(GpuId gpu) const
{
    std::vector<GpuId> peers;
    for (GpuId other = 0; other < numGpus_; ++other)
        if (other != gpu && connected(gpu, other))
            peers.push_back(other);
    return peers;
}

} // namespace gpubox::noc
