#include "noc/topology.hh"

#include <algorithm>
#include <deque>

#include "util/log.hh"

namespace gpubox::noc
{

Topology::Topology(std::string name, int num_gpus, int num_switches,
                   std::vector<Link> links)
    : name_(std::move(name)), numGpus_(num_gpus),
      numNodes_(num_gpus + num_switches), links_(std::move(links))
{
    if (num_gpus <= 0)
        fatal("topology '", name_, "' needs at least one GPU, got ",
              num_gpus);
    if (num_switches < 0)
        fatal("topology '", name_, "' has negative switch count ",
              num_switches);
    linkOf_.assign(static_cast<std::size_t>(numNodes_) * numNodes_, -1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        auto [a, b] = links_[i];
        if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
            fatal("topology '", name_, "': link (", a, ",", b,
                  ") references a node outside [0,", numNodes_, ")");
        if (a == b)
            fatal("topology '", name_, "': node ", a,
                  " cannot be linked to itself");
        if (linkOf_[a * numNodes_ + b] != -1)
            fatal("topology '", name_, "': duplicate link (", a, ",", b,
                  ")");
        linkOf_[a * numNodes_ + b] = static_cast<int>(i);
        linkOf_[b * numNodes_ + a] = static_cast<int>(i);
    }
    switchRoles_.assign(
        static_cast<std::size_t>(numNodes_ - numGpus_),
        SwitchRole::Crossbar);
    islandOf_.assign(static_cast<std::size_t>(numNodes_), 0);
    recomputeRoleIndices();
    for (NodeId sw = numGpus_; sw < numNodes_; ++sw) {
        if (degree(sw) == 0)
            fatal("topology '", name_, "': switch ", nodeName(sw),
                  " has no attached link");
    }
    buildRouteTables();
}

void
Topology::recomputeRoleIndices()
{
    roleIndex_.assign(switchRoles_.size(), 0);
    int counts[3] = {0, 0, 0};
    for (std::size_t k = 0; k < switchRoles_.size(); ++k)
        roleIndex_[k] = counts[static_cast<int>(switchRoles_[k])]++;
}

void
Topology::buildRouteTables()
{
    const int n = numNodes_;
    dist_.assign(static_cast<std::size_t>(n) * n, -1);

    // Adjacency lists, neighbours ascending. The previous
    // implementation scanned every node pair at every BFS step --
    // O(n^3) overall -- which was fine inside one chassis but not at
    // superpod scale (a 308-node dgx-superpod); walking real edges
    // keeps construction O(n * (V + E)) with routes byte-identical
    // (ascending neighbour order is preserved).
    std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
    for (const auto &[a, b] : links_) {
        adj[static_cast<std::size_t>(a)].push_back(b);
        adj[static_cast<std::size_t>(b)].push_back(a);
    }
    for (auto &peers : adj)
        std::sort(peers.begin(), peers.end());

    // All-pairs BFS over the mixed GPU/switch graph. Neighbour
    // visitation order is by ascending id, so the distances (and
    // everything derived below) are deterministic.
    for (NodeId src = 0; src < n; ++src) {
        int *d = &dist_[static_cast<std::size_t>(src) * n];
        d[src] = 0;
        std::deque<NodeId> frontier{src};
        while (!frontier.empty()) {
            const NodeId at = frontier.front();
            frontier.pop_front();
            for (NodeId next : adj[static_cast<std::size_t>(at)]) {
                if (d[next] == -1) {
                    d[next] = d[at] + 1;
                    frontier.push_back(next);
                }
            }
        }
    }

    // Materialized routes. For a <= b walk greedily from a, picking at
    // every step among the neighbours still on a shortest path: the
    // lowest id wins, except when every candidate is a switch -- then
    // the pair stripes across the candidates by (a + b) modulo their
    // count, spreading disjoint pairs over parallel crossbar planes
    // (and cross-chassis pairs over parallel spines) while staying a
    // pure (hence symmetric, byte-stable) function of the endpoints.
    // The b -> a route is the exact reversal.
    routes_.assign(static_cast<std::size_t>(n) * n, {});
    std::vector<NodeId> candidates;
    for (NodeId a = 0; a < n; ++a) {
        routes_[pairIndex(a, a)] = {a};
        for (NodeId b = a + 1; b < n; ++b) {
            if (dist_[pairIndex(a, b)] < 0)
                continue; // unreachable: leave both routes empty
            std::vector<NodeId> path{a};
            NodeId at = a;
            while (at != b) {
                const int remaining = dist_[pairIndex(at, b)];
                candidates.clear();
                for (NodeId next : adj[static_cast<std::size_t>(at)]) {
                    if (dist_[pairIndex(next, b)] == remaining - 1)
                        candidates.push_back(next); // ascending ids
                }
                bool all_switches = candidates.size() > 1;
                for (NodeId c : candidates)
                    all_switches = all_switches && isSwitch(c);
                const std::size_t pick =
                    all_switches
                        ? static_cast<std::size_t>(a + b) %
                              candidates.size()
                        : 0;
                at = candidates[pick];
                path.push_back(at);
            }
            std::vector<NodeId> back(path.rbegin(), path.rend());
            routes_[pairIndex(a, b)] = std::move(path);
            routes_[pairIndex(b, a)] = std::move(back);
        }
    }
}

std::size_t
Topology::pairIndex(NodeId a, NodeId b) const
{
    return static_cast<std::size_t>(a) * numNodes_ + b;
}

Topology
Topology::dgx1()
{
    // Paper Fig. 1: two quads (0-3 and 4-7), each internally fully
    // connected, plus one cross link per GPU. Degree 4 everywhere.
    std::vector<Link> links = {
        {0, 1}, {0, 2}, {0, 3}, {0, 4},
        {1, 2}, {1, 3}, {1, 5},
        {2, 3}, {2, 6},
        {3, 7},
        {4, 5}, {4, 6}, {4, 7},
        {5, 6}, {5, 7},
        {6, 7},
    };
    return Topology("dgx1", 8, 0, std::move(links));
}

Topology
Topology::fullyConnected(int num_gpus)
{
    if (num_gpus < 2)
        fatal("fullyConnected topology needs at least 2 GPUs, got ",
              num_gpus);
    std::vector<Link> links;
    for (NodeId a = 0; a < num_gpus; ++a)
        for (NodeId b = a + 1; b < num_gpus; ++b)
            links.emplace_back(a, b);
    return Topology("fully-connected", num_gpus, 0, std::move(links));
}

Topology
Topology::ring(int num_gpus)
{
    if (num_gpus < 3)
        fatal("ring topology needs at least 3 GPUs, got ", num_gpus,
              " (a 2-GPU ring would duplicate its only link; use "
              "fullyConnected(2) for a single-link pair)");
    std::vector<Link> links;
    for (NodeId a = 0; a < num_gpus; ++a)
        links.emplace_back(a, (a + 1) % num_gpus);
    return Topology("ring", num_gpus, 0, std::move(links));
}

Topology
Topology::crossbar(std::string name, int num_gpus, int num_planes)
{
    if (num_gpus < 2)
        fatal("crossbar topology needs at least 2 GPUs, got ",
              num_gpus);
    if (num_planes < 1)
        fatal("crossbar topology needs at least 1 switch plane, got ",
              num_planes);
    std::vector<Link> links;
    links.reserve(static_cast<std::size_t>(num_gpus) * num_planes);
    for (int plane = 0; plane < num_planes; ++plane)
        for (NodeId g = 0; g < num_gpus; ++g)
            links.emplace_back(g, num_gpus + plane);
    return Topology(std::move(name), num_gpus, num_planes,
                    std::move(links));
}

Topology
Topology::custom(std::string name, int num_gpus, std::vector<Link> links)
{
    return Topology(std::move(name), num_gpus, 0, std::move(links));
}

Topology
Topology::switched(std::string name, int num_gpus, int num_switches,
                   std::vector<Link> links)
{
    return Topology(std::move(name), num_gpus, num_switches,
                    std::move(links));
}

Topology
Topology::superpod(std::string name, int num_boxes, int gpus_per_box,
                   int planes_per_box, int num_spines)
{
    if (num_boxes < 2)
        fatal("superpod topology needs at least 2 boxes, got ",
              num_boxes, " (a single box is Topology::crossbar)");
    if (gpus_per_box < 2)
        fatal("superpod topology needs at least 2 GPUs per box, got ",
              gpus_per_box);
    if (planes_per_box < 1)
        fatal("superpod topology needs at least 1 crossbar plane per "
              "box, got ",
              planes_per_box);
    if (num_spines < 1)
        fatal("superpod topology needs at least 1 spine switch, got ",
              num_spines);

    const int gpus = num_boxes * gpus_per_box;
    const int planes = num_boxes * planes_per_box;
    // Switch ids: planes box-major, then one NIC per GPU, then spines.
    const int first_plane = gpus;
    const int first_nic = first_plane + planes;
    const int first_spine = first_nic + gpus;

    std::vector<Link> links;
    links.reserve(static_cast<std::size_t>(gpus) *
                  (planes_per_box + 1 + num_spines));
    for (int box = 0; box < num_boxes; ++box) {
        for (int p = 0; p < planes_per_box; ++p) {
            const NodeId plane =
                first_plane + box * planes_per_box + p;
            for (int g = 0; g < gpus_per_box; ++g)
                links.emplace_back(box * gpus_per_box + g, plane);
        }
    }
    for (NodeId g = 0; g < gpus; ++g)
        links.emplace_back(g, first_nic + g);
    for (NodeId g = 0; g < gpus; ++g)
        for (int s = 0; s < num_spines; ++s)
            links.emplace_back(first_nic + g, first_spine + s);

    Topology t(std::move(name), gpus, planes + gpus + num_spines,
               std::move(links));
    for (int k = 0; k < planes; ++k)
        t.switchRoles_[static_cast<std::size_t>(k)] =
            SwitchRole::Crossbar;
    for (int k = 0; k < gpus; ++k)
        t.switchRoles_[static_cast<std::size_t>(planes + k)] =
            SwitchRole::Nic;
    for (int k = 0; k < num_spines; ++k)
        t.switchRoles_[static_cast<std::size_t>(planes + gpus + k)] =
            SwitchRole::Spine;
    t.recomputeRoleIndices();

    // Chassis islands: a GPU, its NIC and its box's planes share the
    // box index; spines belong to no chassis.
    for (NodeId g = 0; g < gpus; ++g) {
        t.islandOf_[static_cast<std::size_t>(g)] = g / gpus_per_box;
        t.islandOf_[static_cast<std::size_t>(first_nic + g)] =
            g / gpus_per_box;
    }
    for (int k = 0; k < planes; ++k)
        t.islandOf_[static_cast<std::size_t>(first_plane + k)] =
            k / planes_per_box;
    for (int s = 0; s < num_spines; ++s)
        t.islandOf_[static_cast<std::size_t>(first_spine + s)] = -1;
    t.numIslands_ = num_boxes;
    return t;
}

NodeKind
Topology::kind(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        fatal("topology '", name_, "': node ", n, " out of range (",
              numNodes_, " nodes)");
    return n < numGpus_ ? NodeKind::Gpu : NodeKind::Switch;
}

SwitchRole
Topology::switchRole(NodeId n) const
{
    if (!isSwitch(n))
        fatal("topology '", name_, "': switch-role query on node ", n,
              " which is not a switch (", numGpus_, " GPUs, ",
              numNodes_, " nodes)");
    return switchRoles_[static_cast<std::size_t>(n - numGpus_)];
}

int
Topology::numSwitchesOfRole(SwitchRole role) const
{
    int count = 0;
    for (SwitchRole r : switchRoles_)
        count += r == role ? 1 : 0;
    return count;
}

int
Topology::island(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        fatal("topology '", name_, "': island query on node ", n,
              " out of range (", numNodes_, " nodes)");
    return islandOf_[static_cast<std::size_t>(n)];
}

std::string
Topology::nodeName(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        fatal("topology '", name_, "': node ", n, " out of range (",
              numNodes_, " nodes)");
    if (n < numGpus_)
        return std::to_string(n);
    const std::size_t k = static_cast<std::size_t>(n - numGpus_);
    const char *prefix = "sw";
    switch (switchRoles_[k]) {
    case SwitchRole::Crossbar:
        break;
    case SwitchRole::Nic:
        prefix = "nic";
        break;
    case SwitchRole::Spine:
        prefix = "spine";
        break;
    }
    return prefix + std::to_string(roleIndex_[k]);
}

bool
Topology::connected(NodeId a, NodeId b) const
{
    return linkIndex(a, b) >= 0;
}

int
Topology::linkIndex(NodeId a, NodeId b) const
{
    if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
        return -1;
    return linkOf_[static_cast<std::size_t>(a) * numNodes_ + b];
}

int
Topology::degree(NodeId n) const
{
    int d = 0;
    for (NodeId other = 0; other < numNodes_; ++other)
        if (other != n && connected(n, other))
            ++d;
    return d;
}

std::vector<NodeId>
Topology::peersOf(NodeId n) const
{
    std::vector<NodeId> peers;
    for (NodeId other = 0; other < numNodes_; ++other)
        if (other != n && connected(n, other))
            peers.push_back(other);
    return peers;
}

int
Topology::hopCount(NodeId a, NodeId b) const
{
    if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
        return -1;
    return dist_[pairIndex(a, b)];
}

bool
Topology::reachable(NodeId a, NodeId b) const
{
    return hopCount(a, b) >= 0;
}

const std::vector<NodeId> &
Topology::route(NodeId a, NodeId b) const
{
    if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
        fatal("topology '", name_, "': route query (", a, ",", b,
              ") is out of range (", numNodes_, " nodes)");
    return routes_[pairIndex(a, b)];
}

std::string
Topology::routeString(NodeId a, NodeId b) const
{
    const std::vector<NodeId> &path = route(a, b);
    if (path.empty())
        return "(none)";
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i)
            out += " -> ";
        out += nodeName(path[i]);
    }
    return out;
}

} // namespace gpubox::noc
