#include "noc/topology.hh"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/log.hh"

namespace gpubox::noc
{

Topology::Topology(std::string name, int num_gpus, int num_switches,
                   std::vector<Link> links, PodSpec pod)
    : name_(std::move(name)), numGpus_(num_gpus),
      numNodes_(num_gpus + num_switches), links_(std::move(links)),
      pod_(pod)
{
    if (num_gpus <= 0)
        fatal("topology '", name_, "' needs at least one GPU, got ",
              num_gpus);
    if (num_switches < 0)
        fatal("topology '", name_, "' has negative switch count ",
              num_switches);

    // CSR adjacency: two directed entries per undirected link, peers
    // ascending per node. This replaces the former numNodes^2 link
    // matrix -- O(V + E) bytes instead of O(V^2) -- while keeping the
    // ascending neighbour order every route tie-break depends on.
    const std::size_t n = static_cast<std::size_t>(numNodes_);
    adjOff_.assign(n + 1, 0);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        auto [a, b] = links_[i];
        if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
            fatal("topology '", name_, "': link (", a, ",", b,
                  ") references a node outside [0,", numNodes_, ")");
        if (a == b)
            fatal("topology '", name_, "': node ", a,
                  " cannot be linked to itself");
        ++adjOff_[static_cast<std::size_t>(a) + 1];
        ++adjOff_[static_cast<std::size_t>(b) + 1];
    }
    std::partial_sum(adjOff_.begin(), adjOff_.end(), adjOff_.begin());
    adjPeers_.resize(2 * links_.size());
    adjLinks_.resize(2 * links_.size());
    std::vector<int> fill(adjOff_.begin(), adjOff_.end() - 1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        const auto [a, b] = links_[i];
        const int slot_a = fill[static_cast<std::size_t>(a)]++;
        const int slot_b = fill[static_cast<std::size_t>(b)]++;
        adjPeers_[static_cast<std::size_t>(slot_a)] = b;
        adjLinks_[static_cast<std::size_t>(slot_a)] =
            static_cast<int>(i);
        adjPeers_[static_cast<std::size_t>(slot_b)] = a;
        adjLinks_[static_cast<std::size_t>(slot_b)] =
            static_cast<int>(i);
    }
    for (std::size_t v = 0; v < n; ++v) {
        const int lo = adjOff_[v];
        const int hi = adjOff_[v + 1];
        std::vector<std::pair<NodeId, int>> row;
        row.reserve(static_cast<std::size_t>(hi - lo));
        for (int k = lo; k < hi; ++k)
            row.emplace_back(adjPeers_[static_cast<std::size_t>(k)],
                             adjLinks_[static_cast<std::size_t>(k)]);
        std::sort(row.begin(), row.end());
        for (std::size_t k = 1; k < row.size(); ++k) {
            if (row[k].first == row[k - 1].first) {
                const auto [a, b] =
                    links_[static_cast<std::size_t>(row[k].second)];
                fatal("topology '", name_, "': duplicate link (", a,
                      ",", b, ")");
            }
        }
        for (int k = lo; k < hi; ++k) {
            adjPeers_[static_cast<std::size_t>(k)] =
                row[static_cast<std::size_t>(k - lo)].first;
            adjLinks_[static_cast<std::size_t>(k)] =
                row[static_cast<std::size_t>(k - lo)].second;
        }
    }

    switchRoles_.assign(
        static_cast<std::size_t>(numNodes_ - numGpus_),
        SwitchRole::Crossbar);
    islandOf_.assign(n, 0);
    recomputeRoleIndices();
    for (NodeId sw = numGpus_; sw < numNodes_; ++sw) {
        if (degree(sw) == 0)
            fatal("topology '", name_, "': switch ", nodeName(sw),
                  " has no attached link");
    }
    // Pods (regular shape) use the closed-form distance rule; only
    // irregular graphs pay for a stored all-pairs table. Either way
    // no per-pair paths are materialized: route() replays the greedy
    // walk on demand.
    if (pod_.boxes == 0)
        buildDistanceTable();
    adjOff_.shrink_to_fit();
    adjPeers_.shrink_to_fit();
    adjLinks_.shrink_to_fit();
    dist_.shrink_to_fit();
}

void
Topology::recomputeRoleIndices()
{
    roleIndex_.assign(switchRoles_.size(), 0);
    int counts[3] = {0, 0, 0};
    for (std::size_t k = 0; k < switchRoles_.size(); ++k)
        roleIndex_[k] = counts[static_cast<int>(switchRoles_[k])]++;
}

void
Topology::buildDistanceTable()
{
    // All-pairs BFS over the mixed GPU/switch graph, walking the CSR
    // edges (O(V * (V + E))). 16-bit entries: any graph small enough
    // to warrant a stored table is far below 32k hops.
    const int n = numNodes_;
    dist_.assign(static_cast<std::size_t>(n) * n, -1);
    for (NodeId src = 0; src < n; ++src) {
        std::int16_t *d = &dist_[static_cast<std::size_t>(src) * n];
        d[src] = 0;
        std::deque<NodeId> frontier{src};
        while (!frontier.empty()) {
            const NodeId at = frontier.front();
            frontier.pop_front();
            for (int k = adjOff_[static_cast<std::size_t>(at)];
                 k < adjOff_[static_cast<std::size_t>(at) + 1]; ++k) {
                const NodeId next =
                    adjPeers_[static_cast<std::size_t>(k)];
                if (d[next] == -1) {
                    d[next] = static_cast<std::int16_t>(d[at] + 1);
                    frontier.push_back(next);
                }
            }
        }
    }
}

int
Topology::podDistance(NodeId a, NodeId b) const
{
    if (a == b)
        return 0;
    const int gpus = numGpus_;
    const int first_nic = gpus + pod_.boxes * pod_.planesPerBox;
    const int first_spine = first_nic + gpus;
    // kind 0 = gpu, 1 = plane, 2 = nic, 3 = spine; box -1 for spines;
    // owner: the GPU a NIC serves, -1 elsewhere.
    struct Cls
    {
        int kind;
        int box;
        NodeId id;
        NodeId owner;
    };
    const auto classify = [&](NodeId v) -> Cls {
        if (v < gpus)
            return {0, v / pod_.gpusPerBox, v, -1};
        if (v < first_nic)
            return {1, (v - gpus) / pod_.planesPerBox, v, -1};
        if (v < first_spine) {
            const NodeId g = v - first_nic;
            return {2, g / pod_.gpusPerBox, v, g};
        }
        return {3, -1, v, -1};
    };
    Cls x = classify(a);
    Cls y = classify(b);
    if (x.kind > y.kind)
        std::swap(x, y);
    const bool same_box = x.box == y.box;
    switch (x.kind * 4 + y.kind) {
    case 0 * 4 + 0: // gpu - gpu: planes inside a box, else nic/spine
        return same_box ? 2 : 4;
    case 0 * 4 + 1: // gpu - plane
        return same_box ? 1 : 5;
    case 0 * 4 + 2: // gpu - nic: its own is adjacent, any other is
                    // one spine (or plane detour) away
        return y.owner == x.id ? 1 : 3;
    case 0 * 4 + 3: // gpu - spine: via the GPU's NIC
        return 2;
    case 1 * 4 + 1: // plane - plane
        return same_box ? 2 : 6;
    case 1 * 4 + 2: // plane - nic
        return same_box ? 2 : 4;
    case 1 * 4 + 3: // plane - spine
        return 3;
    case 2 * 4 + 2: // nic - nic: always via a spine
        return 2;
    case 2 * 4 + 3: // nic - spine: directly linked
        return 1;
    default: // spine - spine: via any NIC
        return 2;
    }
}

int
Topology::nodeDistance(NodeId a, NodeId b) const
{
    if (pod_.boxes > 0)
        return podDistance(a, b);
    return dist_[static_cast<std::size_t>(a) * numNodes_ + b];
}

Topology
Topology::dgx1()
{
    // Paper Fig. 1: two quads (0-3 and 4-7), each internally fully
    // connected, plus one cross link per GPU. Degree 4 everywhere.
    std::vector<Link> links = {
        {0, 1}, {0, 2}, {0, 3}, {0, 4},
        {1, 2}, {1, 3}, {1, 5},
        {2, 3}, {2, 6},
        {3, 7},
        {4, 5}, {4, 6}, {4, 7},
        {5, 6}, {5, 7},
        {6, 7},
    };
    return Topology("dgx1", 8, 0, std::move(links), PodSpec{});
}

Topology
Topology::fullyConnected(int num_gpus)
{
    if (num_gpus < 2)
        fatal("fullyConnected topology needs at least 2 GPUs, got ",
              num_gpus);
    std::vector<Link> links;
    for (NodeId a = 0; a < num_gpus; ++a)
        for (NodeId b = a + 1; b < num_gpus; ++b)
            links.emplace_back(a, b);
    return Topology("fully-connected", num_gpus, 0, std::move(links),
                    PodSpec{});
}

Topology
Topology::ring(int num_gpus)
{
    if (num_gpus < 3)
        fatal("ring topology needs at least 3 GPUs, got ", num_gpus,
              " (a 2-GPU ring would duplicate its only link; use "
              "fullyConnected(2) for a single-link pair)");
    std::vector<Link> links;
    for (NodeId a = 0; a < num_gpus; ++a)
        links.emplace_back(a, (a + 1) % num_gpus);
    return Topology("ring", num_gpus, 0, std::move(links), PodSpec{});
}

Topology
Topology::crossbar(std::string name, int num_gpus, int num_planes)
{
    if (num_gpus < 2)
        fatal("crossbar topology needs at least 2 GPUs, got ",
              num_gpus);
    if (num_planes < 1)
        fatal("crossbar topology needs at least 1 switch plane, got ",
              num_planes);
    std::vector<Link> links;
    links.reserve(static_cast<std::size_t>(num_gpus) * num_planes);
    for (int plane = 0; plane < num_planes; ++plane)
        for (NodeId g = 0; g < num_gpus; ++g)
            links.emplace_back(g, num_gpus + plane);
    return Topology(std::move(name), num_gpus, num_planes,
                    std::move(links), PodSpec{});
}

Topology
Topology::custom(std::string name, int num_gpus, std::vector<Link> links)
{
    return Topology(std::move(name), num_gpus, 0, std::move(links),
                    PodSpec{});
}

Topology
Topology::switched(std::string name, int num_gpus, int num_switches,
                   std::vector<Link> links)
{
    return Topology(std::move(name), num_gpus, num_switches,
                    std::move(links), PodSpec{});
}

Topology
Topology::superpod(std::string name, int num_boxes, int gpus_per_box,
                   int planes_per_box, int num_spines)
{
    if (num_boxes < 2)
        fatal("superpod topology needs at least 2 boxes, got ",
              num_boxes, " (a single box is Topology::crossbar)");
    if (gpus_per_box < 2)
        fatal("superpod topology needs at least 2 GPUs per box, got ",
              gpus_per_box);
    if (planes_per_box < 1)
        fatal("superpod topology needs at least 1 crossbar plane per "
              "box, got ",
              planes_per_box);
    if (num_spines < 1)
        fatal("superpod topology needs at least 1 spine switch, got ",
              num_spines);

    const int gpus = num_boxes * gpus_per_box;
    const int planes = num_boxes * planes_per_box;
    // Switch ids: planes box-major, then one NIC per GPU, then spines.
    const int first_plane = gpus;
    const int first_nic = first_plane + planes;
    const int first_spine = first_nic + gpus;

    std::vector<Link> links;
    links.reserve(static_cast<std::size_t>(gpus) *
                  (planes_per_box + 1 + num_spines));
    for (int box = 0; box < num_boxes; ++box) {
        for (int p = 0; p < planes_per_box; ++p) {
            const NodeId plane =
                first_plane + box * planes_per_box + p;
            for (int g = 0; g < gpus_per_box; ++g)
                links.emplace_back(box * gpus_per_box + g, plane);
        }
    }
    for (NodeId g = 0; g < gpus; ++g)
        links.emplace_back(g, first_nic + g);
    for (NodeId g = 0; g < gpus; ++g)
        for (int s = 0; s < num_spines; ++s)
            links.emplace_back(first_nic + g, first_spine + s);

    Topology t(std::move(name), gpus, planes + gpus + num_spines,
               std::move(links),
               PodSpec{num_boxes, gpus_per_box, planes_per_box,
                       num_spines});
    for (int k = 0; k < planes; ++k)
        t.switchRoles_[static_cast<std::size_t>(k)] =
            SwitchRole::Crossbar;
    for (int k = 0; k < gpus; ++k)
        t.switchRoles_[static_cast<std::size_t>(planes + k)] =
            SwitchRole::Nic;
    for (int k = 0; k < num_spines; ++k)
        t.switchRoles_[static_cast<std::size_t>(planes + gpus + k)] =
            SwitchRole::Spine;
    t.recomputeRoleIndices();

    // Chassis islands: a GPU, its NIC and its box's planes share the
    // box index; spines belong to no chassis.
    for (NodeId g = 0; g < gpus; ++g) {
        t.islandOf_[static_cast<std::size_t>(g)] = g / gpus_per_box;
        t.islandOf_[static_cast<std::size_t>(first_nic + g)] =
            g / gpus_per_box;
    }
    for (int k = 0; k < planes; ++k)
        t.islandOf_[static_cast<std::size_t>(first_plane + k)] =
            k / planes_per_box;
    for (int s = 0; s < num_spines; ++s)
        t.islandOf_[static_cast<std::size_t>(first_spine + s)] = -1;
    t.numIslands_ = num_boxes;
    return t;
}

NodeKind
Topology::kind(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        fatal("topology '", name_, "': node ", n, " out of range (",
              numNodes_, " nodes)");
    return n < numGpus_ ? NodeKind::Gpu : NodeKind::Switch;
}

SwitchRole
Topology::switchRole(NodeId n) const
{
    if (!isSwitch(n))
        fatal("topology '", name_, "': switch-role query on node ", n,
              " which is not a switch (", numGpus_, " GPUs, ",
              numNodes_, " nodes)");
    return switchRoles_[static_cast<std::size_t>(n - numGpus_)];
}

int
Topology::numSwitchesOfRole(SwitchRole role) const
{
    int count = 0;
    for (SwitchRole r : switchRoles_)
        count += r == role ? 1 : 0;
    return count;
}

int
Topology::island(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        fatal("topology '", name_, "': island query on node ", n,
              " out of range (", numNodes_, " nodes)");
    return islandOf_[static_cast<std::size_t>(n)];
}

std::string
Topology::nodeName(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        fatal("topology '", name_, "': node ", n, " out of range (",
              numNodes_, " nodes)");
    if (n < numGpus_)
        return std::to_string(n);
    const std::size_t k = static_cast<std::size_t>(n - numGpus_);
    const char *prefix = "sw";
    switch (switchRoles_[k]) {
    case SwitchRole::Crossbar:
        break;
    case SwitchRole::Nic:
        prefix = "nic";
        break;
    case SwitchRole::Spine:
        prefix = "spine";
        break;
    }
    return prefix + std::to_string(roleIndex_[k]);
}

bool
Topology::connected(NodeId a, NodeId b) const
{
    return linkIndex(a, b) >= 0;
}

int
Topology::linkIndex(NodeId a, NodeId b) const
{
    if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_ || a == b)
        return -1;
    const auto first =
        adjPeers_.begin() + adjOff_[static_cast<std::size_t>(a)];
    const auto last =
        adjPeers_.begin() + adjOff_[static_cast<std::size_t>(a) + 1];
    const auto it = std::lower_bound(first, last, b);
    if (it == last || *it != b)
        return -1;
    return adjLinks_[static_cast<std::size_t>(it - adjPeers_.begin())];
}

int
Topology::degree(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        return 0;
    return adjOff_[static_cast<std::size_t>(n) + 1] -
           adjOff_[static_cast<std::size_t>(n)];
}

std::vector<NodeId>
Topology::peersOf(NodeId n) const
{
    if (n < 0 || n >= numNodes_)
        return {};
    return {adjPeers_.begin() + adjOff_[static_cast<std::size_t>(n)],
            adjPeers_.begin() +
                adjOff_[static_cast<std::size_t>(n) + 1]};
}

int
Topology::hopCount(NodeId a, NodeId b) const
{
    if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
        return -1;
    return nodeDistance(a, b);
}

bool
Topology::reachable(NodeId a, NodeId b) const
{
    return hopCount(a, b) >= 0;
}

RouteView
Topology::route(NodeId a, NodeId b) const
{
    if (a < 0 || b < 0 || a >= numNodes_ || b >= numNodes_)
        fatal("topology '", name_, "': route query (", a, ",", b,
              ") is out of range (", numNodes_, " nodes)");
    // One scratch per thread, shared by every Topology instance: the
    // returned view is valid until the next route() on this thread.
    static thread_local std::vector<NodeId> scratch;
    static thread_local std::vector<NodeId> candidates;
    scratch.clear();
    if (a == b) {
        scratch.push_back(a);
        return {scratch.data(), 1};
    }
    if (nodeDistance(a, b) < 0)
        return {scratch.data(), 0};

    // Greedy shortest-path walk from the lower endpoint, picking at
    // every step among the neighbours still on a shortest path: the
    // lowest id wins, except when every candidate is a switch -- then
    // the pair stripes across the candidates by (a + b) modulo their
    // count, spreading disjoint pairs over parallel crossbar planes
    // (and cross-chassis pairs over parallel spines) while staying a
    // pure (hence symmetric, byte-stable) function of the endpoints.
    // The higher-to-lower route is the exact reversal. This replays,
    // hop for hop, the walk the retired all-pairs materializer ran at
    // construction time, so routes are byte-identical to it.
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    scratch.push_back(lo);
    NodeId at = lo;
    while (at != hi) {
        const int remaining = nodeDistance(at, hi);
        candidates.clear();
        for (int k = adjOff_[static_cast<std::size_t>(at)];
             k < adjOff_[static_cast<std::size_t>(at) + 1]; ++k) {
            const NodeId next = adjPeers_[static_cast<std::size_t>(k)];
            if (nodeDistance(next, hi) == remaining - 1)
                candidates.push_back(next); // ascending ids
        }
        bool all_switches = candidates.size() > 1;
        for (NodeId c : candidates)
            all_switches = all_switches && isSwitch(c);
        const std::size_t pick =
            all_switches
                ? static_cast<std::size_t>(lo + hi) % candidates.size()
                : 0;
        at = candidates[pick];
        scratch.push_back(at);
    }
    if (a > b)
        std::reverse(scratch.begin(), scratch.end());
    return {scratch.data(), scratch.size()};
}

std::string
Topology::routeString(NodeId a, NodeId b) const
{
    const RouteView path = route(a, b);
    if (path.empty())
        return "(none)";
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i)
            out += " -> ";
        out += nodeName(path[i]);
    }
    return out;
}

std::size_t
Topology::routeTableBytes() const
{
    return adjOff_.capacity() * sizeof(int) +
           adjPeers_.capacity() * sizeof(NodeId) +
           adjLinks_.capacity() * sizeof(int) +
           dist_.capacity() * sizeof(std::int16_t);
}

} // namespace gpubox::noc
