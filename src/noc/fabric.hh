/**
 * @file
 * NVLink fabric timing: per-link latency plus windowed contention.
 */

#ifndef GPUBOX_NOC_FABRIC_HH
#define GPUBOX_NOC_FABRIC_HH

#include <cstdint>
#include <vector>

#include "noc/topology.hh"
#include "util/contention.hh"
#include "util/types.hh"

namespace gpubox::noc
{

/** Latency/contention parameters of the NVLink fabric. */
struct FabricParams
{
    /** One-way cycles added per NVLink hop (request or response). */
    Cycles hopCycles = 90;
    /** Contention accounting window. */
    Cycles windowCycles = 2000;
    /** Transfers per window per link that see no queueing. */
    std::uint32_t freeSlotsPerWindow = 24;
    /** Queueing delay per transfer above the free threshold. */
    Cycles queueCyclesPerExtra = 14;
};

/** Timing model over a Topology's links. */
class Fabric
{
  public:
    Fabric(const Topology &topo, const FabricParams &params);

    /**
     * Charge one single-hop transfer (request or response leg) between
     * two directly connected GPUs.
     *
     * @param from source GPU
     * @param to destination GPU (must be a single-hop peer)
     * @param now current simulated time
     * @return total cycles for this leg (hop latency + queueing)
     */
    Cycles traverse(GpuId from, GpuId to, Cycles now);

    /** Occupancy of the (from,to) link in the current window. */
    std::uint32_t linkOccupancy(GpuId from, GpuId to, Cycles now) const;

    std::uint64_t totalTransfers() const { return transfers_; }
    std::uint64_t linkTransfers(GpuId a, GpuId b) const;

    const Topology &topology() const { return topo_; }
    const FabricParams &params() const { return params_; }

    void resetStats();

  private:
    const Topology &topo_;
    FabricParams params_;
    std::vector<ContentionMeter> meters_; // one per link
    std::vector<std::uint64_t> perLink_;
    std::uint64_t transfers_ = 0;
};

} // namespace gpubox::noc

#endif // GPUBOX_NOC_FABRIC_HH
