/**
 * @file
 * Fabric timing over a mixed GPU/switch topology: per-link latency
 * and bandwidth, port-level queueing and per-switch crossbar
 * contention, charged along the topology's deterministic routes.
 *
 * Contention granularity follows the hardware:
 *
 *  - A GPU-to-GPU link is a point-to-point NVLink whose "port" is the
 *    link itself: one shared ContentionMeter, both directions (the
 *    request and response legs of one access contend, as before).
 *  - A link with a switch endpoint is a switch *port*: it carries one
 *    ContentionMeter per direction (the switch's ingress and egress
 *    queues), so traffic into a port only queues against traffic in
 *    the same direction.
 *  - Every switch additionally owns a crossbar ContentionMeter
 *    charged by each traversal crossing it, which is what makes two
 *    transfers between disjoint GPU pairs that share a switch
 *    interfere measurably -- the cross-pair channel of the attack
 *    layer.
 *
 * Route compilation is lazy and GPU-pair scoped: the first traversal
 * of a GPU pair compiles its route into a flat leg array; later
 * traversals replay the compiled legs with zero topology work. A
 * compiled route is a pure function of its endpoints, so the compile
 * order (hence thread schedule) cannot change any charged cycle.
 * Pairs involving switch endpoints (introspection, a handful of
 * direct switch probes in tests) are charged straight off the
 * topology's on-demand route and never cached. The former eager
 * numNodes^2 table would be ~6M entries on a 1024-GPU pod; the lazy
 * rows cost O(pairs actually traversed).
 *
 * Arbitration is deterministic: same-window contenders resolve in
 * record order, and record order is the simulation engine's actor
 * dispatch order -- (cycle, spawn sequence), where the spawn sequence
 * encodes the stream layer's (process id, stream id, enqueue order)
 * tie-break from the host API. Two runs of the same scenario charge
 * every port in the same order, byte for byte.
 */

#ifndef GPUBOX_NOC_FABRIC_HH
#define GPUBOX_NOC_FABRIC_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "noc/topology.hh"
#include "util/bitops.hh"
#include "util/check.hh"
#include "util/contention.hh"
#include "util/log.hh"
#include "util/types.hh"

namespace gpubox::noc
{

/**
 * Timing/contention parameters of one interconnect link. Each NVLink
 * generation (V1, V2, an NVSwitch port) and the PCIe fallback is a
 * different parameter set; a platform descriptor assigns one to every
 * link of its topology (rt::Platform), per link on heterogeneous
 * fabrics.
 */
struct LinkParams
{
    /** One-way cycles added per traversal of this link. */
    Cycles hopCycles = 90;
    /** Bulk-transfer payload bytes the link moves per cycle (DMA). */
    std::uint32_t bytesPerCycle = 32;
    /** Contention accounting window. */
    Cycles windowCycles = 2000;
    /** Transfers per window per port that see no queueing. */
    std::uint32_t freeSlotsPerWindow = 24;
    /** Queueing delay per transfer above the free threshold. */
    Cycles queueCyclesPerExtra = 14;
};

/**
 * Timing/contention parameters of a switch crossbar. Crossings pay a
 * fixed transit latency plus windowed queueing shared by *every*
 * route through the switch, whichever ports it uses.
 */
struct SwitchParams
{
    /** Cycles to cross the crossbar (added per traversed switch). */
    Cycles crossbarCycles = 30;
    /** Crossbar contention accounting window. */
    Cycles windowCycles = 2000;
    /** Crossings per window served without queueing. */
    std::uint32_t freeSlotsPerWindow = 224;
    /** Queueing delay per crossing above the free threshold. */
    Cycles queueCyclesPerExtra = 2;
};

/** Well-known link generations (calibration table in PAPER.md). */
struct LinkGen
{
    static constexpr LinkParams nvlinkV1() { return {180, 32, 256, 120, 2}; }
    static constexpr LinkParams nvlinkV2() { return {140, 64, 256, 160, 2}; }
    /** Legacy single-link NVSwitch model (switch crossing folded into
     *  the hop); kept for direct-linked descriptors and tests. */
    static constexpr LinkParams nvswitch() { return {250, 128, 256, 200, 1}; }
    /** One port of a modelled NVSwitch plane: a GPU-to-crossbar route
     *  pays two of these plus the crossbar, landing near the legacy
     *  single-hop figure. */
    static constexpr LinkParams nvswitchPort()
    {
        return {110, 128, 256, 200, 1};
    }
    /** PCIe switches buffer deeply: many outstanding TLPs before
     *  queueing, but each extra one is costly on the narrow fabric. */
    static constexpr LinkParams pcie3() { return {700, 8, 256, 96, 6}; }
    /** GPU to its ConnectX-class NIC (GPUDirect DMA into the HCA):
     *  slower than an NVSwitch port, long queueing window, modest
     *  per-extra cost -- the NIC pipelines deeply in each direction
     *  (the ingress/egress split is the fabric's per-direction port
     *  meters, which every switch-attached link gets). */
    static constexpr LinkParams nicPort()
    {
        return {350, 32, 2000, 64, 2};
    }
    /** NIC-to-spine RDMA trunk: microsecond-class one-way latency at
     *  GPU clocks and narrow per-lane bandwidth; the HCA pipelines
     *  deeply, so over-credit transfers queue gently -- the sharp
     *  bottleneck of a pod is the spine crossbar, not its trunks. */
    static constexpr LinkParams rdmaSpine()
    {
        return {1400, 24, 4000, 48, 4};
    }
};

/** Well-known switch flavors (calibration table in PAPER.md). */
struct SwitchGen
{
    /** An NVSwitch crossbar plane (the SwitchParams defaults). */
    static constexpr SwitchParams nvswitchPlane() { return {}; }
    /** A NIC's internal forwarding engine: store-and-forward DMA,
     *  fewer free crossings per window than an NVSwitch but deep
     *  pipelining keeps the per-extra cost mild. */
    static constexpr SwitchParams nicEngine()
    {
        return {200, 4000, 64, 4};
    }
    /** A spine switch: fast silicon, but every cross-chassis route in
     *  the pod funnels through few of them. The spine arbitrates in
     *  long scheduling epochs -- the window spans a whole remote
     *  access (cross-box latency is several NVSwitch windows), so one
     *  flooded epoch is visible to every route crossing the spine for
     *  its entire duration. Few free crossings per epoch: this is the
     *  pod's oversubscribed bottleneck. */
    static constexpr SwitchParams rdmaSpine()
    {
        return {60, 24000, 48, 6};
    }
};

/**
 * Timing model over a Topology's links and switches. A traversal
 * between non-adjacent nodes is charged on every link of the
 * deterministic shortest route (hop latency plus that port's
 * queueing) and on the crossbar of every switch it crosses;
 * traversing unreachable pairs is fatal.
 */
class Fabric
{
  public:
    /** Uniform link generation across the whole fabric. */
    Fabric(const Topology &topo, const LinkParams &params,
           const SwitchParams &switch_params = SwitchParams());

    /** Per-link parameters, indexed like Topology::links(). */
    Fabric(const Topology &topo, std::vector<LinkParams> per_link,
           const SwitchParams &switch_params = SwitchParams());

    /** Uniform links over heterogeneous switches (one SwitchParams
     *  per switch node, indexed like the topology's switch ids). */
    Fabric(const Topology &topo, const LinkParams &params,
           std::vector<SwitchParams> per_switch);

    /** Fully heterogeneous fabric: per-link AND per-switch
     *  parameters (crossbar planes vs NICs vs spines). */
    Fabric(const Topology &topo, std::vector<LinkParams> per_link,
           std::vector<SwitchParams> per_switch);

    /**
     * Charge one transfer leg (request or response) between two
     * reachable nodes, multi-hop routes included.
     *
     * The overwhelmingly common case — a GPU pair whose route is
     * already compiled — stays inline: one leg, one meter record (or
     * the unrolled compiled-leg walk). First-touch compilation,
     * switch endpoints and all error handling go through chargeRoute.
     *
     * @param from source node (normally a GPU)
     * @param to destination node (any reachable peer)
     * @param now current simulated time
     * @return total cycles for this leg (per-port latency + queueing
     *         + crossbar transit of every traversed switch)
     */
    Cycles
    traverse(NodeId from, NodeId to, Cycles now)
    {
        if (from >= 0 && from < numGpus_ && to >= 0 && to < numGpus_) {
            const GpuRow *row = gpuRows_[from].get();
            if (row && row->pairs[to].begin != kUncompiled) {
                const PairRoute &pr = row->pairs[to];
                // A single-leg route never crosses a switch crossbar.
                if (pr.count == 1) {
                    const RouteLeg &leg = row->legs[pr.begin];
                    transfers_.fetch_add(1, std::memory_order_relaxed);
                    ++perDir_[leg.meter];
                    return leg.hopCycles +
                           meters_[leg.meter].record(now);
                }
                if (pr.count > 1)
                    return chargeCompiled(*row, pr, now, 0);
            }
        }
        return chargeRoute(from, to, now, 0);
    }

    /**
     * Charge one bulk DMA transfer of @p bytes along the route: every
     * link pays hop latency plus queueing, every switch its crossbar,
     * and the payload serializes once at the bottleneck link's
     * bytesPerCycle (the store-and-forward pipeline hides the repeat
     * serialization).
     */
    Cycles transferCycles(NodeId from, NodeId to, Cycles now,
                          std::uint64_t bytes);

    /**
     * Uncontended base cost of one leg between @p from and @p to: the
     * sum of per-link hop latencies along the route plus the crossbar
     * transit of every traversed switch, with no queueing and no meter
     * mutation. This is the ground-truth figure calibration checks and
     * attack pacing derive from; fatal for unreachable pairs.
     */
    Cycles routeBaseCycles(NodeId from, NodeId to) const;

    /**
     * Minimum routeBaseCycles over one representative GPU pair per
     * island pair: the latency floor of *any* island-crossing leg.
     * The ShardedEngine derives its conduction-window lookahead from
     * this at boot (island-sharded runs only). Walks the topology's
     * on-demand routes directly -- no pair compilation, no meter
     * mutation; fatal when the topology has fewer than two islands.
     */
    Cycles minCrossIslandBaseCycles() const;

    /** @name Port/crossbar introspection (defense + results sink) @{ */

    /** Occupancy of the (from,to) link in the current window. For a
     *  switch port this is the from->to direction; for a GPU-to-GPU
     *  link both directions share one meter. */
    std::uint32_t linkOccupancy(NodeId from, NodeId to,
                                Cycles now) const;

    /** Crossings of switch @p sw recorded in the current window; 0
     *  for non-switch nodes. */
    std::uint32_t crossbarOccupancy(NodeId sw, Cycles now) const;

    /** Total traversals crossing switch @p sw; 0 for non-switches. */
    std::uint64_t switchCrossings(NodeId sw) const;

    /** Crossbar parameters of switch node @p sw; fatal for
     *  non-switch ids. */
    const SwitchParams &switchParamsOf(NodeId sw) const;

    /** Directed traversal count of the from->to port (either
     *  direction's total for a GPU-to-GPU link is linkTransfers). */
    std::uint64_t portTransfers(NodeId from, NodeId to) const;

    std::uint64_t
    totalTransfers() const
    {
        return transfers_.load(std::memory_order_relaxed);
    }
    /** Both directions of the (a,b) link. */
    std::uint64_t linkTransfers(NodeId a, NodeId b) const;

    /** @} */

    const Topology &topology() const { return topo_; }

    /** GPU pairs whose routes have been compiled so far (stats). */
    std::uint64_t
    compiledPairs() const
    {
        return compiledPairs_.load(std::memory_order_relaxed);
    }

    void resetStats();

    /**
     * @name Deep invariant audits (GPUBOX_CHECKED builds)
     * Bodies compile only with -DGPUBOX_CHECKED=ON; both are no-ops
     * otherwise. auditRouteTables re-derives every lazily compiled
     * pair from the topology -- leg-for-leg equality against a fresh
     * route walk, cached base cost and bottleneck agreement, and
     * meter/crossbar index bounds -- and additionally audits the
     * topology's on-demand routes themselves (reverse symmetry,
     * hop-count minimality, link adjacency), exhaustively on small
     * graphs and strided on pod-scale ones. It runs at construction
     * in checked builds (topology part only; nothing is compiled
     * yet). auditPortConservation verifies ingress/egress accounting:
     * every charged leg is recorded exactly once in one directed port
     * counter and its meter, and crossbar crossings never exceed
     * charged legs; it runs on every resetStats().
     * @{
     */
    void auditRouteTables() const;
    void auditPortConservation() const;
    /** @} */

#if GPUBOX_CHECKED_ENABLED
    /** Test-only: compile one route (if none is yet) and perturb a
     *  compiled leg so the route-table audit must fire. */
    void debugCorruptRouteForAudit();
#endif

  private:
    /**
     * One precompiled hop of a directed route: the meter/counter slot
     * of its directed link traversal, the hop latency, and the switch
     * crossbar crossed after the hop (or -1). chargeCompiled walks
     * these instead of re-deriving link indices and directions from
     * the topology's node path on every traversal.
     */
    struct RouteLeg
    {
        std::uint32_t meter;   // slot in meters_/perDir_
        std::int32_t crossbar; // switch index crossed after, or -1
        Cycles hopCycles;
        Cycles crossbarCycles; // that switch's transit, 0 when none
    };

    /** Sentinel 'begin' of a pair not yet compiled. */
    static constexpr std::uint32_t kUncompiled = 0xffffffffu;

    /** Directed (from,to) route: a span of the owning row's legs
     *  plus cached aggregates. */
    struct PairRoute
    {
        std::uint32_t begin = kUncompiled;
        std::uint32_t count = 0; // 0 = no route (or from == to)
        /** Narrowest link bytesPerCycle along the route. */
        std::uint32_t bottleneckBpc = 0;
        /** Uncontended per-leg base cost (routeBaseCycles). */
        Cycles baseCycles = 0;
    };

    /**
     * Per-source-GPU route cache: the pair table and the compiled leg
     * storage of every route *out of* one GPU live together, so
     * compiling a new pair appends only to its own row -- no other
     * row's replay walk can observe the growth. Under island sharding
     * a row is only ever touched by the schedule group owning its
     * GPU's island (a traversal's endpoints are always coupled), so
     * rows are single-writer by construction.
     */
    struct GpuRow
    {
        std::vector<PairRoute> pairs;
        std::vector<RouteLeg> legs;

        explicit GpuRow(std::size_t n) : pairs(n) {}
    };

    /**
     * Row of @p from with the (from,to) pair compiled, compiling it
     * on first use. The compiled content is a pure function of the
     * endpoints, so when in the program two pairs get compiled (and
     * hence how a row's legs are laid out) cannot change any charged
     * cycle.
     */
    const GpuRow &gpuRowFor(NodeId from, NodeId to) const;

    /** Compile topo_.route(from, to) into @p row. */
    void compilePair(NodeId from, NodeId to, GpuRow &row) const;

    /** Charge every compiled leg of @p pr; @p bytes 0 = plain leg.
     *  Inline so multi-hop traversals (every switched-fabric access)
     *  unroll the short leg walk at the call site. */
    Cycles
    chargeCompiled(const GpuRow &row, const PairRoute &pr, Cycles now,
                   std::uint64_t bytes)
    {
        Cycles total = 0;
        const RouteLeg *leg = &row.legs[pr.begin];
        for (std::uint32_t i = 0; i < pr.count; ++i, ++leg) {
            transfers_.fetch_add(1, std::memory_order_relaxed);
            ++perDir_[leg->meter];
            // Later hops see the port state at their own arrival time.
            const Cycles queue = meters_[leg->meter].record(now + total);
            total += leg->hopCycles + queue;
            // Crossing an intermediate switch pays the crossbar:
            // shared by every route through this switch, whatever
            // ports they use.
            if (leg->crossbar >= 0) {
                ++crossings_[leg->crossbar];
                const Cycles xqueue =
                    crossbarMeters_[leg->crossbar].record(now + total);
                total += leg->crossbarCycles + xqueue;
            }
        }
        if (bytes > 0)
            total += divCeil(bytes,
                             static_cast<std::uint64_t>(pr.bottleneckBpc));
        return total;
    }

    /** Slow path: compile-on-miss for GPU pairs, on-the-fly charge
     *  for switch endpoints, fatal diagnostics. */
    Cycles chargeRoute(NodeId from, NodeId to, Cycles now,
                       std::uint64_t bytes);

    /** Charge an uncached traversal straight off the topology route
     *  (switch-endpoint pairs); same arithmetic as chargeCompiled. */
    Cycles chargeUncached(NodeId from, NodeId to, Cycles now,
                          std::uint64_t bytes);

    /**
     * Slot in meters_/perDir_ of the directed from->to traversal of
     * @p link: switch ports use slot 0 for lo->hi and 1 for hi->lo,
     * GPU-to-GPU links always slot 0 (one shared meter). The single
     * authority for the direction convention.
     */
    std::size_t
    dirIndex(int link, NodeId from, NodeId to) const
    {
        return static_cast<std::size_t>(link) * 2 +
               (isPortLink_[link] && from > to ? 1 : 0);
    }

    /** Meter of the directed from->to traversal of @p link. */
    ContentionMeter &portMeter(int link, NodeId from, NodeId to);
    const ContentionMeter &portMeter(int link, NodeId from,
                                     NodeId to) const;

    const Topology &topo_;
    int numGpus_ = 0; // cached topo_.numGpus() for the inline path
    std::vector<LinkParams> params_; // one per link
    std::vector<SwitchParams> switchParams_; // one per switch
    /** Two meters per link: switch-attached links use [0]=lo->hi and
     *  [1]=hi->lo (ingress/egress queues); GPU-to-GPU links share [0]
     *  for both directions (the legacy point-to-point model). */
    std::vector<ContentionMeter> meters_;
    std::vector<bool> isPortLink_; // link has a switch endpoint
    /**
     * Meters and per-direction/per-switch counters are plain (not
     * atomic): each element belongs to links/switches of one island
     * -- or to the spine, whose users the runtime all couples into
     * one schedule group -- so under island sharding every element is
     * only ever mutated by a single schedule group. The whole-fabric
     * tallies below (transfers_, compiledPairs_) are the only
     * counters shared across groups; they are relaxed atomics.
     */
    std::vector<ContentionMeter> crossbarMeters_;  // one per switch
    std::vector<std::uint64_t> perDir_;            // 2 per link
    std::vector<std::uint64_t> crossings_;         // one per switch
    /** Lazily compiled GPU-pair routes, one row per source GPU,
     *  allocated on first touch (see GpuRow for the sharding
     *  single-writer argument). mutable so the const read paths
     *  (routeBaseCycles) can share the cache. */
    mutable std::vector<std::unique_ptr<GpuRow>> gpuRows_;
    mutable std::atomic<std::uint64_t> compiledPairs_ = 0;
    std::atomic<std::uint64_t> transfers_ = 0;
};

} // namespace gpubox::noc

#endif // GPUBOX_NOC_FABRIC_HH
