/**
 * @file
 * NVLink fabric timing: per-link latency, bandwidth and windowed
 * contention, charged along the topology's precomputed routes.
 */

#ifndef GPUBOX_NOC_FABRIC_HH
#define GPUBOX_NOC_FABRIC_HH

#include <cstdint>
#include <vector>

#include "noc/topology.hh"
#include "util/contention.hh"
#include "util/types.hh"

namespace gpubox::noc
{

/**
 * Timing/contention parameters of one interconnect link. Each NVLink
 * generation (V1, V2, NVSwitch port) and the PCIe fallback is a
 * different parameter set; a platform descriptor assigns one to every
 * link of its topology (rt::Platform).
 */
struct LinkParams
{
    /** One-way cycles added per traversal of this link. */
    Cycles hopCycles = 90;
    /** Bulk-transfer payload bytes the link moves per cycle (DMA). */
    std::uint32_t bytesPerCycle = 32;
    /** Contention accounting window. */
    Cycles windowCycles = 2000;
    /** Transfers per window per link that see no queueing. */
    std::uint32_t freeSlotsPerWindow = 24;
    /** Queueing delay per transfer above the free threshold. */
    Cycles queueCyclesPerExtra = 14;
};

/** Well-known link generations (calibration table in PAPER.md). */
struct LinkGen
{
    static constexpr LinkParams nvlinkV1() { return {180, 32, 256, 120, 2}; }
    static constexpr LinkParams nvlinkV2() { return {140, 64, 256, 160, 2}; }
    static constexpr LinkParams nvswitch() { return {250, 128, 256, 200, 1}; }
    /** PCIe switches buffer deeply: many outstanding TLPs before
     *  queueing, but each extra one is costly on the narrow fabric. */
    static constexpr LinkParams pcie3() { return {700, 8, 256, 96, 6}; }
};

/**
 * Timing model over a Topology's links. A traversal between
 * non-adjacent GPUs is charged on every link of the precomputed
 * shortest route (hop latency plus that link's queueing state);
 * traversing unreachable pairs is fatal.
 */
class Fabric
{
  public:
    /** Uniform link generation across the whole fabric. */
    Fabric(const Topology &topo, const LinkParams &params);

    /** Per-link parameters, indexed like Topology::links(). */
    Fabric(const Topology &topo, std::vector<LinkParams> per_link);

    /**
     * Charge one transfer leg (request or response) between two
     * reachable GPUs, multi-hop routes included.
     *
     * @param from source GPU
     * @param to destination GPU (any reachable peer)
     * @param now current simulated time
     * @return total cycles for this leg (per-link latency + queueing)
     */
    Cycles traverse(GpuId from, GpuId to, Cycles now);

    /**
     * Charge one bulk DMA transfer of @p bytes along the route: every
     * link pays hop latency plus queueing, and the payload serializes
     * once at the bottleneck link's bytesPerCycle (the store-and-
     * forward pipeline hides the repeat serialization).
     */
    Cycles transferCycles(GpuId from, GpuId to, Cycles now,
                          std::uint64_t bytes);

    /** Occupancy of the (from,to) link in the current window. */
    std::uint32_t linkOccupancy(GpuId from, GpuId to, Cycles now) const;

    std::uint64_t totalTransfers() const { return transfers_; }
    std::uint64_t linkTransfers(GpuId a, GpuId b) const;

    const Topology &topology() const { return topo_; }

    void resetStats();

  private:
    /** Charge every link of the a..b route; @p bytes 0 = plain leg. */
    Cycles chargeRoute(GpuId from, GpuId to, Cycles now,
                       std::uint64_t bytes);

    const Topology &topo_;
    std::vector<LinkParams> params_;      // one per link
    std::vector<ContentionMeter> meters_; // one per link
    std::vector<std::uint64_t> perLink_;
    std::uint64_t transfers_ = 0;
};

} // namespace gpubox::noc

#endif // GPUBOX_NOC_FABRIC_HH
