/**
 * @file
 * NVLink traffic monitoring defense (paper Sec. VII).
 *
 * The paper observes that cross-GPU covert and side channels are
 * detectable "by monitoring the traffic over NVLinks and access
 * patterns on L2 and memory (accessible through hardware performance
 * counters)": the attacks need sustained fine-grained remote traffic,
 * while benign multi-GPU applications make coarse-grained transfers.
 * LinkMonitor samples a link's transfer counter periodically and flags
 * sustained high-rate traffic.
 */

#ifndef GPUBOX_DEFENSE_LINK_MONITOR_HH
#define GPUBOX_DEFENSE_LINK_MONITOR_HH

#include <memory>
#include <vector>

#include "rt/runtime.hh"
#include "util/types.hh"

namespace gpubox::defense
{

/** Detection policy. */
struct MonitorConfig
{
    /** Sampling window in cycles. */
    Cycles sampleWindow = 20000;
    /** Transfer legs per 1000 cycles that count as suspicious. */
    double flagRatePerKcycle = 20.0;
    /** Consecutive suspicious windows before raising the flag. */
    unsigned consecutiveWindows = 5;
};

/** Samples one NVLink's transfer counter from the "driver" side. */
class LinkMonitor
{
  public:
    /**
     * @param a,b the NVLink-connected GPU pair to watch
     */
    LinkMonitor(rt::Runtime &rt, GpuId a, GpuId b,
                const MonitorConfig &config = MonitorConfig());

    /**
     * The sampling coroutine may be resumed by the engine after the
     * monitor object goes out of scope; it only touches the shared
     * state block, which the destructor marks stopped.
     */
    ~LinkMonitor();

    LinkMonitor(const LinkMonitor &) = delete;
    LinkMonitor &operator=(const LinkMonitor &) = delete;

    /** Spawn the sampling actor. Runs until stop(). */
    void start();

    /** Request the sampler to stop (takes effect next window). */
    void stop();

    /** @return true once the detection criterion fired. */
    bool attackFlagged() const { return state_->flagged; }

    /** Simulated time of the first flag (0 if never). */
    Cycles firstFlagTime() const { return state_->flagTime; }

    /** Observed transfer rates (legs per 1000 cycles) per window. */
    const std::vector<double> &
    ratePerWindow() const
    {
        return state_->rates;
    }

    /** Peak observed rate. */
    double peakRate() const;

  private:
    struct State
    {
        rt::Runtime *rt;
        GpuId a;
        GpuId b;
        MonitorConfig config;
        bool stopped = false;
        bool flagged = false;
        Cycles flagTime = 0;
        std::vector<double> rates;
    };

    std::shared_ptr<State> state_;
    bool started_ = false;
};

} // namespace gpubox::defense

#endif // GPUBOX_DEFENSE_LINK_MONITOR_HH
