/**
 * @file
 * Triggered partitioning defense (paper Sec. VII).
 *
 * "To minimize the performance overhead of these partitioning-based
 * defense mechanisms, they can only be triggered when contention is
 * detected on a shared resource (similar to the proposed framework
 * in [GPUGuard])." DynamicPartitioner watches an NVLink with the same
 * criterion as LinkMonitor and, on detection, flips every L2 into
 * isolated way slices and confines the configured processes to
 * different slices -- severing a covert channel mid-transmission while
 * leaving the box unpartitioned (full associativity for everyone)
 * under benign load.
 */

#ifndef GPUBOX_DEFENSE_DYNAMIC_PARTITIONER_HH
#define GPUBOX_DEFENSE_DYNAMIC_PARTITIONER_HH

#include <memory>
#include <utility>
#include <vector>

#include "defense/link_monitor.hh"
#include "rt/runtime.hh"

namespace gpubox::defense
{

/** Watches a link; on sustained suspicious traffic, partitions. */
class DynamicPartitioner
{
  public:
    /**
     * @param a,b the NVLink pair to watch
     * @param slices L2 way slices to switch to on trigger
     * @param assignments (process, slice) pairs applied on trigger
     * @param config detection criterion
     */
    DynamicPartitioner(
        rt::Runtime &rt, GpuId a, GpuId b, unsigned slices,
        std::vector<std::pair<rt::Process *, unsigned>> assignments,
        const MonitorConfig &config = MonitorConfig());

    ~DynamicPartitioner();

    DynamicPartitioner(const DynamicPartitioner &) = delete;
    DynamicPartitioner &operator=(const DynamicPartitioner &) = delete;

    /** Spawn the watcher actor. */
    void start();

    /** Stop watching (does not undo a performed partitioning). */
    void stop();

    /** @return true once partitioning was applied. */
    bool triggered() const { return state_->triggered; }

    /** Simulated time partitioning kicked in (0 if never). */
    Cycles triggerTime() const { return state_->triggerTime; }

  private:
    struct State
    {
        rt::Runtime *rt;
        GpuId a;
        GpuId b;
        unsigned slices;
        std::vector<std::pair<rt::Process *, unsigned>> assignments;
        MonitorConfig config;
        bool stopped = false;
        bool triggered = false;
        Cycles triggerTime = 0;
    };

    std::shared_ptr<State> state_;
    bool started_ = false;
};

} // namespace gpubox::defense

#endif // GPUBOX_DEFENSE_DYNAMIC_PARTITIONER_HH
