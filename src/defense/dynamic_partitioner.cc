#include "defense/dynamic_partitioner.hh"

#include "util/log.hh"

namespace gpubox::defense
{

DynamicPartitioner::DynamicPartitioner(
    rt::Runtime &rt, GpuId a, GpuId b, unsigned slices,
    std::vector<std::pair<rt::Process *, unsigned>> assignments,
    const MonitorConfig &config)
    : state_(std::make_shared<State>())
{
    if (!rt.topology().connected(a, b))
        fatal("DynamicPartitioner: GPUs ", a, " and ", b,
              " share no NVLink");
    if (slices < 2)
        fatal("DynamicPartitioner: need at least 2 slices");
    for (const auto &[proc, slice] : assignments) {
        if (!proc)
            fatal("DynamicPartitioner: null process");
        if (slice >= slices)
            fatal("DynamicPartitioner: slice ", slice, " of ", slices);
    }
    state_->rt = &rt;
    state_->a = a;
    state_->b = b;
    state_->slices = slices;
    state_->assignments = std::move(assignments);
    state_->config = config;
}

DynamicPartitioner::~DynamicPartitioner()
{
    state_->stopped = true;
}

void
DynamicPartitioner::start()
{
    if (started_)
        fatal("DynamicPartitioner already started");
    started_ = true;

    std::shared_ptr<State> state = state_;
    state_->rt->engine().spawn(
        "dynamic-partitioner",
        [state](sim::ActorCtx &ctx) -> sim::Task {
            std::uint64_t prev =
                state->rt->fabric().linkTransfers(state->a, state->b);
            unsigned hot_streak = 0;
            while (!ctx.stopRequested() && !state->stopped &&
                   !state->triggered) {
                co_await sim::Delay{state->config.sampleWindow};
                const std::uint64_t now_count =
                    state->rt->fabric().linkTransfers(state->a,
                                                      state->b);
                const double rate =
                    static_cast<double>(now_count - prev) * 1000.0 /
                    static_cast<double>(state->config.sampleWindow);
                prev = now_count;
                hot_streak = rate >= state->config.flagRatePerKcycle
                                 ? hot_streak + 1
                                 : 0;
                if (hot_streak >= state->config.consecutiveWindows) {
                    // Contention detected: flip the box into isolated
                    // slices (flushes resident lines, like the real
                    // reconfiguration) and separate the suspects.
                    state->rt->enableMigPartitioning(state->slices);
                    for (auto &[proc, slice] : state->assignments)
                        state->rt->assignPartition(*proc, slice);
                    state->triggered = true;
                    state->triggerTime = ctx.now();
                }
            }
        });
}

void
DynamicPartitioner::stop()
{
    state_->stopped = true;
}

} // namespace gpubox::defense
