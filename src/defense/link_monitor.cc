#include "defense/link_monitor.hh"

#include <algorithm>

#include "util/log.hh"

namespace gpubox::defense
{

LinkMonitor::LinkMonitor(rt::Runtime &rt, GpuId a, GpuId b,
                         const MonitorConfig &config)
    : state_(std::make_shared<State>())
{
    if (!rt.topology().connected(a, b))
        fatal("LinkMonitor: GPUs ", a, " and ", b, " share no NVLink");
    if (config.sampleWindow == 0)
        fatal("LinkMonitor: zero sample window");
    state_->rt = &rt;
    state_->a = a;
    state_->b = b;
    state_->config = config;
}

LinkMonitor::~LinkMonitor()
{
    state_->stopped = true;
}

void
LinkMonitor::start()
{
    if (started_)
        fatal("LinkMonitor already started");
    started_ = true;

    // The coroutine shares ownership of the state so it can outlive
    // the monitor object safely.
    std::shared_ptr<State> state = state_;
    state_->rt->engine().spawn(
        "link-monitor", [state](sim::ActorCtx &ctx) -> sim::Task {
            std::uint64_t prev =
                state->rt->fabric().linkTransfers(state->a, state->b);
            unsigned hot_streak = 0;
            while (!ctx.stopRequested() && !state->stopped) {
                co_await sim::Delay{state->config.sampleWindow};
                const std::uint64_t now_count =
                    state->rt->fabric().linkTransfers(state->a,
                                                      state->b);
                const double rate =
                    static_cast<double>(now_count - prev) * 1000.0 /
                    static_cast<double>(state->config.sampleWindow);
                prev = now_count;
                state->rates.push_back(rate);
                if (rate >= state->config.flagRatePerKcycle) {
                    ++hot_streak;
                    if (hot_streak >= state->config.consecutiveWindows &&
                        !state->flagged) {
                        state->flagged = true;
                        state->flagTime = ctx.now();
                    }
                } else {
                    hot_streak = 0;
                }
            }
        });
}

void
LinkMonitor::stop()
{
    state_->stopped = true;
}

double
LinkMonitor::peakRate() const
{
    if (state_->rates.empty())
        return 0.0;
    return *std::max_element(state_->rates.begin(), state_->rates.end());
}

} // namespace gpubox::defense
