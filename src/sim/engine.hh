/**
 * @file
 * Deterministic discrete-time engine scheduling coroutine actors.
 */

#ifndef GPUBOX_SIM_ENGINE_HH
#define GPUBOX_SIM_ENGINE_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/task.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::sim
{

class Engine;

/**
 * Per-actor simulation context. Owned by the Engine; handed by
 * reference to the actor's coroutine so the body can read its local
 * clock, charge non-suspending costs and observe stop requests.
 */
class ActorCtx
{
    friend class Engine;

  public:
    /** Actor-local current time in cycles. */
    Cycles now() const { return time_ + extra_; }

    /**
     * Charge cycles without suspending (e.g. the cost of reading the
     * clock register). Applied to the actor clock together with the
     * next co_await.
     */
    void charge(Cycles c) { extra_ += c; }

    /** Cooperative cancellation flag, settable by any other actor. */
    bool stopRequested() const { return stop_; }
    void requestStop() { stop_ = true; }

    bool finished() const { return done_; }

    const std::string &name() const { return name_; }
    std::size_t id() const { return id_; }

    /** Actor-private RNG stream, derived from the engine seed. */
    Rng &rng() { return rng_; }

    Engine &engine() { return *engine_; }

    /**
     * Hook invoked by the Engine when the actor's coroutine completes.
     * Used by the runtime to release SM resources and dispatch queued
     * thread blocks.
     */
    void setOnDone(std::function<void(ActorCtx &)> cb)
    {
        onDone_ = std::move(cb);
    }

  private:
    ActorCtx(Engine *eng, std::size_t id, std::string name, Rng rng)
        : engine_(eng), id_(id), name_(std::move(name)), rng_(rng)
    {}

    Engine *engine_;
    std::size_t id_;
    std::string name_;
    Rng rng_;
    Cycles time_ = 0;
    Cycles extra_ = 0;
    bool stop_ = false;
    bool done_ = false;
    /**
     * The actor body is stored here before the coroutine is created:
     * a coroutine lambda's frame references its closure object, so
     * the closure must stay alive (and unmoved) as long as the
     * suspended coroutine does.
     */
    std::function<Task(ActorCtx &)> body_;
    Task task_;
    std::function<void(ActorCtx &)> onDone_;
};

/** Deterministic snapshot of an engine's progress counters. */
struct EngineStats
{
    std::uint64_t steps = 0;
    std::size_t spawned = 0;
    std::size_t live = 0;
    Cycles now = 0;

    bool operator==(const EngineStats &) const = default;
};

/**
 * Min-time actor scheduler.
 *
 * The engine repeatedly resumes the live actor with the smallest local
 * clock (ties broken by spawn order), then advances that actor's clock
 * by the delay its last co_await deposited. This is a conservative
 * time-ordered simulation: any state mutation performed inside an
 * actor's resume happens while that actor holds the global minimum
 * time, so cross-actor interleavings are causally consistent.
 */
class Engine
{
  public:
    explicit Engine(std::uint64_t seed = 1);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Create an actor and start its coroutine.
     *
     * @param name debug name
     * @param body factory invoked with the new ActorCtx; returns the
     *             actor's Task coroutine
     * @param start_time initial local clock of the actor
     * @return reference to the actor context (stable address)
     */
    ActorCtx &spawn(const std::string &name,
                    std::function<Task(ActorCtx &)> body,
                    Cycles start_time = 0);

    /**
     * Resume the single actor with minimum local time.
     * @return false when no live actor remains.
     */
    bool stepOne();

    /** Run until every actor has completed. */
    void run();

    /** Run until the global clock reaches @p t or all actors finish. */
    void runUntil(Cycles t);

    /** Global clock: local time of the most recently resumed actor. */
    Cycles now() const { return lastTime_; }

    std::size_t liveActors() const { return live_; }
    std::size_t totalSpawned() const { return actors_.size(); }
    std::uint64_t stepsExecuted() const { return steps_; }

    /**
     * Progress counters as one value; the ExperimentRunner records
     * these per isolated engine instead of wall-clock numbers so
     * sweep results stay deterministic.
     */
    EngineStats
    stats() const
    {
        return {steps_, actors_.size(), live_, lastTime_};
    }

    /** Request cooperative stop of every live actor. */
    void requestStopAll();

    /**
     * Names of actors spawned but not yet completed, in spawn order.
     * Used by the runtime's deadlock diagnostics to say *who* is
     * stuck instead of failing with a bare message.
     */
    std::vector<std::string> unfinishedActorNames() const;

  private:
    struct QueueEntry
    {
        Cycles time;
        std::uint64_t seq;
        std::size_t actor;

        bool
        operator>(const QueueEntry &other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };

    std::uint64_t seed_;
    std::vector<std::unique_ptr<ActorCtx>> actors_;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>> queue_;
    std::uint64_t seqCounter_ = 0;
    std::size_t live_ = 0;
    Cycles lastTime_ = 0;
    std::uint64_t steps_ = 0;
};

} // namespace gpubox::sim

#endif // GPUBOX_SIM_ENGINE_HH
