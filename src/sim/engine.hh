/**
 * @file
 * Deterministic discrete-time engine scheduling coroutine actors.
 */

#ifndef GPUBOX_SIM_ENGINE_HH
#define GPUBOX_SIM_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/task.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::sim
{

class Engine;

/**
 * Per-actor simulation context. Owned by the Engine; handed by
 * reference to the actor's coroutine so the body can read its local
 * clock, charge non-suspending costs and observe stop requests.
 */
class ActorCtx
{
    friend class Engine;
    template <typename, std::size_t> friend class gpubox::Arena;

  public:
    /** Actor-local current time in cycles. */
    Cycles now() const { return time_ + extra_; }

    /**
     * Charge cycles without suspending (e.g. the cost of reading the
     * clock register). Applied to the actor clock together with the
     * next co_await.
     */
    void charge(Cycles c) { extra_ += c; }

    /** Cooperative cancellation flag, settable by any other actor. */
    bool stopRequested() const { return stop_; }
    void requestStop() { stop_ = true; }

    bool finished() const { return done_; }

    const std::string &name() const { return name_; }
    std::size_t id() const { return id_; }

    /** Actor-private RNG stream, derived from the engine seed. */
    Rng &rng() { return rng_; }

    Engine &engine() { return *engine_; }

    /**
     * Hook invoked by the Engine when the actor's coroutine completes.
     * Used by the runtime to release SM resources and dispatch queued
     * thread blocks.
     */
    void setOnDone(std::function<void(ActorCtx &)> cb)
    {
        onDone_ = std::move(cb);
    }

  private:
    ActorCtx(Engine *eng, std::size_t id, std::string name, Rng rng)
        : engine_(eng), id_(id), name_(std::move(name)), rng_(rng)
    {}

    Engine *engine_;
    std::size_t id_;
    std::string name_;
    Rng rng_;
    Cycles time_ = 0;
    Cycles extra_ = 0;
    bool stop_ = false;
    bool done_ = false;
    /**
     * The actor body is stored here before the coroutine is created:
     * a coroutine lambda's frame references its closure object, so
     * the closure must stay alive (and unmoved) as long as the
     * suspended coroutine does.
     */
    std::function<Task(ActorCtx &)> body_;
    Task task_;
    std::function<void(ActorCtx &)> onDone_;
};

/** Deterministic snapshot of an engine's progress counters. */
struct EngineStats
{
    std::uint64_t steps = 0;
    std::size_t spawned = 0;
    std::size_t live = 0;
    Cycles now = 0;
    /** Reschedules of a still-live actor after a resume. */
    std::uint64_t requeues = 0;
    /** Requeues that kept the actor in its heap slot (O(1) path). */
    std::uint64_t fastRequeues = 0;
    /** High-water mark of simultaneously queued actors. */
    std::size_t peakQueued = 0;
    /** Bytes of arena storage reserved for actor contexts. */
    std::size_t arenaBytes = 0;
    /** Arena chunks backing actor contexts. */
    std::size_t arenaChunks = 0;

    bool operator==(const EngineStats &) const = default;
};

/**
 * Cumulative engine activity on one thread, fed by every Engine
 * destructor via threadEngineProfile(). The ExperimentRunner brackets
 * each scenario with a reset/snapshot pair, so a scenario's profile is
 * the same no matter which worker thread it lands on.
 */
struct EngineProfile
{
    std::uint64_t engines = 0;
    std::uint64_t steps = 0;
    std::uint64_t spawned = 0;
    std::uint64_t requeues = 0;
    std::uint64_t fastRequeues = 0;
    std::uint64_t peakQueued = 0;
    std::uint64_t arenaBytes = 0;
    std::uint64_t arenaChunks = 0;

    void add(const EngineStats &s);
    /** Fold another profile in (sums; peakQueued takes the max). */
    void merge(const EngineProfile &p);

    bool operator==(const EngineProfile &) const = default;
};

/** Accumulator for engines destroyed on the calling thread. */
EngineProfile &threadEngineProfile();

/**
 * Min-time actor scheduler.
 *
 * The engine repeatedly resumes the live actor with the smallest local
 * clock (ties broken by schedule order), then advances that actor's
 * clock by the delay its last co_await deposited. This is a
 * conservative time-ordered simulation: any state mutation performed
 * inside an actor's resume happens while that actor holds the global
 * minimum time, so cross-actor interleavings are causally consistent.
 *
 * Scheduling uses an indexed binary heap keyed by actor: each live
 * actor owns exactly one heap slot (no stale entries), keyed by
 * (local time, schedule sequence). The common post-resume requeue
 * adjusts the actor's key in place, which usually means a short or
 * empty sift instead of a pop+push pair.
 */
class Engine
{
  public:
    explicit Engine(std::uint64_t seed = 1);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Create an actor and start its coroutine.
     *
     * @param name debug name
     * @param body factory invoked with the new ActorCtx; returns the
     *             actor's Task coroutine
     * @param start_time initial local clock of the actor
     * @return reference to the actor context (stable address)
     */
    ActorCtx &spawn(const std::string &name,
                    std::function<Task(ActorCtx &)> body,
                    Cycles start_time = 0);

    /**
     * Resume the single actor with minimum local time.
     * @return false when no live actor remains.
     */
    bool stepOne();

    /** Run until every actor has completed. */
    void run();

    /** Run until the global clock reaches @p t or all actors finish. */
    void runUntil(Cycles t);

    /** Global clock: local time of the most recently resumed actor. */
    Cycles now() const { return lastTime_; }

    /** Sentinel nextEventTime() of an engine with no queued actor. */
    static constexpr Cycles kIdle = ~Cycles{0};

    /**
     * Local time of the actor stepOne would resume next, or kIdle when
     * the queue is empty. The ShardedEngine's conduction loop merges
     * engines on this key.
     */
    Cycles
    nextEventTime() const
    {
        return heap_.empty() ? kIdle : heap_[0].time;
    }

    std::size_t liveActors() const { return live_; }
    std::size_t totalSpawned() const { return actors_.size(); }
    std::uint64_t stepsExecuted() const { return steps_; }

    /**
     * Progress counters as one value; the ExperimentRunner records
     * these per isolated engine instead of wall-clock numbers so
     * sweep results stay deterministic.
     */
    EngineStats
    stats() const
    {
        EngineStats s;
        s.steps = steps_;
        s.spawned = actors_.size();
        s.live = live_;
        s.now = lastTime_;
        s.requeues = requeues_;
        s.fastRequeues = fastRequeues_;
        s.peakQueued = peakQueued_;
        s.arenaBytes = actors_.reservedBytes();
        s.arenaChunks = actors_.chunkCount();
        return s;
    }

    /** Request cooperative stop of every live actor. */
    void requestStopAll();

    /**
     * Deep scheduler-coherence audit: heap order, heap-slot/actor
     * index agreement, and liveness bookkeeping. Body compiles only
     * with -DGPUBOX_CHECKED=ON (no-op otherwise); checked builds run
     * it on every spawn/retire and on a sampled cadence inside
     * stepOne, and the checked test suite calls it directly.
     */
    void auditSchedulerCoherence() const;

#if GPUBOX_CHECKED_ENABLED
    /** Test-only: break the heap order so the audit must fire. */
    void debugCorruptHeapForAudit();
#endif

    /**
     * Names of actors spawned but not yet completed, in spawn order.
     * Used by the runtime's deadlock diagnostics to say *who* is
     * stuck instead of failing with a bare message.
     */
    std::vector<std::string> unfinishedActorNames() const;

  private:
    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    /**
     * One queued actor with its scheduling key embedded, so sifting
     * compares touch only the contiguous heap array (no pointer chase
     * into the actor arena).
     */
    struct HeapNode
    {
        Cycles time;
        std::uint64_t seq;
        std::uint32_t actor;

        bool
        operator<(const HeapNode &other) const
        {
            if (time != other.time)
                return time < other.time;
            return seq < other.seq;
        }
    };

    void siftUp(std::size_t pos);
    /** @return true when the node moved. */
    bool siftDown(std::size_t pos);
    void heapRemove(std::size_t pos);

    std::uint64_t seed_;
    Arena<ActorCtx> actors_;
    /** Live queued actors, binary-heap ordered by (time, seq). */
    std::vector<HeapNode> heap_;
    /** Actor id -> slot in heap_, or kNoSlot when dequeued. */
    std::vector<std::uint32_t> heapPos_;
    std::uint64_t seqCounter_ = 0;
    std::size_t live_ = 0;
    Cycles lastTime_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t requeues_ = 0;
    std::uint64_t fastRequeues_ = 0;
    std::size_t peakQueued_ = 0;
};

} // namespace gpubox::sim

#endif // GPUBOX_SIM_ENGINE_HH
