/**
 * @file
 * Conservative parallel discrete-event layer over sim::Engine.
 *
 * A ShardedEngine partitions a scenario's actors across a fixed number
 * of *shards* (the runtime places actors by fabric island). Shards
 * that interact through simulated state -- peer access, cross-GPU DMA,
 * cross-stream events, spine routes -- are *coupled* into one schedule
 * group; every group owns one sim::Engine, so all actors that can
 * observe each other execute in exactly the sequential engine's
 * (time, spawn/requeue sequence) order. Groups that remain disjoint
 * share no simulated state at all, and only those run concurrently:
 * the conduction loop advances all runnable groups in bounded time
 * windows of `lookahead` cycles on a persistent worker pool, with a
 * barrier between windows.
 *
 * Determinism argument, in two halves:
 *
 *  1. Coupling preserves exactness. Any two actors that touch the same
 *     meter, cache, stream or RNG stream are in the same group (the
 *     runtime couples shards on every interaction edge *at host
 *     enqueue time*, before the interacting actors run), so their
 *     interleaving is the single-engine interleaving, byte for byte.
 *     With one live group -- every current attack scenario, since an
 *     attack by construction touches everything it measures -- the
 *     facade degenerates to stepping that engine inline, and the
 *     stdout/CSV/metrics surface is *identical* to `shards=1`,
 *     including actor ids and their derived RNG streams.
 *
 *  2. Windows cannot reorder anything observable. Disjoint groups
 *     share no simulated state, so the window width (and the worker
 *     count, and the OS schedule) affects only host-side progress
 *     granularity: host predicates (Runtime::sync) are evaluated at
 *     window barriers, and every simulated byte each group produces is
 *     a pure function of that group's own event stream. The lookahead
 *     is derived from the fabric's minimum cross-island route cost --
 *     the latency floor any future cross-group message would pay -- so
 *     group clocks never drift apart further than one cross-fabric
 *     flight time.
 *
 * Known limitation (documented, tested): host code that interleaves
 * mid-run enqueues with sync() on a *multi-group* scenario observes
 * window-granular completion times; bulk-synchronous phases (enqueue
 * everything, then sync) are exact at any shard count. Single-group
 * scenarios are always exact.
 */

#ifndef GPUBOX_SIM_SHARDED_ENGINE_HH
#define GPUBOX_SIM_SHARDED_ENGINE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hh"
#include "sim/task.hh"
#include "util/types.hh"

namespace gpubox::sim
{

/** Island-sharded conservative front end over per-group Engines. */
class ShardedEngine
{
  public:
    struct Config
    {
        /** Shard slots actors can be placed on (>= 1). */
        unsigned shards = 1;
        /** Seed handed to every group engine (actor RNG streams). */
        std::uint64_t seed = 1;
        /**
         * Width of one conduction window in cycles. Derived by the
         * runtime from the fabric's minimum cross-island route cost;
         * any positive value is *correct* (groups are disjoint), the
         * width only sets host-predicate granularity and clock skew.
         */
        Cycles lookahead = 4096;
        /** Worker threads for multi-group windows; 0 = min(shards,
         *  hardware_concurrency). 1 runs windows on the caller. */
        unsigned workers = 0;
    };

    explicit ShardedEngine(Config config);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    unsigned shards() const { return shards_; }
    Cycles lookahead() const { return lookahead_; }
    void setLookahead(Cycles la);
    unsigned workers() const { return workerTarget_; }

    /** @name Shard coupling (host side, any time) @{ */

    /**
     * Merge the schedule groups of shards @p a and @p b. Coupling
     * before either group spawned is free (they will share one
     * engine, preserving sequential actor ids); coupling two groups
     * that both already run is a *fusion*: their engines keep their
     * actors and are stepped merged by (time, engine creation order,
     * sequence) from then on.
     */
    void couple(unsigned a, unsigned b);

    /** Merge every shard into one group (global-state observers). */
    void coupleAll();

    /** True when @p a and @p b are in the same schedule group. */
    bool coupled(unsigned a, unsigned b) const;

    /** Live schedule groups (groups that have spawned). */
    std::size_t groupCount() const;

    /** @} */

    /**
     * Spawn an actor on shard @p shard. From inside a running actor
     * (worker context) the target must resolve to the caller's own
     * group -- a cross-group spawn means a missing coupling edge and
     * is fatal rather than silently racy.
     */
    ActorCtx &spawnOn(unsigned shard, const std::string &name,
                      std::function<Task(ActorCtx &)> body,
                      Cycles start_time = 0);

    /**
     * Spawn an actor that observes global simulated state (defense
     * monitors watching the whole fabric): couples every shard first,
     * then spawns into the merged group.
     */
    ActorCtx &spawn(const std::string &name,
                    std::function<Task(ActorCtx &)> body,
                    Cycles start_time = 0);

    /** @name Driving (host side only) @{ */

    /** Resume the globally minimal actor (serial; ties across groups
     *  break by group creation order). @return false when drained. */
    bool stepOne();

    /** Run until every actor of every group has completed. */
    void run();

    /** Run until every group's next event is >= @p t (or drained).
     *  Multi-group progress is window-granular, capped at @p t. */
    void runUntil(Cycles t);

    /**
     * Drive until @p pred() returns true. With one runnable group the
     * predicate is checked after every step (exact sequential sync
     * semantics); with several it is checked at window barriers.
     *
     * @return true when the predicate was satisfied; false when every
     *         group drained with the predicate still false (the
     *         runtime turns this into its deadlock diagnostics).
     */
    template <typename Pred>
    bool
    drive(Pred &&pred)
    {
        for (;;) {
            if (pred())
                return true;
            Engine *only = soleRunnableEngine();
            if (only) {
                // Exact path: one runnable engine, predicate per step.
                do {
                    if (!only->stepOne())
                        break;
                    if (pred())
                        return true;
                } while (onlyRunnable(only));
                continue; // re-resolve (drained, or a group woke up)
            }
            if (!windowOnce(Engine::kIdle))
                return false;
        }
    }

    /**
     * Current simulated time. Inside a running actor this is its own
     * group's clock (exactly Engine::now() of the sequential run);
     * host side it is the maximum over all group clocks -- a safe
     * (conservative) start time for newly enqueued work.
     */
    Cycles now() const;

    /** Request cooperative stop of every live actor of every group. */
    void requestStopAll();

    std::size_t liveActors() const;
    std::size_t totalSpawned() const;

    /**
     * Merged progress counters. steps/spawned/live/now/requeues are
     * invariant under the shard count (the same resumes happen in
     * every partitioning); fastRequeues/peakQueued/arena* describe
     * per-engine heap and arena *shape* and are deterministic at a
     * fixed shard count but naturally differ between one big heap and
     * N small ones -- they are profile diagnostics, not part of the
     * byte-identity surface (which is stdout/CSV/metrics).
     */
    EngineStats stats() const;

    /** Unfinished actor names across groups, in group creation order
     *  (deadlock diagnostics). */
    std::vector<std::string> unfinishedActorNames() const;

    /** Conduction windows executed (multi-group progress only). */
    std::uint64_t windowsRun() const { return windowsRun_; }
    /** Windows whose groups ran on the worker pool concurrently. */
    std::uint64_t parallelWindows() const { return parallelWindows_; }

    /** @} */

  private:
    /** One schedule group: the engines owning its actors. A group has
     *  one engine unless a post-spawn coupling fused two live groups;
     *  engines are ordered by creation index (the merge tie-break). */
    struct Group
    {
        std::vector<Engine *> engines;
        /** Creation order of the group's first engine; orders groups
         *  deterministically in window dispatch and diagnostics. */
        std::uint64_t order = 0;
    };

    struct WindowTask
    {
        Group *group = nullptr;
        Cycles end = 0;
        std::exception_ptr error;
    };

    /**
     * Group the calling thread is currently stepping, or null on the
     * host thread. Published by the conduction loop so spawns
     * performed inside an actor's resume route to the caller's own
     * group (and so now() reads the active group's clock).
     */
    static Group *&activeGroup();

    unsigned findRoot(unsigned shard) const;
    Group &groupOf(unsigned shard);

    /** Earliest next event over the group's engines (kIdle if none). */
    static Cycles groupNext(const Group &g);

    /** Resume the group's minimal actor (ties: engine creation order). */
    static bool groupStep(Group &g);

    /** Run the group's events with time < @p t. */
    static void groupRunUntil(Group &g, Cycles t);

    /** The single runnable engine, or nullptr when zero or several
     *  groups are runnable (or a runnable group is fused). */
    Engine *soleRunnableEngine() const;
    bool onlyRunnable(const Engine *e) const;

    /**
     * Execute one conduction window over all runnable groups, capped
     * at @p limit: [T, min(T + lookahead, limit)) where T is the
     * global minimum next-event time. @return false when nothing was
     * runnable below @p limit (no progress possible).
     */
    bool windowOnce(Cycles limit);

    /** Run @p tasks on the pool (or inline), barrier, rethrow the
     *  first error in group order. */
    void dispatchWindow(std::vector<WindowTask> &tasks);

    void startWorkersLocked();
    void workerLoop();

    /** Execute one group's window slice, publishing the worker-side
     *  spawn context. */
    static void runGroupWindow(Group &g, Cycles end);

    unsigned shards_;
    std::uint64_t seed_;
    Cycles lookahead_;
    unsigned workerTarget_;

    /** Union-find over shard ids; the root indexes groupsByRoot_. */
    mutable std::vector<unsigned> parent_;
    /** Group of each root shard (null until coupled into another). */
    std::vector<std::unique_ptr<Group>> groupsByRoot_;
    /** Groups that own at least one engine, in creation order. */
    std::vector<Group *> liveGroups_;
    /** All engines, in creation order (owns; destruction order). */
    std::vector<std::unique_ptr<Engine>> engines_;
    std::uint64_t nextGroupOrder_ = 0;

    std::uint64_t windowsRun_ = 0;
    std::uint64_t parallelWindows_ = 0;

    /** @name Worker pool (lazy; conduction windows only) @{ */
    std::vector<std::jthread> workers_;
    std::mutex poolMu_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::vector<WindowTask> *tasks_ = nullptr;
    std::size_t nextTask_ = 0;
    std::size_t doneTasks_ = 0;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
    /** @} */
};

} // namespace gpubox::sim

#endif // GPUBOX_SIM_SHARDED_ENGINE_HH
