/**
 * @file
 * Coroutine task type for simulation actors.
 *
 * Every simulated GPU thread block (and victim kernel, prober, trojan,
 * spy, ...) is a C++20 coroutine returning sim::Task. The coroutine
 * advances simulated time exclusively by co_await-ing awaitables that
 * deposit a cycle count into the promise; the Engine picks the actor
 * with the minimum local time, resumes it, then charges the deposited
 * delay. Shared state (caches, links) is therefore always mutated in
 * global-time order, which makes contention between concurrently
 * running actors deterministic and seed-reproducible.
 */

#ifndef GPUBOX_SIM_TASK_HH
#define GPUBOX_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace gpubox::sim
{

/**
 * Thread-local size-bucketed freelist for coroutine frames. Simulations
 * churn through millions of short-lived block coroutines of a handful
 * of distinct frame sizes; recycling frames instead of round-tripping
 * the global allocator is one of the engine's biggest hot-path wins.
 * A schedule group's frames normally alloc and free on the same worker
 * thread, so the fast path never synchronizes. Every frame carries an
 * ownership header naming the thread pool it came from: a frame freed
 * on a different thread (shard windows migrating across pool workers)
 * is returned to the global allocator instead of being adopted into a
 * foreign freelist, and frames above the pooled range always go
 * through the global allocator. The header only ever compares pool
 * addresses -- a dead thread's pool is never dereferenced.
 */
class FramePool
{
  public:
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kBuckets = 64; // pools up to ~4 KiB
    /** Ownership tag prepended to every frame; sized to the strictest
     *  alignment so the frame behind it stays new-aligned. */
    static constexpr std::size_t kHeaderBytes = alignof(std::max_align_t);

    static void *
    allocate(std::size_t n)
    {
        const std::size_t b = bucket(n);
        PoolSet &pools = threadPools();
        void *raw;
        if (b >= kBuckets) {
            raw = ::operator new(n + kHeaderBytes);
            *static_cast<PoolSet **>(raw) = nullptr; // never pooled
        } else {
            auto &list = pools.lists[b];
            if (!list.empty()) {
                raw = list.back();
                list.pop_back();
            } else {
                raw = ::operator new((b + 1) * kGranule);
            }
            *static_cast<PoolSet **>(raw) = &pools;
        }
        return static_cast<char *>(raw) + kHeaderBytes;
    }

    static void
    release(void *p, std::size_t n)
    {
        void *raw = static_cast<char *>(p) - kHeaderBytes;
        PoolSet *owner = *static_cast<PoolSet **>(raw);
        const std::size_t b = bucket(n);
        if (b >= kBuckets || owner != &threadPools()) {
            // Oversize frame, or a cross-thread free: the block must
            // not enter this thread's freelist (its owner may recycle
            // or die at any time), so it goes back whole.
            ::operator delete(raw);
            return;
        }
        owner->lists[b].push_back(raw);
    }

    /** Test hook: frames currently parked in the calling thread's
     *  freelists (cross-thread frees must leave this untouched). */
    static std::size_t
    pooledBlocks()
    {
        std::size_t n = 0;
        for (const auto &list : threadPools().lists)
            n += list.size();
        return n;
    }

  private:
    struct PoolSet
    {
        std::vector<void *> lists[kBuckets];

        /** Thread exit drains the freelists; in-flight frames owned by
         *  other threads are unaffected (they compare the pool address
         *  and fall back to the global allocator). */
        ~PoolSet()
        {
            for (auto &list : lists)
                for (void *raw : list)
                    ::operator delete(raw);
        }
    };

    /** Bucket by gross size (frame + header). */
    static std::size_t
    bucket(std::size_t n)
    {
        return (n + kHeaderBytes) / kGranule;
    }

    static PoolSet &
    threadPools()
    {
        thread_local PoolSet pools;
        return pools;
    }
};

/** Move-only handle to a suspended simulation coroutine. */
class Task
{
  public:
    struct promise_type
    {
        /** Cycles to charge the actor after the current resume. */
        Cycles pendingDelay = 0;
        /** Exception escaping the coroutine body, rethrown by Engine. */
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        void
        unhandled_exception() noexcept
        {
            exception = std::current_exception();
        }

        /** Frames come from the per-thread FramePool, not malloc. */
        static void *operator new(std::size_t n)
        {
            return FramePool::allocate(n);
        }

        static void operator delete(void *p, std::size_t n)
        {
            FramePool::release(p, n);
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }
    Handle handle() const { return handle_; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

/**
 * Awaitable that suspends the actor for a fixed number of cycles.
 * `co_await Delay{100}` models 100 cycles of busy work.
 */
struct Delay
{
    Cycles cycles;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(Task::Handle h) const noexcept
    {
        h.promise().pendingDelay = cycles;
    }

    void await_resume() const noexcept {}
};

} // namespace gpubox::sim

#endif // GPUBOX_SIM_TASK_HH
