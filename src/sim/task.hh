/**
 * @file
 * Coroutine task type for simulation actors.
 *
 * Every simulated GPU thread block (and victim kernel, prober, trojan,
 * spy, ...) is a C++20 coroutine returning sim::Task. The coroutine
 * advances simulated time exclusively by co_await-ing awaitables that
 * deposit a cycle count into the promise; the Engine picks the actor
 * with the minimum local time, resumes it, then charges the deposited
 * delay. Shared state (caches, links) is therefore always mutated in
 * global-time order, which makes contention between concurrently
 * running actors deterministic and seed-reproducible.
 */

#ifndef GPUBOX_SIM_TASK_HH
#define GPUBOX_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace gpubox::sim
{

/**
 * Thread-local size-bucketed freelist for coroutine frames. Simulations
 * churn through millions of short-lived block coroutines of a handful
 * of distinct frame sizes; recycling frames instead of round-tripping
 * the global allocator is one of the engine's biggest hot-path wins.
 * A scenario runs entirely on one worker thread, so frames alloc and
 * free on the same list. Frames above the pooled range (or an exotic
 * cross-thread free) fall back to the global allocator.
 */
class FramePool
{
  public:
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kBuckets = 64; // pools up to 4 KiB

    static void *
    allocate(std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b >= kBuckets)
            return ::operator new(n);
        auto &list = lists()[b];
        if (!list.empty()) {
            void *p = list.back();
            list.pop_back();
            return p;
        }
        return ::operator new((b + 1) * kGranule);
    }

    static void
    release(void *p, std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b >= kBuckets) {
            ::operator delete(p);
            return;
        }
        lists()[b].push_back(p);
    }

  private:
    static std::size_t bucket(std::size_t n) { return n / kGranule; }

    static std::vector<void *> *
    lists()
    {
        thread_local std::vector<void *> pools[kBuckets];
        return pools;
    }
};

/** Move-only handle to a suspended simulation coroutine. */
class Task
{
  public:
    struct promise_type
    {
        /** Cycles to charge the actor after the current resume. */
        Cycles pendingDelay = 0;
        /** Exception escaping the coroutine body, rethrown by Engine. */
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        void
        unhandled_exception() noexcept
        {
            exception = std::current_exception();
        }

        /** Frames come from the per-thread FramePool, not malloc. */
        static void *operator new(std::size_t n)
        {
            return FramePool::allocate(n);
        }

        static void operator delete(void *p, std::size_t n)
        {
            FramePool::release(p, n);
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }
    Handle handle() const { return handle_; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

/**
 * Awaitable that suspends the actor for a fixed number of cycles.
 * `co_await Delay{100}` models 100 cycles of busy work.
 */
struct Delay
{
    Cycles cycles;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(Task::Handle h) const noexcept
    {
        h.promise().pendingDelay = cycles;
    }

    void await_resume() const noexcept {}
};

} // namespace gpubox::sim

#endif // GPUBOX_SIM_TASK_HH
