#include "sim/engine.hh"

#include <utility>

#include "util/log.hh"

namespace gpubox::sim
{

void
EngineProfile::add(const EngineStats &s)
{
    ++engines;
    steps += s.steps;
    spawned += s.spawned;
    requeues += s.requeues;
    fastRequeues += s.fastRequeues;
    peakQueued = std::max<std::uint64_t>(peakQueued, s.peakQueued);
    arenaBytes += s.arenaBytes;
    arenaChunks += s.arenaChunks;
}

void
EngineProfile::merge(const EngineProfile &p)
{
    engines += p.engines;
    steps += p.steps;
    spawned += p.spawned;
    requeues += p.requeues;
    fastRequeues += p.fastRequeues;
    peakQueued = std::max(peakQueued, p.peakQueued);
    arenaBytes += p.arenaBytes;
    arenaChunks += p.arenaChunks;
}

EngineProfile &
threadEngineProfile()
{
    thread_local EngineProfile profile;
    return profile;
}

Engine::Engine(std::uint64_t seed)
    : seed_(seed)
{}

void
Engine::auditSchedulerCoherence() const
{
#if GPUBOX_CHECKED_ENABLED
    GPUBOX_INVARIANT(heap_.size() == live_,
                     "engine scheduler: ", heap_.size(),
                     " queued actors but ", live_, " live");
    GPUBOX_INVARIANT(heapPos_.size() == actors_.size(),
                     "engine scheduler: ", heapPos_.size(),
                     " heap-slot entries for ", actors_.size(),
                     " actors");
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const HeapNode &node = heap_[i];
        GPUBOX_INVARIANT(node.actor < actors_.size(),
                         "engine scheduler: heap slot ", i,
                         " names actor ", node.actor, " of ",
                         actors_.size());
        GPUBOX_INVARIANT(heapPos_[node.actor] == i,
                         "engine scheduler: actor ", node.actor,
                         " ('", actors_[node.actor].name_,
                         "') maps to heap slot ", heapPos_[node.actor],
                         " but sits in slot ", i);
        GPUBOX_INVARIANT(!actors_[node.actor].done_,
                         "engine scheduler: finished actor '",
                         actors_[node.actor].name_,
                         "' still queued in heap slot ", i);
        if (i > 0) {
            const HeapNode &parent = heap_[(i - 1) / 2];
            GPUBOX_INVARIANT(!(node < parent),
                             "engine scheduler: heap order broken at "
                             "slot ", i, " (actor '",
                             actors_[node.actor].name_, "' at t=",
                             node.time, " under parent t=",
                             parent.time, ")");
        }
    }
    for (std::size_t id = 0; id < actors_.size(); ++id) {
        // Every live actor is queued, every finished one dequeued.
        GPUBOX_INVARIANT(actors_[id].done_ == (heapPos_[id] == kNoSlot),
                         "engine scheduler: actor '", actors_[id].name_,
                         "' is ", actors_[id].done_ ? "finished" : "live",
                         " but its heap slot says otherwise");
    }
#endif
}

#if GPUBOX_CHECKED_ENABLED
void
Engine::debugCorruptHeapForAudit()
{
    if (heap_.size() < 2)
        fatal("debugCorruptHeapForAudit needs at least 2 queued actors");
    // Push the root past its children without sifting: the next
    // auditSchedulerCoherence() must report broken heap order.
    heap_[0].time = ~Cycles{0};
}
#endif

Engine::~Engine()
{
    threadEngineProfile().add(stats());
}

void
Engine::siftUp(std::size_t pos)
{
    const HeapNode node = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / 2;
        if (!(node < heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        heapPos_[heap_[pos].actor] = static_cast<std::uint32_t>(pos);
        pos = parent;
    }
    heap_[pos] = node;
    heapPos_[node.actor] = static_cast<std::uint32_t>(pos);
}

bool
Engine::siftDown(std::size_t pos)
{
    const HeapNode node = heap_[pos];
    const std::size_t count = heap_.size();
    const std::size_t start = pos;
    while (true) {
        std::size_t child = pos * 2 + 1;
        if (child >= count)
            break;
        if (child + 1 < count && heap_[child + 1] < heap_[child])
            ++child;
        if (!(heap_[child] < node))
            break;
        heap_[pos] = heap_[child];
        heapPos_[heap_[pos].actor] = static_cast<std::uint32_t>(pos);
        pos = child;
    }
    heap_[pos] = node;
    heapPos_[node.actor] = static_cast<std::uint32_t>(pos);
    return pos != start;
}

void
Engine::heapRemove(std::size_t pos)
{
    heapPos_[heap_[pos].actor] = kNoSlot;
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
        heap_[pos] = heap_[last];
        heap_.pop_back();
        heapPos_[heap_[pos].actor] = static_cast<std::uint32_t>(pos);
        if (!siftDown(pos))
            siftUp(pos);
    } else {
        heap_.pop_back();
    }
}

ActorCtx &
Engine::spawn(const std::string &name,
              std::function<Task(ActorCtx &)> body, Cycles start_time)
{
    const std::size_t id = actors_.size();
    Rng stream = Rng(seed_).split(id + 1);
    ActorCtx &ctx = actors_.emplace(this, id, name, stream);
    ctx.time_ = start_time;
    // Pin the closure in the actor before creating the coroutine from
    // it (see body_'s comment).
    ctx.body_ = std::move(body);
    ctx.task_ = ctx.body_(ctx);
    if (!ctx.task_.valid())
        fatal("Engine::spawn: actor '", name, "' produced an invalid task");
    ++live_;
    heap_.push_back(HeapNode{ctx.time_, seqCounter_++,
                             static_cast<std::uint32_t>(id)});
    heapPos_.push_back(static_cast<std::uint32_t>(heap_.size() - 1));
    siftUp(heap_.size() - 1);
    peakQueued_ = std::max(peakQueued_, heap_.size());
#if GPUBOX_CHECKED_ENABLED
    auditSchedulerCoherence();
#endif
    return ctx;
}

bool
Engine::stepOne()
{
    if (heap_.empty())
        return false;

    const std::uint32_t id = heap_[0].actor;
    ActorCtx &ctx = actors_[id];

    lastTime_ = ctx.time_;
    auto handle = ctx.task_.handle();
    handle.promise().pendingDelay = 0;
    // The actor keeps its heap slot (and its pre-resume key) while it
    // runs: spawns performed inside the resume can grow and reorder
    // the heap, so its slot is re-read from heapPos_ afterwards.
    handle.resume();
    ++steps_;

    if (handle.promise().exception) {
        // Leave the engine consistent before unwinding: the actor is
        // finished as far as liveActors() and deadlock diagnostics are
        // concerned, and it must not stay queued.
        ctx.done_ = true;
        ctx.extra_ = 0;
        --live_;
        heapRemove(heapPos_[id]);
        std::rethrow_exception(handle.promise().exception);
    }

    // Charge the co_await delay plus any non-suspending costs.
    ctx.time_ += handle.promise().pendingDelay + ctx.extra_;
    ctx.extra_ = 0;

    if (handle.done()) {
        ctx.done_ = true;
        --live_;
        heapRemove(heapPos_[id]);
#if GPUBOX_CHECKED_ENABLED
        auditSchedulerCoherence();
#endif
        if (ctx.onDone_)
            ctx.onDone_(ctx);
    } else {
        // Requeue in place: the key only grows (time advanced, fresh
        // sequence number), so a downward sift restores the heap.
        const std::uint32_t pos = heapPos_[id];
        heap_[pos].time = ctx.time_;
        heap_[pos].seq = seqCounter_++;
        ++requeues_;
        if (!siftDown(pos))
            ++fastRequeues_;
        GPUBOX_ASSERT(heap_[heapPos_[id]].actor == id,
                      "engine scheduler: actor ", id,
                      " lost its heap slot across a requeue");
        // Requeues dominate step count; the O(live) audit runs on a
        // sampled cadence here (every spawn/retire runs it in full).
        if (GPUBOX_CHECKED_ENABLED && (steps_ & 0x3ff) == 0)
            auditSchedulerCoherence();
    }
    return true;
}

void
Engine::run()
{
    while (stepOne()) {
    }
}

void
Engine::runUntil(Cycles t)
{
    // heap_[0] is exactly the actor stepOne will resume next, so this
    // guard is on the resumed actor's real clock — an actor whose
    // local time is >= t is never resumed.
    while (!heap_.empty() && heap_[0].time < t) {
        if (!stepOne())
            break;
    }
}

std::vector<std::string>
Engine::unfinishedActorNames() const
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < actors_.size(); ++i) {
        if (!actors_[i].done_)
            names.push_back(actors_[i].name_);
    }
    return names;
}

void
Engine::requestStopAll()
{
    for (std::size_t i = 0; i < actors_.size(); ++i) {
        if (!actors_[i].done_)
            actors_[i].requestStop();
    }
}

} // namespace gpubox::sim
