#include "sim/engine.hh"

#include "util/log.hh"

namespace gpubox::sim
{

Engine::Engine(std::uint64_t seed)
    : seed_(seed)
{}

Engine::~Engine() = default;

ActorCtx &
Engine::spawn(const std::string &name,
              std::function<Task(ActorCtx &)> body, Cycles start_time)
{
    const std::size_t id = actors_.size();
    Rng stream = Rng(seed_).split(id + 1);
    actors_.emplace_back(
        std::unique_ptr<ActorCtx>(new ActorCtx(this, id, name, stream)));
    ActorCtx &ctx = *actors_.back();
    ctx.time_ = start_time;
    // Pin the closure in the actor before creating the coroutine from
    // it (see body_'s comment).
    ctx.body_ = std::move(body);
    ctx.task_ = ctx.body_(ctx);
    if (!ctx.task_.valid())
        fatal("Engine::spawn: actor '", name, "' produced an invalid task");
    ++live_;
    queue_.push(QueueEntry{ctx.time_, seqCounter_++, id});
    return ctx;
}

bool
Engine::stepOne()
{
    while (!queue_.empty()) {
        const QueueEntry e = queue_.top();
        queue_.pop();
        ActorCtx &ctx = *actors_[e.actor];
        if (ctx.done_)
            continue; // stale entry

        lastTime_ = ctx.time_;
        auto handle = ctx.task_.handle();
        handle.promise().pendingDelay = 0;
        handle.resume();
        ++steps_;

        if (handle.promise().exception)
            std::rethrow_exception(handle.promise().exception);

        // Charge the co_await delay plus any non-suspending costs.
        ctx.time_ += handle.promise().pendingDelay + ctx.extra_;
        ctx.extra_ = 0;

        if (handle.done()) {
            ctx.done_ = true;
            --live_;
            if (ctx.onDone_)
                ctx.onDone_(ctx);
        } else {
            queue_.push(QueueEntry{ctx.time_, seqCounter_++, e.actor});
        }
        return true;
    }
    return false;
}

void
Engine::run()
{
    while (stepOne()) {
    }
}

void
Engine::runUntil(Cycles t)
{
    while (!queue_.empty() && queue_.top().time < t) {
        if (!stepOne())
            break;
    }
}

std::vector<std::string>
Engine::unfinishedActorNames() const
{
    std::vector<std::string> names;
    for (const auto &a : actors_) {
        if (!a->done_)
            names.push_back(a->name_);
    }
    return names;
}

void
Engine::requestStopAll()
{
    for (auto &a : actors_) {
        if (!a->done_)
            a->requestStop();
    }
}

} // namespace gpubox::sim
