/**
 * @file
 * ShardedEngine: union-find shard groups, lazy per-group Engines,
 * fused-group merged stepping, and the windowed conduction loop with
 * its generation-barrier worker pool.
 */

#include "sim/sharded_engine.hh"

#include <algorithm>
#include <utility>

#include "util/log.hh"

namespace gpubox::sim
{

ShardedEngine::Group *&
ShardedEngine::activeGroup()
{
    thread_local Group *active = nullptr;
    return active;
}

ShardedEngine::ShardedEngine(Config config)
    : shards_(config.shards ? config.shards : 1),
      seed_(config.seed),
      lookahead_(config.lookahead ? config.lookahead : 1),
      workerTarget_(config.workers)
{
    if (!workerTarget_) {
        unsigned hw = std::thread::hardware_concurrency();
        workerTarget_ = std::min(shards_, hw ? hw : 1u);
    }
    parent_.resize(shards_);
    for (unsigned s = 0; s < shards_; ++s)
        parent_[s] = s;
    groupsByRoot_.resize(shards_);
}

ShardedEngine::~ShardedEngine()
{
    {
        std::lock_guard lk(poolMu_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    workers_.clear(); // jthread joins

    // Engines die here, on the owning (scenario) thread, in creation
    // order: their destructors feed threadEngineProfile(), and the
    // ExperimentRunner brackets that accumulator per scenario thread,
    // so profiles stay independent of shard/worker counts.
    for (auto it = engines_.begin(); it != engines_.end(); ++it)
        it->reset();
}

void
ShardedEngine::setLookahead(Cycles la)
{
    lookahead_ = la ? la : 1;
}

unsigned
ShardedEngine::findRoot(unsigned shard) const
{
    unsigned r = shard;
    while (parent_[r] != r)
        r = parent_[r];
    // Path compression: safe under the host-only mutation contract.
    while (parent_[shard] != r) {
        unsigned next = parent_[shard];
        parent_[shard] = r;
        shard = next;
    }
    return r;
}

void
ShardedEngine::couple(unsigned a, unsigned b)
{
    if (a >= shards_ || b >= shards_)
        fatal("ShardedEngine::couple: shard out of range (", a, ", ", b,
              " of ", shards_, ")");
    unsigned ra = findRoot(a);
    unsigned rb = findRoot(b);
    if (ra == rb)
        return;
    // Min root wins: the surviving root is a pure function of the
    // coupling set, never of call order.
    unsigned keep = std::min(ra, rb);
    unsigned drop = std::max(ra, rb);
    parent_[drop] = keep;

    auto &dropGroup = groupsByRoot_[drop];
    auto &keepGroup = groupsByRoot_[keep];
    if (!dropGroup)
        return; // dropped side never spawned; nothing to merge
    if (!keepGroup) {
        keepGroup = std::move(dropGroup);
        return;
    }
    // Fusion: both sides already run. The kept group absorbs the
    // dropped group's engines; merged stepping orders them by
    // (time, engine creation index, sequence), which is deterministic
    // because engine creation order is itself deterministic.
    auto &ke = keepGroup->engines;
    auto &de = dropGroup->engines;
    ke.insert(ke.end(), de.begin(), de.end());
    std::sort(ke.begin(), ke.end(), [this](Engine *x, Engine *y) {
        auto idx = [this](Engine *e) {
            for (std::size_t i = 0; i < engines_.size(); ++i)
                if (engines_[i].get() == e)
                    return i;
            panic("ShardedEngine: engine missing from registry");
        };
        return idx(x) < idx(y);
    });
    keepGroup->order = std::min(keepGroup->order, dropGroup->order);
    std::erase(liveGroups_, dropGroup.get());
    dropGroup.reset();
}

void
ShardedEngine::coupleAll()
{
    for (unsigned s = 1; s < shards_; ++s)
        couple(0, s);
}

bool
ShardedEngine::coupled(unsigned a, unsigned b) const
{
    if (a >= shards_ || b >= shards_)
        fatal("ShardedEngine::coupled: shard out of range (", a, ", ", b,
              " of ", shards_, ")");
    return findRoot(a) == findRoot(b);
}

std::size_t
ShardedEngine::groupCount() const
{
    return liveGroups_.size();
}

ShardedEngine::Group &
ShardedEngine::groupOf(unsigned shard)
{
    unsigned root = findRoot(shard);
    auto &slot = groupsByRoot_[root];
    if (!slot) {
        slot = std::make_unique<Group>();
        slot->order = nextGroupOrder_++;
    }
    if (slot->engines.empty()) {
        // Lazy first engine. Every group engine gets the *same* seed:
        // an actor's RNG stream is Rng(seed).split(id + 1), and ids
        // count per engine exactly as they count in the sequential
        // run when coupling keeps interacting actors together -- so a
        // single-group scenario reproduces sequential streams bit for
        // bit at any shard count.
        engines_.push_back(std::make_unique<Engine>(seed_));
        slot->engines.push_back(engines_.back().get());
        liveGroups_.push_back(slot.get());
    }
    return *slot;
}

ActorCtx &
ShardedEngine::spawnOn(unsigned shard, const std::string &name,
                       std::function<Task(ActorCtx &)> body,
                       Cycles start_time)
{
    if (shard >= shards_)
        fatal("ShardedEngine::spawnOn: shard ", shard, " out of range (",
              shards_, " shards)");
    Group *active = activeGroup();
    if (active) {
        // Worker context: the caller may only extend its own group.
        // A cross-group spawn means a coupling edge was missed at
        // host enqueue time; failing loudly beats a silent data race.
        unsigned root = findRoot(shard);
        Group *target = groupsByRoot_[root].get();
        if (target != active)
            fatal("ShardedEngine: actor spawn of '", name,
                  "' targets shard ", shard,
                  " outside the caller's schedule group; couple the "
                  "shards at enqueue time before handing work across");
        // Spawn into the engine the caller is being stepped by: the
        // last engine of the group whose clock is the group clock
        // would be ambiguous under fusion, so extend the group's
        // first engine -- creation order is deterministic either way.
        return target->engines.front()->spawn(name, std::move(body),
                                              start_time);
    }
    Group &g = groupOf(shard);
    return g.engines.front()->spawn(name, std::move(body), start_time);
}

ActorCtx &
ShardedEngine::spawn(const std::string &name,
                     std::function<Task(ActorCtx &)> body,
                     Cycles start_time)
{
    Group *active = activeGroup();
    if (active) {
        if (liveGroups_.size() > 1)
            fatal("ShardedEngine: global spawn of '", name,
                  "' from a running actor with multiple schedule "
                  "groups live; global observers must be installed "
                  "host-side");
        return active->engines.front()->spawn(name, std::move(body),
                                              start_time);
    }
    // Global-state observer: it may watch any shard's meters, so all
    // shards must share its schedule group.
    coupleAll();
    return spawnOn(0, name, std::move(body), start_time);
}

Cycles
ShardedEngine::groupNext(const Group &g)
{
    Cycles best = Engine::kIdle;
    for (Engine *e : g.engines)
        best = std::min(best, e->nextEventTime());
    return best;
}

bool
ShardedEngine::groupStep(Group &g)
{
    Engine *pick = nullptr;
    Cycles best = Engine::kIdle;
    for (Engine *e : g.engines) {
        Cycles t = e->nextEventTime();
        if (t < best) { // strict: ties keep the earlier engine
            best = t;
            pick = e;
        }
    }
    if (!pick)
        return false;
    return pick->stepOne();
}

void
ShardedEngine::groupRunUntil(Group &g, Cycles t)
{
    if (g.engines.size() == 1) {
        g.engines.front()->runUntil(t);
        return;
    }
    // Fused group: merge-step the engines on (time, creation index).
    while (true) {
        Engine *pick = nullptr;
        Cycles best = Engine::kIdle;
        for (Engine *e : g.engines) {
            Cycles nt = e->nextEventTime();
            if (nt < best) {
                best = nt;
                pick = e;
            }
        }
        if (!pick || best >= t)
            return;
        pick->stepOne();
    }
}

Engine *
ShardedEngine::soleRunnableEngine() const
{
    Engine *only = nullptr;
    for (Group *g : liveGroups_) {
        if (groupNext(*g) == Engine::kIdle)
            continue;
        if (only)
            return nullptr; // second runnable group
        if (g->engines.size() != 1)
            return nullptr; // fused group needs merged stepping
        only = g->engines.front();
    }
    return only;
}

bool
ShardedEngine::onlyRunnable(const Engine *e) const
{
    for (Group *g : liveGroups_) {
        for (Engine *ge : g->engines) {
            if (ge == e)
                continue;
            if (ge->nextEventTime() != Engine::kIdle)
                return false;
        }
    }
    return e->nextEventTime() != Engine::kIdle;
}

bool
ShardedEngine::stepOne()
{
    Group *pick = nullptr;
    Cycles best = Engine::kIdle;
    for (Group *g : liveGroups_) {
        Cycles t = groupNext(*g);
        if (t < best) { // strict: ties resolve to creation order
            best = t;
            pick = g;
        }
    }
    if (!pick)
        return false;
    activeGroup() = pick;
    bool stepped = groupStep(*pick);
    activeGroup() = nullptr;
    return stepped;
}

void
ShardedEngine::run()
{
    drive([this] {
        for (Group *g : liveGroups_)
            if (groupNext(*g) != Engine::kIdle)
                return false;
        return true;
    });
}

void
ShardedEngine::runUntil(Cycles t)
{
    drive([this, t] {
        for (Group *g : liveGroups_)
            if (groupNext(*g) < t)
                return false;
        return true;
    });
}

Cycles
ShardedEngine::now() const
{
    if (Group *active = activeGroup()) {
        Cycles n = 0;
        for (Engine *e : active->engines)
            n = std::max(n, e->now());
        return n;
    }
    Cycles n = 0;
    for (const auto &e : engines_)
        if (e)
            n = std::max(n, e->now());
    return n;
}

void
ShardedEngine::requestStopAll()
{
    for (const auto &e : engines_)
        if (e)
            e->requestStopAll();
}

std::size_t
ShardedEngine::liveActors() const
{
    std::size_t n = 0;
    for (const auto &e : engines_)
        if (e)
            n += e->liveActors();
    return n;
}

std::size_t
ShardedEngine::totalSpawned() const
{
    std::size_t n = 0;
    for (const auto &e : engines_)
        if (e)
            n += e->totalSpawned();
    return n;
}

EngineStats
ShardedEngine::stats() const
{
    EngineStats merged;
    for (const auto &e : engines_) {
        if (!e)
            continue;
        EngineStats s = e->stats();
        merged.steps += s.steps;
        merged.spawned += s.spawned;
        merged.live += s.live;
        merged.now = std::max(merged.now, s.now);
        merged.requeues += s.requeues;
        merged.fastRequeues += s.fastRequeues;
        merged.peakQueued += s.peakQueued;
        merged.arenaBytes += s.arenaBytes;
        merged.arenaChunks += s.arenaChunks;
    }
    return merged;
}

std::vector<std::string>
ShardedEngine::unfinishedActorNames() const
{
    std::vector<std::string> names;
    // Group creation order, engines in creation order within a group:
    // deterministic diagnostics at any shard count.
    std::vector<Group *> ordered = liveGroups_;
    std::sort(ordered.begin(), ordered.end(),
              [](Group *a, Group *b) { return a->order < b->order; });
    for (Group *g : ordered) {
        for (Engine *e : g->engines) {
            auto part = e->unfinishedActorNames();
            names.insert(names.end(), part.begin(), part.end());
        }
    }
    return names;
}

void
ShardedEngine::runGroupWindow(Group &g, Cycles end)
{
    activeGroup() = &g;
    try {
        groupRunUntil(g, end);
    } catch (...) {
        activeGroup() = nullptr;
        throw;
    }
    activeGroup() = nullptr;
}

bool
ShardedEngine::windowOnce(Cycles limit)
{
    Cycles start = Engine::kIdle;
    for (Group *g : liveGroups_)
        start = std::min(start, groupNext(*g));
    if (start == Engine::kIdle || start >= limit)
        return false;

    Cycles end = start + lookahead_;
    if (end < start) // overflow near kIdle
        end = Engine::kIdle;
    end = std::min(end, limit);

    std::vector<WindowTask> tasks;
    std::vector<Group *> ordered = liveGroups_;
    std::sort(ordered.begin(), ordered.end(),
              [](Group *a, Group *b) { return a->order < b->order; });
    for (Group *g : ordered)
        if (groupNext(*g) < end)
            tasks.push_back({g, end, nullptr});

    ++windowsRun_;
    dispatchWindow(tasks);
    return true;
}

void
ShardedEngine::dispatchWindow(std::vector<WindowTask> &tasks)
{
    if (tasks.empty())
        return;
    const bool parallel = workerTarget_ > 1 && tasks.size() > 1;
    if (!parallel) {
        // Serial windows (one core, or one busy group): group
        // creation order -- still byte-identical, the groups are
        // disjoint so any order produces the same simulated bytes.
        for (auto &t : tasks)
            runGroupWindow(*t.group, t.end);
        return;
    }

    ++parallelWindows_;
    {
        std::unique_lock lk(poolMu_);
        startWorkersLocked();
        tasks_ = &tasks;
        nextTask_ = 0;
        doneTasks_ = 0;
        ++generation_;
        workCv_.notify_all();
        doneCv_.wait(lk, [&] { return doneTasks_ == tasks.size(); });
        tasks_ = nullptr;
    }
    // Rethrow the first failure in group order: which error surfaces
    // is deterministic even when several groups throw in one window.
    for (auto &t : tasks)
        if (t.error)
            std::rethrow_exception(t.error);
}

void
ShardedEngine::startWorkersLocked()
{
    while (workers_.size() < workerTarget_)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ShardedEngine::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock lk(poolMu_);
    for (;;) {
        workCv_.wait(lk, [&] {
            return shutdown_ || (tasks_ && generation_ != seen &&
                                 nextTask_ < tasks_->size());
        });
        if (shutdown_)
            return;
        if (!tasks_ || nextTask_ >= tasks_->size()) {
            seen = generation_;
            continue;
        }
        while (tasks_ && nextTask_ < tasks_->size()) {
            WindowTask &t = (*tasks_)[nextTask_++];
            lk.unlock();
            try {
                runGroupWindow(*t.group, t.end);
            } catch (...) {
                t.error = std::current_exception();
            }
            lk.lock();
            ++doneTasks_;
            if (doneTasks_ == tasks_->size())
                doneCv_.notify_all();
        }
        seen = generation_;
    }
}

} // namespace gpubox::sim
