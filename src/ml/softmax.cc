#include "ml/softmax.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox::ml
{

SoftmaxClassifier::SoftmaxClassifier(std::size_t dim, int num_classes,
                                     const SoftmaxConfig &config)
    : dim_(dim), classes_(num_classes), config_(config)
{
    if (dim == 0 || num_classes <= 1)
        fatal("SoftmaxClassifier: bad geometry (dim ", dim, ", classes ",
              num_classes, ")");
    w_.assign(dim * num_classes, 0.0);
    b_.assign(num_classes, 0.0);
}

std::vector<double>
SoftmaxClassifier::predictProba(const std::vector<double> &x) const
{
    if (x.size() != dim_)
        fatal("SoftmaxClassifier: feature dim ", x.size(), " != ", dim_);
    std::vector<double> logits(classes_, 0.0);
    for (int c = 0; c < classes_; ++c) {
        double z = b_[c];
        const double *row = &w_[static_cast<std::size_t>(c) * dim_];
        for (std::size_t i = 0; i < dim_; ++i)
            z += row[i] * x[i];
        logits[c] = z;
    }
    const double zmax = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (double &z : logits) {
        z = std::exp(z - zmax);
        sum += z;
    }
    for (double &z : logits)
        z /= sum;
    return logits;
}

int
SoftmaxClassifier::predict(const std::vector<double> &x) const
{
    const auto p = predictProba(x);
    return static_cast<int>(std::max_element(p.begin(), p.end()) -
                            p.begin());
}

void
SoftmaxClassifier::fit(const Dataset &train, Rng rng)
{
    if (train.empty())
        fatal("SoftmaxClassifier::fit on empty dataset");

    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (unsigned epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += config_.batchSize) {
            const std::size_t end =
                std::min(start + config_.batchSize, order.size());
            std::vector<double> gw(w_.size(), 0.0);
            std::vector<double> gb(b_.size(), 0.0);

            for (std::size_t k = start; k < end; ++k) {
                const Sample &s = train[order[k]];
                const auto p = predictProba(s.x);
                for (int c = 0; c < classes_; ++c) {
                    const double err =
                        p[c] - (c == s.label ? 1.0 : 0.0);
                    gb[c] += err;
                    double *row =
                        &gw[static_cast<std::size_t>(c) * dim_];
                    for (std::size_t i = 0; i < dim_; ++i)
                        row[i] += err * s.x[i];
                }
            }

            const double scale = config_.learningRate /
                                 static_cast<double>(end - start);
            for (std::size_t i = 0; i < w_.size(); ++i) {
                w_[i] -= scale * (gw[i] + config_.l2Penalty * w_[i]);
            }
            for (int c = 0; c < classes_; ++c)
                b_[c] -= scale * gb[c];
        }
    }
}

double
SoftmaxClassifier::score(const Dataset &data) const
{
    if (data.empty())
        return 0.0;
    std::size_t correct = 0;
    for (const Sample &s : data)
        if (predict(s.x) == s.label)
            ++correct;
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace gpubox::ml
