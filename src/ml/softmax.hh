/**
 * @file
 * Multinomial logistic regression (softmax) classifier trained with
 * minibatch SGD. The paper trains an image classifier on memorygram
 * images; for the well-separated synthetic workloads a linear model
 * reaches the same near-perfect accuracy without any dependency.
 */

#ifndef GPUBOX_ML_SOFTMAX_HH
#define GPUBOX_ML_SOFTMAX_HH

#include <cstddef>
#include <vector>

#include "ml/dataset.hh"
#include "util/rng.hh"

namespace gpubox::ml
{

/** Training hyperparameters. */
struct SoftmaxConfig
{
    double learningRate = 0.1;
    double l2Penalty = 1e-4;
    unsigned epochs = 60;
    std::size_t batchSize = 16;
};

/** Linear softmax classifier. */
class SoftmaxClassifier
{
  public:
    SoftmaxClassifier(std::size_t dim, int num_classes,
                      const SoftmaxConfig &config = SoftmaxConfig());

    /** SGD training; labels must be in [0, numClasses). */
    void fit(const Dataset &train, Rng rng);

    /** Class probabilities for one feature vector. */
    std::vector<double> predictProba(const std::vector<double> &x) const;

    /** Argmax class. */
    int predict(const std::vector<double> &x) const;

    /** Mean accuracy over a dataset. */
    double score(const Dataset &data) const;

    std::size_t dim() const { return dim_; }
    int numClasses() const { return classes_; }

  private:
    std::size_t dim_;
    int classes_;
    SoftmaxConfig config_;
    std::vector<double> w_; // classes x dim
    std::vector<double> b_; // classes
};

} // namespace gpubox::ml

#endif // GPUBOX_ML_SOFTMAX_HH
