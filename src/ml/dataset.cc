#include "ml/dataset.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/log.hh"

namespace gpubox::ml
{

Split
splitDataset(const Dataset &data, std::size_t train_per_class,
             std::size_t val_per_class, Rng rng)
{
    std::map<int, Dataset> by_class;
    for (const Sample &s : data)
        by_class[s.label].push_back(s);

    Split split;
    for (auto &[label, samples] : by_class) {
        (void)label;
        rng.shuffle(samples);
        if (samples.size() < train_per_class + val_per_class)
            fatal("splitDataset: class ", label, " has ", samples.size(),
                  " samples, need at least ",
                  train_per_class + val_per_class);
        for (std::size_t i = 0; i < samples.size(); ++i) {
            if (i < train_per_class)
                split.train.push_back(samples[i]);
            else if (i < train_per_class + val_per_class)
                split.validation.push_back(samples[i]);
            else
                split.test.push_back(samples[i]);
        }
    }
    rng.shuffle(split.train);
    return split;
}

int
numClasses(const Dataset &data)
{
    int max_label = -1;
    for (const Sample &s : data)
        max_label = std::max(max_label, s.label);
    return max_label + 1;
}

std::size_t
featureDim(const Dataset &data)
{
    if (data.empty())
        fatal("featureDim of empty dataset");
    const std::size_t dim = data.front().x.size();
    for (const Sample &s : data)
        if (s.x.size() != dim)
            fatal("inconsistent feature dimension: ", s.x.size(), " vs ",
                  dim);
    return dim;
}

void
Standardizer::fit(const Dataset &data)
{
    const std::size_t dim = featureDim(data);
    mean_.assign(dim, 0.0);
    std_.assign(dim, 0.0);
    for (const Sample &s : data)
        for (std::size_t i = 0; i < dim; ++i)
            mean_[i] += s.x[i];
    for (double &m : mean_)
        m /= static_cast<double>(data.size());
    for (const Sample &s : data)
        for (std::size_t i = 0; i < dim; ++i) {
            const double d = s.x[i] - mean_[i];
            std_[i] += d * d;
        }
    for (double &v : std_) {
        v = std::sqrt(v / static_cast<double>(data.size()));
        if (v < 1e-9)
            v = 1.0; // constant feature: leave centered at zero
    }
}

std::vector<double>
Standardizer::apply(const std::vector<double> &x) const
{
    if (x.size() != mean_.size())
        fatal("Standardizer: dimension mismatch");
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = (x[i] - mean_[i]) / std_[i];
    return out;
}

Dataset
Standardizer::apply(const Dataset &data) const
{
    Dataset out;
    out.reserve(data.size());
    for (const Sample &s : data)
        out.push_back(Sample{apply(s.x), s.label});
    return out;
}

} // namespace gpubox::ml
