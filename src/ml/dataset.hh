/**
 * @file
 * Labeled feature vectors and split utilities for the fingerprinting
 * classifier (paper Sec. V-A: 1500 samples per application, split into
 * train / validation / test).
 */

#ifndef GPUBOX_ML_DATASET_HH
#define GPUBOX_ML_DATASET_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"

namespace gpubox::ml
{

/** One labeled feature vector. */
struct Sample
{
    std::vector<double> x;
    int label = 0;
};

using Dataset = std::vector<Sample>;

/** Per-class balanced split of a dataset. */
struct Split
{
    Dataset train;
    Dataset validation;
    Dataset test;
};

/**
 * Shuffle and split @p data per class: the first @p train_per_class
 * samples of each class go to train, the next @p val_per_class to
 * validation, the rest to test (mirrors the paper's 150/150/1200).
 */
Split splitDataset(const Dataset &data, std::size_t train_per_class,
                   std::size_t val_per_class, Rng rng);

/** Number of distinct labels (assumed 0..n-1). */
int numClasses(const Dataset &data);

/** Feature dimensionality (fatal on inconsistent data). */
std::size_t featureDim(const Dataset &data);

/**
 * Feature standardization: mean/std computed on a reference set and
 * applied to others (avoids test-set leakage).
 */
class Standardizer
{
  public:
    void fit(const Dataset &data);
    std::vector<double> apply(const std::vector<double> &x) const;
    Dataset apply(const Dataset &data) const;

  private:
    std::vector<double> mean_;
    std::vector<double> std_;
};

} // namespace gpubox::ml

#endif // GPUBOX_ML_DATASET_HH
