/**
 * @file
 * Confusion matrix and accuracy reporting (paper Fig. 12).
 */

#ifndef GPUBOX_ML_CONFUSION_HH
#define GPUBOX_ML_CONFUSION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gpubox::ml
{

/** Square confusion matrix over n classes. */
class ConfusionMatrix
{
  public:
    explicit ConfusionMatrix(int num_classes);

    void add(int true_label, int predicted_label);

    int numClasses() const { return n_; }
    std::uint64_t count(int true_label, int predicted_label) const;
    std::uint64_t total() const { return total_; }
    std::uint64_t rowTotal(int true_label) const;

    /** Overall accuracy in [0, 1]. */
    double accuracy() const;

    /** Per-class recall (diagonal / row total). */
    double classAccuracy(int true_label) const;

    /**
     * Render with class names along both axes, counts in cells and
     * per-class accuracy on the right.
     */
    std::string render(const std::vector<std::string> &names) const;

  private:
    int n_;
    std::vector<std::uint64_t> cells_;
    std::uint64_t total_ = 0;
};

} // namespace gpubox::ml

#endif // GPUBOX_ML_CONFUSION_HH
