#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox::ml
{

MlpClassifier::MlpClassifier(std::size_t dim, int num_classes,
                             const MlpClassifierConfig &config)
    : dim_(dim), classes_(num_classes), config_(config)
{
    if (dim == 0 || num_classes <= 1 || config.hidden == 0)
        fatal("MlpClassifier: bad geometry");
    w1_.assign(config.hidden * dim, 0.0);
    b1_.assign(config.hidden, 0.0);
    w2_.assign(static_cast<std::size_t>(num_classes) * config.hidden, 0.0);
    b2_.assign(num_classes, 0.0);
}

std::vector<double>
MlpClassifier::forward(const std::vector<double> &x,
                       std::vector<double> &hidden_out) const
{
    if (x.size() != dim_)
        fatal("MlpClassifier: feature dim ", x.size(), " != ", dim_);
    hidden_out.assign(config_.hidden, 0.0);
    for (std::size_t h = 0; h < config_.hidden; ++h) {
        double z = b1_[h];
        const double *row = &w1_[h * dim_];
        for (std::size_t i = 0; i < dim_; ++i)
            z += row[i] * x[i];
        hidden_out[h] = z > 0.0 ? z : 0.0;
    }
    std::vector<double> logits(classes_, 0.0);
    for (int c = 0; c < classes_; ++c) {
        double z = b2_[c];
        const double *row =
            &w2_[static_cast<std::size_t>(c) * config_.hidden];
        for (std::size_t h = 0; h < config_.hidden; ++h)
            z += row[h] * hidden_out[h];
        logits[c] = z;
    }
    const double zmax = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (double &z : logits) {
        z = std::exp(z - zmax);
        sum += z;
    }
    for (double &z : logits)
        z /= sum;
    return logits;
}

std::vector<double>
MlpClassifier::predictProba(const std::vector<double> &x) const
{
    std::vector<double> hidden;
    return forward(x, hidden);
}

int
MlpClassifier::predict(const std::vector<double> &x) const
{
    const auto p = predictProba(x);
    return static_cast<int>(std::max_element(p.begin(), p.end()) -
                            p.begin());
}

void
MlpClassifier::fit(const Dataset &train, Rng rng)
{
    if (train.empty())
        fatal("MlpClassifier::fit on empty dataset");

    // He initialization for the ReLU layer.
    const double scale1 = std::sqrt(2.0 / static_cast<double>(dim_));
    const double scale2 =
        std::sqrt(2.0 / static_cast<double>(config_.hidden));
    for (double &w : w1_)
        w = rng.normal(0.0, scale1);
    for (double &w : w2_)
        w = rng.normal(0.0, scale2);

    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    std::vector<double> hidden;
    for (unsigned epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t idx : order) {
            const Sample &s = train[idx];
            const auto p = forward(s.x, hidden);

            // Output layer gradients.
            std::vector<double> dout(classes_);
            for (int c = 0; c < classes_; ++c)
                dout[c] = p[c] - (c == s.label ? 1.0 : 0.0);

            // Hidden gradients (through ReLU).
            std::vector<double> dhid(config_.hidden, 0.0);
            for (int c = 0; c < classes_; ++c) {
                const double *row =
                    &w2_[static_cast<std::size_t>(c) * config_.hidden];
                for (std::size_t h = 0; h < config_.hidden; ++h)
                    dhid[h] += dout[c] * row[h];
            }
            for (std::size_t h = 0; h < config_.hidden; ++h)
                if (hidden[h] <= 0.0)
                    dhid[h] = 0.0;

            const double lr = config_.learningRate;
            for (int c = 0; c < classes_; ++c) {
                double *row =
                    &w2_[static_cast<std::size_t>(c) * config_.hidden];
                for (std::size_t h = 0; h < config_.hidden; ++h)
                    row[h] -= lr * dout[c] * hidden[h];
                b2_[c] -= lr * dout[c];
            }
            for (std::size_t h = 0; h < config_.hidden; ++h) {
                if (dhid[h] == 0.0)
                    continue;
                double *row = &w1_[h * dim_];
                for (std::size_t i = 0; i < dim_; ++i)
                    row[i] -= lr * dhid[h] * s.x[i];
                b1_[h] -= lr * dhid[h];
            }
        }
    }
}

double
MlpClassifier::score(const Dataset &data) const
{
    if (data.empty())
        return 0.0;
    std::size_t correct = 0;
    for (const Sample &s : data)
        if (predict(s.x) == s.label)
            ++correct;
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace gpubox::ml
