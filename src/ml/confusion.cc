#include "ml/confusion.hh"

#include <cstdio>

#include "util/log.hh"

namespace gpubox::ml
{

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : n_(num_classes)
{
    if (num_classes <= 0)
        fatal("ConfusionMatrix needs a positive class count");
    cells_.assign(static_cast<std::size_t>(n_) * n_, 0);
}

void
ConfusionMatrix::add(int true_label, int predicted_label)
{
    if (true_label < 0 || true_label >= n_ || predicted_label < 0 ||
        predicted_label >= n_) {
        fatal("ConfusionMatrix::add: label out of range (",
              true_label, ", ", predicted_label, ")");
    }
    ++cells_[static_cast<std::size_t>(true_label) * n_ + predicted_label];
    ++total_;
}

std::uint64_t
ConfusionMatrix::count(int true_label, int predicted_label) const
{
    return cells_.at(static_cast<std::size_t>(true_label) * n_ +
                     predicted_label);
}

std::uint64_t
ConfusionMatrix::rowTotal(int true_label) const
{
    std::uint64_t sum = 0;
    for (int p = 0; p < n_; ++p)
        sum += count(true_label, p);
    return sum;
}

double
ConfusionMatrix::accuracy() const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t diag = 0;
    for (int i = 0; i < n_; ++i)
        diag += count(i, i);
    return static_cast<double>(diag) / static_cast<double>(total_);
}

double
ConfusionMatrix::classAccuracy(int true_label) const
{
    const std::uint64_t row = rowTotal(true_label);
    if (row == 0)
        return 0.0;
    return static_cast<double>(count(true_label, true_label)) /
           static_cast<double>(row);
}

std::string
ConfusionMatrix::render(const std::vector<std::string> &names) const
{
    if (static_cast<int>(names.size()) != n_)
        fatal("ConfusionMatrix::render: ", names.size(), " names for ",
              n_, " classes");

    std::string out;
    char buf[64];
    out += "true\\pred";
    for (const auto &name : names) {
        std::snprintf(buf, sizeof(buf), "%8s", name.c_str());
        out += buf;
    }
    out += "   recall\n";
    for (int t = 0; t < n_; ++t) {
        std::snprintf(buf, sizeof(buf), "%-9s", names[t].c_str());
        out += buf;
        for (int p = 0; p < n_; ++p) {
            std::snprintf(buf, sizeof(buf), "%8llu",
                          static_cast<unsigned long long>(count(t, p)));
            out += buf;
        }
        std::snprintf(buf, sizeof(buf), "  %6.2f%%\n",
                      100.0 * classAccuracy(t));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "overall accuracy: %.2f%%\n",
                  100.0 * accuracy());
    out += buf;
    return out;
}

} // namespace gpubox::ml
