/**
 * @file
 * One-hidden-layer MLP classifier (ReLU + softmax head), the
 * non-linear alternative to ml::SoftmaxClassifier for memorygram
 * fingerprinting. Mirrors the deep-learning classifier the paper uses
 * but stays dependency-free.
 */

#ifndef GPUBOX_ML_MLP_HH
#define GPUBOX_ML_MLP_HH

#include <cstddef>
#include <vector>

#include "ml/dataset.hh"
#include "util/rng.hh"

namespace gpubox::ml
{

/** Training hyperparameters. */
struct MlpClassifierConfig
{
    std::size_t hidden = 32;
    double learningRate = 0.05;
    unsigned epochs = 80;
    std::size_t batchSize = 16;
};

/** d -> hidden (ReLU) -> classes (softmax). */
class MlpClassifier
{
  public:
    MlpClassifier(std::size_t dim, int num_classes,
                  const MlpClassifierConfig &config = MlpClassifierConfig());

    void fit(const Dataset &train, Rng rng);
    std::vector<double> predictProba(const std::vector<double> &x) const;
    int predict(const std::vector<double> &x) const;
    double score(const Dataset &data) const;

  private:
    /** Forward pass; fills @p hidden_out (post-ReLU) and probs. */
    std::vector<double> forward(const std::vector<double> &x,
                                std::vector<double> &hidden_out) const;

    std::size_t dim_;
    int classes_;
    MlpClassifierConfig config_;
    std::vector<double> w1_; // hidden x dim
    std::vector<double> b1_; // hidden
    std::vector<double> w2_; // classes x hidden
    std::vector<double> b2_; // classes
};

} // namespace gpubox::ml

#endif // GPUBOX_ML_MLP_HH
