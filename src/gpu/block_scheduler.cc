#include "gpu/block_scheduler.hh"

#include "util/log.hh"

namespace gpubox::gpu
{

BlockScheduler::BlockScheduler(int num_sms, const SmLimits &limits)
    : limits_(limits)
{
    if (num_sms <= 0)
        fatal("BlockScheduler needs at least one SM");
    sms_.assign(num_sms, SmState{});
}

bool
BlockScheduler::fits(const SmState &sm, const BlockRequirements &req) const
{
    return sm.usedSharedMem + req.sharedMemBytes <= limits_.sharedMemBytes &&
           sm.usedThreads + req.threads <= limits_.maxThreads &&
           sm.blocks + 1 <= limits_.maxBlocks;
}

std::optional<SmId>
BlockScheduler::tryPlace(const BlockRequirements &req)
{
    if (req.sharedMemBytes > limits_.sharedMemBytes ||
        req.threads > limits_.maxThreads) {
        fatal("block demands (", req.threads, " threads, ",
              req.sharedMemBytes, " B shared) exceed SM limits");
    }
    int best = -1;
    for (int sm = 0; sm < numSms(); ++sm) {
        if (!fits(sms_[sm], req))
            continue;
        if (best < 0 || sms_[sm].blocks < sms_[best].blocks)
            best = sm;
    }
    if (best < 0)
        return std::nullopt;
    sms_[best].usedSharedMem += req.sharedMemBytes;
    sms_[best].usedThreads += req.threads;
    ++sms_[best].blocks;
    return best;
}

void
BlockScheduler::release(SmId sm, const BlockRequirements &req)
{
    if (sm < 0 || sm >= numSms())
        fatal("BlockScheduler::release: bad SM id ", sm);
    SmState &state = sms_[sm];
    if (state.blocks == 0 || state.usedSharedMem < req.sharedMemBytes ||
        state.usedThreads < req.threads) {
        fatal("BlockScheduler::release: accounting underflow on SM ", sm);
    }
    state.usedSharedMem -= req.sharedMemBytes;
    state.usedThreads -= req.threads;
    --state.blocks;
}

bool
BlockScheduler::canPlace(const BlockRequirements &req) const
{
    for (const auto &sm : sms_)
        if (fits(sm, req))
            return true;
    return false;
}

std::uint32_t
BlockScheduler::residentBlocks(SmId sm) const
{
    return sms_.at(sm).blocks;
}

std::uint32_t
BlockScheduler::usedSharedMem(SmId sm) const
{
    return sms_.at(sm).usedSharedMem;
}

std::uint32_t
BlockScheduler::usedThreads(SmId sm) const
{
    return sms_.at(sm).usedThreads;
}

std::uint32_t
BlockScheduler::totalResidentBlocks() const
{
    std::uint32_t total = 0;
    for (const auto &sm : sms_)
        total += sm.blocks;
    return total;
}

} // namespace gpubox::gpu
