/**
 * @file
 * One GPU of the box: L2 cache, per-SM L1 caches, block scheduler.
 * Geometry defaults model the Tesla P100 of the DGX-1 (56 SMs, 4 MiB
 * L2, 64 KiB shared memory per SM).
 */

#ifndef GPUBOX_GPU_DEVICE_HH
#define GPUBOX_GPU_DEVICE_HH

#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "gpu/block_scheduler.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::gpu
{

/** Static configuration of one GPU. */
struct DeviceParams
{
    int numSms = 56;
    SmLimits smLimits;
    cache::CacheConfig l2; // defaults already match the P100
    /** Per-SM L1; bypassed by ldcg loads. */
    cache::CacheConfig l1 = {24 * 1024, 32, 8, cache::ReplPolicy::LRU};
};

/** A single simulated GPU. */
class Device
{
  public:
    /**
     * @param id device index within the box
     * @param params geometry
     * @param l2_indexer shared (box-wide) physically hashed L2 indexer
     * @param rng per-device random stream
     */
    Device(GpuId id, const DeviceParams &params,
           const cache::SetIndexer &l2_indexer, Rng rng);

    GpuId id() const { return id_; }
    int numSms() const { return params_.numSms; }
    const DeviceParams &params() const { return params_; }

    cache::SetAssocCache &l2() { return *l2_; }
    const cache::SetAssocCache &l2() const { return *l2_; }

    cache::SetAssocCache &l1(SmId sm) { return *l1s_.at(sm); }

    BlockScheduler &scheduler() { return scheduler_; }
    const BlockScheduler &scheduler() const { return scheduler_; }

  private:
    GpuId id_;
    DeviceParams params_;
    std::unique_ptr<cache::SetIndexer> l1Indexer_;
    std::unique_ptr<cache::SetAssocCache> l2_;
    std::vector<std::unique_ptr<cache::SetAssocCache>> l1s_;
    BlockScheduler scheduler_;
};

} // namespace gpubox::gpu

#endif // GPUBOX_GPU_DEVICE_HH
