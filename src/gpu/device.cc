#include "gpu/device.hh"

namespace gpubox::gpu
{

Device::Device(GpuId id, const DeviceParams &params,
               const cache::SetIndexer &l2_indexer, Rng rng)
    : id_(id), params_(params),
      scheduler_(params.numSms, params.smLimits)
{
    l2_ = std::make_unique<cache::SetAssocCache>(params.l2, l2_indexer,
                                                 rng.split(0));
    l1Indexer_ = std::make_unique<cache::LinearIndexer>(
        params.l1.numSets(), params.l1.lineBytes);
    l1s_.reserve(params.numSms);
    for (int sm = 0; sm < params.numSms; ++sm) {
        l1s_.push_back(std::make_unique<cache::SetAssocCache>(
            params.l1, *l1Indexer_, rng.split(sm + 1)));
    }
}

} // namespace gpubox::gpu
