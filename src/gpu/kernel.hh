/**
 * @file
 * Kernel launch configuration, CUDA-like.
 */

#ifndef GPUBOX_GPU_KERNEL_HH
#define GPUBOX_GPU_KERNEL_HH

#include <cstdint>
#include <string>

namespace gpubox::gpu
{

/** Grid/block shape and static resources of one kernel launch. */
struct KernelConfig
{
    std::string name = "kernel";
    std::uint32_t numBlocks = 1;
    std::uint32_t threadsPerBlock = 32;
    /** Static shared memory per block (drives SM occupancy). */
    std::uint32_t sharedMemBytes = 0;
};

/** Per-block resource demand derived from a KernelConfig. */
struct BlockRequirements
{
    std::uint32_t threads = 32;
    std::uint32_t sharedMemBytes = 0;
};

} // namespace gpubox::gpu

#endif // GPUBOX_GPU_KERNEL_HH
