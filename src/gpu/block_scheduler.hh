/**
 * @file
 * Thread-block-to-SM placement with the "leftover" policy.
 *
 * Paper Sec. VI: blocks of the first application spread across SMs;
 * a later application's blocks can only co-locate on an SM if that SM
 * still has leftover shared memory / thread slots. The noise
 * mitigation experiment exploits this by launching idle blocks that
 * saturate shared memory so no other kernel can share the SMs.
 */

#ifndef GPUBOX_GPU_BLOCK_SCHEDULER_HH
#define GPUBOX_GPU_BLOCK_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "gpu/kernel.hh"
#include "util/types.hh"

namespace gpubox::gpu
{

/** Per-SM occupancy limits. */
struct SmLimits
{
    std::uint32_t sharedMemBytes = 64 * 1024; // P100: 64 KiB per SM
    std::uint32_t maxThreads = 2048;
    std::uint32_t maxBlocks = 32;
};

/** Tracks SM occupancy and places blocks. */
class BlockScheduler
{
  public:
    BlockScheduler(int num_sms, const SmLimits &limits);

    /**
     * Try to place a block; spreads load by preferring the SM with the
     * fewest resident blocks among those with room.
     * @return the chosen SM, or nullopt when no SM can host the block
     */
    std::optional<SmId> tryPlace(const BlockRequirements &req);

    /** Release the resources of a completed block. */
    void release(SmId sm, const BlockRequirements &req);

    /** @return true if some SM could host the block right now. */
    bool canPlace(const BlockRequirements &req) const;

    int numSms() const { return static_cast<int>(sms_.size()); }
    std::uint32_t residentBlocks(SmId sm) const;
    std::uint32_t usedSharedMem(SmId sm) const;
    std::uint32_t usedThreads(SmId sm) const;
    const SmLimits &limits() const { return limits_; }

    /** Total blocks currently resident on the device. */
    std::uint32_t totalResidentBlocks() const;

  private:
    struct SmState
    {
        std::uint32_t usedSharedMem = 0;
        std::uint32_t usedThreads = 0;
        std::uint32_t blocks = 0;
    };

    bool fits(const SmState &sm, const BlockRequirements &req) const;

    SmLimits limits_;
    std::vector<SmState> sms_;
};

} // namespace gpubox::gpu

#endif // GPUBOX_GPU_BLOCK_SCHEDULER_HH
