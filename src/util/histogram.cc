#include "util/histogram.hh"

#include <algorithm>
#include <cstdio>

#include "util/log.hh"

namespace gpubox
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0)
        fatal("Histogram needs at least one bin");
    if (hi <= lo)
        fatal("Histogram range is empty: [", lo, ", ", hi, ")");
    width_ = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    samples_.push_back(x);
    double pos = (x - lo_) / width_;
    std::size_t idx;
    if (pos < 0.0) {
        idx = 0;
    } else {
        idx = std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + static_cast<double>(i) * width_;
}

std::size_t
Histogram::modeBin() const
{
    return static_cast<std::size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string
Histogram::render(std::size_t max_width, bool skip_empty) const
{
    std::uint64_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (skip_empty && counts_[i] == 0)
            continue;
        const std::size_t bar =
            static_cast<std::size_t>(counts_[i] * max_width / peak);
        std::snprintf(line, sizeof(line), "[%7.0f, %7.0f) ",
                      binLow(i), binLow(i) + width_);
        out += line;
        out.append(bar, '#');
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
    }
    return out;
}

} // namespace gpubox
