#include "util/kmeans1d.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox
{

Kmeans1dResult
kmeans1d(const std::vector<double> &samples, std::size_t k,
         std::size_t max_iters)
{
    if (k == 0)
        fatal("kmeans1d with k == 0");
    if (samples.size() < k)
        fatal("kmeans1d: fewer samples (", samples.size(),
              ") than clusters (", k, ")");

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    // Quantile initialization: centers at the (i + 0.5)/k quantiles.
    std::vector<double> centers(k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t idx = std::min(
            sorted.size() - 1,
            static_cast<std::size_t>(
                (static_cast<double>(i) + 0.5) / static_cast<double>(k) *
                static_cast<double>(sorted.size())));
        centers[i] = sorted[idx];
    }

    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        // In 1-D with sorted centers, assignment is by boundary search.
        std::vector<double> sums(k, 0.0);
        std::fill(sizes.begin(), sizes.end(), 0);
        std::size_t c = 0;
        for (double v : sorted) {
            while (c + 1 < k &&
                   std::abs(v - centers[c + 1]) < std::abs(v - centers[c])) {
                ++c;
            }
            // A sample earlier in sort order can belong to an earlier
            // cluster; rewind when needed (c is monotone overall, but
            // guard against equal centers).
            while (c > 0 &&
                   std::abs(v - centers[c - 1]) < std::abs(v - centers[c])) {
                --c;
            }
            sums[c] += v;
            ++sizes[c];
        }
        bool changed = false;
        for (std::size_t i = 0; i < k; ++i) {
            if (sizes[i] == 0)
                continue; // keep the previous center for empty clusters
            const double nc = sums[i] / static_cast<double>(sizes[i]);
            if (nc != centers[i]) {
                centers[i] = nc;
                changed = true;
            }
        }
        std::sort(centers.begin(), centers.end());
        if (!changed)
            break;
    }

    Kmeans1dResult res;
    res.centers = centers;
    res.sizes.assign(k, 0);
    res.boundaries.clear();
    for (std::size_t i = 0; i + 1 < k; ++i)
        res.boundaries.push_back(0.5 * (centers[i] + centers[i + 1]));
    // Final assignment counts.
    for (double v : sorted) {
        std::size_t c = 0;
        while (c < res.boundaries.size() && v >= res.boundaries[c])
            ++c;
        ++res.sizes[c];
    }
    return res;
}

} // namespace gpubox
