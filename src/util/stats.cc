#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    mean_ += delta * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        fatal("percentile() of empty sample set");
    if (p < 0.0 || p > 100.0)
        fatal("percentile p out of range: ", p);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
meanOf(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples)
        s += v;
    return s / static_cast<double>(samples.size());
}

double
medianOf(const std::vector<double> &samples)
{
    return percentile(samples, 50.0);
}

} // namespace gpubox
