/**
 * @file
 * Deep invariant audits for the GPUBOX_CHECKED build tier.
 *
 * Configure with -DGPUBOX_CHECKED=ON to compile GPUBOX_ASSERT and
 * GPUBOX_INVARIANT into real checks that fatal() with a named message
 * when they fire (FatalError, so tests can assert on the text). In
 * regular builds both macros compile to a never-taken branch: the
 * condition and message arguments stay type-checked but are never
 * evaluated, and any optimized build removes them entirely, so the
 * Release timing profile is untouched.
 *
 * Conditions must be side-effect free -- a checked and an unchecked
 * build must compute byte-identical results, the checked one just
 * audits them. Use GPUBOX_ASSERT for cheap local preconditions (index
 * bounds, argument sanity) and GPUBOX_INVARIANT for named subsystem
 * invariants (heap order, route-table symmetry, meter monotonicity);
 * the macro name is part of the emitted message so a failure says
 * which tier fired. Expensive whole-structure audits belong in
 * functions whose bodies are guarded with GPUBOX_CHECKED_ENABLED.
 */

#ifndef GPUBOX_UTIL_CHECK_HH
#define GPUBOX_UTIL_CHECK_HH

#include "util/log.hh"

#if defined(GPUBOX_CHECKED) && GPUBOX_CHECKED
#define GPUBOX_CHECKED_ENABLED 1
#else
#define GPUBOX_CHECKED_ENABLED 0
#endif

namespace gpubox
{

/** True in a -DGPUBOX_CHECKED=ON build (for runtime reporting). */
inline constexpr bool kCheckedBuild = GPUBOX_CHECKED_ENABLED != 0;

namespace detail
{

/** Swallows message arguments in unchecked builds without evaluating
 *  them (the call sits in a never-taken branch), so variables that
 *  exist only for a check never trip -Werror=unused. */
template <typename... Args>
inline void
checkSink(const Args &...)
{}

} // namespace detail
} // namespace gpubox

#if GPUBOX_CHECKED_ENABLED

#define GPUBOX_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gpubox::fatal("GPUBOX_ASSERT [", #cond, "] failed: ",     \
                            __VA_ARGS__);                               \
        }                                                               \
    } while (0)

#define GPUBOX_INVARIANT(cond, ...)                                     \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gpubox::fatal("GPUBOX_INVARIANT [", #cond,                \
                            "] violated: ", __VA_ARGS__);               \
        }                                                               \
    } while (0)

#else

#define GPUBOX_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (false) {                                                    \
            (void)(cond);                                               \
            ::gpubox::detail::checkSink(__VA_ARGS__);                   \
        }                                                               \
    } while (0)

#define GPUBOX_INVARIANT(cond, ...)                                     \
    do {                                                                \
        if (false) {                                                    \
            (void)(cond);                                               \
            ::gpubox::detail::checkSink(__VA_ARGS__);                   \
        }                                                               \
    } while (0)

#endif // GPUBOX_CHECKED_ENABLED

#endif // GPUBOX_UTIL_CHECK_HH
