#include "util/rng.hh"

#include <cmath>

#include "util/bitops.hh"

namespace gpubox
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t z = seed;
    for (auto &s : s_) {
        z = mix64(z);
        s = z;
    }
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x1ULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::uniformReal()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::normal(double mean, double sigma)
{
    if (hasSpare_) {
        hasSpare_ = false;
        return mean + sigma * spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniformReal() - 1.0;
        v = 2.0 * uniformReal() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    hasSpare_ = true;
    return mean + sigma * u * m;
}

bool
Rng::chance(double p)
{
    return uniformReal() < p;
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    return Rng(mix64(seed_ ^ mix64(stream_id + 0xabcdef12345ULL)));
}

} // namespace gpubox
