#include "util/rng.hh"

#include <cmath>

#include "util/bitops.hh"

namespace gpubox
{

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t z = seed;
    for (auto &s : s_) {
        z = mix64(z);
        s = z;
    }
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x1ULL;
}

double
Rng::normalFresh(double mean, double sigma)
{
    double u, v, s;
    do {
        u = 2.0 * uniformReal() - 1.0;
        v = 2.0 * uniformReal() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    hasSpare_ = true;
    return mean + sigma * u * m;
}

bool
Rng::chance(double p)
{
    return uniformReal() < p;
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    return Rng(mix64(seed_ ^ mix64(stream_id + 0xabcdef12345ULL)));
}

} // namespace gpubox
