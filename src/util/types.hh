/**
 * @file
 * Fundamental scalar types shared across the gpubox library.
 */

#ifndef GPUBOX_UTIL_TYPES_HH
#define GPUBOX_UTIL_TYPES_HH

#include <cstdint>

namespace gpubox
{

/** Simulated GPU clock cycles. All latencies and timestamps use this. */
using Cycles = std::uint64_t;

/** Virtual address within a process' unified address space. */
using VAddr = std::uint64_t;

/** Physical address; encodes owning GPU, frame number and page offset. */
using PAddr = std::uint64_t;

/** Index of a GPU device within the box (0..numGpus-1). */
using GpuId = int;

/** Index of a streaming multiprocessor within a GPU. */
using SmId = int;

/** Index of a cache set. */
using SetIndex = std::uint32_t;

} // namespace gpubox

#endif // GPUBOX_UTIL_TYPES_HH
