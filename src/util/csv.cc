#include "util/csv.hh"

#include "util/log.hh"

namespace gpubox
{

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{
    if (!out_)
        fatal("CsvWriter: cannot open '", path, "' for writing");
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << cells[i];
    }
    out_ << '\n';
    ++rows_;
}

std::string
csvEscape(const std::string &raw)
{
    if (raw.find_first_of(",\"\n") == std::string::npos)
        return raw;
    std::string esc = "\"";
    for (char c : raw) {
        if (c == '"')
            esc += '"';
        esc += c;
    }
    esc += '"';
    return esc;
}

} // namespace gpubox
