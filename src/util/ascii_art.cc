#include "util/ascii_art.hh"

#include <algorithm>

#include "util/log.hh"

namespace gpubox
{

std::string
renderHeatmap(const std::vector<double> &data, std::size_t rows,
              std::size_t cols, const HeatmapOptions &opt)
{
    if (rows * cols != data.size())
        fatal("renderHeatmap: rows*cols (", rows * cols,
              ") != data size (", data.size(), ")");
    if (opt.ramp.empty())
        fatal("renderHeatmap: empty character ramp");
    if (rows == 0 || cols == 0)
        return "";

    const std::size_t out_rows = std::min(rows, opt.maxRows);
    const std::size_t out_cols = std::min(cols, opt.maxCols);

    // Max-pool the matrix down to the output resolution; max (rather
    // than mean) keeps sparse misses visible after pooling.
    std::vector<double> pooled(out_rows * out_cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t pr = r * out_rows / rows;
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t pc = c * out_cols / cols;
            double &cell = pooled[pr * out_cols + pc];
            cell = std::max(cell, data[r * cols + c]);
        }
    }

    double peak = 0.0;
    for (double v : pooled)
        peak = std::max(peak, v);
    if (peak <= 0.0)
        peak = 1.0;

    std::string out;
    out.reserve(out_rows * (out_cols + 1));
    const std::size_t levels = opt.ramp.size();
    for (std::size_t r = 0; r < out_rows; ++r) {
        for (std::size_t c = 0; c < out_cols; ++c) {
            const double v = pooled[r * out_cols + c] / peak;
            std::size_t lvl = static_cast<std::size_t>(
                v * static_cast<double>(levels - 1) + 0.5);
            lvl = std::min(lvl, levels - 1);
            out += opt.ramp[lvl];
        }
        out += '\n';
    }
    return out;
}

} // namespace gpubox
