/**
 * @file
 * Chunked object arena with stable addresses.
 */

#ifndef GPUBOX_UTIL_ARENA_HH
#define GPUBOX_UTIL_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/check.hh"

namespace gpubox
{

/**
 * Bump allocator for objects of one type: objects are constructed into
 * fixed-size chunks, addresses stay stable for the arena's lifetime
 * (chunks never move), and everything is destroyed together when the
 * arena goes away. Replaces the one-heap-allocation-per-object churn
 * of vector<unique_ptr<T>> on hot spawn paths (simulation actors,
 * kernel block contexts).
 */
template <typename T, std::size_t ChunkSlots = 64>
class Arena
{
  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena() { clear(); }

    /** Construct a new object; its address is stable until clear(). */
    template <typename... Args>
    T &
    emplace(Args &&...args)
    {
        if (used_ == ChunkSlots) {
            chunks_.push_back(std::make_unique<Chunk>());
            used_ = 0;
        }
        T *obj = new (chunks_.back()->ptr(used_))
            T(std::forward<Args>(args)...);
        ++used_;
        ++size_;
        return *obj;
    }

    /** Object @p i in construction order. */
    T &
    operator[](std::size_t i)
    {
        GPUBOX_ASSERT(i < size_, "arena index ", i,
                      " out of bounds (", size_, " objects)");
        return *chunks_[i / ChunkSlots]->ptr(i % ChunkSlots);
    }

    const T &
    operator[](std::size_t i) const
    {
        GPUBOX_ASSERT(i < size_, "arena index ", i,
                      " out of bounds (", size_, " objects)");
        return *chunks_[i / ChunkSlots]->ptr(i % ChunkSlots);
    }

    std::size_t size() const { return size_; }
    std::size_t chunkCount() const { return chunks_.size(); }

    /** Bytes of object storage currently reserved. */
    std::size_t
    reservedBytes() const
    {
        return chunks_.size() * sizeof(Chunk);
    }

    /** Destroy every object and release the chunks. */
    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            (*this)[i].~T();
        chunks_.clear();
        used_ = ChunkSlots;
        size_ = 0;
    }

  private:
    struct Chunk
    {
        alignas(T) unsigned char raw[ChunkSlots * sizeof(T)];

        T *
        ptr(std::size_t slot)
        {
            return std::launder(
                reinterpret_cast<T *>(raw + slot * sizeof(T)));
        }

        const T *
        ptr(std::size_t slot) const
        {
            return std::launder(
                reinterpret_cast<const T *>(raw + slot * sizeof(T)));
        }
    };

    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::size_t used_ = ChunkSlots;
    std::size_t size_ = 0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_ARENA_HH
