/**
 * @file
 * ASCII heat-map rendering for memorygrams (paper Figs. 11, 14, 15).
 * A memorygram is a (cache set x time window) matrix of miss counts;
 * the renderer maps intensity to a character ramp so figures can be
 * eyeballed directly in a terminal or log file.
 */

#ifndef GPUBOX_UTIL_ASCII_ART_HH
#define GPUBOX_UTIL_ASCII_ART_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpubox
{

/** Options controlling heat-map rendering. */
struct HeatmapOptions
{
    /** Target width in characters (columns are pooled down to this). */
    std::size_t maxCols = 100;
    /** Target height in lines (rows are pooled down to this). */
    std::size_t maxRows = 32;
    /** Intensity ramp from empty to saturated. */
    std::string ramp = " .:-=+*#%@";
};

/**
 * Render a row-major matrix as an ASCII heat map.
 *
 * @param data row-major values, size rows*cols
 * @param rows matrix height (e.g. cache sets)
 * @param cols matrix width (e.g. time windows)
 * @param opt rendering options
 */
std::string renderHeatmap(const std::vector<double> &data, std::size_t rows,
                          std::size_t cols,
                          const HeatmapOptions &opt = HeatmapOptions());

} // namespace gpubox

#endif // GPUBOX_UTIL_ASCII_ART_HH
