/**
 * @file
 * Tiny CSV writer used by the benchmark harnesses to dump figure data
 * series alongside the human-readable tables.
 */

#ifndef GPUBOX_UTIL_CSV_HH
#define GPUBOX_UTIL_CSV_HH

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace gpubox
{

/** Streams rows of comma-separated values to a file. */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write a header or data row from strings. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write a row of arbitrary streamable values. */
    template <typename... Args>
    void
    row(const Args &...args)
    {
        std::vector<std::string> cells;
        (cells.push_back(toCell(args)), ...);
        writeRow(cells);
    }

    std::size_t rowsWritten() const { return rows_; }

  private:
    template <typename T>
    static std::string
    toCell(const T &v)
    {
        std::ostringstream os;
        os << v;
        return escape(os.str());
    }

    static std::string escape(const std::string &raw);

    std::ofstream out_;
    std::size_t rows_ = 0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_CSV_HH
