/**
 * @file
 * Tiny CSV writer used by the benchmark harnesses to dump figure data
 * series alongside the human-readable tables, plus the free cell
 * formatting helpers shared with the in-memory recorders of the
 * experiment runner.
 */

#ifndef GPUBOX_UTIL_CSV_HH
#define GPUBOX_UTIL_CSV_HH

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace gpubox
{

/** Quote a raw cell if it contains a comma, quote or newline. */
std::string csvEscape(const std::string &raw);

/** Format any streamable value as an escaped CSV cell. */
template <typename T>
std::string
csvCell(const T &v)
{
    std::ostringstream os;
    os << v;
    return csvEscape(os.str());
}

/** Format a pack of streamable values as one row of escaped cells. */
template <typename... Args>
std::vector<std::string>
csvRow(const Args &...args)
{
    std::vector<std::string> cells;
    (cells.push_back(csvCell(args)), ...);
    return cells;
}

/** Streams rows of comma-separated values to a file. */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write a header or data row from strings. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write a row of arbitrary streamable values. */
    template <typename... Args>
    void
    row(const Args &...args)
    {
        writeRow(csvRow(args...));
    }

    std::size_t rowsWritten() const { return rows_; }

  private:
    std::ofstream out_;
    std::size_t rows_ = 0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_CSV_HH
