/**
 * @file
 * Fixed-width binned histogram with text rendering, used for the access
 * latency cluster analysis (paper Fig. 4) and per-set miss counts
 * (paper Fig. 13).
 */

#ifndef GPUBOX_UTIL_HISTOGRAM_HH
#define GPUBOX_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpubox
{

/** Histogram over [lo, hi) with a fixed number of equal-width bins. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound of the tracked range
     * @param bins number of equal-width bins (> 0)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add a sample; out-of-range samples clamp to the edge bins. */
    void add(double x);

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    /** Center value of bin @p i. */
    double binCenter(std::size_t i) const;
    /** Inclusive lower edge of bin @p i. */
    double binLow(std::size_t i) const;
    std::uint64_t totalCount() const { return total_; }

    /** Index of the most populated bin. */
    std::size_t modeBin() const;

    /** All raw samples are retained for clustering / percentiles. */
    const std::vector<double> &samples() const { return samples_; }

    /**
     * Render a vertical ASCII bar chart, one line per bin, of the form
     * "[  250,  270) ############ 42".
     * @param max_width widest bar in characters
     * @param skip_empty omit bins with zero count
     */
    std::string render(std::size_t max_width = 60,
                       bool skip_empty = true) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::vector<double> samples_;
    std::uint64_t total_ = 0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_HISTOGRAM_HH
