/**
 * @file
 * Streaming statistics and percentile helpers for latency analysis.
 */

#ifndef GPUBOX_UTIL_STATS_HH
#define GPUBOX_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace gpubox
{

/**
 * Welford-style running mean/variance tracker with min/max.
 * O(1) memory regardless of sample count.
 */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator). */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another tracker into this one. */
    void merge(const RunningStats &other);

    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Linear-interpolated percentile of a sample vector.
 * @param samples values (copied and sorted internally)
 * @param p percentile in [0, 100]
 */
double percentile(std::vector<double> samples, double p);

/** Arithmetic mean of a vector (0 for empty input). */
double meanOf(const std::vector<double> &samples);

/** Median convenience wrapper around percentile(). */
double medianOf(const std::vector<double> &samples);

} // namespace gpubox

#endif // GPUBOX_UTIL_STATS_HH
