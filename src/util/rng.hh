/**
 * @file
 * Seeded, stream-splittable pseudo-random number generator.
 *
 * All randomness in gpubox flows through Rng instances so that every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256**, seeded via splitmix64.
 */

#ifndef GPUBOX_UTIL_RNG_HH
#define GPUBOX_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace gpubox
{

/** Deterministic PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
        std::uint64_t v;
        do {
            v = next();
        } while (v >= limit);
        return v % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        uniform(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double uniformReal() { return (next() >> 11) * 0x1.0p-53; }

    /**
     * Normal deviate with the given mean and standard deviation
     * (Marsaglia polar; consumes a deterministic number of raw draws
     * and caches the spare deviate, so the stream is bit-stable).
     */
    double
    normal(double mean, double sigma)
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return mean + sigma * spare_;
        }
        return normalFresh(mean, sigma);
    }

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /**
     * Derive an independent child stream. Children with different ids
     * are decorrelated from each other and from the parent.
     */
    Rng split(std::uint64_t stream_id) const;

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniform(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[uniform(v.size())];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Polar-method slow path of normal() (no spare cached). */
    double normalFresh(double mean, double sigma);

    std::uint64_t s_[4];
    std::uint64_t seed_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_RNG_HH
