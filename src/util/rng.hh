/**
 * @file
 * Seeded, stream-splittable pseudo-random number generator.
 *
 * All randomness in gpubox flows through Rng instances so that every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256**, seeded via splitmix64.
 */

#ifndef GPUBOX_UTIL_RNG_HH
#define GPUBOX_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace gpubox
{

/** Deterministic PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t uniform(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double sigma);

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /**
     * Derive an independent child stream. Children with different ids
     * are decorrelated from each other and from the parent.
     */
    Rng split(std::uint64_t stream_id) const;

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniform(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[uniform(v.size())];
    }

  private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_RNG_HH
