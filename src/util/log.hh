/**
 * @file
 * Minimal logging / error-reporting facility in the gem5 spirit:
 * inform() for status, warn() for suspicious-but-survivable conditions,
 * fatal() for user errors (clean exit via exception) and panic() for
 * internal invariant violations (abort).
 */

#ifndef GPUBOX_UTIL_LOG_HH
#define GPUBOX_UTIL_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpubox
{

/** Thrown by fatal(): the condition is the caller's fault, not a bug. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

void logLine(const char *tag, const std::string &msg);

inline void
format(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format(os, rest...);
}

} // namespace detail

/** Global verbosity switch; benches turn this off for clean tables. */
void setLogEnabled(bool enabled);
bool logEnabled();

/** Status message a user should see but not worry about. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    detail::logLine("info", os.str());
}

/** Something looks off but the simulation can continue. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    detail::logLine("warn", os.str());
}

/**
 * Unrecoverable user error (bad configuration, invalid arguments).
 * Throws FatalError so tests can assert on it.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    throw FatalError(os.str());
}

/** Internal invariant violation: a gpubox bug. Aborts the process. */
[[noreturn]] void panic(const std::string &msg);

} // namespace gpubox

#endif // GPUBOX_UTIL_LOG_HH
