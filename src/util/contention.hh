/**
 * @file
 * Windowed contention meter.
 *
 * Shared resources (NVLink links, L2 ports) track how many requests
 * they served in the current time window; the timing model converts
 * occupancy above a free threshold into queueing delay. This is what
 * makes the covert channel's error rate grow as more cache sets (and
 * hence more concurrent thread blocks) are used in parallel (Fig. 9).
 */

#ifndef GPUBOX_UTIL_CONTENTION_HH
#define GPUBOX_UTIL_CONTENTION_HH

#include <cstdint>

#include "util/check.hh"
#include "util/types.hh"

namespace gpubox
{

/** Counts requests per fixed time window and derives queueing delay. */
class ContentionMeter
{
  public:
    /**
     * @param window_cycles width of the accounting window
     * @param free_slots requests per window served without queueing
     * @param cycles_per_extra queueing delay per request beyond free
     */
    ContentionMeter(Cycles window_cycles, std::uint32_t free_slots,
                    Cycles cycles_per_extra)
        : window_(window_cycles), freeSlots_(free_slots),
          perExtra_(cycles_per_extra)
    {
        resetWindowEnd();
    }

    /**
     * Record one request at time @p now and return its queueing delay.
     *
     * Windows only advance: requests whose arrival time lands in an
     * already-passed window (skewed multi-hop or response-leg arrival
     * times interleaved with at-issue records) are counted toward the
     * current window instead of resetting it, so mixed-skew traffic
     * on a shared link cannot wipe the occupancy state.
     *
     * The hot path is division-free: a request inside the current
     * window (the overwhelmingly common case) is a compare against the
     * cached window end; the divide only happens when the window
     * actually advances.
     */
    Cycles
    record(Cycles now)
    {
        if (now >= windowEnd_) {
            // windowEnd_ is saturated when window_ == 0, so window_ is
            // nonzero here.
            GPUBOX_INVARIANT(windowEnd_ == (currentWindow_ + 1) * window_,
                             "contention meter window end ", windowEnd_,
                             " detached from window ", currentWindow_,
                             " (width ", window_, ")");
            const Cycles advanced = now / window_;
            GPUBOX_INVARIANT(advanced > currentWindow_,
                             "contention meter window moved backwards: ",
                             currentWindow_, " -> ", advanced,
                             " at cycle ", now);
            currentWindow_ = advanced;
            windowEnd_ = (currentWindow_ + 1) * window_;
            inWindow_ = 0;
        }
        ++inWindow_;
        ++total_;
        if (inWindow_ <= freeSlots_)
            return 0;
        return perExtra_ * (inWindow_ - freeSlots_);
    }

    /** Requests seen in the window containing @p now (read-only). */
    std::uint32_t
    occupancy(Cycles now) const
    {
        const Cycles win = window_ ? now / window_ : 0;
        return win == currentWindow_ ? inWindow_ : 0;
    }

    std::uint64_t totalRequests() const { return total_; }

    void
    reset()
    {
        currentWindow_ = 0;
        inWindow_ = 0;
        total_ = 0;
        resetWindowEnd();
    }

  private:
    void
    resetWindowEnd()
    {
        // window_ == 0 means "one window forever": saturate the end so
        // record() never tries to advance (or divide).
        windowEnd_ = window_ ? window_ : ~Cycles{0};
    }

    Cycles window_;
    std::uint32_t freeSlots_;
    Cycles perExtra_;
    Cycles currentWindow_ = 0;
    /** First cycle past the window currentWindow_ covers. */
    Cycles windowEnd_ = 0;
    std::uint32_t inWindow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace gpubox

#endif // GPUBOX_UTIL_CONTENTION_HH
