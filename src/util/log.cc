#include "util/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gpubox
{

namespace
{
std::atomic<bool> gLogEnabled{true};
} // namespace

void
setLogEnabled(bool enabled)
{
    gLogEnabled.store(enabled);
}

bool
logEnabled()
{
    return gLogEnabled.load();
}

namespace detail
{

void
logLine(const char *tag, const std::string &msg)
{
    if (!gLogEnabled.load())
        return;
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace detail

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[panic] %s\n", msg.c_str());
    std::abort();
}

} // namespace gpubox
