/**
 * @file
 * One-dimensional k-means clustering. The attack's timing oracle uses it
 * to separate the four latency clusters of paper Fig. 4 (local hit,
 * local miss, remote hit, remote miss) without a-priori thresholds.
 */

#ifndef GPUBOX_UTIL_KMEANS1D_HH
#define GPUBOX_UTIL_KMEANS1D_HH

#include <cstddef>
#include <vector>

namespace gpubox
{

/** Result of a 1-D k-means run. Centers are sorted ascending. */
struct Kmeans1dResult
{
    /** Cluster centers in ascending order. */
    std::vector<double> centers;
    /** Number of samples assigned to each center. */
    std::vector<std::size_t> sizes;
    /**
     * Decision boundaries between adjacent clusters (midpoints),
     * size == centers.size() - 1.
     */
    std::vector<double> boundaries;
};

/**
 * Cluster samples into @p k groups by Lloyd iterations with sorted-
 * quantile initialization (deterministic; no RNG needed in 1-D).
 *
 * @param samples input values (at least k distinct values expected)
 * @param k number of clusters (> 0)
 * @param max_iters Lloyd iteration cap
 */
Kmeans1dResult kmeans1d(const std::vector<double> &samples, std::size_t k,
                        std::size_t max_iters = 100);

} // namespace gpubox

#endif // GPUBOX_UTIL_KMEANS1D_HH
