/**
 * @file
 * Small bit-manipulation helpers used by the memory and cache models.
 */

#ifndef GPUBOX_UTIL_BITOPS_HH
#define GPUBOX_UTIL_BITOPS_HH

#include <cstdint>

namespace gpubox
{

/** @return true iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); result is undefined for v == 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return ceil(a / b) for integers, b > 0. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Mix the bits of a 64-bit value (splitmix64 finalizer). Used both by the
 * RNG seeding logic and by the cache index scrambler.
 */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace gpubox

#endif // GPUBOX_UTIL_BITOPS_HH
