/**
 * @file
 * MLP training victim (paper Sec. V-B).
 *
 * The paper's victim is a PyTorch MLP with one hidden layer training
 * on MNIST; the attack infers the hidden-layer width from the
 * intensity of L2 misses (Table II, Fig. 13) and the epoch count from
 * the temporal structure of the memorygram (Fig. 15). This victim
 * performs the real data movement of minibatch SGD -- streaming the
 * input batch and both weight matrices forward and backward through
 * the simulated memory hierarchy -- so the miss volume scales with the
 * hidden width and the inter-epoch synchronization gap is visible.
 */

#ifndef GPUBOX_VICTIM_MLP_TRAINER_HH
#define GPUBOX_VICTIM_MLP_TRAINER_HH

#include <cstdint>
#include <vector>

#include "rt/runtime.hh"

namespace gpubox::victim
{

/** Hyperparameters of the MLP victim. */
struct MlpConfig
{
    unsigned inputDim = 196;  // 14x14 downsampled MNIST
    unsigned hiddenNeurons = 128;
    unsigned outputDim = 10;
    unsigned batchSize = 16;
    unsigned batchesPerEpoch = 4;
    unsigned epochs = 1;
    /** Host-side evaluation/sync gap between epochs, in cycles. */
    Cycles interEpochGapCycles = 60000;
};

/** Launches the training loop on one GPU. */
class MlpTrainer
{
  public:
    MlpTrainer(rt::Runtime &rt, rt::Process &proc, GpuId gpu,
               const MlpConfig &config);
    ~MlpTrainer();

    MlpTrainer(const MlpTrainer &) = delete;
    MlpTrainer &operator=(const MlpTrainer &) = delete;

    /** Enqueue the training kernel on @p stream. */
    rt::KernelHandle launch(rt::Stream &stream);

    /** Launch on the process' default stream for the trainer GPU. */
    rt::KernelHandle launch();

    const MlpConfig &config() const { return config_; }

  private:
    sim::Task body(rt::BlockCtx &ctx);

    rt::Runtime &rt_;
    rt::Process &proc_;
    GpuId gpu_;
    MlpConfig config_;
    std::uint32_t line_;

    VAddr x_ = 0;  // input batch
    VAddr w1_ = 0; // inputDim x hidden
    VAddr h_ = 0;  // batch x hidden activations
    VAddr w2_ = 0; // hidden x outputDim
    VAddr y_ = 0;  // batch x outputDim
    std::uint64_t xLines_ = 0;
    std::uint64_t w1Lines_ = 0;
    std::uint64_t hLines_ = 0;
    std::uint64_t w2Lines_ = 0;
    std::uint64_t yLines_ = 0;
};

} // namespace gpubox::victim

#endif // GPUBOX_VICTIM_MLP_TRAINER_HH
