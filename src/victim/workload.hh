/**
 * @file
 * Victim HPC workloads (paper Sec. V-A).
 *
 * The six applications the paper fingerprints are taken from the CUDA
 * samples: vectoradd, histogram, blackscholes, matrix multiplication,
 * quasirandom and walsh transform. What the remote side channel
 * observes is each app's pattern of L2 set misses over time (the
 * memorygram), so these implementations are faithful *access pattern*
 * generators: buffer sizes, spatial strides, reuse structure, phase
 * behaviour and compute/memory ratio all follow the originals, while
 * the arithmetic itself is summarized as ALU delay.
 */

#ifndef GPUBOX_VICTIM_WORKLOAD_HH
#define GPUBOX_VICTIM_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rt/runtime.hh"

namespace gpubox::victim
{

/** The six fingerprinting targets. */
enum class AppKind
{
    VECTOR_ADD,
    HISTOGRAM,
    BLACK_SCHOLES,
    MATRIX_MUL,
    QUASI_RANDOM,
    WALSH_TRANSFORM,
};

/** All kinds, in confusion-matrix order (BS, HG, MM, QR, VA, WT). */
const std::vector<AppKind> &allAppKinds();

/** Short display name ("BS", "HG", ...). */
std::string appShortName(AppKind kind);

/** Full display name ("Black Scholes", ...). */
std::string appName(AppKind kind);

/** Per-run knobs. */
struct WorkloadConfig
{
    /** Working-set scale factor (1.0 = paper-like footprint). */
    double scale = 1.0;
    /** Seed for data-dependent accesses (histogram bins etc.). */
    std::uint64_t seed = 1;
    /** Outer repetitions of the app's main phase. */
    unsigned iterations = 1;
    /**
     * Static shared memory per block. Real CUDA-sample kernels
     * reserve shared memory; the Sec. VI noise-mitigation experiment
     * relies on it for SM-occupancy blocking.
     */
    std::uint32_t sharedMemBytes = 0;
};

/**
 * A victim application instance: owns its device buffers and launches
 * its kernel on one GPU. All accesses go through the simulated memory
 * hierarchy and thus leave the L2 footprint the attacker observes.
 */
class Workload
{
  public:
    Workload(rt::Runtime &rt, rt::Process &proc, GpuId gpu, AppKind kind,
             const WorkloadConfig &config = WorkloadConfig());
    ~Workload();

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /**
     * Enqueue the victim kernel on @p stream (asynchronous; drive the
     * engine via Runtime::sync). Staging the victim behind other work
     * -- e.g. an attacker's priming pass -- is expressed with stream
     * order and events, not in-kernel delays.
     */
    rt::KernelHandle launch(rt::Stream &stream);

    /** Launch on the process' default stream for the victim GPU. */
    rt::KernelHandle launch();

    AppKind kind() const { return kind_; }

  private:
    sim::Task body(rt::BlockCtx &ctx);

    sim::Task vectorAdd(rt::BlockCtx &ctx);
    sim::Task histogram(rt::BlockCtx &ctx);
    sim::Task blackScholes(rt::BlockCtx &ctx);
    sim::Task matrixMul(rt::BlockCtx &ctx);
    sim::Task quasiRandom(rt::BlockCtx &ctx);
    sim::Task walshTransform(rt::BlockCtx &ctx);

    /** Allocate a buffer of @p bytes on the victim GPU. */
    VAddr alloc(std::uint64_t bytes);

    rt::Runtime &rt_;
    rt::Process &proc_;
    GpuId gpu_;
    AppKind kind_;
    WorkloadConfig config_;
    std::uint32_t line_;
    std::uint64_t n_ = 0; // kind-specific problem size
    std::vector<VAddr> buffers_;
};

} // namespace gpubox::victim

#endif // GPUBOX_VICTIM_WORKLOAD_HH
