#include "victim/mlp_trainer.hh"

#include "util/bitops.hh"

namespace gpubox::victim
{

namespace
{
constexpr std::uint32_t kTrainerBlocks = 16;
}

MlpTrainer::MlpTrainer(rt::Runtime &rt, rt::Process &proc, GpuId gpu,
                       const MlpConfig &config)
    : rt_(rt), proc_(proc), gpu_(gpu), config_(config),
      line_(rt.config().device.l2.lineBytes)
{
    const auto lines_for = [&](std::uint64_t floats) {
        return divCeil(floats * 4, line_);
    };
    xLines_ = lines_for(static_cast<std::uint64_t>(config.batchSize) *
                        config.inputDim);
    w1Lines_ = lines_for(static_cast<std::uint64_t>(config.inputDim) *
                         config.hiddenNeurons);
    hLines_ = lines_for(static_cast<std::uint64_t>(config.batchSize) *
                        config.hiddenNeurons);
    w2Lines_ = lines_for(static_cast<std::uint64_t>(config.hiddenNeurons) *
                         config.outputDim);
    yLines_ = lines_for(static_cast<std::uint64_t>(config.batchSize) *
                        config.outputDim);

    x_ = rt_.deviceMalloc(proc_, gpu_, xLines_ * line_);
    w1_ = rt_.deviceMalloc(proc_, gpu_, w1Lines_ * line_);
    h_ = rt_.deviceMalloc(proc_, gpu_, hLines_ * line_);
    w2_ = rt_.deviceMalloc(proc_, gpu_, w2Lines_ * line_);
    y_ = rt_.deviceMalloc(proc_, gpu_, yLines_ * line_);
}

MlpTrainer::~MlpTrainer()
{
    for (VAddr b : {x_, w1_, h_, w2_, y_})
        rt_.deviceFree(proc_, b);
}

rt::KernelHandle
MlpTrainer::launch(rt::Stream &stream)
{
    gpu::KernelConfig cfg;
    cfg.name = "victim-mlp";
    cfg.numBlocks = kTrainerBlocks;
    cfg.threadsPerBlock = 256;
    return stream.launch(cfg,
                         [this](rt::BlockCtx &ctx) { return body(ctx); });
}

rt::KernelHandle
MlpTrainer::launch()
{
    return launch(rt_.stream(proc_, gpu_));
}

sim::Task
MlpTrainer::body(rt::BlockCtx &ctx)
{
    const std::uint32_t bid = ctx.blockIdx();

    for (unsigned e = 0; e < config_.epochs; ++e) {
        for (unsigned b = 0; b < config_.batchesPerEpoch; ++b) {
            // Forward: H = relu(X * W1); Y = softmax(H * W2).
            for (std::uint64_t i = bid; i < xLines_; i += kTrainerBlocks)
                co_await ctx.ld32(x_ + i * line_);
            for (std::uint64_t i = bid; i < w1Lines_; i += kTrainerBlocks)
                co_await ctx.ld32(w1_ + i * line_);
            for (std::uint64_t i = bid; i < hLines_; i += kTrainerBlocks)
                co_await ctx.st32(h_ + i * line_, 0);
            for (std::uint64_t i = bid; i < w2Lines_; i += kTrainerBlocks)
                co_await ctx.ld32(w2_ + i * line_);
            for (std::uint64_t i = bid; i < yLines_; i += kTrainerBlocks)
                co_await ctx.st32(y_ + i * line_, 0);
            co_await ctx.compute(64);

            // Backward: gradients stream both weight matrices again
            // (read + update write).
            for (std::uint64_t i = bid; i < yLines_; i += kTrainerBlocks)
                co_await ctx.ld32(y_ + i * line_);
            for (std::uint64_t i = bid; i < w2Lines_; i += kTrainerBlocks) {
                co_await ctx.ld32(w2_ + i * line_);
                co_await ctx.st32(w2_ + i * line_, 0);
            }
            for (std::uint64_t i = bid; i < hLines_; i += kTrainerBlocks)
                co_await ctx.ld32(h_ + i * line_);
            for (std::uint64_t i = bid; i < w1Lines_; i += kTrainerBlocks) {
                co_await ctx.ld32(w1_ + i * line_);
                co_await ctx.st32(w1_ + i * line_, 0);
            }
            co_await ctx.compute(64);
        }
        // Inter-epoch host synchronization / evaluation gap: the
        // quiet stripe that makes epochs countable in Fig. 15.
        if (e + 1 < config_.epochs)
            co_await ctx.compute(config_.interEpochGapCycles /
                                 rt_.timing().aluCyclesPerOp);
    }
}

} // namespace gpubox::victim
