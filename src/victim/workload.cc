#include "victim/workload.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gpubox::victim
{

namespace
{

/** Victim kernels use a modest grid; 4 blocks split the work. */
constexpr std::uint32_t kVictimBlocks = 4;

std::uint64_t
scaled(double scale, std::uint64_t lines)
{
    const auto v = static_cast<std::uint64_t>(scale *
                                              static_cast<double>(lines));
    return v < 8 ? 8 : v;
}

} // namespace

const std::vector<AppKind> &
allAppKinds()
{
    static const std::vector<AppKind> kinds = {
        AppKind::BLACK_SCHOLES,  AppKind::HISTOGRAM,
        AppKind::MATRIX_MUL,     AppKind::QUASI_RANDOM,
        AppKind::VECTOR_ADD,     AppKind::WALSH_TRANSFORM,
    };
    return kinds;
}

std::string
appShortName(AppKind kind)
{
    switch (kind) {
      case AppKind::VECTOR_ADD:
        return "VA";
      case AppKind::HISTOGRAM:
        return "HG";
      case AppKind::BLACK_SCHOLES:
        return "BS";
      case AppKind::MATRIX_MUL:
        return "MM";
      case AppKind::QUASI_RANDOM:
        return "QR";
      case AppKind::WALSH_TRANSFORM:
        return "WT";
    }
    return "??";
}

std::string
appName(AppKind kind)
{
    switch (kind) {
      case AppKind::VECTOR_ADD:
        return "Vector Addition";
      case AppKind::HISTOGRAM:
        return "Histogram";
      case AppKind::BLACK_SCHOLES:
        return "Black Scholes";
      case AppKind::MATRIX_MUL:
        return "Matrix Multiplication";
      case AppKind::QUASI_RANDOM:
        return "Quasi Random Generator";
      case AppKind::WALSH_TRANSFORM:
        return "Walsh Transform";
    }
    return "Unknown";
}

Workload::Workload(rt::Runtime &rt, rt::Process &proc, GpuId gpu,
                   AppKind kind, const WorkloadConfig &config)
    : rt_(rt), proc_(proc), gpu_(gpu), kind_(kind), config_(config),
      line_(rt.config().device.l2.lineBytes)
{
    // All buffers are allocated host-side (cudaMalloc happens before
    // the kernel launch) and shared by every thread block.
    const double s = config_.scale;
    switch (kind_) {
      case AppKind::VECTOR_ADD:
        // a, b, c streams.
        n_ = scaled(s, 1500);
        for (int i = 0; i < 3; ++i)
            alloc(n_ * line_);
        break;
      case AppKind::HISTOGRAM:
        // data stream + hot 8-line bin table.
        n_ = scaled(s, 4000);
        alloc(n_ * line_);
        alloc(8 * line_);
        break;
      case AppKind::BLACK_SCHOLES:
        // price/strike/years in, call/put out.
        n_ = scaled(s, 900);
        for (int i = 0; i < 5; ++i)
            alloc(n_ * line_);
        break;
      case AppKind::MATRIX_MUL: {
        // A, B, C square f32 matrices; the dimension is clamped to a
        // whole number of 32x32 tiles.
        n_ = scaled(s, 128); // matrix dimension
        n_ = std::max<std::uint64_t>(32, (n_ / 32) * 32);
        const std::uint64_t lines_per_row = divCeil(n_ * 4, line_);
        for (int i = 0; i < 3; ++i)
            alloc(n_ * lines_per_row * line_);
        break;
      }
      case AppKind::QUASI_RANDOM:
        // direction-vector table + scattered output.
        n_ = 2048; // power of two for bit reversal
        alloc(32 * line_);
        alloc(n_ * line_);
        break;
      case AppKind::WALSH_TRANSFORM:
        n_ = 1024; // lines; power of two
        alloc(n_ * line_);
        break;
    }
}

Workload::~Workload()
{
    for (VAddr b : buffers_)
        rt_.deviceFree(proc_, b);
}

VAddr
Workload::alloc(std::uint64_t bytes)
{
    const VAddr b = rt_.deviceMalloc(proc_, gpu_, bytes);
    buffers_.push_back(b);
    return b;
}

rt::KernelHandle
Workload::launch(rt::Stream &stream)
{
    gpu::KernelConfig cfg;
    cfg.name = "victim-" + appShortName(kind_);
    cfg.numBlocks = kVictimBlocks;
    cfg.threadsPerBlock = 256;
    cfg.sharedMemBytes = config_.sharedMemBytes;
    auto body = [this](rt::BlockCtx &ctx) { return this->body(ctx); };
    return stream.launch(cfg, body);
}

rt::KernelHandle
Workload::launch()
{
    return launch(rt_.stream(proc_, gpu_));
}

sim::Task
Workload::body(rt::BlockCtx &ctx)
{
    switch (kind_) {
      case AppKind::VECTOR_ADD:
        return vectorAdd(ctx);
      case AppKind::HISTOGRAM:
        return histogram(ctx);
      case AppKind::BLACK_SCHOLES:
        return blackScholes(ctx);
      case AppKind::MATRIX_MUL:
        return matrixMul(ctx);
      case AppKind::QUASI_RANDOM:
        return quasiRandom(ctx);
      case AppKind::WALSH_TRANSFORM:
        return walshTransform(ctx);
    }
    fatal("unknown workload kind");
}

/*
 * vectoradd: three equally sized streams, read a[i], read b[i], write
 * c[i] -- a pure streaming kernel with a flat, dense miss front.
 */
sim::Task
Workload::vectorAdd(rt::BlockCtx &ctx)
{
    const VAddr a = buffers_[0];
    const VAddr b = buffers_[1];
    const VAddr c = buffers_[2];
    const std::uint32_t bid = ctx.blockIdx();

    for (unsigned it = 0; it < config_.iterations; ++it) {
        for (std::uint64_t i = bid; i < n_; i += kVictimBlocks) {
            co_await ctx.ld32(a + i * line_);
            co_await ctx.ld32(b + i * line_);
            co_await ctx.compute(2);
            co_await ctx.st32(c + i * line_, 0);
        }
    }
}

/*
 * histogram: a large input stream plus a tiny, extremely hot bin
 * table -- dense stream misses with a persistent hot stripe.
 */
sim::Task
Workload::histogram(rt::BlockCtx &ctx)
{
    const VAddr data = buffers_[0];
    const VAddr table = buffers_[1];
    const std::uint64_t bins = 8;
    const std::uint32_t bid = ctx.blockIdx();
    Rng rng(config_.seed ^ (0x4857ULL + bid));

    for (unsigned it = 0; it < config_.iterations; ++it) {
        for (std::uint64_t i = bid; i < n_; i += kVictimBlocks) {
            const std::uint64_t v = co_await ctx.ld32(data + i * line_);
            co_await ctx.compute(1);
            const std::uint64_t bin = (v + rng.uniform(bins)) % bins;
            co_await ctx.ld32(table + bin * line_);
            co_await ctx.st32(table + bin * line_, 0);
        }
    }
}

/*
 * blackscholes: three input streams, two output streams, and a heavy
 * per-element transcendental computation -- a slow, sparse miss front
 * compared to vectoradd.
 */
sim::Task
Workload::blackScholes(rt::BlockCtx &ctx)
{
    const VAddr price = buffers_[0];
    const VAddr strike = buffers_[1];
    const VAddr years = buffers_[2];
    const VAddr call = buffers_[3];
    const VAddr put = buffers_[4];
    const std::uint32_t bid = ctx.blockIdx();

    for (unsigned it = 0; it < config_.iterations; ++it) {
        for (std::uint64_t i = bid; i < n_; i += kVictimBlocks) {
            co_await ctx.ld32(price + i * line_);
            co_await ctx.ld32(strike + i * line_);
            co_await ctx.ld32(years + i * line_);
            co_await ctx.compute(60); // CND evaluation dominates
            co_await ctx.st32(call + i * line_, 0);
            co_await ctx.st32(put + i * line_, 0);
        }
    }
}

/*
 * matrixMul: tiled GEMM. Tiles of A and B are re-read once per tile
 * product, giving strong temporal reuse: bands of hits punctuated by
 * tile-boundary miss bursts.
 */
sim::Task
Workload::matrixMul(rt::BlockCtx &ctx)
{
    const VAddr a = buffers_[0];
    const VAddr b = buffers_[1];
    const VAddr c = buffers_[2];
    const std::uint64_t dim = n_;
    const std::uint64_t floats_per_line = line_ / 4;
    const std::uint64_t lines_per_row = divCeil(dim * 4, line_);
    const std::uint64_t tile = 32;
    const std::uint64_t grid = dim / tile;
    const std::uint32_t bid = ctx.blockIdx();

    auto tile_lines = [&](VAddr m, std::uint64_t tr,
                          std::uint64_t tc) -> std::vector<VAddr> {
        std::vector<VAddr> lines;
        for (std::uint64_t r = 0; r < tile; ++r) {
            const std::uint64_t row = tr * tile + r;
            for (std::uint64_t col = tc * tile; col < (tc + 1) * tile;
                 col += floats_per_line) {
                lines.push_back(m + (row * lines_per_row +
                                     col / floats_per_line) * line_);
            }
        }
        return lines;
    };

    for (unsigned it = 0; it < config_.iterations; ++it) {
        // Each block owns a stripe of C-tile rows.
        for (std::uint64_t tr = bid; tr < grid; tr += kVictimBlocks) {
            for (std::uint64_t tc = 0; tc < grid; ++tc) {
                for (std::uint64_t tk = 0; tk < grid; ++tk) {
                    for (VAddr v : tile_lines(a, tr, tk))
                        co_await ctx.ld32(v);
                    for (VAddr v : tile_lines(b, tk, tc))
                        co_await ctx.ld32(v);
                    co_await ctx.compute(32);
                }
                for (VAddr v : tile_lines(c, tr, tc))
                    co_await ctx.st32(v, 0);
            }
        }
    }
}

/*
 * quasiRandom: Sobol-like generator -- reads a small direction-vector
 * table and writes the output with a bit-reversed (scattered) index,
 * painting the cache in a shuffled order rather than a front.
 */
sim::Task
Workload::quasiRandom(rt::BlockCtx &ctx)
{
    const VAddr dirvec = buffers_[0];
    const VAddr out = buffers_[1];
    const unsigned bits = floorLog2(n_);
    const std::uint32_t bid = ctx.blockIdx();

    auto bitrev = [bits](std::uint64_t x) {
        std::uint64_t r = 0;
        for (unsigned i = 0; i < bits; ++i)
            r |= ((x >> i) & 1) << (bits - 1 - i);
        return r;
    };

    for (unsigned it = 0; it < config_.iterations; ++it) {
        for (std::uint64_t i = bid; i < n_; i += kVictimBlocks) {
            co_await ctx.ld32(dirvec + (i % 32) * line_);
            co_await ctx.compute(3);
            co_await ctx.st32(out + bitrev(i) * line_, 0);
        }
    }
}

/*
 * walshTransform: in-place butterfly passes with doubling stride --
 * a banded, phase-structured pattern unlike any of the streaming apps.
 */
sim::Task
Workload::walshTransform(rt::BlockCtx &ctx)
{
    const VAddr data = buffers_[0];
    const unsigned passes = 4;
    const std::uint32_t bid = ctx.blockIdx();

    for (unsigned it = 0; it < config_.iterations; ++it) {
        for (unsigned p = 0; p < passes; ++p) {
            const std::uint64_t stride = 1ULL << p;
            for (std::uint64_t i = bid; i < n_; i += kVictimBlocks) {
                if (i & stride)
                    continue; // only the lower element of each pair
                const std::uint64_t j = i | stride;
                co_await ctx.ld32(data + i * line_);
                co_await ctx.ld32(data + j * line_);
                co_await ctx.compute(2);
                co_await ctx.st32(data + i * line_, 0);
                co_await ctx.st32(data + j * line_, 0);
            }
        }
    }
}

} // namespace gpubox::victim
