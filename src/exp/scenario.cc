#include "exp/scenario.hh"

#include "rt/platform.hh"
#include "util/log.hh"

namespace gpubox::exp
{

std::string
Scenario::paramOr(const std::string &key, const std::string &fallback) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return v;
    return fallback;
}

void
Scenario::setPlatform(const std::string &platform_name)
{
    system = rt::platformByName(platform_name).systemConfig(seed);
}

void
Scenario::applyDefaults(std::uint64_t seed_value,
                        const std::string &platform_name)
{
    seed = seed_value;
    system.seed = seed_value;
    if (!platform_name.empty())
        setPlatform(platform_name);
}

ScenarioMatrix &
ScenarioMatrix::axis(const std::string &name, std::vector<Point> points)
{
    if (points.empty())
        fatal("ScenarioMatrix: axis '", name, "' has no points");
    axes_.push_back({name, std::move(points)});
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::seeds(const std::vector<std::uint64_t> &seeds)
{
    std::vector<Point> points;
    points.reserve(seeds.size());
    for (std::uint64_t s : seeds) {
        points.emplace_back(std::to_string(s), [s](Scenario &sc) {
            sc.seed = s;
            sc.system.seed = s;
        });
    }
    return axis("seed", std::move(points));
}

std::size_t
ScenarioMatrix::size() const
{
    std::size_t n = 1;
    for (const auto &ax : axes_)
        n *= ax.points.size();
    return n;
}

std::vector<Scenario>
ScenarioMatrix::expand() const
{
    std::vector<Scenario> out;
    out.reserve(size());
    // Row-major walk: odometer over the axes, last axis fastest.
    std::vector<std::size_t> idx(axes_.size(), 0);
    for (std::size_t n = size(); n-- > 0;) {
        Scenario sc = base_;
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const auto &[label, mutate] = axes_[a].points[idx[a]];
            mutate(sc);
            sc.name += "/" + axes_[a].name + "=" + label;
            sc.params.emplace_back(axes_[a].name, label);
        }
        out.push_back(std::move(sc));
        for (std::size_t a = axes_.size(); a-- > 0;) {
            if (++idx[a] < axes_[a].points.size())
                break;
            idx[a] = 0;
        }
    }
    return out;
}

} // namespace gpubox::exp
