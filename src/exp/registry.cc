#include "exp/registry.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "attack/calibration_cache.hh"
#include "attack/timing_oracle.hh"
#include "rt/platform.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::exp
{

namespace
{

/** Minimal JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (unsigned char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Compact numeric formatting; always valid JSON (no inf/nan). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string
joinPath(const std::string &dir, const std::string &file)
{
    if (dir.empty() || dir == ".")
        return file;
    if (dir.back() == '/')
        return dir + file;
    return dir + "/" + file;
}

void
usageExit(const char *argv0, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", argv0, msg.c_str());
    std::fprintf(
        stderr,
        "usage: %s [--list] [--list-json] [--only a,b]\n"
        "          [--platform P] [seed] [--seed N]\n"
        "          [--threads N] [--shards N] [--repeat N]\n"
        "          [--out-dir D] [--results F] [--no-results]\n"
        "          [--quiet] [--profile]\n",
        argv0);
    std::exit(2);
}

struct DriverArgs
{
    BenchOptions opt;
    bool list = false;
    bool listJson = false;
    std::string only;
    bool noResults = false;
};

DriverArgs
parseDriverArgs(int argc, char **argv)
{
    DriverArgs args;
    // Strict numeric parsing: garbage must exit 2 with usage, not
    // silently become seed/threads 0.
    auto parse_u64 = [&](const std::string &flag,
                         const char *raw) -> std::uint64_t {
        char *end = nullptr;
        const std::uint64_t v = std::strtoull(raw, &end, 0);
        if (end == raw || *end != '\0')
            usageExit(argv[0], "invalid number '" + std::string(raw) +
                                   "' for " + flag);
        return v;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next_val = [&]() -> const char * {
            if (i + 1 >= argc)
                usageExit(argv[0], "missing value after " + a);
            return argv[++i];
        };
        if (a == "--seed")
            args.opt.seed = parse_u64(a, next_val());
        else if (a == "--threads")
            args.opt.threads =
                static_cast<unsigned>(parse_u64(a, next_val()));
        else if (a == "--shards")
            args.opt.shards =
                static_cast<unsigned>(parse_u64(a, next_val()));
        else if (a == "--repeat") {
            args.opt.repeat =
                static_cast<unsigned>(parse_u64(a, next_val()));
            if (args.opt.repeat == 0)
                usageExit(argv[0], "--repeat must be >= 1");
        }
        else if (a == "--out-dir")
            args.opt.outDir = next_val();
        else if (a == "--results")
            args.opt.resultsPath = next_val();
        else if (a == "--platform") {
            args.opt.platform = next_val();
            if (!rt::platformExists(args.opt.platform)) {
                usageExit(argv[0],
                          "unknown platform '" + args.opt.platform +
                              "' (known: " +
                              rt::platformNamesJoined() + ")");
            }
        }
        else if (a == "--quiet")
            args.opt.progress = false;
        else if (a == "--list")
            args.list = true;
        else if (a == "--list-json")
            args.listJson = true;
        else if (a == "--only")
            args.only = next_val();
        else if (a == "--no-results")
            args.noResults = true;
        else if (a == "--profile")
            args.opt.profile = true;
        else if (!a.empty() && a[0] != '-')
            args.opt.seed = parse_u64("the positional seed", a.c_str());
        else
            usageExit(argv[0], "unknown flag " + a);
    }
    return args;
}

/**
 * Calibrate the timing model of every platform in @p platforms (the
 * sink's drift-tracking artifact): the bench-standard
 * spy-on-GPU-1-probes-GPU-0 pair, deterministic in @p seed. Served
 * from the process-wide CalibrationCache, so when a sweep's scenarios
 * already calibrated the same (platform, seed) the artifact costs a
 * lookup instead of another throwaway simulation.
 */
std::vector<std::pair<std::string, attack::TimingThresholds>>
calibrationArtifact(std::uint64_t seed,
                    const std::vector<std::string> &platforms)
{
    std::vector<std::pair<std::string, attack::TimingThresholds>> out;
    for (const std::string &name : platforms) {
        out.emplace_back(name,
                         attack::CalibrationCache::global().thresholds(
                             {name, seed, 1, 0, 48, 6}));
    }
    return out;
}

} // namespace

BenchRegistry &
BenchRegistry::instance()
{
    static BenchRegistry registry;
    return registry;
}

void
BenchRegistry::add(BenchSpec spec)
{
    if (spec.name.empty())
        fatal("BenchRegistry: bench name must not be empty");
    if (!spec.scenarios || !spec.run)
        fatal("BenchRegistry: bench '", spec.name,
              "' needs scenarios and run functions");
    if (find(spec.name))
        fatal("BenchRegistry: duplicate bench '", spec.name, "'");
    specs_.push_back(std::move(spec));
}

const BenchSpec *
BenchRegistry::find(const std::string &name) const
{
    for (const auto &s : specs_)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::vector<const BenchSpec *>
BenchRegistry::list() const
{
    std::vector<const BenchSpec *> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(&s);
    return out;
}

std::vector<const BenchSpec *>
selectBenches(const BenchRegistry &registry, const std::string &only,
              std::string *error)
{
    if (error)
        error->clear();
    if (only.empty())
        return registry.list();

    std::vector<const BenchSpec *> out;
    std::stringstream ss(only);
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (token.empty())
            continue;
        const BenchSpec *hit = registry.find(token);
        if (!hit) {
            // Unique-prefix match: `--only fig09` is unambiguous.
            std::vector<const BenchSpec *> prefixed;
            for (const BenchSpec *s : registry.list())
                if (s->name.rfind(token, 0) == 0)
                    prefixed.push_back(s);
            if (prefixed.size() == 1) {
                hit = prefixed[0];
            } else if (error) {
                *error = prefixed.empty()
                             ? "unknown bench '" + token + "'"
                             : "ambiguous bench prefix '" + token + "'";
                return {};
            }
        }
        if (hit &&
            std::find(out.begin(), out.end(), hit) == out.end())
            out.push_back(hit);
    }
    return out;
}

BenchRunSummary
runBench(const BenchSpec &spec, const BenchOptions &opt, std::FILE *out)
{
    std::fprintf(out, "\n==== %s: %s ====\n", spec.name.c_str(),
                 spec.description.c_str());

    const auto scenarios =
        spec.scenarios(ScenarioDefaults{opt.seed, opt.platform});
    std::vector<std::string> platforms;
    for (const Scenario &sc : scenarios) {
        if (std::find(platforms.begin(), platforms.end(), sc.system.platform) ==
            platforms.end())
            platforms.push_back(sc.system.platform);
    }
    std::string platform_label;
    for (const std::string &p : platforms)
        platform_label += (platform_label.empty() ? "" : ",") + p;
    std::fprintf(out,
                 "  scenarios: %zu, seed: %" PRIu64 ", platform: %s\n",
                 scenarios.size(), opt.seed, platform_label.c_str());

    ExperimentRunner runner({.threads = opt.threads,
                             .progress = opt.progress,
                             .shards = opt.shards});
    const unsigned repeat = opt.repeat ? opt.repeat : 1;
    const Report report = runner.run(scenarios, spec.run);

    // Extra repeats tighten the wall-clock estimate; by the
    // determinism contract they must reproduce run 0 exactly, so the
    // comparison doubles as a free nondeterminism check.
    double wall_min = report.wallSeconds;
    double wall_sum = report.wallSeconds;
    for (unsigned r = 1; r < repeat; ++r) {
        const Report again = runner.run(scenarios, spec.run);
        wall_min = std::min(wall_min, again.wallSeconds);
        wall_sum += again.wallSeconds;
        if (again.allRows() != report.allRows()) {
            std::fprintf(stderr,
                         "[repeat] WARNING: %s produced different rows "
                         "on repeat %u -- nondeterministic bench?\n",
                         spec.name.c_str(), r);
        }
    }

    report.printTexts(out);
    if (spec.render)
        spec.render(report, out);
    report.printNotes(out);

    BenchRunSummary summary;
    summary.name = spec.name;
    summary.scenarios = report.results.size();
    summary.failures = report.failures();
    summary.rows = report.allRows().size();
    summary.platforms = std::move(platforms);
    summary.repeats = repeat;
    summary.wallSeconds = wall_min;
    summary.wallSecondsMean = wall_sum / repeat;
    summary.metrics = report.aggregateMetrics();
    summary.profile = report.aggregateProfile();

    if (opt.profile) {
        const sim::EngineProfile &pr = summary.profile;
        std::fprintf(stderr,
                     "[profile] %-32s steps %" PRIu64 ", actors %" PRIu64
                     ", requeues %" PRIu64 " (%" PRIu64
                     " in-place), peak queued %" PRIu64 ", arena %" PRIu64
                     " B in %" PRIu64 " chunk(s), %" PRIu64
                     " engine(s)\n",
                     spec.name.c_str(), pr.steps, pr.spawned,
                     pr.requeues, pr.fastRequeues, pr.peakQueued,
                     pr.arenaBytes, pr.arenaChunks, pr.engines);
    }

    if (!spec.csvHeader.empty()) {
        if (!opt.outDir.empty() && opt.outDir != ".") {
            std::error_code ec;
            std::filesystem::create_directories(opt.outDir, ec);
        }
        const std::string path =
            joinPath(opt.outDir, spec.name + ".csv");
        report.writeCsv(path, spec.csvHeader);
        std::fprintf(out, "[csv] %s (%zu rows)\n", path.c_str(),
                     summary.rows);
    }

    std::fprintf(stderr,
                 "[wall] %-32s %8.2fs on %u thread(s), %u repeat(s), "
                 "%zu failures\n",
                 spec.name.c_str(), summary.wallSeconds,
                 runner.threads(), repeat, report.failures());
    return summary;
}

void
writeResultsJson(const std::string &path, const BenchOptions &opt,
                 double totalWallSeconds,
                 const std::vector<BenchRunSummary> &summaries)
{
    std::ofstream js(path, std::ios::binary);
    if (!js)
        fatal("cannot open results sink '", path, "' for writing");

    js << "{\n";
    js << "  \"schema\": \"gpubox-bench-results/v5\",\n";
    js << "  \"seed\": " << opt.seed << ",\n";
    js << "  \"platform\": \""
       << jsonEscape(opt.platform.empty() ? "default" : opt.platform)
       << "\",\n";
    js << "  \"threads\": " << opt.threads << ",\n";
    js << "  \"shards\": " << opt.shards << ",\n";
    js << "  \"repeat\": " << (opt.repeat ? opt.repeat : 1) << ",\n";
    js << "  \"wall_seconds_total\": " << jsonNumber(totalWallSeconds)
       << ",\n";
    js << "  \"benches\": [\n";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const auto &s = summaries[i];
        js << "    {\n";
        js << "      \"name\": \"" << jsonEscape(s.name) << "\",\n";
        js << "      \"scenarios\": " << s.scenarios << ",\n";
        js << "      \"failures\": " << s.failures << ",\n";
        js << "      \"rows\": " << s.rows << ",\n";
        js << "      \"platforms\": [";
        for (std::size_t p = 0; p < s.platforms.size(); ++p) {
            js << (p ? ", " : "") << "\"" << jsonEscape(s.platforms[p])
               << "\"";
        }
        js << "],\n";
        js << "      \"repeats\": " << s.repeats << ",\n";
        js << "      \"wall_seconds\": " << jsonNumber(s.wallSeconds)
           << ",\n";
        js << "      \"wall_seconds_mean\": "
           << jsonNumber(s.wallSecondsMean) << ",\n";
        js << "      \"metrics\": {";
        for (std::size_t m = 0; m < s.metrics.size(); ++m) {
            js << (m ? ", " : "") << "\""
               << jsonEscape(s.metrics[m].first)
               << "\": " << jsonNumber(s.metrics[m].second);
        }
        js << "}" << (opt.profile ? "," : "") << "\n";
        if (opt.profile) {
            // Deterministic work counters (v5): perf trajectories can
            // separate "the code got faster" from "the bench now
            // simulates less".
            const sim::EngineProfile &pr = s.profile;
            js << "      \"profile\": {"
               << "\"steps\": " << pr.steps
               << ", \"spawned\": " << pr.spawned
               << ", \"requeues\": " << pr.requeues
               << ", \"fast_requeues\": " << pr.fastRequeues
               << ", \"peak_queued\": " << pr.peakQueued
               << ", \"arena_bytes\": " << pr.arenaBytes
               << ", \"arena_chunks\": " << pr.arenaChunks
               << ", \"engines\": " << pr.engines << "}\n";
        }
        js << "    }" << (i + 1 < summaries.size() ? "," : "") << "\n";
    }
    js << "  ],\n";

    // Timing-model drift artifact: re-measure every platform this run
    // touched so the calibration trajectory is tracked across commits
    // the way wall clock is.
    std::vector<std::string> touched;
    for (const auto &s : summaries)
        for (const std::string &p : s.platforms)
            if (std::find(touched.begin(), touched.end(), p) ==
                touched.end())
                touched.push_back(p);
    const auto calib = calibrationArtifact(opt.seed, touched);
    if (opt.profile) {
        const attack::CalibrationCache &cc =
            attack::CalibrationCache::global();
        js << "  \"calibration_cache\": {\"hits\": " << cc.hits()
           << ", \"misses\": " << cc.misses()
           << ", \"entries\": " << cc.size() << "},\n";
    }
    js << "  \"calibration\": {\n";
    for (std::size_t i = 0; i < calib.size(); ++i) {
        const attack::TimingThresholds &t = calib[i].second;
        js << "    \"" << jsonEscape(calib[i].first) << "\": {"
           << "\"local_gpu\": 1, \"remote_gpu\": 0, "
           << "\"centers\": {"
           << "\"local_hit\": " << jsonNumber(t.localHitCenter)
           << ", \"local_miss\": " << jsonNumber(t.localMissCenter)
           << ", \"remote_hit\": " << jsonNumber(t.remoteHitCenter)
           << ", \"remote_miss\": " << jsonNumber(t.remoteMissCenter)
           << "}, \"local_boundary\": " << jsonNumber(t.localBoundary)
           << ", \"remote_boundary\": "
           << jsonNumber(t.remoteBoundary) << "}"
           << (i + 1 < calib.size() ? "," : "") << "\n";
    }
    js << "  }\n";
    js << "}\n";
}

int
benchDriverMain(int argc, char **argv)
{
    setLogEnabled(false);
    DriverArgs args = parseDriverArgs(argc, argv);
    const BenchRegistry &registry = BenchRegistry::instance();

    if (args.list) {
        std::printf("%zu registered benches:\n", registry.size());
        for (const BenchSpec *s : registry.list())
            std::printf("  %-28s %s\n", s->name.c_str(),
                        s->description.c_str());
        std::printf("%zu registered platforms:\n",
                    rt::allPlatforms().size());
        for (const rt::Platform &p : rt::allPlatforms())
            std::printf("  %-28s %s\n", p.name.c_str(),
                        p.description.c_str());
        return 0;
    }

    if (args.listJson) {
        // Machine-readable registry dump for CI and tooling: every
        // bench and every platform descriptor the driver can combine.
        std::printf("{\n  \"schema\": \"gpubox-bench-list/v1\",\n");
        std::printf("  \"platforms\": [\n");
        const auto &platforms = rt::allPlatforms();
        for (std::size_t i = 0; i < platforms.size(); ++i) {
            const rt::Platform &p = platforms[i];
            // Topology summary (node kinds + roles + link presets) so
            // CI can diff descriptor changes without running any
            // bench; islands/nics/spines expose the superpod shape.
            std::printf(
                "    {\"name\": \"%s\", \"description\": \"%s\", "
                "\"gpus\": %d, \"switches\": %d, \"nodes\": %d, "
                "\"islands\": %d, \"nics\": %d, \"spines\": %d, "
                "\"topology\": \"%s\", \"links\": %zu, "
                "\"route_table_bytes\": %zu, "
                "\"link_gen\": \"%s\", \"link_mix\": {",
                jsonEscape(p.name).c_str(),
                jsonEscape(p.description).c_str(),
                p.topology.numGpus(), p.topology.numSwitches(),
                p.topology.numNodes(), p.topology.numIslands(),
                p.topology.numSwitchesOfRole(noc::SwitchRole::Nic),
                p.topology.numSwitchesOfRole(noc::SwitchRole::Spine),
                jsonEscape(p.topology.name()).c_str(),
                p.topology.links().size(),
                p.topology.routeTableBytes(),
                jsonEscape(p.linkGen).c_str());
            const auto mix = p.resolvedLinkMix();
            for (std::size_t m = 0; m < mix.size(); ++m)
                std::printf("%s\"%s\": %zu", m ? ", " : "",
                            jsonEscape(mix[m].first).c_str(),
                            mix[m].second);
            std::printf(
                "}, \"mig_slices\": %u, \"peer_over_routes\": %s, "
                "\"l2_bytes\": %llu, \"l2_ways\": %u, \"sms\": %d}%s\n",
                p.migSlices, p.peerOverRoutes ? "true" : "false",
                static_cast<unsigned long long>(p.device.l2.sizeBytes),
                p.device.l2.ways, p.device.numSms,
                i + 1 < platforms.size() ? "," : "");
        }
        std::printf("  ],\n  \"benches\": [\n");
        const auto benches = registry.list();
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const BenchSpec *s = benches[i];
            std::printf("    {\"name\": \"%s\", \"description\": "
                        "\"%s\", \"csv_columns\": [",
                        jsonEscape(s->name).c_str(),
                        jsonEscape(s->description).c_str());
            for (std::size_t c = 0; c < s->csvHeader.size(); ++c)
                std::printf("%s\"%s\"", c ? ", " : "",
                            jsonEscape(s->csvHeader[c]).c_str());
            std::printf("]}%s\n",
                        i + 1 < benches.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::string error;
    const auto selection = selectBenches(registry, args.only, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "%s: %s (try --list)\n", argv[0],
                     error.c_str());
        return 2;
    }
    if (selection.empty()) {
        std::fprintf(stderr, "%s: nothing selected\n", argv[0]);
        return 2;
    }

    if (args.opt.resultsPath.empty() && !args.noResults)
        args.opt.resultsPath =
            joinPath(args.opt.outDir, "BENCH_results.json");

    // detlint: allow(wall-clock) -- feeds wall_seconds_total only
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<BenchRunSummary> summaries;
    summaries.reserve(selection.size());
    try {
        for (const BenchSpec *spec : selection)
            summaries.push_back(runBench(*spec, args.opt, stdout));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    const double total =
        // detlint: allow(wall-clock) -- wall_seconds_total + summary
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::size_t failures = 0;
    for (const auto &s : summaries)
        failures += s.failures;

    if (!args.noResults && !args.opt.resultsPath.empty()) {
        writeResultsJson(args.opt.resultsPath, args.opt, total,
                         summaries);
        std::printf("\n[results] %s (%zu benches)\n",
                    args.opt.resultsPath.c_str(), summaries.size());
    }
    std::fprintf(stderr,
                 "[wall] driver total %.2fs, %zu bench(es), "
                 "%zu failure(s)\n",
                 total, summaries.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace gpubox::exp
