/**
 * @file
 * Parallel, deterministic experiment execution.
 *
 * The ExperimentRunner fans a list of Scenarios out across a pool of
 * std::jthread workers. Each scenario runs in complete isolation --
 * its own Runtime, engine and RNG streams -- and records result rows
 * into an in-memory RunContext instead of printing, so the collected
 * Report is byte-identical no matter how many worker threads executed
 * it or in which order scenarios finished. Wall-clock timings are
 * kept out of the deterministic surface (stderr / Report fields
 * only).
 */

#ifndef GPUBOX_EXP_EXPERIMENT_RUNNER_HH
#define GPUBOX_EXP_EXPERIMENT_RUNNER_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "attack/calibration_cache.hh"
#include "exp/scenario.hh"
#include "sim/engine.hh"
#include "util/csv.hh"
#include "util/rng.hh"

namespace gpubox::exp
{

/**
 * Per-scenario recording surface handed to the scenario function.
 * Rows and notes are buffered and emitted in scenario order after the
 * whole sweep completes; the RNG stream is derived from the scenario
 * seed and a stable hash of the scenario name, so results do not
 * depend on the scenario's position in the list.
 */
class RunContext
{
    friend class ExperimentRunner;

  public:
    const Scenario &scenario() const { return scenario_; }

    /** Scenario-private RNG stream (stable across thread counts). */
    Rng &rng() { return rng_; }

    /** Record one result row (appears in the Report / CSV). */
    template <typename... Args>
    void
    row(const Args &...args)
    {
        rows_.push_back(csvRow(args...));
    }

    /** Record a human-readable line, printed with the results. */
    void note(std::string line) { notes_.push_back(std::move(line)); }

    /**
     * Record a preformatted display block (tables, histograms,
     * memorygrams). Blocks are replayed to stdout in scenario order
     * after the sweep, so the rendered output -- like the rows -- is
     * byte-identical for any worker-thread count.
     */
    void text(std::string block) { texts_.push_back(std::move(block)); }

    /**
     * Record a named scalar derived from simulated quantities only
     * (never wall clock). Metrics are aggregated per bench into
     * BENCH_results.json by the registry driver.
     */
    void
    metric(const std::string &key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    /**
     * Calibrated timing thresholds of this scenario's
     * (platform, seed), served from the process-wide
     * attack::CalibrationCache: the first scenario to ask pays one
     * throwaway-runtime calibration, every later scenario of the
     * sweep (and every repeat) reuses the stored bits. Values are
     * pure functions of the key, so results stay byte-identical for
     * any worker-thread count. Use TimingOracle directly instead when
     * the scenario needs calibration's side effects on its own
     * runtime.
     */
    attack::TimingThresholds
    calibration(GpuId local_gpu = 1, GpuId remote_gpu = 0,
                int lines_per_round = 48, int rounds = 6) const
    {
        return cache_->thresholds({scenario_.system.platform,
                                   scenario_.seed, local_gpu,
                                   remote_gpu, lines_per_round,
                                   rounds});
    }

  private:
    RunContext(const Scenario &scenario, Rng rng,
               attack::CalibrationCache *cache =
                   &attack::CalibrationCache::global())
        : scenario_(scenario), rng_(rng), cache_(cache)
    {}

    const Scenario &scenario_;
    Rng rng_;
    attack::CalibrationCache *cache_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
    std::vector<std::string> texts_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/** Outcome of one scenario. */
struct RunResult
{
    std::size_t index = 0;
    std::string name;
    bool ok = false;
    /** FatalError / exception message when !ok. */
    std::string error;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> notes;
    std::vector<std::string> texts;
    std::vector<std::pair<std::string, double>> metrics;
    /**
     * Engine activity of this scenario: every Engine destroyed while
     * the scenario function ran. Calibration-cache miss computes are
     * excluded (which scenario pays a miss is a thread-scheduling
     * accident), so the same scenario yields the same profile on any
     * worker thread.
     */
    sim::EngineProfile profile;
    /** Host wall time of this scenario; NOT part of the CSV. */
    double wallSeconds = 0.0;
};

/** Deterministic sweep outcome, in scenario order. */
struct Report
{
    std::vector<RunResult> results;
    double wallSeconds = 0.0;

    std::size_t failures() const;

    /** All recorded rows, in scenario order. */
    std::vector<std::vector<std::string>> allRows() const;

    /**
     * Sum of every metric with key @p key over all scenarios (0.0
     * when none recorded it). Deterministic: metrics are simulated
     * quantities summed in scenario order.
     */
    double metricSum(const std::string &key) const;

    /**
     * Deterministic per-bench metric aggregate: keys in first-seen
     * (scenario, then record) order, values summed across scenarios.
     */
    std::vector<std::pair<std::string, double>> aggregateMetrics() const;

    /** Merged engine profile over all scenarios (sums; peak = max). */
    sim::EngineProfile aggregateProfile() const;

    /** Print the recorded display blocks, in scenario order. */
    void printTexts(std::FILE *out) const;

    /**
     * Write header + all rows to @p path. The file content depends
     * only on the scenarios and seeds, never on thread count.
     */
    void writeCsv(const std::string &path,
                  const std::vector<std::string> &header) const;

    /** Print notes and failures, in scenario order, to @p out. */
    void printNotes(std::FILE *out) const;
};

/** Runner policy. */
struct RunnerConfig
{
    /** Worker threads; 0 selects std::thread::hardware_concurrency. */
    unsigned threads = 1;
    /** Emit per-scenario progress lines on stderr. */
    bool progress = true;
    /** Calibration memo handed to every RunContext; null selects the
     *  process-wide attack::CalibrationCache::global(). Injectable so
     *  tests can run against a private cache. */
    attack::CalibrationCache *calibrationCache = nullptr;
    /**
     * Intra-scenario shard-count override applied to every scenario's
     * SystemConfig before it runs (0 keeps each scenario's own
     * setting). Shards partition one scenario's actors by fabric
     * island inside sim::ShardedEngine; the recorded rows, texts and
     * metrics are byte-identical at any value -- sharding is a speed
     * knob, like `threads`, not a modeling knob.
     */
    unsigned shards = 0;
};

/** Executes scenario sweeps. */
class ExperimentRunner
{
  public:
    using ScenarioFn = std::function<void(const Scenario &, RunContext &)>;

    explicit ExperimentRunner(RunnerConfig config = {});

    /** Resolved worker-thread count (after the 0 -> hardware rule). */
    unsigned threads() const { return threads_; }

    /**
     * Run @p fn once per scenario, fanned out across the pool.
     * Exceptions escaping @p fn fail that scenario only.
     */
    Report run(const std::vector<Scenario> &scenarios,
               const ScenarioFn &fn) const;

  private:
    RunnerConfig config_;
    unsigned threads_;
};

/** Stable 64-bit FNV-1a; keys scenario RNG streams by name. */
std::uint64_t stableHash(const std::string &s);

} // namespace gpubox::exp

#endif // GPUBOX_EXP_EXPERIMENT_RUNNER_HH
