#include "exp/experiment_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "util/log.hh"

namespace gpubox::exp
{

namespace
{

// The only sanctioned wall-clock reads in the runner: they feed the
// documented wall_seconds* report fields and never touch simulated
// state (the bench_results_fields test pins that).
double
// detlint: allow(wall-clock) -- wall_seconds plumbing: clock type
secondsSince(std::chrono::steady_clock::time_point t0)
{
    // detlint: allow(wall-clock) -- wall_seconds plumbing: host elapsed
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

std::uint64_t
stableHash(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::size_t
Report::failures() const
{
    std::size_t n = 0;
    for (const auto &r : results)
        n += r.ok ? 0 : 1;
    return n;
}

std::vector<std::vector<std::string>>
Report::allRows() const
{
    std::vector<std::vector<std::string>> rows;
    for (const auto &r : results)
        rows.insert(rows.end(), r.rows.begin(), r.rows.end());
    return rows;
}

void
Report::writeCsv(const std::string &path,
                 const std::vector<std::string> &header) const
{
    CsvWriter csv(path);
    if (!header.empty())
        csv.writeRow(header);
    for (const auto &row : allRows())
        csv.writeRow(row);
}

double
Report::metricSum(const std::string &key) const
{
    double sum = 0.0;
    for (const auto &r : results)
        for (const auto &[k, v] : r.metrics)
            if (k == key)
                sum += v;
    return sum;
}

std::vector<std::pair<std::string, double>>
Report::aggregateMetrics() const
{
    std::vector<std::pair<std::string, double>> agg;
    for (const auto &r : results) {
        for (const auto &[k, v] : r.metrics) {
            auto it = std::find_if(agg.begin(), agg.end(),
                                   [&](const auto &p) {
                                       return p.first == k;
                                   });
            if (it == agg.end())
                agg.emplace_back(k, v);
            else
                it->second += v;
        }
    }
    return agg;
}

sim::EngineProfile
Report::aggregateProfile() const
{
    sim::EngineProfile agg;
    for (const auto &r : results)
        agg.merge(r.profile);
    return agg;
}

void
Report::printTexts(std::FILE *out) const
{
    for (const auto &r : results)
        for (const auto &block : r.texts)
            std::fputs(block.c_str(), out);
}

void
Report::printNotes(std::FILE *out) const
{
    for (const auto &r : results) {
        for (const auto &line : r.notes)
            std::fprintf(out, "  [%s] %s\n", r.name.c_str(),
                         line.c_str());
        if (!r.ok)
            std::fprintf(out, "  [%s] FAILED: %s\n", r.name.c_str(),
                         r.error.c_str());
    }
}

ExperimentRunner::ExperimentRunner(RunnerConfig config)
    : config_(config), threads_(config.threads)
{
    if (threads_ == 0)
        threads_ = std::max(1u, std::thread::hardware_concurrency());
}

Report
ExperimentRunner::run(const std::vector<Scenario> &scenarios,
                      const ScenarioFn &fn) const
{
    // detlint: allow(wall-clock) -- feeds Report::wallSeconds only
    const auto sweep_t0 = std::chrono::steady_clock::now();
    Report report;
    report.results.resize(scenarios.size());

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    std::mutex progress_mu;

    auto run_one = [&](std::size_t i) {
        // Local copy so the runner-level shard override never mutates
        // the caller's scenario list (repeats would observe it).
        Scenario sc = scenarios[i];
        if (config_.shards)
            sc.system.shards = config_.shards;
        RunResult &res = report.results[i];
        res.index = i;
        res.name = sc.name;

        // detlint: allow(wall-clock) -- feeds RunResult::wallSeconds
        const auto t0 = std::chrono::steady_clock::now();
        // Keyed by seed + name (not list position): inserting or
        // reordering scenarios leaves every other stream untouched.
        RunContext ctx(sc, Rng(sc.seed).split(stableHash(sc.name)),
                       config_.calibrationCache
                           ? config_.calibrationCache
                           : &attack::CalibrationCache::global());
        // Bracket the scenario with a reset/snapshot of the worker's
        // engine-profile accumulator: every engine the scenario
        // creates dies inside fn (its runtime is fn-local), so the
        // snapshot is exactly this scenario's activity no matter
        // which thread ran it.
        sim::EngineProfile &tls_profile = sim::threadEngineProfile();
        tls_profile = {};
        try {
            fn(sc, ctx);
            res.ok = true;
        } catch (const FatalError &e) {
            res.error = e.what();
        } catch (const std::exception &e) {
            res.error = e.what();
        }
        res.profile = tls_profile;
        res.rows = std::move(ctx.rows_);
        res.notes = std::move(ctx.notes_);
        res.texts = std::move(ctx.texts_);
        res.metrics = std::move(ctx.metrics_);
        res.wallSeconds = secondsSince(t0);

        if (config_.progress) {
            std::lock_guard<std::mutex> lk(progress_mu);
            std::fprintf(stderr, "[exp] %zu/%zu %-40s %s (%.2fs)\n",
                         finished.fetch_add(1) + 1, scenarios.size(),
                         sc.name.c_str(), res.ok ? "ok" : "FAILED",
                         res.wallSeconds);
        } else {
            finished.fetch_add(1);
        }
    };

    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(
            threads_, std::max<std::size_t>(1, scenarios.size())));
    if (nthreads <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            run_one(i);
    } else {
        std::vector<std::jthread> pool;
        pool.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < scenarios.size(); i = next.fetch_add(1))
                    run_one(i);
            });
        }
        // jthread joins on destruction; the pool drains here.
    }

    report.wallSeconds = secondsSince(sweep_t0);
    return report;
}

} // namespace gpubox::exp
