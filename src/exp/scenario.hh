/**
 * @file
 * Declarative experiment scenarios.
 *
 * A Scenario is everything one simulated experiment needs to be
 * reproducible: the full box configuration, the victim workload, the
 * attack and defense knobs and a seed. Scenario lists are built either
 * directly or by expanding a ScenarioMatrix -- the cartesian product
 * of parameter axes over a base scenario -- and are executed by the
 * ExperimentRunner (one isolated Runtime per scenario, any number of
 * worker threads, deterministic results).
 */

#ifndef GPUBOX_EXP_SCENARIO_HH
#define GPUBOX_EXP_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "rt/config.hh"
#include "victim/workload.hh"

namespace gpubox::exp
{

/** Attacker-side knobs of a scenario. */
struct AttackKnobs
{
    /** Parallel covert-channel sets (paper Fig. 9 sweeps this). */
    unsigned covertSets = 4;
    /** Random payload length for covert-channel error measurements. */
    std::size_t messageBits = 8192;
    /** Page pool given to each eviction-set finder, tuned for the
     *  4-color DGX-1 geometry (benches rescale it per platform via
     *  scaledPoolPages). */
    unsigned finderPoolPages = 140;
    /** Launch SM-saturating filler blocks (paper Sec. VI). */
    bool smSaturation = false;
};

/** Defense / environment knobs of a scenario. */
struct DefenseKnobs
{
    /** MIG-style L2 way partitioning (paper Sec. VII). */
    bool migPartitioning = false;
    unsigned migSlices = 1;
    /** Run a co-tenant streaming app on the trojan GPU. */
    bool coTenantNoise = false;
};

/**
 * One fully-specified experiment. The runner derives every random
 * stream from `seed`, so two runs of an identical Scenario produce
 * identical results regardless of scheduling.
 */
struct Scenario
{
    /** Unique label; parameter axes append "/axis=value" segments. */
    std::string name = "scenario";
    std::uint64_t seed = 2023;
    /** Resolved platform descriptor (SystemConfig::platform names the
     *  rt::Platform it came from; use setPlatform() to re-resolve). */
    rt::SystemConfig system;
    victim::AppKind app = victim::AppKind::VECTOR_ADD;
    victim::WorkloadConfig workload;
    AttackKnobs attack;
    DefenseKnobs defense;
    /**
     * Labels of the matrix axes that produced this scenario, in axis
     * declaration order. Carried into result rows so a sweep's CSV is
     * self-describing.
     */
    std::vector<std::pair<std::string, std::string>> params;

    /** Value of an expansion parameter, or @p fallback when absent. */
    std::string paramOr(const std::string &key,
                        const std::string &fallback = "") const;

    /**
     * Re-resolve `system` from the named rt::Platform (fatal on an
     * unknown name), preserving the scenario seed. Call before axis
     * mutations so platform selection composes with per-axis system
     * tweaks.
     */
    void setPlatform(const std::string &platform_name);

    /**
     * Standard base-scenario setup for bench builders: seed both the
     * scenario and its system, then apply @p platform_name when
     * non-empty (the registry driver's `--platform` override).
     */
    void applyDefaults(std::uint64_t seed_value,
                       const std::string &platform_name);
};

/**
 * Cartesian product builder over a base scenario.
 *
 * Each axis is a named list of (label, mutator) points; expand()
 * yields base-mutated scenarios for every combination, the *last*
 * declared axis varying fastest (row-major order). Labels are
 * appended to the scenario name and recorded in Scenario::params.
 */
class ScenarioMatrix
{
  public:
    using Mutator = std::function<void(Scenario &)>;
    /** A single point on an axis: display label + config mutation. */
    using Point = std::pair<std::string, Mutator>;

    explicit ScenarioMatrix(Scenario base)
        : base_(std::move(base))
    {}

    /** Append an axis. Empty axes are rejected via fatal(). */
    ScenarioMatrix &axis(const std::string &name,
                         std::vector<Point> points);

    /** Convenience axis over seeds (sets Scenario and system seed). */
    ScenarioMatrix &seeds(const std::vector<std::uint64_t> &seeds);

    /** Number of scenarios expand() will produce. */
    std::size_t size() const;

    /** Materialize the cartesian product. */
    std::vector<Scenario> expand() const;

  private:
    struct Axis
    {
        std::string name;
        std::vector<Point> points;
    };

    Scenario base_;
    std::vector<Axis> axes_;
};

} // namespace gpubox::exp

#endif // GPUBOX_EXP_SCENARIO_HH
