/**
 * @file
 * Bench registry: every figure/table/ablation reproduction registers
 * a name, a description, a default scenario list and a row-producing
 * run function, and a single driver (`gpubox_bench`) lists, filters
 * and executes any subset of them in parallel via the
 * ExperimentRunner.
 *
 * The determinism contract of the runner extends to the registry:
 * everything a bench prints to @p out and writes to its CSV is
 * derived from simulated quantities replayed in scenario order, so
 * the output is byte-identical for any `--threads` value. Host wall
 * clock only appears on stderr and in the structured results sink
 * (BENCH_results.json), which exists precisely to track the perf
 * trajectory across commits.
 */

#ifndef GPUBOX_EXP_REGISTRY_HH
#define GPUBOX_EXP_REGISTRY_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment_runner.hh"
#include "exp/scenario.hh"

namespace gpubox::exp
{

/**
 * Inputs every bench's scenario builder receives: the sweep seed and
 * the driver's `--platform` override (empty = the bench's own default,
 * normally `dgx1-p100`). Builders forward both through
 * Scenario::applyDefaults so platform selection composes with their
 * parameter axes.
 */
struct ScenarioDefaults
{
    std::uint64_t seed = 2023;
    std::string platform;
};

/** One registered bench: identity, default sweep and behaviour. */
struct BenchSpec
{
    /** Unique registry key; also the default CSV stem. */
    std::string name;
    /** One-line summary shown by `--list`. */
    std::string description;
    /** CSV column names; empty disables the CSV sink. */
    std::vector<std::string> csvHeader;
    /** Default scenario list (usually a ScenarioMatrix expansion). */
    std::function<std::vector<Scenario>(const ScenarioDefaults &)>
        scenarios;
    /** Per-scenario body; must record rather than print. */
    ExperimentRunner::ScenarioFn run;
    /**
     * Optional cross-scenario table printer, run after the per-
     * scenario display blocks. Must only derive output from the
     * Report (never from wall clock).
     */
    std::function<void(const Report &, std::FILE *out)> render;
};

/** Name -> BenchSpec container; registration order is list order. */
class BenchRegistry
{
  public:
    /** The process-wide registry the driver and wrappers use. */
    static BenchRegistry &instance();

    /** Register a bench. Duplicate or empty names are fatal(). */
    void add(BenchSpec spec);

    /** Registered bench, or nullptr. */
    const BenchSpec *find(const std::string &name) const;

    /** All benches, in registration order. */
    std::vector<const BenchSpec *> list() const;

    std::size_t size() const { return specs_.size(); }

  private:
    std::vector<BenchSpec> specs_;
};

/** Driver knobs shared by `gpubox_bench` and the thin wrappers. */
struct BenchOptions
{
    std::uint64_t seed = 2023;
    /** Platform override for every selected bench (`--platform`);
     *  empty keeps each bench's default. Validated against the
     *  rt::Platform registry by the drivers. */
    std::string platform;
    /** Worker threads per bench sweep; 0 = hardware concurrency. */
    unsigned threads = 1;
    /**
     * Intra-scenario shard count (`--shards`); 0 keeps every
     * scenario's own SystemConfig.shards. Byte-identical output at
     * any value (same contract as `threads`); recorded per run in
     * the v5 results schema.
     */
    unsigned shards = 0;
    /** Directory receiving the per-bench CSVs. */
    std::string outDir = ".";
    /** Structured results sink; empty disables it. */
    std::string resultsPath;
    /** Per-scenario progress lines on stderr. */
    bool progress = true;
    /**
     * Times each bench sweep is executed. Display output and CSVs come
     * from the first run only (they are identical by the determinism
     * contract -- later runs are checked against it); the results sink
     * reports min/mean wall_seconds over all runs for a less noisy
     * perf trajectory.
     */
    unsigned repeat = 1;
    /**
     * `--profile`: emit per-bench engine counters (steps, spawned
     * actors, requeues, arena footprint) into the results sink plus a
     * per-bench summary line on stderr, and report the calibration
     * cache's hit/miss totals. The counters are simulated quantities,
     * so they track work done, not host speed.
     */
    bool profile = false;
};

/** Machine-readable outcome of one bench run (JSON sink unit). */
struct BenchRunSummary
{
    std::string name;
    std::size_t scenarios = 0;
    std::size_t failures = 0;
    std::size_t rows = 0;
    /** Distinct scenario platforms, in first-seen scenario order. */
    std::vector<std::string> platforms;
    /** Repeats executed (BenchOptions::repeat). */
    unsigned repeats = 1;
    /** Minimum host wall clock over the repeats (not deterministic). */
    double wallSeconds = 0.0;
    /** Mean host wall clock over the repeats. */
    double wallSecondsMean = 0.0;
    /** Aggregated deterministic metrics (see RunContext::metric). */
    std::vector<std::pair<std::string, double>> metrics;
    /** Merged engine profile of the first run (deterministic). */
    sim::EngineProfile profile;
};

/**
 * Expand @p only ("fig09,fig11"; empty = all) against the registry.
 * Unknown names are reported through @p error and yield an empty
 * selection. Matching accepts both exact names and unique prefixes,
 * so `--only fig09` selects fig09_covert_bandwidth.
 */
std::vector<const BenchSpec *>
selectBenches(const BenchRegistry &registry, const std::string &only,
              std::string *error);

/**
 * Run one bench: expand its default scenarios for @p opt.seed, fan
 * them out over @p opt.threads workers, replay display blocks and
 * rows to @p out, and write `<outDir>/<name>.csv` when the spec has
 * a CSV header.
 */
BenchRunSummary runBench(const BenchSpec &spec, const BenchOptions &opt,
                         std::FILE *out);

/**
 * Write the structured results sink: schema
 * `gpubox-bench-results/v5`, run-level seed/platform/threads/shards/
 * repeat/wall clock, one entry per bench (scenarios, failures, rows,
 * per-entry platforms, repeats, wall_seconds = min over repeats,
 * wall_seconds_mean, aggregated metrics, and -- under `--profile` --
 * an engine-counter `profile` object) and a `calibration` section
 * holding each touched platform's k-means cluster centers and
 * hit/miss thresholds (measured online on the bench-standard (1,0)
 * GPU pair with the run seed), so timing-model drift is tracked
 * across commits like wall clock. `--profile` adds a
 * `calibration_cache` section with the memo's hit/miss totals.
 */
void writeResultsJson(const std::string &path, const BenchOptions &opt,
                      double totalWallSeconds,
                      const std::vector<BenchRunSummary> &summaries);

/**
 * main() body of the `gpubox_bench` driver: `--list`, `--list-json`
 * (machine-readable registry + platform dump, including each
 * descriptor's topology summary: node kinds, link-generation mix,
 * MIG slicing), `--only a,b`, `--platform NAME`, plus the standard
 * bench options; runs the selection sequentially (each bench
 * internally parallel) and writes the results sink (default
 * BENCH_results.json).
 */
int benchDriverMain(int argc, char **argv);

} // namespace gpubox::exp

#endif // GPUBOX_EXP_REGISTRY_HH
