#include "attack/evset_finder.hh"

#include <algorithm>

#include "util/log.hh"

namespace gpubox::attack
{

EvictionSetFinder::EvictionSetFinder(rt::Runtime &rt, rt::Process &proc,
                                     GpuId exec_gpu, GpuId mem_gpu,
                                     const TimingThresholds &thresholds,
                                     const FinderConfig &config)
    : rt_(rt), proc_(proc), execGpu_(exec_gpu), memGpu_(mem_gpu),
      thresholds_(thresholds), config_(config),
      probeStream_(rt.createStream(proc, exec_gpu,
                                   proc.name() + ".evset-probe"))
{
    lineBytes_ = rt_.config().device.l2.lineBytes;
    pageBytes_ = rt_.config().pageBytes;
    linesPerPage_ = static_cast<std::uint32_t>(pageBytes_ / lineBytes_);

    if (exec_gpu != mem_gpu && !proc.peerEnabled(exec_gpu, mem_gpu)) {
        // Route-aware: the Status explains itself when the platform
        // refuses (no route, or routed peer access not relayed).
        rt_.enablePeerAccess(proc, exec_gpu, mem_gpu).orFatal();
    }
    pool_ = rt_.deviceMalloc(proc_, mem_gpu,
                             static_cast<std::uint64_t>(config_.poolPages) *
                                 pageBytes_);
}

EvictionSetFinder::~EvictionSetFinder()
{
    rt_.deviceFree(proc_, pool_);
}

VAddr
EvictionSetFinder::lineAddr(int page, std::uint32_t line_in_page) const
{
    return pool_ + static_cast<VAddr>(page) * pageBytes_ +
           static_cast<VAddr>(line_in_page) * lineBytes_;
}

bool
EvictionSetFinder::isMiss(double cycles) const
{
    return execGpu_ == memGpu_ ? thresholds_.isLocalMiss(cycles)
                               : thresholds_.isRemoteMiss(cycles);
}

bool
EvictionSetFinder::targetEvictedBy(VAddr target,
                                   const std::vector<VAddr> &chase)
{
    Cycles reprobe = 0;
    auto kernel = [&, target](rt::BlockCtx &ctx) -> sim::Task {
        // Prime the target (cold or hit -- either way it becomes MRU).
        co_await ctx.ldcg64(target);
        // Chase the candidate prefix.
        for (VAddr a : chase)
            co_await ctx.ldcg64(a);
        // Timed re-probe of the target; store time via shared memory.
        const Cycles t0 = ctx.clock();
        co_await ctx.ldcg64(target);
        const Cycles t1 = ctx.clock();
        reprobe = t1 - t0;
        co_await ctx.sharedAccess();
    };

    gpu::KernelConfig cfg;
    cfg.name = "evset-chase";
    cfg.sharedMemBytes = config_.sharedMemBytes;
    probeStream_.launch(cfg, kernel);
    rt_.sync(probeStream_);
    ++launches_;
    ++probes_;
    return isMiss(static_cast<double>(reprobe));
}

std::vector<int>
EvictionSetFinder::scanConflicts(int target, std::vector<int> &candidates)
{
    const VAddr target_addr = lineAddr(target, 0);
    std::vector<int> found;

    auto chase_prefix = [&](std::size_t k) {
        std::vector<VAddr> chase;
        chase.reserve(k);
        for (std::size_t i = 0; i < k; ++i)
            chase.push_back(lineAddr(candidates[i], 0));
        return chase;
    };

    while (!candidates.empty()) {
        // Does the full candidate list still evict the target?
        if (!targetEvictedBy(target_addr, chase_prefix(candidates.size())))
            break;
        // Binary search the smallest evicting prefix; its last element
        // is a same-set line (eviction is monotone in the prefix under
        // LRU, which is what licenses skipping the linear scan).
        std::size_t lo = 1;
        std::size_t hi = candidates.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (targetEvictedBy(target_addr, chase_prefix(mid)))
                hi = mid;
            else
                lo = mid + 1;
        }
        found.push_back(candidates[lo - 1]);
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(lo - 1));
    }
    return found;
}

unsigned
EvictionSetFinder::discoverAssocWith(VAddr target,
                                     const std::vector<int> &members)
{
    // Access target then k known same-set lines; under LRU the target
    // is evicted exactly when k reaches the associativity (Table I).
    for (unsigned k = 1; k <= members.size(); ++k) {
        std::vector<VAddr> chase;
        chase.reserve(k);
        for (unsigned i = 0; i < k; ++i)
            chase.push_back(lineAddr(members[i], 0));
        if (targetEvictedBy(target, chase))
            return k;
    }
    return 0; // not enough members to fill the set
}

void
EvictionSetFinder::boostScan(std::vector<int> &group,
                             std::vector<int> &candidates)
{
    // Prepending `boost` known same-set lines lowers the number of
    // hidden conflicts required to evict the target from `assoc` to
    // `assoc - boost`; with boost = assoc - 1 even a single hidden
    // conflict is detectable. The boost lines alone (target + assoc-1
    // others) exactly fill the set, so the eviction point always lands
    // inside the candidate portion of the chase.
    const VAddr target_addr = lineAddr(group[0], 0);

    while (!candidates.empty()) {
        const unsigned boost = std::min<std::size_t>(
            assoc_ - 1, group.size() - 1);
        std::vector<VAddr> prefix;
        for (unsigned i = 1; i <= boost; ++i)
            prefix.push_back(lineAddr(group[i], 0));

        auto chase_prefix = [&](std::size_t k) {
            std::vector<VAddr> chase = prefix;
            for (std::size_t i = 0; i < k; ++i)
                chase.push_back(lineAddr(candidates[i], 0));
            return chase;
        };

        if (!targetEvictedBy(target_addr, chase_prefix(candidates.size())))
            break; // no hidden conflicts remain
        std::size_t lo = 1;
        std::size_t hi = candidates.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (targetEvictedBy(target_addr, chase_prefix(mid)))
                hi = mid;
            else
                lo = mid + 1;
        }
        group.push_back(candidates[lo - 1]);
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(lo - 1));
    }
}

void
EvictionSetFinder::run()
{
    std::vector<int> ungrouped;
    for (int p = 0; p < config_.poolPages; ++p)
        ungrouped.push_back(p);

    groups_.clear();
    assoc_ = 0;

    // Phase 1: provisional grouping with plain Algorithm-1 scans.
    // Each scan stalls once fewer than `associativity` conflicts
    // remain hidden, so provisional groups miss up to assoc-1 pages.
    std::vector<std::vector<int>> provisional;
    std::vector<int> leftovers;
    while (!ungrouped.empty()) {
        const int target = ungrouped.front();
        std::vector<int> candidates(ungrouped.begin() + 1,
                                    ungrouped.end());
        std::vector<int> members = scanConflicts(target, candidates);
        if (members.empty()) {
            // Fewer than `associativity` pool pages share this page's
            // color: it cannot seed a group (by itself).
            leftovers.push_back(target);
            ungrouped.erase(ungrouped.begin());
            continue;
        }
        std::vector<int> group;
        group.push_back(target);
        group.insert(group.end(), members.begin(), members.end());
        provisional.push_back(group);

        std::vector<int> next;
        for (int p : ungrouped) {
            if (std::find(group.begin(), group.end(), p) == group.end())
                next.push_back(p);
        }
        ungrouped.swap(next);
    }

    if (provisional.empty())
        fatal("evset finder: no conflicts found at all; "
              "increase FinderConfig::poolPages");

    // Phase 2: associativity from the best-endowed provisional group
    // (its scan-found members are guaranteed same-set lines).
    std::sort(provisional.begin(), provisional.end(),
              [](const auto &a, const auto &b) {
                  return a.size() > b.size();
              });
    {
        const auto &big = provisional.front();
        std::vector<int> members(big.begin() + 1, big.end());
        assoc_ = discoverAssocWith(lineAddr(big[0], 0), members);
    }
    if (assoc_ == 0)
        fatal("evset finder: could not determine associativity; "
              "increase FinderConfig::poolPages");

    // Phase 3: complete every group by boosted scans over the pages
    // that ended up unassigned (each provisional group hides up to
    // assoc-1 of its pages among the later groups' leftovers).
    for (auto &group : provisional) {
        boostScan(group, leftovers);
        std::sort(group.begin(), group.end());
        groups_.push_back(group);
    }
    for (int orphan : leftovers) {
        warn("evset finder: page ", orphan, " matches no group; its "
             "color has fewer pool pages than the associativity");
    }

    inform("evset finder: ", groups_.size(), " conflict groups, ",
           "associativity ", assoc_, ", ", launches_, " kernel launches");
}

EvictionSet
EvictionSetFinder::evictionSet(std::size_t group,
                               std::uint32_t line_in_page,
                               unsigned count) const
{
    if (group >= groups_.size())
        fatal("evictionSet: group ", group, " out of range");
    if (line_in_page >= linesPerPage_)
        fatal("evictionSet: line offset ", line_in_page, " out of range");
    const unsigned n = count ? count : assoc_;
    const auto &pages = groups_[group];
    if (pages.size() < n)
        fatal("evictionSet: group ", group, " has only ", pages.size(),
              " pages, need ", n);
    EvictionSet set;
    set.lines.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        set.lines.push_back(lineAddr(pages[i], line_in_page));
    return set;
}

std::vector<EvictionSet>
EvictionSetFinder::coveringSets(unsigned count) const
{
    std::vector<EvictionSet> sets;
    sets.reserve(groups_.size() * linesPerPage_);
    for (std::size_t g = 0; g < groups_.size(); ++g)
        for (std::uint32_t l = 0; l < linesPerPage_; ++l)
            sets.push_back(evictionSet(g, l, count));
    return sets;
}

EvictionSet
EvictionSetFinder::naiveSetFor(int target_page)
{
    if (assoc_ == 0)
        fatal("naiveSetFor: run() must discover associativity first");
    std::vector<int> candidates;
    for (int p = 0; p < config_.poolPages; ++p)
        if (p != target_page)
            candidates.push_back(p);

    std::vector<int> members = scanConflicts(target_page, candidates);
    EvictionSet set;
    set.lines.push_back(lineAddr(target_page, 0));
    for (int m : members) {
        if (set.lines.size() >= assoc_)
            break;
        set.lines.push_back(lineAddr(m, 0));
    }
    return set;
}

bool
EvictionSetFinder::aliasTest(const EvictionSet &a, const EvictionSet &b)
{
    if (assoc_ == 0)
        fatal("aliasTest: run() must discover associativity first");

    // Union of assoc lines of a plus one line of b that is not
    // already in a: if the sets alias, the union over-fills one
    // physical set and the second chase pass misses; if they map to
    // different sets, everything fits. When b is a subset of a the
    // sets trivially alias.
    std::vector<VAddr> combined;
    for (unsigned i = 0; i < assoc_ && i < a.lines.size(); ++i)
        combined.push_back(a.lines[i]);
    VAddr extra = 0;
    bool have_extra = false;
    for (VAddr v : b.lines) {
        if (std::find(combined.begin(), combined.end(), v) ==
            combined.end()) {
            extra = v;
            have_extra = true;
            break;
        }
    }
    if (!have_extra)
        return true; // b's lines all belong to a already
    combined.push_back(extra);

    std::uint32_t miss_count = 0;
    auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
        for (VAddr v : combined)
            co_await ctx.ldcg64(v);
        for (VAddr v : combined) {
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(v);
            const Cycles t1 = ctx.clock();
            if (isMiss(static_cast<double>(t1 - t0)))
                ++miss_count;
            co_await ctx.sharedAccess();
        }
    };

    gpu::KernelConfig cfg;
    cfg.name = "alias-test";
    cfg.sharedMemBytes = config_.sharedMemBytes;
    probeStream_.launch(cfg, kernel);
    rt_.sync(probeStream_);
    ++launches_;
    probes_ += combined.size();

    // Aliasing thrashes the shared physical set: every access of the
    // second pass misses. Distinct sets see (almost) no misses.
    return miss_count * 2 > combined.size();
}

} // namespace gpubox::attack
