/**
 * @file
 * Cross-process eviction set alignment (paper Sec. IV-A, Algorithm 2,
 * Fig. 7).
 *
 * After both the trojan and the spy independently discovered eviction
 * sets over buffers that live in the same GPU's memory, neither knows
 * which *physical* set each of their eviction sets maps to. To agree
 * on channel sets, the trojan hammers one of its sets while the spy
 * times repeated passes over one of its own candidate sets: an
 * elevated average (misses) reveals that the two sets collide in the
 * same physical set.
 *
 * Page-preserving index hashing makes the full alignment cheap: pages
 * map to aligned windows of consecutive sets, so two eviction sets at
 * in-page offsets o_t and o_s can only collide when o_t == o_s. Each
 * trojan page group therefore needs to be tested against each spy
 * group at a single offset, and a group match extends to every offset.
 */

#ifndef GPUBOX_ATTACK_SET_ALIGNER_HH
#define GPUBOX_ATTACK_SET_ALIGNER_HH

#include <utility>
#include <vector>

#include "attack/evset_finder.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

namespace gpubox::attack
{

/** Tunables of one Algorithm-2 run. */
struct AlignerConfig
{
    /**
     * Spy probe passes per run. The paper uses 150000 (and 400000
     * trojan passes); the default here is scaled down for simulation
     * speed -- contention is visible after a few hundred passes.
     */
    unsigned spyLoops = 400;
    /** Shared memory per attack block. */
    std::uint32_t sharedMemBytes = 32 * 1024;
};

/** Outcome of probing one (trojan set, spy set) pair. */
struct AlignmentRun
{
    double avgProbeCycles = 0.0;
    bool matched = false;
};

/** Runs eviction set alignment between two malicious processes. */
class SetAligner
{
  public:
    /**
     * @param rt the box
     * @param trojan_proc process on the GPU that owns the memory
     * @param spy_proc process on the NVLink peer
     * @param trojan_gpu GPU the trojan (and the buffers) live on
     * @param spy_gpu GPU the spy runs on
     */
    SetAligner(rt::Runtime &rt, rt::Process &trojan_proc,
               rt::Process &spy_proc, GpuId trojan_gpu, GpuId spy_gpu,
               const TimingThresholds &thresholds,
               const AlignerConfig &config = AlignerConfig());

    /**
     * One Algorithm-2 run: the trojan continuously accesses
     * @p trojan_set while the spy measures the average pass time over
     * @p spy_set. Matched when the average classifies as remote miss.
     */
    AlignmentRun testPair(const EvictionSet &trojan_set,
                          const EvictionSet &spy_set);

    /**
     * Match every trojan page group to the colliding spy page group
     * (testing offset 0 only; see file comment).
     * @return mapping[trojan_group] = spy_group (or -1 if unmatched)
     */
    std::vector<int> alignGroups(const EvictionSetFinder &trojan_finder,
                                 const EvictionSetFinder &spy_finder);

    /**
     * Derive @p k aligned (trojan set, spy set) pairs on distinct
     * physical sets from a group mapping, stepping the in-page offset.
     */
    std::vector<std::pair<EvictionSet, EvictionSet>>
    alignedPairs(const EvictionSetFinder &trojan_finder,
                 const EvictionSetFinder &spy_finder,
                 const std::vector<int> &mapping, unsigned k) const;

    std::uint64_t runsExecuted() const { return runs_; }

  private:
    rt::Runtime &rt_;
    rt::Process &trojanProc_;
    rt::Process &spyProc_;
    GpuId trojanGpu_;
    GpuId spyGpu_;
    TimingThresholds thresholds_;
    AlignerConfig config_;
    std::uint64_t runs_ = 0;
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_SET_ALIGNER_HH
