#include "attack/set_aligner.hh"

#include "util/log.hh"

namespace gpubox::attack
{

SetAligner::SetAligner(rt::Runtime &rt, rt::Process &trojan_proc,
                       rt::Process &spy_proc, GpuId trojan_gpu,
                       GpuId spy_gpu, const TimingThresholds &thresholds,
                       const AlignerConfig &config)
    : rt_(rt), trojanProc_(trojan_proc), spyProc_(spy_proc),
      trojanGpu_(trojan_gpu), spyGpu_(spy_gpu), thresholds_(thresholds),
      config_(config)
{
    if (!rt_.peerReachable(spy_gpu, trojan_gpu))
        fatal("set aligner: GPU ", spy_gpu, " cannot reach GPU ",
              trojan_gpu, " for peer access on platform '",
              rt_.config().platform, "'");
}

AlignmentRun
SetAligner::testPair(const EvictionSet &trojan_set,
                     const EvictionSet &spy_set)
{
    ++runs_;

    // Trojan: hammer the set until stopped (the paper uses a larger
    // fixed loop count on the trojan because its local accesses are
    // faster; a cooperative stop expresses the same overlap).
    auto trojan_kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
        while (!ctx.stopRequested())
            co_await ctx.probeSet(trojan_set.lines);
    };

    // Spy: accumulate the average per-line access time over its own
    // eviction set (Algorithm 2's timer2/numMainLoop).
    double sum = 0.0;
    std::uint64_t samples = 0;
    auto spy_kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
        for (unsigned i = 0; i < config_.spyLoops; ++i) {
            auto res = co_await ctx.probeSet(spy_set.lines);
            for (Cycles c : res.perLineCycles) {
                sum += static_cast<double>(c);
                ++samples;
            }
            co_await ctx.sharedAccess();
        }
    };

    gpu::KernelConfig tcfg;
    tcfg.name = "align-trojan";
    tcfg.sharedMemBytes = config_.sharedMemBytes;
    gpu::KernelConfig scfg;
    scfg.name = "align-spy";
    scfg.threadsPerBlock = 1024;
    scfg.sharedMemBytes = config_.sharedMemBytes;

    // Trojan and spy overlap on their own per-process streams; the
    // spy's completion bounds the run, then the trojan is stopped.
    rt::Stream &tstream = rt_.stream(trojanProc_, trojanGpu_);
    rt::Stream &sstream = rt_.stream(spyProc_, spyGpu_);
    auto trojan = tstream.launch(tcfg, trojan_kernel);
    sstream.launch(scfg, spy_kernel);

    rt_.sync(sstream);
    trojan.requestStop();
    rt_.sync(tstream);

    AlignmentRun run;
    run.avgProbeCycles = samples ? sum / static_cast<double>(samples) : 0.0;
    run.matched = thresholds_.isRemoteMiss(run.avgProbeCycles);
    return run;
}

std::vector<int>
SetAligner::alignGroups(const EvictionSetFinder &trojan_finder,
                        const EvictionSetFinder &spy_finder)
{
    std::vector<int> mapping(trojan_finder.numGroups(), -1);
    std::vector<bool> spy_used(spy_finder.numGroups(), false);

    for (std::size_t tg = 0; tg < trojan_finder.numGroups(); ++tg) {
        const EvictionSet tset = trojan_finder.evictionSet(tg, 0);
        for (std::size_t sg = 0; sg < spy_finder.numGroups(); ++sg) {
            if (spy_used[sg])
                continue;
            const EvictionSet sset = spy_finder.evictionSet(sg, 0);
            AlignmentRun run = testPair(tset, sset);
            if (run.matched) {
                mapping[tg] = static_cast<int>(sg);
                spy_used[sg] = true;
                break;
            }
        }
        if (mapping[tg] < 0)
            warn("set aligner: trojan group ", tg,
                 " found no colliding spy group");
    }
    return mapping;
}

std::vector<std::pair<EvictionSet, EvictionSet>>
SetAligner::alignedPairs(const EvictionSetFinder &trojan_finder,
                         const EvictionSetFinder &spy_finder,
                         const std::vector<int> &mapping, unsigned k) const
{
    std::vector<std::pair<EvictionSet, EvictionSet>> pairs;
    const std::uint32_t lines_per_page = trojan_finder.linesPerPage();

    for (std::size_t tg = 0; tg < mapping.size() && pairs.size() < k;
         ++tg) {
        if (mapping[tg] < 0)
            continue;
        const auto sg = static_cast<std::size_t>(mapping[tg]);
        // A group match at offset 0 extends to every in-page offset:
        // both sets at offset o live in physical set color*K + o.
        for (std::uint32_t o = 1; o < lines_per_page && pairs.size() < k;
             ++o) {
            pairs.emplace_back(trojan_finder.evictionSet(tg, o),
                               spy_finder.evictionSet(sg, o));
        }
    }
    if (pairs.size() < k)
        fatal("alignedPairs: only ", pairs.size(), " of ", k,
              " requested channel sets available");
    return pairs;
}

} // namespace gpubox::attack
