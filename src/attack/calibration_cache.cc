#include "attack/calibration_cache.hh"

#include "rt/platform.hh"
#include "rt/runtime.hh"
#include "sim/engine.hh"

namespace gpubox::attack
{

TimingThresholds
CalibrationCache::thresholds(const CalibrationKey &key)
{
    // The lock is held across the miss compute on purpose: racing
    // threads would produce identical bits anyway (the function is
    // pure), but computing once keeps the miss counter meaningful and
    // avoids burning two simulations on the same key.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &e : entries_) {
        if (e.first == key) {
            ++hits_;
            return e.second;
        }
    }
    ++misses_;
    entries_.emplace_back(key, compute(key));
    return entries_.back().second;
}

TimingThresholds
CalibrationCache::compute(const CalibrationKey &key)
{
    // Profile-neutral: which caller pays the miss depends on thread
    // scheduling, so the throwaway box must not leak into that
    // scenario's engine profile -- per-scenario profiles stay
    // identical for any worker-thread count.
    const sim::EngineProfile saved = sim::threadEngineProfile();
    TimingThresholds out;
    {
        rt::Runtime rt(
            rt::platformByName(key.platform).systemConfig(key.seed));
        rt::Process &proc = rt.createProcess("calibration");
        TimingOracle oracle(rt, proc);
        out = oracle
                  .calibrate(key.localGpu, key.remoteGpu,
                             key.linesPerRound, key.rounds)
                  .thresholds;
    }
    sim::threadEngineProfile() = saved;
    return out;
}

std::uint64_t
CalibrationCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
CalibrationCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::size_t
CalibrationCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CalibrationCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

CalibrationCache &
CalibrationCache::global()
{
    static CalibrationCache cache;
    return cache;
}

} // namespace gpubox::attack
