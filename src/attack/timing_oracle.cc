#include "attack/timing_oracle.hh"

#include "util/log.hh"

namespace gpubox::attack
{

std::vector<double>
CalibrationResult::allSamples() const
{
    std::vector<double> all;
    all.reserve(localHitSamples.size() + localMissSamples.size() +
                remoteHitSamples.size() + remoteMissSamples.size());
    for (const auto *v : {&localHitSamples, &localMissSamples,
                          &remoteHitSamples, &remoteMissSamples})
        all.insert(all.end(), v->begin(), v->end());
    return all;
}

TimingOracle::TimingOracle(rt::Runtime &rt, rt::Process &proc)
    : rt_(rt), proc_(proc)
{}

void
TimingOracle::measureBuffer(GpuId exec_gpu, VAddr buffer, int first_line,
                            int count, std::vector<double> &cold,
                            std::vector<double> &warm)
{
    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    std::vector<Cycles> cold_times(count, 0);
    std::vector<Cycles> warm_times(count, 0);

    auto kernel = [&, buffer, first_line,
                   count](rt::BlockCtx &ctx) -> sim::Task {
        // Cold pass: first touch of each line comes from DRAM. Each
        // timed access is followed by a shared-memory store of the
        // timer value (off the L2 path, paper Sec. III-A).
        for (int i = 0; i < count; ++i) {
            const VAddr a =
                buffer + static_cast<VAddr>(first_line + i) * line;
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(a);
            const Cycles t1 = ctx.clock();
            cold_times[i] = t1 - t0;
            co_await ctx.sharedAccess();
        }
        // Warm pass: the lines are now resident in the home GPU's L2.
        for (int i = 0; i < count; ++i) {
            const VAddr a =
                buffer + static_cast<VAddr>(first_line + i) * line;
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(a);
            const Cycles t1 = ctx.clock();
            warm_times[i] = t1 - t0;
            co_await ctx.sharedAccess();
        }
    };

    gpu::KernelConfig cfg;
    cfg.name = "timing-oracle";
    cfg.sharedMemBytes = 16 * 1024;
    rt::Stream &stream = rt_.stream(proc_, exec_gpu);
    stream.launch(cfg, kernel);
    rt_.sync(stream);

    for (int i = 0; i < count; ++i) {
        cold.push_back(static_cast<double>(cold_times[i]));
        warm.push_back(static_cast<double>(warm_times[i]));
    }
}

CalibrationResult
TimingOracle::calibrate(GpuId local_gpu, GpuId remote_gpu,
                        int lines_per_round, int rounds)
{
    // Peer reachability is a platform property (direct link on the
    // DGX-1, any routed path on NVSwitch-class boxes); the Status
    // carries the route diagnosis when the platform refuses.
    rt_.enablePeerAccess(proc_, local_gpu, remote_gpu).orFatal();

    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    const std::uint64_t bytes_needed = static_cast<std::uint64_t>(rounds) *
                                       lines_per_round * line;

    // One buffer on the local GPU, one on the remote peer. Fresh lines
    // every round keep the cold pass genuinely cold (no flush
    // instruction exists at user level).
    const VAddr local_buf = rt_.deviceMalloc(proc_, local_gpu,
                                             bytes_needed);
    const VAddr remote_buf = rt_.deviceMalloc(proc_, remote_gpu,
                                              bytes_needed);

    CalibrationResult res;
    for (int r = 0; r < rounds; ++r) {
        const int first = r * lines_per_round;
        measureBuffer(local_gpu, local_buf, first, lines_per_round,
                      res.localMissSamples, res.localHitSamples);
        measureBuffer(local_gpu, remote_buf, first, lines_per_round,
                      res.remoteMissSamples, res.remoteHitSamples);
    }

    rt_.deviceFree(proc_, local_buf);
    rt_.deviceFree(proc_, remote_buf);

    // Four clusters across the pooled samples (Fig. 4); boundaries
    // between clusters 1/2 and 3/4 become the thresholds.
    res.clusters = kmeans1d(res.allSamples(), 4);
    res.thresholds.localBoundary = res.clusters.boundaries.at(0);
    res.thresholds.remoteBoundary = res.clusters.boundaries.at(2);
    res.thresholds.localHitCenter = res.clusters.centers.at(0);
    res.thresholds.localMissCenter = res.clusters.centers.at(1);
    res.thresholds.remoteHitCenter = res.clusters.centers.at(2);
    res.thresholds.remoteMissCenter = res.clusters.centers.at(3);
    return res;
}

} // namespace gpubox::attack
