/**
 * @file
 * Eviction set validation (paper Fig. 5): sweep the number of
 * conflict-set lines accessed between two probes of a target and watch
 * the access time jump at exactly the associativity, on both the local
 * and the remote GPU. Also provides the cyclic access trace that
 * confirms the deterministic (LRU) replacement.
 */

#ifndef GPUBOX_ATTACK_EVSET_VALIDATOR_HH
#define GPUBOX_ATTACK_EVSET_VALIDATOR_HH

#include <vector>

#include "attack/evset.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

namespace gpubox::attack
{

/** One point per number-of-lines-accessed. */
struct ValidationSeries
{
    std::vector<unsigned> linesAccessed;
    std::vector<double> probeCycles;
    std::vector<bool> probeMissed;
};

/** Runs the Fig. 5 validation experiments. */
class EvictionSetValidator
{
  public:
    EvictionSetValidator(rt::Runtime &rt, rt::Process &proc, GpuId exec_gpu,
                         GpuId mem_gpu, const TimingThresholds &thresholds);

    /**
     * For n = 1..max_lines: prime a target line, access the first n
     * lines of @p set, re-probe the target and record its access time.
     * The probe time steps from hit to miss at n == associativity.
     *
     * @param set conflict set with at least max_lines lines (the
     *            target is set.lines[0]; the chase uses the rest)
     */
    ValidationSeries sweep(const EvictionSet &set, unsigned max_lines);

    /**
     * Access the first @p k lines of @p set cyclically for @p reps
     * total accesses and record each access time. With k <=
     * associativity every post-warmup access hits; with k =
     * associativity + 1 LRU thrashes and every access misses --
     * the deterministic pattern that rules out randomized replacement.
     */
    std::vector<double> cyclicTrace(const EvictionSet &set, unsigned k,
                                    unsigned reps);

  private:
    rt::Runtime &rt_;
    rt::Process &proc_;
    GpuId execGpu_;
    GpuId memGpu_;
    TimingThresholds thresholds_;
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_EVSET_VALIDATOR_HH
