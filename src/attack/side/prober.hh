/**
 * @file
 * Remote memorygram prober (paper Sec. V).
 *
 * The spy, on an NVLink peer of the victim GPU, continuously
 * prime+probes a window of L2 sets using eviction sets it constructed
 * over its own buffer *allocated in the victim GPU's memory*. A probe
 * that misses means somebody (the victim) touched the set since the
 * last probe. Misses are accumulated into a Memorygram.
 *
 * As in the paper, one thread block drives each monitored cache set.
 */

#ifndef GPUBOX_ATTACK_SIDE_PROBER_HH
#define GPUBOX_ATTACK_SIDE_PROBER_HH

#include <cstdint>
#include <vector>

#include "attack/evset_finder.hh"
#include "attack/side/memorygram.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

namespace gpubox::attack::side
{

/** Prober tunables. */
struct ProberConfig
{
    /** L2 sets monitored (paper: 256 for apps, 1024 for the MLP). */
    unsigned monitoredSets = 128;
    /** Per-set probe period in cycles. */
    Cycles samplePeriod = 6000;
    /** Memorygram time bucket width. */
    Cycles windowCycles = 8000;
    /** Observation length in cycles. */
    Cycles duration = 600000;
    /**
     * Shared memory per prober block (timing buffer). Kept small so
     * that hundreds of prober blocks can be co-resident (2 KiB allows
     * the full 32 blocks per SM).
     */
    std::uint32_t sharedMemBytes = 2048;
    /**
     * Blocks probing concurrently. One block per monitored set is the
     * paper's layout; sets are distributed round-robin when fewer.
     */
    unsigned blocks = 0; // 0 = one per set
};

/** Drives the monitoring kernels and collects the memorygram. */
class RemoteProber
{
  public:
    /**
     * @param finder eviction set finder of the *spy* process whose
     *               pool lives on the victim GPU
     */
    RemoteProber(rt::Runtime &rt, rt::Process &spy_proc, GpuId spy_gpu,
                 const EvictionSetFinder &finder,
                 const TimingThresholds &thresholds,
                 const ProberConfig &config = ProberConfig());

    /**
     * Enqueue the initial prime kernel on @p stream: every monitored
     * set is made resident once. Record an event after it to stage
     * dependent work (e.g. the victim's stream) on the priming
     * completing -- the CUDA-native replacement for the old
     * startDelayCycles guesswork.
     */
    rt::KernelHandle prime(rt::Stream &stream);

    /**
     * Enqueue the monitoring kernel on @p stream (stream order puts it
     * after prime()). Monitoring covers [t0, t0 + config.duration);
     * the memorygram has duration/windowCycles windows.
     *
     * @param out memorygram sized (monitoredSets, numWindows())
     * @param t0 absolute start time
     */
    rt::KernelHandle monitor(rt::Stream &stream, Memorygram &out,
                             Cycles t0);

    std::size_t numWindows() const;

    /** Eviction set monitored as row @p i of the memorygram. */
    const EvictionSet &monitoredSet(std::size_t i) const;

    const ProberConfig &config() const { return config_; }

  private:
    unsigned numBlocks() const;

    /** Monitored-set indices a block owns (round-robin). */
    std::vector<std::size_t> setsOfBlock(unsigned bid) const;

    /** fatal() unless @p stream belongs to the spy process and GPU. */
    void checkStream(const rt::Stream &stream) const;

    rt::Process &spyProc_;
    GpuId spyGpu_;
    TimingThresholds thresholds_;
    ProberConfig config_;
    std::vector<EvictionSet> sets_;
};

} // namespace gpubox::attack::side

#endif // GPUBOX_ATTACK_SIDE_PROBER_HH
