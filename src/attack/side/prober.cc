#include "attack/side/prober.hh"

#include "util/log.hh"

namespace gpubox::attack::side
{

RemoteProber::RemoteProber(rt::Runtime &, rt::Process &spy_proc,
                           GpuId spy_gpu, const EvictionSetFinder &finder,
                           const TimingThresholds &thresholds,
                           const ProberConfig &config)
    : spyProc_(spy_proc), spyGpu_(spy_gpu), thresholds_(thresholds),
      config_(config)
{
    if (finder.numGroups() == 0)
        fatal("RemoteProber: the eviction set finder has not run");

    // Choose monitored sets round-robin across page groups so that
    // every color window of the cache is sampled (victim pages land in
    // random colors).
    const std::size_t groups = finder.numGroups();
    const std::uint32_t lines = finder.linesPerPage();
    sets_.reserve(config_.monitoredSets);
    for (unsigned i = 0; i < config_.monitoredSets; ++i) {
        const std::size_t g = i % groups;
        const std::uint32_t o = static_cast<std::uint32_t>(i / groups);
        if (o >= lines)
            fatal("RemoteProber: not enough sets per group for ",
                  config_.monitoredSets, " monitored sets");
        sets_.push_back(finder.evictionSet(g, o));
    }
}

std::size_t
RemoteProber::numWindows() const
{
    return static_cast<std::size_t>(config_.duration /
                                    config_.windowCycles) +
           1;
}

const EvictionSet &
RemoteProber::monitoredSet(std::size_t i) const
{
    return sets_.at(i);
}

unsigned
RemoteProber::numBlocks() const
{
    return config_.blocks ? config_.blocks
                          : static_cast<unsigned>(sets_.size());
}

std::vector<std::size_t>
RemoteProber::setsOfBlock(unsigned bid) const
{
    // Sets assigned to this block, round-robin.
    std::vector<std::size_t> mine;
    for (std::size_t s = bid; s < sets_.size(); s += numBlocks())
        mine.push_back(s);
    return mine;
}

void
RemoteProber::checkStream(const rt::Stream &stream) const
{
    if (&stream.process() != &spyProc_ || stream.gpu() != spyGpu_) {
        fatal("RemoteProber: stream '", stream.name(),
              "' does not belong to spy process '", spyProc_.name(),
              "' on GPU ", spyGpu_);
    }
}

rt::KernelHandle
RemoteProber::prime(rt::Stream &stream)
{
    checkStream(stream);
    auto kernel = [this](rt::BlockCtx &ctx) -> sim::Task {
        // Make every assigned set resident once (round-robin over
        // blocks, as in setsOfBlock); dependent streams key off the
        // event recorded after this kernel.
        const unsigned blocks = numBlocks();
        for (std::size_t s = ctx.blockIdx(); s < sets_.size();
             s += blocks) {
            co_await ctx.probeSet(sets_[s].lines);
        }
    };

    gpu::KernelConfig cfg;
    cfg.name = "side-prime";
    cfg.numBlocks = numBlocks();
    cfg.threadsPerBlock = 32;
    cfg.sharedMemBytes = config_.sharedMemBytes;
    return stream.launch(cfg, kernel);
}

rt::KernelHandle
RemoteProber::monitor(rt::Stream &stream, Memorygram &out, Cycles t0)
{
    checkStream(stream);
    if (out.numSets() != sets_.size() || out.numWindows() < numWindows())
        fatal("RemoteProber: memorygram shape (", out.numSets(), "x",
              out.numWindows(), ") does not fit ", sets_.size(), "x",
              numWindows());

    const unsigned blocks = numBlocks();

    auto kernel = [this, &out, t0, blocks](rt::BlockCtx &ctx) -> sim::Task {
        const unsigned bid = ctx.blockIdx();
        // Same round-robin assignment as setsOfBlock, iterated in
        // place: one probe round allocates nothing.
        if (bid >= sets_.size())
            co_return;

        const Cycles end = t0 + config_.duration;
        // Stagger the blocks across the sample period so hundreds of
        // probers do not hammer the L2 ports at the same instant.
        const Cycles phase =
            (static_cast<Cycles>(bid) * config_.samplePeriod) / blocks;
        std::uint64_t round = 0;
        while (!ctx.stopRequested()) {
            const Cycles slot = t0 + phase + round * config_.samplePeriod;
            if (slot >= end)
                break;
            co_await ctx.waitUntil(slot);
            for (std::size_t s = bid; s < sets_.size(); s += blocks) {
                if (ctx.stopRequested())
                    break;
                auto res = co_await ctx.probeSet(sets_[s].lines);
                std::uint32_t miss_count = 0;
                for (Cycles c : res.perLineCycles) {
                    if (thresholds_.isRemoteMiss(static_cast<double>(c)))
                        ++miss_count;
                }
                const Cycles now = ctx.actor().now();
                if (now >= t0) {
                    const std::size_t w = static_cast<std::size_t>(
                        (now - t0) / config_.windowCycles);
                    out.addProbe(s, w);
                    if (miss_count)
                        out.addMiss(s, w, miss_count);
                }
                co_await ctx.sharedAccess();
            }
            ++round;
        }
    };

    gpu::KernelConfig cfg;
    cfg.name = "side-prober";
    cfg.numBlocks = blocks;
    cfg.threadsPerBlock = 32;
    cfg.sharedMemBytes = config_.sharedMemBytes;
    return stream.launch(cfg, kernel);
}

} // namespace gpubox::attack::side
