/**
 * @file
 * Memorygram: the (cache set x time window) miss matrix a remote spy
 * recovers by prime+probing a victim GPU's L2 (paper Sec. V, Figs. 11,
 * 14, 15). Provides the feature extraction the fingerprinting
 * classifier consumes and ASCII/CSV rendering for the figure benches.
 */

#ifndef GPUBOX_ATTACK_SIDE_MEMORYGRAM_HH
#define GPUBOX_ATTACK_SIDE_MEMORYGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/ascii_art.hh"

namespace gpubox::attack::side
{

/** Row-major (set, window) miss-count matrix. */
class Memorygram
{
  public:
    Memorygram(std::size_t num_sets, std::size_t num_windows);

    void addMiss(std::size_t set, std::size_t window,
                 std::uint32_t count = 1);
    void addProbe(std::size_t set, std::size_t window);

    std::size_t numSets() const { return sets_; }
    std::size_t numWindows() const { return windows_; }

    double missAt(std::size_t set, std::size_t window) const;
    std::uint64_t probesAt(std::size_t set, std::size_t window) const;

    std::uint64_t totalMisses() const;
    std::uint64_t totalProbes() const;

    /** Total misses recorded for one set across all windows. */
    std::uint64_t setMisses(std::size_t set) const;

    /** Total misses in one time window across all sets. */
    std::uint64_t windowMisses(std::size_t window) const;

    /** Average of setMisses over all sets (paper Table II metric). */
    double avgMissesPerSet() const;

    /** Raw miss matrix, row-major (for heat maps). */
    std::vector<double> data() const;

    /**
     * Average-pool the miss matrix to rows x cols and flatten row-major
     * (the classifier feature vector).
     */
    std::vector<double> pooledFeatures(std::size_t rows,
                                       std::size_t cols) const;

    /** ASCII heat map of the miss matrix. */
    std::string render(const HeatmapOptions &opt = HeatmapOptions()) const;

    /** Index one past the last window that recorded any probe. */
    std::size_t activeWindows() const;

    /**
     * Copy clipped to the observed horizon (the prober is stopped when
     * the victim finishes, so trailing windows are empty).
     */
    Memorygram trimmed() const;

    /** L2 distance between two equally shaped memorygrams. */
    static double distance(const Memorygram &a, const Memorygram &b);

  private:
    std::size_t sets_;
    std::size_t windows_;
    std::vector<std::uint32_t> misses_;
    std::vector<std::uint32_t> probes_;
};

} // namespace gpubox::attack::side

#endif // GPUBOX_ATTACK_SIDE_MEMORYGRAM_HH
