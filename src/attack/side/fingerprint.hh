/**
 * @file
 * Application fingerprinting side channel (paper Sec. V-A, Figs. 11
 * and 12).
 *
 * The spy collects memorygrams of a victim GPU while each of six HPC
 * applications runs, trains a classifier on pooled memorygram features
 * and identifies the application running remotely. The paper reaches
 * 99.91% over 7200 test samples; the experiment here reproduces the
 * pipeline (collection, split, training, confusion matrix) at a
 * simulation-friendly sample count.
 */

#ifndef GPUBOX_ATTACK_SIDE_FINGERPRINT_HH
#define GPUBOX_ATTACK_SIDE_FINGERPRINT_HH

#include <memory>
#include <string>
#include <vector>

#include "attack/evset_finder.hh"
#include "attack/side/memorygram.hh"
#include "attack/side/prober.hh"
#include "attack/timing_oracle.hh"
#include "ml/confusion.hh"
#include "ml/dataset.hh"
#include "rt/runtime.hh"
#include "victim/workload.hh"

namespace gpubox::attack::side
{

/** Fingerprinting experiment parameters. */
struct FingerprintConfig
{
    /** Samples collected per application. */
    unsigned samplesPerApp = 30;
    /** Per-class training / validation sizes (rest is test). */
    unsigned trainPerApp = 12;
    unsigned valPerApp = 4;
    /** Prober setup during collection. */
    ProberConfig prober;
    /** Pooled feature grid. */
    std::size_t featureRows = 16;
    std::size_t featureCols = 16;
    /** Classifier: false = softmax regression, true = MLP. */
    bool useMlpClassifier = false;
    std::uint64_t seed = 7;
};

/** Output of the full experiment. */
struct FingerprintResult
{
    ml::ConfusionMatrix confusion{6};
    double validationAccuracy = 0.0;
    double testAccuracy = 0.0;
    std::vector<std::string> classNames;
    /** One exemplar memorygram per application (Fig. 11). */
    std::vector<Memorygram> exemplars;
};

/** Collects memorygram datasets and runs the classification attack. */
class Fingerprinter
{
  public:
    /**
     * @param finder spy-side eviction set finder whose pool lives on
     *               the victim GPU
     */
    Fingerprinter(rt::Runtime &rt, rt::Process &spy_proc, GpuId spy_gpu,
                  rt::Process &victim_proc, GpuId victim_gpu,
                  const EvictionSetFinder &finder,
                  const TimingThresholds &thresholds,
                  const FingerprintConfig &config = FingerprintConfig());

    /** Run one victim under observation; return its memorygram. */
    Memorygram collectSample(victim::AppKind kind, std::uint64_t seed);

    /** Collect the full labeled dataset (and exemplars). */
    ml::Dataset collectDataset(std::vector<Memorygram> *exemplars);

    /** Full pipeline: collect, split, train, evaluate. */
    FingerprintResult run();

    /** Feature extraction used by run(). */
    std::vector<double> features(const Memorygram &gram) const;

  private:
    rt::Runtime &rt_;
    rt::Process &spyProc_;
    GpuId spyGpu_;
    rt::Process &victimProc_;
    GpuId victimGpu_;
    const EvictionSetFinder &finder_;
    TimingThresholds thresholds_;
    FingerprintConfig config_;
    /** Collection streams and the priming event, reused by every
     *  sample (streams live for the runtime's lifetime). */
    rt::Stream &spyStream_;
    rt::Stream &victimStream_;
    rt::Event &primed_;
};

} // namespace gpubox::attack::side

#endif // GPUBOX_ATTACK_SIDE_FINGERPRINT_HH
