/**
 * @file
 * MLP model extraction side channel (paper Sec. V-B, Table II,
 * Figs. 13-15).
 *
 * While a victim trains a one-hidden-layer MLP, the spy's per-set miss
 * counts scale with the hidden-layer width (the weight matrices are
 * streamed every minibatch), so the average misses per monitored set
 * separate the candidate configurations (Table II / Fig. 13). The
 * temporal structure of the memorygram additionally exposes the number
 * of training epochs (Fig. 15).
 */

#ifndef GPUBOX_ATTACK_SIDE_MODEL_EXTRACT_HH
#define GPUBOX_ATTACK_SIDE_MODEL_EXTRACT_HH

#include <cstdint>
#include <vector>

#include "attack/evset_finder.hh"
#include "attack/side/memorygram.hh"
#include "attack/side/prober.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "victim/mlp_trainer.hh"

namespace gpubox::attack::side
{

/** Extraction experiment parameters. */
struct ExtractionConfig
{
    /** Candidate hidden-layer widths (paper Table II). */
    std::vector<unsigned> neuronCounts = {64, 128, 256, 512};
    /** Prober setup (paper monitors 1024 sets; scaled by default). */
    ProberConfig prober;
    /** Victim hyperparameters (hiddenNeurons/epochs overridden). */
    victim::MlpConfig mlpBase;
    std::uint64_t seed = 11;

    ExtractionConfig()
    {
        prober.monitoredSets = 256;
        prober.samplePeriod = 8000;
        prober.windowCycles = 12000;
        prober.duration = 1200000;
    }
};

/** One observed training run. */
struct ExtractionRun
{
    unsigned neurons = 0;
    unsigned epochs = 1;
    Memorygram gram{1, 1};
    /** Table II metric. */
    double avgMissesPerSet = 0.0;
    std::uint64_t totalMisses = 0;
};

/** Drives the MLP victim under observation. */
class ModelExtractor
{
  public:
    ModelExtractor(rt::Runtime &rt, rt::Process &spy_proc, GpuId spy_gpu,
                   rt::Process &victim_proc, GpuId victim_gpu,
                   const EvictionSetFinder &finder,
                   const TimingThresholds &thresholds,
                   const ExtractionConfig &config = ExtractionConfig());

    /** Observe one training run. */
    ExtractionRun observe(unsigned neurons, unsigned epochs = 1);

    /** Table II: one run per candidate width. */
    std::vector<ExtractionRun> sweepNeurons();

    /**
     * Infer the epoch count from a memorygram: epochs appear as
     * activity bursts separated by the inter-epoch synchronization
     * gap (Fig. 15).
     */
    static unsigned inferEpochs(const Memorygram &gram);

    /**
     * Classify a run's width against reference average-miss levels:
     * nearest candidate wins (the attack's final inference step).
     */
    static unsigned
    inferNeurons(double avg_misses,
                 const std::vector<ExtractionRun> &references);

  private:
    rt::Runtime &rt_;
    rt::Process &spyProc_;
    GpuId spyGpu_;
    rt::Process &victimProc_;
    GpuId victimGpu_;
    const EvictionSetFinder &finder_;
    TimingThresholds thresholds_;
    ExtractionConfig config_;
    /** Collection streams and the priming event, reused by every
     *  observed run (streams live for the runtime's lifetime). */
    rt::Stream &spyStream_;
    rt::Stream &victimStream_;
    rt::Event &primed_;
};

} // namespace gpubox::attack::side

#endif // GPUBOX_ATTACK_SIDE_MODEL_EXTRACT_HH
