#include "attack/side/model_extract.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox::attack::side
{

ModelExtractor::ModelExtractor(rt::Runtime &rt, rt::Process &spy_proc,
                               GpuId spy_gpu, rt::Process &victim_proc,
                               GpuId victim_gpu,
                               const EvictionSetFinder &finder,
                               const TimingThresholds &thresholds,
                               const ExtractionConfig &config)
    : rt_(rt), spyProc_(spy_proc), spyGpu_(spy_gpu),
      victimProc_(victim_proc), victimGpu_(victim_gpu), finder_(finder),
      thresholds_(thresholds), config_(config),
      spyStream_(rt.createStream(spy_proc, spy_gpu, "mx-prober")),
      victimStream_(
          rt.createStream(victim_proc, victim_gpu, "mx-victim")),
      primed_(rt.createEvent("mx-primed"))
{}

ExtractionRun
ModelExtractor::observe(unsigned neurons, unsigned epochs)
{
    RemoteProber prober(rt_, spyProc_, spyGpu_, finder_, thresholds_,
                        config_.prober);

    ExtractionRun run;
    run.neurons = neurons;
    run.epochs = epochs;
    run.gram = Memorygram(config_.prober.monitoredSets,
                          prober.numWindows());

    // Same stream/event staging as the fingerprinter: the training
    // victim's stream releases only after the prober's prime pass.
    // Streams and event are members, re-recorded per observed run.
    const Cycles t0 = rt_.engine().now() + 2 * config_.prober.samplePeriod;
    prober.prime(spyStream_);
    spyStream_.record(primed_);
    auto prober_handle = prober.monitor(spyStream_, run.gram, t0);

    victim::MlpConfig mcfg = config_.mlpBase;
    mcfg.hiddenNeurons = neurons;
    mcfg.epochs = epochs;
    victim::MlpTrainer trainer(rt_, victimProc_, victimGpu_, mcfg);
    victimStream_.wait(primed_);
    auto victim_handle = trainer.launch(victimStream_);

    rt_.sync(victim_handle);
    prober_handle.requestStop();
    rt_.sync(spyStream_);

    run.totalMisses = run.gram.totalMisses();
    run.avgMissesPerSet = run.gram.avgMissesPerSet();
    return run;
}

std::vector<ExtractionRun>
ModelExtractor::sweepNeurons()
{
    std::vector<ExtractionRun> runs;
    for (unsigned n : config_.neuronCounts) {
        runs.push_back(observe(n));
        inform("model extraction: ", n, " neurons -> avg ",
               runs.back().avgMissesPerSet, " misses/set");
    }
    return runs;
}

unsigned
ModelExtractor::inferEpochs(const Memorygram &gram)
{
    // Column activity series, lightly smoothed.
    const std::size_t w = gram.numWindows();
    std::vector<double> activity(w, 0.0);
    for (std::size_t i = 0; i < w; ++i)
        activity[i] = static_cast<double>(gram.windowMisses(i));

    std::vector<double> smooth(w, 0.0);
    for (std::size_t i = 0; i < w; ++i) {
        double sum = 0.0;
        int cnt = 0;
        for (int d = -1; d <= 1; ++d) {
            const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + d;
            if (j >= 0 && j < static_cast<std::ptrdiff_t>(w)) {
                sum += activity[j];
                ++cnt;
            }
        }
        smooth[i] = sum / cnt;
    }

    double peak = 0.0;
    for (double v : smooth)
        peak = std::max(peak, v);
    if (peak <= 0.0)
        return 0;
    const double threshold = 0.25 * peak;

    // Count activity bursts separated by at least two quiet windows.
    unsigned bursts = 0;
    bool active = false;
    unsigned quiet = 2;
    for (std::size_t i = 0; i < w; ++i) {
        if (smooth[i] >= threshold) {
            if (!active && quiet >= 2)
                ++bursts;
            active = true;
            quiet = 0;
        } else {
            ++quiet;
            active = false;
        }
    }
    return bursts;
}

unsigned
ModelExtractor::inferNeurons(double avg_misses,
                             const std::vector<ExtractionRun> &references)
{
    if (references.empty())
        fatal("inferNeurons: empty reference set");
    unsigned best = references.front().neurons;
    double best_d = std::abs(avg_misses -
                             references.front().avgMissesPerSet);
    for (const auto &ref : references) {
        const double d = std::abs(avg_misses - ref.avgMissesPerSet);
        if (d < best_d) {
            best_d = d;
            best = ref.neurons;
        }
    }
    return best;
}

} // namespace gpubox::attack::side
