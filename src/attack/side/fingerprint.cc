#include "attack/side/fingerprint.hh"

#include <algorithm>

#include "ml/mlp.hh"
#include "ml/softmax.hh"
#include "util/log.hh"

namespace gpubox::attack::side
{

Fingerprinter::Fingerprinter(rt::Runtime &rt, rt::Process &spy_proc,
                             GpuId spy_gpu, rt::Process &victim_proc,
                             GpuId victim_gpu,
                             const EvictionSetFinder &finder,
                             const TimingThresholds &thresholds,
                             const FingerprintConfig &config)
    : rt_(rt), spyProc_(spy_proc), spyGpu_(spy_gpu),
      victimProc_(victim_proc), victimGpu_(victim_gpu), finder_(finder),
      thresholds_(thresholds), config_(config),
      spyStream_(rt.createStream(spy_proc, spy_gpu, "fp-prober")),
      victimStream_(
          rt.createStream(victim_proc, victim_gpu, "fp-victim")),
      primed_(rt.createEvent("fp-primed"))
{}

Memorygram
Fingerprinter::collectSample(victim::AppKind kind, std::uint64_t seed)
{
    RemoteProber prober(rt_, spyProc_, spyGpu_, finder_, thresholds_,
                        config_.prober);

    Memorygram gram(config_.prober.monitoredSets, prober.numWindows());

    // Spy stream: prime every monitored set, mark the instant with an
    // event, then monitor. The victim's stream waits on that event, so
    // "the victim starts once the prober has primed" is expressed as a
    // cross-stream dependency instead of a startDelayCycles guess.
    // The streams and the event are re-recorded every sample.
    const Cycles t0 = rt_.engine().now() + 2 * config_.prober.samplePeriod;
    prober.prime(spyStream_);
    spyStream_.record(primed_);
    auto prober_handle = prober.monitor(spyStream_, gram, t0);

    victim::WorkloadConfig wcfg;
    wcfg.seed = seed;
    victim::Workload workload(rt_, victimProc_, victimGpu_, kind, wcfg);
    victimStream_.wait(primed_);
    auto victim_handle = workload.launch(victimStream_);

    rt_.sync(victim_handle);
    prober_handle.requestStop();
    rt_.sync(spyStream_);
    return gram;
}

std::vector<double>
Fingerprinter::features(const Memorygram &gram) const
{
    // The pooled miss image plus two permutation-invariant profiles:
    // eviction sets hash to arbitrary physical sets in every run
    // (paper Sec. V-A, "these can be different in each run"), so the
    // temporal activity profile and the sorted per-set intensity
    // distribution carry the run-stable signal.
    std::vector<double> f =
        gram.pooledFeatures(config_.featureRows, config_.featureCols);

    // Temporal profile: total misses per pooled time slice.
    const std::size_t tbins = config_.featureCols;
    std::vector<double> temporal(tbins, 0.0);
    for (std::size_t w = 0; w < gram.numWindows(); ++w)
        temporal[w * tbins / gram.numWindows()] +=
            static_cast<double>(gram.windowMisses(w));
    f.insert(f.end(), temporal.begin(), temporal.end());

    // Sorted per-set totals, pooled: intensity distribution.
    std::vector<double> per_set;
    per_set.reserve(gram.numSets());
    for (std::size_t s = 0; s < gram.numSets(); ++s)
        per_set.push_back(static_cast<double>(gram.setMisses(s)));
    std::sort(per_set.begin(), per_set.end());
    const std::size_t sbins = config_.featureRows;
    std::vector<double> intensity(sbins, 0.0);
    for (std::size_t i = 0; i < per_set.size(); ++i)
        intensity[i * sbins / per_set.size()] += per_set[i];
    f.insert(f.end(), intensity.begin(), intensity.end());
    return f;
}

ml::Dataset
Fingerprinter::collectDataset(std::vector<Memorygram> *exemplars)
{
    ml::Dataset data;
    const auto &kinds = victim::allAppKinds();
    for (std::size_t label = 0; label < kinds.size(); ++label) {
        for (unsigned s = 0; s < config_.samplesPerApp; ++s) {
            const std::uint64_t seed =
                config_.seed * 1000003ULL + label * 131ULL + s;
            Memorygram gram = collectSample(kinds[label], seed);
            if (exemplars && s == 0)
                exemplars->push_back(gram);
            data.push_back(ml::Sample{features(gram),
                                      static_cast<int>(label)});
        }
        inform("fingerprint: collected ", config_.samplesPerApp,
               " samples of ", victim::appName(kinds[label]));
    }
    return data;
}

FingerprintResult
Fingerprinter::run()
{
    FingerprintResult result;
    for (auto kind : victim::allAppKinds())
        result.classNames.push_back(victim::appShortName(kind));

    ml::Dataset data = collectDataset(&result.exemplars);

    Rng rng(config_.seed ^ 0xf17eULL);
    ml::Split split = ml::splitDataset(data, config_.trainPerApp,
                                       config_.valPerApp, rng);

    ml::Standardizer norm;
    norm.fit(split.train);
    const ml::Dataset train = norm.apply(split.train);
    const ml::Dataset val = norm.apply(split.validation);
    const ml::Dataset test = norm.apply(split.test);

    const std::size_t dim = ml::featureDim(train);
    const int classes = static_cast<int>(victim::allAppKinds().size());

    result.confusion = ml::ConfusionMatrix(classes);
    if (config_.useMlpClassifier) {
        ml::MlpClassifier clf(dim, classes);
        clf.fit(train, rng.split(1));
        result.validationAccuracy = clf.score(val);
        for (const ml::Sample &s : test)
            result.confusion.add(s.label, clf.predict(s.x));
    } else {
        ml::SoftmaxClassifier clf(dim, classes);
        clf.fit(train, rng.split(1));
        result.validationAccuracy = clf.score(val);
        for (const ml::Sample &s : test)
            result.confusion.add(s.label, clf.predict(s.x));
    }
    result.testAccuracy = result.confusion.accuracy();
    return result;
}

} // namespace gpubox::attack::side
