#include "attack/side/memorygram.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox::attack::side
{

Memorygram::Memorygram(std::size_t num_sets, std::size_t num_windows)
    : sets_(num_sets), windows_(num_windows),
      misses_(num_sets * num_windows, 0),
      probes_(num_sets * num_windows, 0)
{
    if (num_sets == 0 || num_windows == 0)
        fatal("Memorygram needs positive dimensions");
}

void
Memorygram::addMiss(std::size_t set, std::size_t window,
                    std::uint32_t count)
{
    if (set >= sets_ || window >= windows_)
        return; // probes beyond the observation horizon are dropped
    misses_[set * windows_ + window] += count;
}

void
Memorygram::addProbe(std::size_t set, std::size_t window)
{
    if (set >= sets_ || window >= windows_)
        return;
    ++probes_[set * windows_ + window];
}

double
Memorygram::missAt(std::size_t set, std::size_t window) const
{
    return misses_.at(set * windows_ + window);
}

std::uint64_t
Memorygram::probesAt(std::size_t set, std::size_t window) const
{
    return probes_.at(set * windows_ + window);
}

std::uint64_t
Memorygram::totalMisses() const
{
    std::uint64_t sum = 0;
    for (auto m : misses_)
        sum += m;
    return sum;
}

std::uint64_t
Memorygram::totalProbes() const
{
    std::uint64_t sum = 0;
    for (auto p : probes_)
        sum += p;
    return sum;
}

std::uint64_t
Memorygram::setMisses(std::size_t set) const
{
    std::uint64_t sum = 0;
    for (std::size_t w = 0; w < windows_; ++w)
        sum += misses_[set * windows_ + w];
    return sum;
}

std::uint64_t
Memorygram::windowMisses(std::size_t window) const
{
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < sets_; ++s)
        sum += misses_[s * windows_ + window];
    return sum;
}

double
Memorygram::avgMissesPerSet() const
{
    return static_cast<double>(totalMisses()) /
           static_cast<double>(sets_);
}

std::vector<double>
Memorygram::data() const
{
    std::vector<double> out;
    out.reserve(misses_.size());
    for (auto m : misses_)
        out.push_back(static_cast<double>(m));
    return out;
}

std::vector<double>
Memorygram::pooledFeatures(std::size_t rows, std::size_t cols) const
{
    std::vector<double> pooled(rows * cols, 0.0);
    std::vector<double> counts(rows * cols, 0.0);
    for (std::size_t s = 0; s < sets_; ++s) {
        const std::size_t pr = s * rows / sets_;
        for (std::size_t w = 0; w < windows_; ++w) {
            const std::size_t pc = w * cols / windows_;
            pooled[pr * cols + pc] += missAt(s, w);
            counts[pr * cols + pc] += 1.0;
        }
    }
    for (std::size_t i = 0; i < pooled.size(); ++i)
        if (counts[i] > 0.0)
            pooled[i] /= counts[i];
    return pooled;
}

std::string
Memorygram::render(const HeatmapOptions &opt) const
{
    return renderHeatmap(data(), sets_, windows_, opt);
}

std::size_t
Memorygram::activeWindows() const
{
    std::size_t last = 0;
    for (std::size_t s = 0; s < sets_; ++s)
        for (std::size_t w = 0; w < windows_; ++w)
            if (probes_[s * windows_ + w] || misses_[s * windows_ + w])
                last = std::max(last, w + 1);
    return last;
}

Memorygram
Memorygram::trimmed() const
{
    const std::size_t w_max = std::max<std::size_t>(1, activeWindows());
    Memorygram out(sets_, w_max);
    for (std::size_t s = 0; s < sets_; ++s) {
        for (std::size_t w = 0; w < w_max; ++w) {
            out.misses_[s * w_max + w] = misses_[s * windows_ + w];
            out.probes_[s * w_max + w] = probes_[s * windows_ + w];
        }
    }
    return out;
}

double
Memorygram::distance(const Memorygram &a, const Memorygram &b)
{
    if (a.sets_ != b.sets_ || a.windows_ != b.windows_)
        fatal("Memorygram::distance: shape mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.misses_.size(); ++i) {
        const double d = static_cast<double>(a.misses_[i]) -
                         static_cast<double>(b.misses_[i]);
        sum += d * d;
    }
    return std::sqrt(sum);
}

} // namespace gpubox::attack::side
