/**
 * @file
 * Process-wide memo for k-means timing calibration.
 *
 * Calibration (TimingOracle::calibrate) is a pure function of the
 * platform descriptor, the seed and the calibration parameters when it
 * runs on a runtime of its own: the throwaway Runtime is constructed
 * fresh from (platform, seed), so two computations of the same key are
 * bit-identical. The cache exploits exactly that -- a miss builds the
 * throwaway box, calibrates on it and discards it; a hit returns the
 * stored thresholds, which are indistinguishable from a fresh compute.
 *
 * Because values are pure, sharing the cache across ExperimentRunner
 * worker threads cannot perturb results: whichever thread populates a
 * key first, every reader sees the same bits, so sweep output stays
 * byte-identical for any --threads count. Scenario code that needs the
 * *side effects* of calibrating on its own runtime (jitter RNG
 * consumption, cache warm-up) must keep calling TimingOracle directly;
 * this memo is for consumers that only need the thresholds.
 */

#ifndef GPUBOX_ATTACK_CALIBRATION_CACHE_HH
#define GPUBOX_ATTACK_CALIBRATION_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "attack/timing_oracle.hh"
#include "util/types.hh"

namespace gpubox::attack
{

/** Identity of one calibration computation. */
struct CalibrationKey
{
    std::string platform; // rt::platformNames() entry
    std::uint64_t seed = 0;
    GpuId localGpu = 1;   // GPU the measuring kernel runs on
    GpuId remoteGpu = 0;  // peer whose memory is probed remotely
    int linesPerRound = 48;
    int rounds = 6;

    bool operator==(const CalibrationKey &o) const = default;
};

/** Thread-safe (platform, seed, ...) -> TimingThresholds memo. */
class CalibrationCache
{
  public:
    /**
     * Thresholds for @p key: stored value on a hit, otherwise computed
     * on a throwaway Runtime built from (platform, seed) and stored.
     * Bit-identical to a fresh TimingOracle run on such a runtime.
     */
    TimingThresholds thresholds(const CalibrationKey &key);

    /** @name Introspection (profiling layer / tests) @{ */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::size_t size() const;
    /** @} */

    /** Drop every entry (tests). */
    void clear();

    /** The process-wide instance the bench driver threads through
     *  RunContext. */
    static CalibrationCache &global();

  private:
    /**
     * The pure function behind the memo: fresh Runtime from
     * (platform, seed), one calibration process, one oracle run.
     */
    static TimingThresholds compute(const CalibrationKey &key);

    mutable std::mutex mu_;
    /** Linear store: sweeps touch a handful of platforms, and lookup
     *  cost is irrelevant next to a miss's simulation. */
    std::vector<std::pair<CalibrationKey, TimingThresholds>> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_CALIBRATION_CACHE_HH
