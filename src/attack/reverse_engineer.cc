#include "attack/reverse_engineer.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "attack/evset_validator.hh"
#include "util/log.hh"

namespace gpubox::attack
{

std::string
CacheArchReport::toTable() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%-24s %s\n"
                  "%-24s %.0f MB\n"
                  "%-24s %u\n"
                  "%-24s %uB\n"
                  "%-24s %u\n"
                  "%-24s %s\n",
                  "Cache Attribute", "Values",
                  "L2 cache size",
                  static_cast<double>(cacheBytes) / (1024.0 * 1024.0),
                  "Number of Sets", numSets,
                  "Cache line size", lineBytes,
                  "Cache lines per set", associativity,
                  "Replacement Policy", replacementPolicy.c_str());
    return buf;
}

ReverseEngineer::ReverseEngineer(rt::Runtime &rt, rt::Process &proc,
                                 GpuId gpu,
                                 const TimingThresholds &thresholds)
    : rt_(rt), proc_(proc), gpu_(gpu), thresholds_(thresholds)
{}

std::uint32_t
ReverseEngineer::discoverLineSize(std::uint32_t max_stride)
{
    const std::uint64_t page = rt_.config().pageBytes;
    // One fresh page per tested stride keeps the first access cold.
    std::vector<std::uint32_t> strides;
    for (std::uint32_t s = 8; s <= max_stride; s *= 2)
        strides.push_back(s);

    const VAddr buf =
        rt_.deviceMalloc(proc_, gpu_, strides.size() * page);

    std::uint32_t line_size = max_stride;
    for (std::size_t i = 0; i < strides.size(); ++i) {
        const VAddr base = buf + i * page;
        const std::uint32_t stride = strides[i];
        Cycles second = 0;

        auto kernel = [&, base, stride](rt::BlockCtx &ctx) -> sim::Task {
            co_await ctx.ldcg64(base); // cold: caches the whole line
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(base + stride);
            const Cycles t1 = ctx.clock();
            second = t1 - t0;
            co_await ctx.sharedAccess();
        };

        gpu::KernelConfig cfg;
        cfg.name = "line-size";
        cfg.sharedMemBytes = 16 * 1024;
        rt::Stream &stream = rt_.stream(proc_, gpu_);
        stream.launch(cfg, kernel);
        rt_.sync(stream);

        if (thresholds_.isLocalMiss(static_cast<double>(second))) {
            // First stride that escapes the cached line.
            line_size = stride;
            break;
        }
    }
    rt_.deviceFree(proc_, buf);
    return line_size;
}

std::vector<CapacityPoint>
ReverseEngineer::capacitySweep(const std::vector<std::uint64_t> &line_counts)
{
    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    std::uint64_t max_lines = 0;
    for (auto c : line_counts)
        max_lines = std::max(max_lines, c);

    const VAddr buf = rt_.deviceMalloc(proc_, gpu_, max_lines * line);
    std::vector<CapacityPoint> points;

    for (std::uint64_t count : line_counts) {
        std::uint64_t misses = 0;
        auto kernel = [&, count](rt::BlockCtx &ctx) -> sim::Task {
            // Pass 1: make the working set resident.
            for (std::uint64_t i = 0; i < count; ++i)
                co_await ctx.ldcg64(buf + i * line);
            // Pass 2: count misses. If the working set exceeds the
            // capacity, LRU thrashes and the second pass misses.
            for (std::uint64_t i = 0; i < count; ++i) {
                const Cycles t0 = ctx.clock();
                co_await ctx.ldcg64(buf + i * line);
                const Cycles t1 = ctx.clock();
                if (thresholds_.isLocalMiss(static_cast<double>(t1 - t0)))
                    ++misses;
                co_await ctx.sharedAccess();
            }
        };

        gpu::KernelConfig cfg;
        cfg.name = "capacity-sweep";
        cfg.sharedMemBytes = 16 * 1024;
        rt::Stream &stream = rt_.stream(proc_, gpu_);
        stream.launch(cfg, kernel);
        rt_.sync(stream);

        points.push_back(CapacityPoint{
            count, static_cast<double>(misses) /
                       static_cast<double>(count)});
    }
    rt_.deviceFree(proc_, buf);
    return points;
}

std::uint64_t
ReverseEngineer::capacityFromSweep(const std::vector<CapacityPoint> &pts,
                                   std::uint32_t line_bytes) const
{
    // The knee: the largest working set that still mostly hits on the
    // second pass. Random page coloring makes the cliff fuzzy near the
    // exact capacity, so snap to the nearest power of two.
    std::uint64_t knee_lines = 0;
    for (const auto &p : pts)
        if (p.secondPassMissRate < 0.55)
            knee_lines = std::max(knee_lines, p.residentLines);
    if (knee_lines == 0)
        return 0;
    const double bytes =
        static_cast<double>(knee_lines) * static_cast<double>(line_bytes);
    const double exponent = std::round(std::log2(bytes));
    return static_cast<std::uint64_t>(std::pow(2.0, exponent));
}

std::vector<unsigned>
ReverseEngineer::evictionPoints(EvictionSetFinder &finder, int trials)
{
    EvictionSetValidator validator(rt_, proc_, gpu_, gpu_, thresholds_);
    const unsigned assoc = finder.associativity();
    const unsigned sweep_len = assoc + 4;

    std::vector<unsigned> points;
    for (int t = 0; t < trials; ++t) {
        // A different in-page line offset each trial probes a
        // different physical set.
        const std::uint32_t offset =
            1 + static_cast<std::uint32_t>(t) % (finder.linesPerPage() - 1);
        EvictionSet set = finder.evictionSet(0, offset, sweep_len + 1);
        ValidationSeries series = validator.sweep(set, sweep_len);
        unsigned point = 0;
        for (std::size_t i = 0; i < series.linesAccessed.size(); ++i) {
            if (series.probeMissed[i]) {
                point = series.linesAccessed[i];
                break;
            }
        }
        points.push_back(point);
    }
    return points;
}

std::string
ReverseEngineer::classifyPolicy(const std::vector<unsigned> &points,
                                unsigned associativity)
{
    if (points.empty())
        return "unknown";
    std::map<unsigned, int> hist;
    for (unsigned p : points)
        ++hist[p];
    const auto mode = std::max_element(
        hist.begin(), hist.end(),
        [](const auto &a, const auto &b) { return a.second < b.second; });
    const double mode_frac = static_cast<double>(mode->second) /
                             static_cast<double>(points.size());

    if (mode_frac == 1.0 && mode->first == associativity)
        return "LRU";
    if (mode_frac >= 0.75)
        return "pseudo-LRU";
    return "randomized";
}

CacheArchReport
ReverseEngineer::run(EvictionSetFinder &finder)
{
    CacheArchReport report;
    report.lineBytes = discoverLineSize();
    report.associativity = finder.associativity();

    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    const std::uint64_t cap_lines =
        rt_.config().device.l2.sizeBytes / line;
    // Sweep from half to twice the (to-be-discovered) capacity.
    std::vector<std::uint64_t> counts;
    for (double f : {0.5, 0.75, 0.875, 1.0, 1.125, 1.25, 1.5, 2.0}) {
        counts.push_back(
            static_cast<std::uint64_t>(f * static_cast<double>(cap_lines)));
    }
    auto pts = capacitySweep(counts);
    report.cacheBytes = capacityFromSweep(pts, report.lineBytes);
    if (report.lineBytes && report.associativity) {
        report.numSets = static_cast<std::uint32_t>(
            report.cacheBytes /
            (static_cast<std::uint64_t>(report.lineBytes) *
             report.associativity));
    }
    report.replacementPolicy =
        classifyPolicy(evictionPoints(finder), report.associativity);
    return report;
}

} // namespace gpubox::attack
