/**
 * @file
 * Timing reverse engineering (paper Sec. III-A, Fig. 4).
 *
 * Reproduces the microbenchmark that discovers the four latency
 * clusters of the NUMA cache hierarchy -- local L2 hit, local miss
 * (HBM), remote L2 hit (via NVLink), remote miss -- and derives the
 * hit/miss classification thresholds every later attack stage uses.
 * Everything runs from user level: no flush instruction, no huge
 * pages, only ldcg loads and clock() reads.
 */

#ifndef GPUBOX_ATTACK_TIMING_ORACLE_HH
#define GPUBOX_ATTACK_TIMING_ORACLE_HH

#include <vector>

#include "rt/runtime.hh"
#include "util/kmeans1d.hh"
#include "util/types.hh"

namespace gpubox::attack
{

/**
 * Thresholds separating hits from misses, local and remote, plus the
 * measured cluster centers they were derived from. Everything here is
 * k-means-calibrated online against the platform under attack
 * (calibrate()); nothing in src/attack bakes in a latency constant.
 */
struct TimingThresholds
{
    /** Boundary between local L2 hit and local miss times. */
    double localBoundary = 0.0;
    /** Boundary between remote L2 hit and remote miss times. */
    double remoteBoundary = 0.0;

    /**
     * @name Measured cluster centers (Fig. 4 order: LH, LM, RH, RM)
     * Later attack stages derive their pacing from these -- e.g. the
     * covert channel sizes its symbol period off the remote-miss
     * center -- so the whole pipeline retunes per platform.
     * @{
     */
    double localHitCenter = 0.0;
    double localMissCenter = 0.0;
    double remoteHitCenter = 0.0;
    double remoteMissCenter = 0.0;
    /** @} */

    bool isLocalMiss(double cycles) const { return cycles > localBoundary; }
    bool isRemoteMiss(double cycles) const
    {
        return cycles > remoteBoundary;
    }
};

/** Full calibration output including the raw Fig. 4 samples. */
struct CalibrationResult
{
    TimingThresholds thresholds;
    /** Cluster centers in ascending order: LH, LM, RH, RM. */
    Kmeans1dResult clusters;
    std::vector<double> localHitSamples;
    std::vector<double> localMissSamples;
    std::vector<double> remoteHitSamples;
    std::vector<double> remoteMissSamples;

    /** All samples pooled (for histogram rendering). */
    std::vector<double> allSamples() const;
};

/** Runs the calibration microbenchmark. */
class TimingOracle
{
  public:
    /**
     * @param rt the box
     * @param proc attacker process (needs nothing but user level)
     */
    TimingOracle(rt::Runtime &rt, rt::Process &proc);

    /**
     * Measure local and remote hit/miss latencies.
     *
     * The kernel allocates a buffer on the target GPU, strides it at
     * the line size with ldcg (cold pass = miss samples, warm pass =
     * hit samples), once with the buffer local to the measuring GPU
     * and once with the buffer on the NVLink peer. Measurement values
     * are stored via shared memory, off the L2 path.
     *
     * @param local_gpu GPU the measuring kernel runs on
     * @param remote_gpu NVLink peer whose memory is probed remotely
     * @param lines_per_round lines accessed per round (paper: 48)
     * @param rounds independent rounds (fresh lines each round)
     */
    CalibrationResult calibrate(GpuId local_gpu, GpuId remote_gpu,
                                int lines_per_round = 48, int rounds = 20);

  private:
    /**
     * Cold+warm timing of @p count fresh lines of @p buffer starting
     * at @p first_line, from a kernel on @p exec_gpu.
     */
    void measureBuffer(GpuId exec_gpu, VAddr buffer, int first_line,
                       int count, std::vector<double> &cold,
                       std::vector<double> &warm);

    rt::Runtime &rt_;
    rt::Process &proc_;
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_TIMING_ORACLE_HH
