/**
 * @file
 * The cross-GPU prime+probe covert channel (paper Sec. IV, Figs. 8-10).
 *
 * The trojan runs on the GPU that owns the memory (local) and the spy
 * on an NVLink peer (remote); both hold eviction sets aligned to the
 * same physical L2 sets of the trojan's GPU. Per symbol window the
 * trojan either primes the set (bit '1', evicting the spy's lines) or
 * spins on dummy ALU work (bit '0'); the spy probes the set once per
 * window and decodes a '1' from a quorum of missing lines. One thread
 * block drives each cache set, so k aligned sets carry k parallel bit
 * streams (Fig. 9's bandwidth scaling).
 */

#ifndef GPUBOX_ATTACK_COVERT_CHANNEL_HH
#define GPUBOX_ATTACK_COVERT_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "attack/evset.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

namespace gpubox::attack::covert
{

/** Channel timing parameters. */
struct ChannelConfig
{
    /**
     * Symbol (bit) period per set in cycles. 0 (the default) derives
     * the period from the calibrated platform thresholds: 1.25x the
     * worst-case spy probe (remote-miss center plus the pipelined
     * issue gaps of the probed lines), rounded up to 100 cycles. On
     * the DGX-1 calibration this reproduces the paper-era hand tuning
     * of 1500 cycles; slower fabrics (PCIe) get proportionally longer
     * symbols instead of a corrupted channel.
     */
    Cycles symbolCycles = 0;
    /** Trojan primes this long after the symbol boundary. */
    Cycles trojanLeadCycles = 30;
    /** Spy probes at symbol start + spyPhase * symbolCycles. */
    double spyPhase = 0.55;
    /** Lines that must classify as miss to decode '1'. */
    unsigned missQuorum = 6;
    /** Cycles both sides wait before the first symbol. */
    Cycles warmupCycles = 20000;
    /**
     * Symbol-clock drift gain. The spy paces its symbol clock from its
     * own probe timing; queueing inflation of the probe duration
     * (which grows with the number of concurrently probing blocks)
     * turns into Gaussian slip of the next sample point. This is the
     * contention-induced synchronization variability the paper blames
     * for the error-rate growth with parallel sets (Sec. IV-C).
     */
    double driftGain = 40.0;
    /**
     * Latency spread (cycles) attributed to ordinary access jitter
     * rather than queueing; spread below this does not feed the drift.
     */
    double spreadJitterAllowance = 25.0;
    /**
     * Baseline symbol-clock slip (cycles, Gaussian sigma) present even
     * without contention: the two GPUs' clocks are synchronized only
     * through the tuned access-frequency protocol of Sec. IV-C, not a
     * shared clock.
     */
    double slipSigmaBase = 262.0;
    /** Shared memory per attack block (Sec. VI uses 32 KiB). */
    std::uint32_t sharedMemBytes = 32 * 1024;
    /** Trojan block width (one warp; paper Sec. IV-B). */
    std::uint32_t trojanThreads = 32;
    /** Spy block width (extra threads drain the timing buffer). */
    std::uint32_t spyThreads = 1024;
};

/** Result of one transmission. */
struct ChannelStats
{
    std::size_t bitsSent = 0;
    std::size_t bitErrors = 0;
    double errorRate = 0.0;
    Cycles elapsedCycles = 0;
    /** Raw channel bandwidth in megabits per second. */
    double bandwidthMbitPerSec = 0.0;
    /** Same in megabytes per second. */
    double bandwidthMBytePerSec = 0.0;
    /**
     * Spy-side probe trace of channel set 0 (average probe cycles per
     * symbol) -- the series plotted in Fig. 10.
     */
    std::vector<double> probeTraceSet0;
};

/** A configured trojan/spy channel over aligned eviction set pairs. */
class CovertChannel
{
  public:
    /**
     * @param pairs aligned (trojan set, spy set) pairs, one per
     *              parallel channel set
     */
    CovertChannel(rt::Runtime &rt, rt::Process &trojan_proc,
                  rt::Process &spy_proc, GpuId trojan_gpu, GpuId spy_gpu,
                  std::vector<std::pair<EvictionSet, EvictionSet>> pairs,
                  const TimingThresholds &thresholds,
                  const ChannelConfig &config = ChannelConfig());

    /**
     * Transmit @p bits (values 0/1) trojan->spy.
     *
     * @param received decoded bits, same length as @p bits
     * @param after_launch optional hook invoked once the trojan and
     *        spy blocks are resident but before simulated time runs;
     *        the Sec. VI experiment uses it to launch the SM-filler
     *        blocks that occupy the leftover SM resources
     */
    ChannelStats transmit(const std::vector<std::uint8_t> &bits,
                          std::vector<std::uint8_t> &received,
                          const std::function<void()> &after_launch = {});

    /** Convenience: send text, return decoded text + stats. */
    ChannelStats transmitMessage(const std::string &message,
                                 std::string &decoded);

    unsigned numSets() const
    {
        return static_cast<unsigned>(pairs_.size());
    }

    /** @name Bit/byte packing helpers @{ */
    static std::vector<std::uint8_t> toBits(const std::string &msg);
    static std::string fromBits(const std::vector<std::uint8_t> &bits);
    /** @} */

  private:
    rt::Runtime &rt_;
    rt::Process &trojanProc_;
    rt::Process &spyProc_;
    GpuId trojanGpu_;
    GpuId spyGpu_;
    std::vector<std::pair<EvictionSet, EvictionSet>> pairs_;
    TimingThresholds thresholds_;
    ChannelConfig config_;
};

} // namespace gpubox::attack::covert

#endif // GPUBOX_ATTACK_COVERT_CHANNEL_HH
