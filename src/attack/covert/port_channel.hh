/**
 * @file
 * Cross-pair switch-port covert channel.
 *
 * The prime+probe channel of channel.hh needs the trojan and spy to
 * share a physical L2 -- which MIG slicing closes and which requires
 * eviction-set discovery. On a switched fabric there is a second,
 * coarser shared resource: the switch itself. Two transfers between
 * *disjoint* GPU pairs whose routes cross the same switch contend on
 * its crossbar (and, when the routes overlap, on the shared port's
 * ingress/egress queues), so a trojan moving traffic between GPUs
 * (A,B) modulates the remote-access latency a spy measures between
 * GPUs (C,D) even though the four GPUs, the processes and their L2
 * slices are fully disjoint.
 *
 * Per symbol the trojan either floods its route with warp-parallel
 * remote reads (bit '1') or stays silent (bit '0'); the spy probes its
 * own route once per symbol and compares the *peak* per-line latency
 * (the first probed line pays the full queue; see transmit()) against
 * a threshold it self-calibrates from a known alternating preamble. No
 * eviction sets, no calibrated thresholds, no shared memory: the
 * channel needs nothing but peer access on two routes that intersect.
 */

#ifndef GPUBOX_ATTACK_COVERT_PORT_CHANNEL_HH
#define GPUBOX_ATTACK_COVERT_PORT_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/covert/channel.hh"
#include "noc/topology.hh"
#include "rt/runtime.hh"

namespace gpubox::attack::covert
{

/** One transfer pair: kernels run on src and read memory homed on
 *  dst, so every access rides the src->dst route (both legs). */
struct GpuPair
{
    GpuId src = -1;
    GpuId dst = -1;
};

/** Port-contention channel timing parameters. */
struct PortChannelConfig
{
    /**
     * Symbol (bit) period in cycles. 0 (the default) derives it from
     * the descriptor: at least twice the widest contention window of
     * the shared fabric and long enough for one trojan burst plus the
     * spy's probe (durations computed from the routes' uncontended
     * base cost), rounded up to a whole number of windows -- slower
     * fabrics get longer symbols. Symbols are window-aligned so the
     * trojan's burst and the spy's probe meet inside one contention
     * window deterministically.
     */
    Cycles symbolCycles = 0;
    /** Spy probes at symbol start + spyPhase * the fabric's widest
     *  contention window (inside the window the trojan just loaded). */
    double spyPhase = 0.5;
    /** Cycles both sides wait before the first symbol. */
    Cycles warmupCycles = 20000;
    /**
     * Known alternating symbols (1,0,1,0,...) prepended to every
     * transmission; the spy derives its decision threshold from their
     * latency means, so the channel self-calibrates per platform.
     */
    unsigned preambleSymbols = 8;
    /** Lines the spy reads per probe (means average access jitter). */
    unsigned spyProbeLines = 12;
    /** Lines per trojan congestion burst (one warp-parallel read);
     *  sized past an NVSwitch crossbar's free slots per window. */
    unsigned trojanBurstLines = 256;
    /** Upper bound on bursts per '1' symbol (pacing safety valve). */
    unsigned maxBurstsPerSymbol = 16;
    /**
     * Baseline symbol-clock slip (cycles, Gaussian sigma): the two
     * GPUs share no clock, as in channel.hh.
     */
    double slipSigmaBase = 150.0;
    std::uint32_t trojanThreads = 32;
    std::uint32_t spyThreads = 64;
    std::uint32_t sharedMemBytes = 16 * 1024;
};

/**
 * A configured cross-pair port-contention channel. Construction is
 * fatal unless the two pairs are disjoint, both routes are
 * peer-reachable and the routes actually intersect (share a switch
 * node or a link) -- use findInterferingPair() for discovery.
 */
class PortChannel
{
  public:
    PortChannel(rt::Runtime &rt, rt::Process &trojan_proc,
                rt::Process &spy_proc, GpuPair trojan_pair,
                GpuPair spy_pair,
                const PortChannelConfig &config = PortChannelConfig());

    /**
     * Transmit @p bits (values 0/1) trojan->spy. The preamble is
     * prepended internally; @p received holds only the payload
     * decisions. Stats count payload bits but charge the preamble's
     * air time against bandwidth.
     */
    ChannelStats transmit(const std::vector<std::uint8_t> &bits,
                          std::vector<std::uint8_t> &received);

    /** Switch nodes both routes traverse (possibly empty). */
    const std::vector<noc::NodeId> &sharedSwitches() const
    {
        return sharedSwitches_;
    }

    /** Links (by topology index) both routes traverse. */
    const std::vector<int> &sharedLinkIndices() const
    {
        return sharedLinks_;
    }

    /** Human-readable shared-resource summary, e.g. "sw1" or
     *  "sw8, sw9, link 8-9". */
    std::string sharedResourceString() const;

    Cycles symbolCycles() const { return config_.symbolCycles; }

    /** True when the routes of @p a and @p b share a switch node or a
     *  link (the premise of this channel). */
    static bool routesInterfere(const noc::Topology &topo, GpuPair a,
                                GpuPair b);

    /**
     * Deterministically pick the lowest-id spy pair disjoint from
     * @p trojan_pair that is peer-reachable and whose route interferes
     * with the trojan's. @return false when the platform offers none
     * (e.g. every pair rides a dedicated point-to-point link).
     */
    static bool findInterferingPair(const rt::Runtime &rt,
                                    GpuPair trojan_pair,
                                    GpuPair *spy_pair);

    /**
     * Like findInterferingPair, but cross-*chassis*: the spy pair's
     * two GPUs must sit in two chassis islands distinct from each
     * other AND from both trojan GPUs' islands, so all four GPUs
     * occupy four different boxes and the interference the spy senses
     * can only come from inter-box hardware (the shared spine).
     * Requires the trojan pair itself to span two islands. @return
     * false on single-chassis platforms (numIslands() < 2) -- the
     * measurable "this channel is impossible inside one box" outcome.
     */
    static bool findCrossBoxInterferingPair(const rt::Runtime &rt,
                                            GpuPair trojan_pair,
                                            GpuPair *spy_pair);

  private:
    /** Uncontended duration estimate of one warp-parallel read of
     *  @p lines remote lines along @p pair's route. */
    Cycles probeEstimate(const GpuPair &pair, unsigned lines) const;

    rt::Runtime &rt_;
    rt::Process &trojanProc_;
    rt::Process &spyProc_;
    GpuPair trojanPair_;
    GpuPair spyPair_;
    PortChannelConfig config_;
    std::vector<noc::NodeId> sharedSwitches_;
    std::vector<int> sharedLinks_;
    std::vector<VAddr> trojanLines_;
    std::vector<VAddr> spyLines_;
    Cycles trojanBurstEstimate_ = 0;
    /** Widest contention window of the shared fabric (alignment). */
    Cycles windowCycles_ = 0;
};

} // namespace gpubox::attack::covert

#endif // GPUBOX_ATTACK_COVERT_PORT_CHANNEL_HH
