#include "attack/covert/port_channel.hh"

#include <algorithm>

#include "util/log.hh"

namespace gpubox::attack::covert
{

namespace
{

/** Intermediate switch nodes and link indices of one route. */
void
routeResources(const noc::Topology &topo, const GpuPair &p,
               std::vector<noc::NodeId> *switches, std::vector<int> *links)
{
    const noc::RouteView path = topo.route(p.src, p.dst);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        links->push_back(topo.linkIndex(path[i], path[i + 1]));
        if (topo.isSwitch(path[i + 1]) && i + 2 < path.size())
            switches->push_back(path[i + 1]);
    }
}

} // namespace

bool
PortChannel::routesInterfere(const noc::Topology &topo, GpuPair a,
                             GpuPair b)
{
    if (!topo.reachable(a.src, a.dst) || !topo.reachable(b.src, b.dst))
        return false;
    std::vector<noc::NodeId> asw, bsw;
    std::vector<int> alink, blink;
    routeResources(topo, a, &asw, &alink);
    routeResources(topo, b, &bsw, &blink);
    for (noc::NodeId s : asw)
        if (std::find(bsw.begin(), bsw.end(), s) != bsw.end())
            return true;
    for (int l : alink)
        if (std::find(blink.begin(), blink.end(), l) != blink.end())
            return true;
    return false;
}

bool
PortChannel::findInterferingPair(const rt::Runtime &rt,
                                 GpuPair trojan_pair, GpuPair *spy_pair)
{
    const noc::Topology &topo = rt.topology();
    for (GpuId c = 0; c < rt.numGpus(); ++c) {
        if (c == trojan_pair.src || c == trojan_pair.dst)
            continue;
        for (GpuId d = c + 1; d < rt.numGpus(); ++d) {
            if (d == trojan_pair.src || d == trojan_pair.dst)
                continue;
            if (!rt.peerReachable(c, d))
                continue;
            if (!routesInterfere(topo, trojan_pair, GpuPair{c, d}))
                continue;
            if (spy_pair)
                *spy_pair = GpuPair{c, d};
            return true;
        }
    }
    return false;
}

bool
PortChannel::findCrossBoxInterferingPair(const rt::Runtime &rt,
                                         GpuPair trojan_pair,
                                         GpuPair *spy_pair)
{
    const noc::Topology &topo = rt.topology();
    if (topo.numIslands() < 2)
        return false;
    const int ti = topo.island(trojan_pair.src);
    const int tj = topo.island(trojan_pair.dst);
    if (ti < 0 || tj < 0 || ti == tj)
        return false; // the trojan must load an inter-box route
    for (GpuId c = 0; c < rt.numGpus(); ++c) {
        const int ci = topo.island(c);
        if (ci == ti || ci == tj)
            continue;
        for (GpuId d = c + 1; d < rt.numGpus(); ++d) {
            const int di = topo.island(d);
            if (di == ti || di == tj || di == ci)
                continue;
            if (!rt.peerReachable(c, d))
                continue;
            if (!routesInterfere(topo, trojan_pair, GpuPair{c, d}))
                continue;
            if (spy_pair)
                *spy_pair = GpuPair{c, d};
            return true;
        }
    }
    return false;
}

PortChannel::PortChannel(rt::Runtime &rt, rt::Process &trojan_proc,
                         rt::Process &spy_proc, GpuPair trojan_pair,
                         GpuPair spy_pair,
                         const PortChannelConfig &config)
    : rt_(rt), trojanProc_(trojan_proc), spyProc_(spy_proc),
      trojanPair_(trojan_pair), spyPair_(spy_pair), config_(config)
{
    const noc::Topology &topo = rt_.topology();
    for (const GpuPair *p : {&trojanPair_, &spyPair_}) {
        if (p->src == p->dst || !rt_.peerReachable(p->src, p->dst))
            fatal("port channel: GPU pair (", p->src, ",", p->dst,
                  ") is not a peer-reachable pair on platform '",
                  rt_.config().platform, "'");
    }
    for (GpuId g : {spyPair_.src, spyPair_.dst}) {
        if (g == trojanPair_.src || g == trojanPair_.dst)
            fatal("port channel: spy pair (", spyPair_.src, ",",
                  spyPair_.dst, ") overlaps trojan pair (",
                  trojanPair_.src, ",", trojanPair_.dst,
                  ") -- the cross-pair premise needs four distinct "
                  "GPUs");
    }

    // The shared fabric is the channel medium; refusing to construct
    // without one turns a silent 50%-error channel into a usage error.
    std::vector<noc::NodeId> tsw, ssw;
    std::vector<int> tlink, slink;
    routeResources(topo, trojanPair_, &tsw, &tlink);
    routeResources(topo, spyPair_, &ssw, &slink);
    for (noc::NodeId s : tsw)
        if (std::find(ssw.begin(), ssw.end(), s) != ssw.end())
            sharedSwitches_.push_back(s);
    for (int l : tlink)
        if (std::find(slink.begin(), slink.end(), l) != slink.end())
            sharedLinks_.push_back(l);
    if (sharedSwitches_.empty() && sharedLinks_.empty())
        fatal("port channel: routes ",
              topo.routeString(trojanPair_.src, trojanPair_.dst),
              " and ", topo.routeString(spyPair_.src, spyPair_.dst),
              " share no switch or link on platform '",
              rt_.config().platform,
              "' -- no contention to modulate");

    rt_.enablePeerAccess(trojanProc_, trojanPair_.src, trojanPair_.dst)
        .orFatal();
    rt_.enablePeerAccess(spyProc_, spyPair_.src, spyPair_.dst)
        .orFatal();

    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    const VAddr tbuf = rt_.deviceMalloc(
        trojanProc_, trojanPair_.dst,
        static_cast<std::uint64_t>(config_.trojanBurstLines) * line);
    for (unsigned i = 0; i < config_.trojanBurstLines; ++i)
        trojanLines_.push_back(tbuf + static_cast<VAddr>(i) * line);
    const VAddr sbuf = rt_.deviceMalloc(
        spyProc_, spyPair_.dst,
        static_cast<std::uint64_t>(config_.spyProbeLines) * line);
    for (unsigned i = 0; i < config_.spyProbeLines; ++i)
        spyLines_.push_back(sbuf + static_cast<VAddr>(i) * line);

    trojanBurstEstimate_ =
        probeEstimate(trojanPair_, config_.trojanBurstLines);

    // Widest contention window of the fabric: symbols are aligned to
    // it so the trojan's burst (charged at the symbol boundary) and
    // the spy's probe land in the *same* window every symbol.
    windowCycles_ = rt_.config().link.windowCycles;
    for (const noc::LinkParams &p : rt_.config().perLink)
        windowCycles_ = std::max(windowCycles_, p.windowCycles);
    // Heterogeneous switch fabrics (superpods) align to the widest
    // switch window too -- the spine's, on the cross-box channel.
    for (noc::NodeId sw = topo.numGpus(); sw < topo.numNodes(); ++sw)
        windowCycles_ = std::max(
            windowCycles_,
            rt_.fabric().switchParamsOf(sw).windowCycles);
    if (windowCycles_ == 0)
        windowCycles_ = 1;

    if (config_.symbolCycles == 0) {
        const Cycles spy_probe =
            probeEstimate(spyPair_, config_.spyProbeLines);
        const Cycles target =
            std::max({2 * windowCycles_, 2 * spy_probe,
                      trojanBurstEstimate_ + spy_probe});
        config_.symbolCycles =
            (target + windowCycles_ - 1) / windowCycles_ *
            windowCycles_;
    }
}

Cycles
PortChannel::probeEstimate(const GpuPair &pair, unsigned lines) const
{
    const rt::TimingParams &t = rt_.timing();
    const Cycles leg = rt_.fabric().routeBaseCycles(pair.src, pair.dst);
    const Cycles worst_line =
        2 * leg + t.hbmCycles + t.remoteMissExtra;
    return worst_line +
           (lines ? (lines - 1) * t.pipelineGapCycles : 0);
}

std::string
PortChannel::sharedResourceString() const
{
    const noc::Topology &topo = rt_.topology();
    std::string out;
    for (noc::NodeId s : sharedSwitches_) {
        if (!out.empty())
            out += ", ";
        out += topo.nodeName(s);
    }
    for (int l : sharedLinks_) {
        if (!out.empty())
            out += ", ";
        const auto [a, b] = topo.links()[static_cast<std::size_t>(l)];
        out += "link " + topo.nodeName(a) + "-" + topo.nodeName(b);
    }
    return out.empty() ? "(none)" : out;
}

ChannelStats
PortChannel::transmit(const std::vector<std::uint8_t> &bits,
                      std::vector<std::uint8_t> &received)
{
    // Known alternating preamble first, payload after.
    std::vector<std::uint8_t> all_bits;
    all_bits.reserve(config_.preambleSymbols + bits.size());
    for (unsigned p = 0; p < config_.preambleSymbols; ++p)
        all_bits.push_back((p % 2 == 0) ? 1 : 0);
    all_bits.insert(all_bits.end(), bits.begin(), bits.end());

    const std::size_t num_symbols = all_bits.size();
    const Cycles symbol = config_.symbolCycles;
    // Window-aligned start (see symbolCycles): with symbol a multiple
    // of the window, every symbol boundary opens a fresh window.
    const Cycles start =
        (rt_.engine().now() + config_.warmupCycles + windowCycles_ -
         1) /
        windowCycles_ * windowCycles_;
    std::vector<double> peaks(num_symbols, 0.0);

    // ---- Trojan: flood the route during '1' symbols ----
    auto trojan_kernel = [&, start, symbol,
                          num_symbols](rt::BlockCtx &ctx) -> sim::Task {
        for (std::size_t s = 0; s < num_symbols; ++s) {
            co_await ctx.waitUntil(start + s * symbol);
            if (all_bits[s] != 1)
                continue;
            const Cycles end = start + (s + 1) * symbol;
            for (unsigned b = 0; b < config_.maxBurstsPerSymbol; ++b) {
                if (ctx.actor().now() + trojanBurstEstimate_ > end)
                    break;
                co_await ctx.probeSet(trojanLines_);
            }
        }
    };

    // ---- Spy: one latency sample per symbol on its own route ----
    auto spy_kernel = [&, start, symbol,
                       num_symbols](rt::BlockCtx &ctx) -> sim::Task {
        // Warm pass so later probes hit the home L2 consistently.
        co_await ctx.waitUntil(start > symbol ? start - symbol : 0);
        co_await ctx.probeSet(spyLines_);
        for (std::size_t s = 0; s < num_symbols; ++s) {
            const Cycles ideal =
                start + s * symbol +
                static_cast<Cycles>(
                    config_.spyPhase *
                    static_cast<double>(windowCycles_));
            const double slip =
                config_.slipSigmaBase > 0.0
                    ? ctx.actor().rng().normal(0.0,
                                               config_.slipSigmaBase)
                    : 0.0;
            Cycles target = ideal;
            if (slip > 0.0) {
                target += static_cast<Cycles>(slip);
            } else if (ideal > static_cast<Cycles>(-slip)) {
                target = ideal - static_cast<Cycles>(-slip);
            }
            co_await ctx.waitUntil(target);
            auto res = co_await ctx.probeSet(spyLines_);
            // Peak per-line latency, not the mean: the first probed
            // line pays the full crossbar/port queue, while later
            // lines may land after the spy's own response legs rolled
            // the contention window forward. The peak survives that
            // roll on every fabric shape.
            double peak = 0.0;
            for (Cycles c : res.perLineCycles)
                peak = std::max(peak, static_cast<double>(c));
            peaks[s] = peak;
            co_await ctx.sharedAccess();
        }
    };

    gpu::KernelConfig tcfg;
    tcfg.name = "port-trojan";
    tcfg.numBlocks = 1;
    tcfg.threadsPerBlock = config_.trojanThreads;
    tcfg.sharedMemBytes = config_.sharedMemBytes;

    gpu::KernelConfig scfg;
    scfg.name = "port-spy";
    scfg.numBlocks = 1;
    scfg.threadsPerBlock = config_.spyThreads;
    scfg.sharedMemBytes = config_.sharedMemBytes;

    rt::Stream &tstream = rt_.stream(trojanProc_, trojanPair_.src);
    rt::Stream &sstream = rt_.stream(spyProc_, spyPair_.src);
    tstream.launch(tcfg, trojan_kernel);
    sstream.launch(scfg, spy_kernel);
    rt_.sync(tstream);
    rt_.sync(sstream);

    // Self-calibrated decision threshold: midpoint of the preamble's
    // '1' and '0' peak latencies. With no interference the two levels
    // coincide and the payload decodes at chance -- the measurable
    // "this platform has no shared port" outcome.
    double sum1 = 0.0, sum0 = 0.0;
    unsigned n1 = 0, n0 = 0;
    for (unsigned p = 0; p < config_.preambleSymbols; ++p) {
        if (all_bits[p] == 1) {
            sum1 += peaks[p];
            ++n1;
        } else {
            sum0 += peaks[p];
            ++n0;
        }
    }
    const double thr = ((n1 ? sum1 / n1 : 0.0) +
                        (n0 ? sum0 / n0 : 0.0)) /
                       2.0;

    received.assign(bits.size(), 0);
    std::size_t errors = 0;
    for (std::size_t j = 0; j < bits.size(); ++j) {
        received[j] =
            peaks[config_.preambleSymbols + j] > thr ? 1 : 0;
        if (received[j] != bits[j])
            ++errors;
    }

    ChannelStats stats;
    stats.bitsSent = bits.size();
    stats.bitErrors = errors;
    stats.errorRate = bits.empty() ? 0.0
                                   : static_cast<double>(errors) /
                                         static_cast<double>(bits.size());
    stats.elapsedCycles = num_symbols * symbol;
    const double seconds = static_cast<double>(stats.elapsedCycles) /
                           (rt_.timing().clockGhz * 1e9);
    stats.bandwidthMbitPerSec =
        seconds > 0.0
            ? static_cast<double>(bits.size()) / seconds / 1e6
            : 0.0;
    stats.bandwidthMBytePerSec = stats.bandwidthMbitPerSec / 8.0;
    stats.probeTraceSet0 = std::move(peaks);
    return stats;
}

} // namespace gpubox::attack::covert
