#include "attack/covert/channel.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace gpubox::attack::covert
{

CovertChannel::CovertChannel(
    rt::Runtime &rt, rt::Process &trojan_proc, rt::Process &spy_proc,
    GpuId trojan_gpu, GpuId spy_gpu,
    std::vector<std::pair<EvictionSet, EvictionSet>> pairs,
    const TimingThresholds &thresholds, const ChannelConfig &config)
    : rt_(rt), trojanProc_(trojan_proc), spyProc_(spy_proc),
      trojanGpu_(trojan_gpu), spyGpu_(spy_gpu), pairs_(std::move(pairs)),
      thresholds_(thresholds), config_(config)
{
    if (pairs_.empty())
        fatal("covert channel needs at least one aligned set pair");
    if (!rt_.peerReachable(spy_gpu, trojan_gpu))
        fatal("covert channel: GPU ", spy_gpu, " cannot reach GPU ",
              trojan_gpu, " for peer access on platform '",
              rt_.config().platform, "'");
    if (config_.symbolCycles == 0) {
        // Derive the symbol period from the calibrated thresholds
        // (see ChannelConfig::symbolCycles): the spy's probe of one
        // eviction set must fit with margin for clock slip.
        std::size_t probe_lines = 0;
        for (const auto &[t, s] : pairs_)
            probe_lines = std::max(probe_lines, s.lines.size());
        const double miss_center =
            thresholds_.remoteMissCenter > 0.0
                ? thresholds_.remoteMissCenter
                : 1.2 * thresholds_.remoteBoundary;
        const double probe =
            miss_center +
            static_cast<double>((probe_lines ? probe_lines - 1 : 0) *
                                rt_.timing().pipelineGapCycles);
        const auto target = static_cast<Cycles>(1.25 * probe);
        config_.symbolCycles = (target + 99) / 100 * 100;
    }
}

ChannelStats
CovertChannel::transmit(const std::vector<std::uint8_t> &bits,
                        std::vector<std::uint8_t> &received,
                        const std::function<void()> &after_launch)
{
    const unsigned k = numSets();
    const std::size_t num_symbols = (bits.size() + k - 1) / k;
    const Cycles start = rt_.engine().now() + config_.warmupCycles;
    const Cycles symbol = config_.symbolCycles;

    // Bit j is carried by set j % k in symbol j / k.
    auto bit_at = [&](unsigned set, std::size_t sym) -> int {
        const std::size_t j = sym * k + set;
        return j < bits.size() ? bits[j] : -1;
    };

    // Spy-side decode storage: [set][symbol].
    std::vector<std::vector<std::uint8_t>> decoded(
        k, std::vector<std::uint8_t>(num_symbols, 0));
    std::vector<double> trace_set0(num_symbols, 0.0);

    // ---- Trojan: one block per channel set ----
    auto trojan_kernel = [&, start, symbol,
                          num_symbols](rt::BlockCtx &ctx) -> sim::Task {
        const unsigned set = ctx.blockIdx();
        const auto &lines = pairs_[set].first.lines;
        for (std::size_t s = 0; s < num_symbols; ++s) {
            co_await ctx.waitUntil(start + s * symbol +
                                   config_.trojanLeadCycles);
            if (bit_at(set, s) == 1) {
                // Prime: evict the spy's lines from the physical set.
                co_await ctx.probeSet(lines);
            } else {
                // Keep busy off the memory path (dummy trig work).
                co_await ctx.compute(16);
            }
        }
    };

    // ---- Spy: one block per channel set ----
    auto spy_kernel = [&, start, symbol,
                       num_symbols](rt::BlockCtx &ctx) -> sim::Task {
        const unsigned set = ctx.blockIdx();
        const auto &lines = pairs_[set].second.lines;
        // Initial prime so the first symbol has spy lines resident.
        co_await ctx.waitUntil(start - symbol);
        co_await ctx.probeSet(lines);
        // Contention-induced clock slip: the within-probe latency
        // spread (max - min over the probed lines) is flat when the
        // L2 ports are free and ramps when concurrent blocks queue.
        // Spread above the self-calibrated baseline slips the spy's
        // next sample point (see ChannelConfig::driftGain) -- this is
        // independent of whether the probe hit or missed.
        double base_spread = -1.0;
        double spread_extra = 0.0;
        for (std::size_t s = 0; s < num_symbols; ++s) {
            const Cycles ideal =
                start + s * symbol +
                static_cast<Cycles>(config_.spyPhase *
                                    static_cast<double>(symbol));
            const double sigma = std::hypot(
                config_.slipSigmaBase, config_.driftGain * spread_extra);
            const double slip =
                sigma > 0.0 ? ctx.actor().rng().normal(0.0, sigma) : 0.0;
            Cycles target = ideal;
            if (slip > 0.0) {
                target += static_cast<Cycles>(slip);
            } else if (ideal > static_cast<Cycles>(-slip)) {
                target = ideal - static_cast<Cycles>(-slip);
            }
            co_await ctx.waitUntil(target);
            auto res = co_await ctx.probeSet(lines);
            if (!res.perLineCycles.empty()) {
                const auto [mn, mx] = std::minmax_element(
                    res.perLineCycles.begin(), res.perLineCycles.end());
                const double spread = static_cast<double>(*mx - *mn);
                if (base_spread < 0.0 || spread < base_spread)
                    base_spread = spread;
                spread_extra =
                    std::max(0.0, spread - base_spread -
                                      config_.spreadJitterAllowance);
            }
            unsigned miss_count = 0;
            double sum = 0.0;
            for (Cycles c : res.perLineCycles) {
                sum += static_cast<double>(c);
                if (thresholds_.isRemoteMiss(static_cast<double>(c)))
                    ++miss_count;
            }
            decoded[set][s] = miss_count >= config_.missQuorum ? 1 : 0;
            if (set == 0 && !res.perLineCycles.empty()) {
                trace_set0[s] =
                    sum / static_cast<double>(res.perLineCycles.size());
            }
            // Drain the timing buffer via shared memory.
            co_await ctx.sharedAccess();
        }
    };

    gpu::KernelConfig tcfg;
    tcfg.name = "covert-trojan";
    tcfg.numBlocks = k;
    tcfg.threadsPerBlock = config_.trojanThreads;
    tcfg.sharedMemBytes = config_.sharedMemBytes;

    gpu::KernelConfig scfg;
    scfg.name = "covert-spy";
    scfg.numBlocks = k;
    scfg.threadsPerBlock = config_.spyThreads;
    scfg.sharedMemBytes = config_.sharedMemBytes;

    // One stream per side: the trojan primes while the spy probes,
    // overlapped in simulated time; the host joins both queues.
    rt::Stream &tstream = rt_.stream(trojanProc_, trojanGpu_);
    rt::Stream &sstream = rt_.stream(spyProc_, spyGpu_);
    tstream.launch(tcfg, trojan_kernel);
    sstream.launch(scfg, spy_kernel);
    if (after_launch)
        after_launch();
    rt_.sync(tstream);
    rt_.sync(sstream);

    // Reassemble the interleaved bit streams.
    received.assign(bits.size(), 0);
    std::size_t errors = 0;
    for (std::size_t j = 0; j < bits.size(); ++j) {
        received[j] = decoded[j % k][j / k];
        if (received[j] != bits[j])
            ++errors;
    }

    ChannelStats stats;
    stats.bitsSent = bits.size();
    stats.bitErrors = errors;
    stats.errorRate = bits.empty() ? 0.0
                                   : static_cast<double>(errors) /
                                         static_cast<double>(bits.size());
    stats.elapsedCycles = num_symbols * symbol;
    const double seconds = static_cast<double>(stats.elapsedCycles) /
                           (rt_.timing().clockGhz * 1e9);
    stats.bandwidthMbitPerSec =
        static_cast<double>(bits.size()) / seconds / 1e6;
    stats.bandwidthMBytePerSec = stats.bandwidthMbitPerSec / 8.0;
    stats.probeTraceSet0 = std::move(trace_set0);
    return stats;
}

ChannelStats
CovertChannel::transmitMessage(const std::string &message,
                               std::string &decoded)
{
    const std::vector<std::uint8_t> bits = toBits(message);
    std::vector<std::uint8_t> rx;
    ChannelStats stats = transmit(bits, rx);
    decoded = fromBits(rx);
    return stats;
}

std::vector<std::uint8_t>
CovertChannel::toBits(const std::string &msg)
{
    std::vector<std::uint8_t> bits;
    bits.reserve(msg.size() * 8);
    for (unsigned char c : msg)
        for (int b = 7; b >= 0; --b)
            bits.push_back((c >> b) & 1);
    return bits;
}

std::string
CovertChannel::fromBits(const std::vector<std::uint8_t> &bits)
{
    std::string msg;
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        unsigned char c = 0;
        for (int b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) | (bits[i + b] & 1));
        msg.push_back(static_cast<char>(c));
    }
    return msg;
}

} // namespace gpubox::attack::covert
