/**
 * @file
 * Eviction set representation.
 */

#ifndef GPUBOX_ATTACK_EVSET_HH
#define GPUBOX_ATTACK_EVSET_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace gpubox::attack
{

/**
 * A set of virtual line addresses that (the attacker believes) all hash
 * to the same physical L2 cache set. With as many lines as the cache
 * associativity, accessing the whole set replaces the set's contents.
 */
struct EvictionSet
{
    std::vector<VAddr> lines;

    std::size_t size() const { return lines.size(); }
    bool empty() const { return lines.empty(); }
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_EVSET_HH
