/**
 * @file
 * Online eviction set discovery from user level (paper Sec. III-B,
 * Algorithm 1).
 *
 * The attacker allocates a pool of pages on the target GPU and, for a
 * chosen target line, pointer-chases growing prefixes of candidate
 * lines, re-probing the target after each chase: the first prefix that
 * evicts the target identifies its last element as a same-set line.
 * Removing found members and repeating recovers the conflict set.
 *
 * Two optimizations the paper alludes to ("we adopted some
 * optimization methodologies by skipping some address accesses",
 * "the data belonging to a page is indexed consecutively in the
 * cache") are implemented explicitly:
 *  - eviction is monotone in the chased prefix under LRU, so the
 *    eviction point is found by binary instead of linear search;
 *  - two lines conflict iff their pages have the same (hidden) color
 *    and the lines share the in-page offset, so conflict grouping of
 *    the pool pages at one offset yields eviction sets for *every*
 *    set the pool covers.
 */

#ifndef GPUBOX_ATTACK_EVSET_FINDER_HH
#define GPUBOX_ATTACK_EVSET_FINDER_HH

#include <cstdint>
#include <vector>

#include "attack/evset.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

namespace gpubox::attack
{

/** Tunables of the finder. */
struct FinderConfig
{
    /**
     * Pages in the probed pool. Must be large enough that every page
     * color has > 2*associativity members (default 160 gives ~40 per
     * color on the DGX-1 geometry).
     */
    int poolPages = 160;
    /** Shared memory the measurement kernels reserve per block. */
    std::uint32_t sharedMemBytes = 16 * 1024;
};

/** Discovers conflict groups and eviction sets on a target GPU. */
class EvictionSetFinder
{
  public:
    /**
     * @param rt the box
     * @param proc attacker process
     * @param exec_gpu GPU the measurement kernels run on
     * @param mem_gpu GPU whose memory (and hence L2) is probed; equal
     *                to exec_gpu for a local attack, an NVLink peer
     *                for the cross-GPU attack
     * @param thresholds calibrated hit/miss boundaries
     */
    EvictionSetFinder(rt::Runtime &rt, rt::Process &proc, GpuId exec_gpu,
                      GpuId mem_gpu, const TimingThresholds &thresholds,
                      const FinderConfig &config = FinderConfig());

    ~EvictionSetFinder();

    EvictionSetFinder(const EvictionSetFinder &) = delete;
    EvictionSetFinder &operator=(const EvictionSetFinder &) = delete;

    /** Run the full discovery: conflict groups plus associativity. */
    void run();

    /** @name Results (valid after run()) @{ */

    /** Measured cache associativity (paper Table I: 16). */
    unsigned associativity() const { return assoc_; }

    /** Conflict groups: page indices of the pool, one group per color. */
    const std::vector<std::vector<int>> &groups() const { return groups_; }

    std::size_t numGroups() const { return groups_.size(); }

    /** Lines per page == sets covered per group. */
    std::uint32_t linesPerPage() const { return linesPerPage_; }

    /**
     * Eviction set for (group, in-page line offset).
     * @param count lines in the set; 0 means the associativity
     */
    EvictionSet evictionSet(std::size_t group, std::uint32_t line_in_page,
                            unsigned count = 0) const;

    /** Every derivable eviction set (groups x in-page offsets). */
    std::vector<EvictionSet> coveringSets(unsigned count = 0) const;

    /** @} */

    /** @name Fig. 6 aliasing study @{ */

    /**
     * Naive per-target discovery: minimal eviction set (associativity
     * lines) for one target page, without the grouping optimization.
     * Sets found this way for same-color targets alias.
     */
    EvictionSet naiveSetFor(int target_page);

    /**
     * Test whether two eviction sets alias (map to the same physical
     * set): chase the union twice; a same-set union of more than
     * `associativity` lines thrashes and misses on the second pass.
     */
    bool aliasTest(const EvictionSet &a, const EvictionSet &b);

    /** @} */

    /** @name Attack-cost accounting @{ */
    std::uint64_t kernelLaunches() const { return launches_; }
    std::uint64_t timedProbes() const { return probes_; }
    /** @} */

    /** Pool line address for (page, in-page line). */
    VAddr lineAddr(int page, std::uint32_t line_in_page) const;

    VAddr poolBase() const { return pool_; }

    /** Pages in the probed pool (valid target-page range). */
    int poolPages() const { return config_.poolPages; }

  private:
    /**
     * One Algorithm-1 kernel: access target, chase @p chase, re-probe
     * target. @return true when the re-probe missed (target evicted).
     */
    bool targetEvictedBy(VAddr target, const std::vector<VAddr> &chase);

    bool isMiss(double cycles) const;

    /**
     * Find same-set members of @p target among @p candidates by
     * repeated binary-searched Algorithm-1 scans. Removes found
     * members from @p candidates. Stalls once fewer than the
     * associativity of conflicts remain hidden (no eviction possible).
     */
    std::vector<int> scanConflicts(int target, std::vector<int> &candidates);

    /**
     * Boosted scan: prepend up to associativity-1 already-known group
     * members to the chase so that even a single hidden conflict among
     * @p candidates evicts the target. Moves every conflicting
     * candidate into @p group (complete conflict recovery; requires
     * the associativity to be known).
     */
    void boostScan(std::vector<int> &group, std::vector<int> &candidates);

    /** Smallest prefix count of same-set lines that evicts target. */
    unsigned discoverAssocWith(VAddr target,
                               const std::vector<int> &members);

    rt::Runtime &rt_;
    rt::Process &proc_;
    GpuId execGpu_;
    GpuId memGpu_;
    TimingThresholds thresholds_;
    FinderConfig config_;
    /** Probe kernels run back-to-back on one dedicated stream. */
    rt::Stream &probeStream_;

    VAddr pool_ = 0;
    std::uint32_t lineBytes_;
    std::uint64_t pageBytes_;
    std::uint32_t linesPerPage_;

    unsigned assoc_ = 0;
    std::vector<std::vector<int>> groups_;
    std::uint64_t launches_ = 0;
    std::uint64_t probes_ = 0;
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_EVSET_FINDER_HH
