/**
 * @file
 * End-to-end L2 architecture reverse engineering (paper Table I).
 *
 * Combines user-level experiments into the full parameter report:
 *  - line size: co-residence test (loading one byte caches the whole
 *    line; the first stride that stops co-hitting is the line size);
 *  - cache capacity / number of sets: working-set sweep (second-pass
 *    miss rate cliffs when the set of resident lines exceeds the
 *    capacity);
 *  - associativity: eviction-point measurement over a conflict group
 *    (EvictionSetFinder);
 *  - replacement policy: determinism of the eviction point across
 *    repetitions (LRU evicts exactly at the associativity every time;
 *    randomized policies scatter).
 */

#ifndef GPUBOX_ATTACK_REVERSE_ENGINEER_HH
#define GPUBOX_ATTACK_REVERSE_ENGINEER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/evset_finder.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"

namespace gpubox::attack
{

/** The recovered Table I. */
struct CacheArchReport
{
    std::uint32_t lineBytes = 0;
    std::uint64_t cacheBytes = 0;
    std::uint32_t numSets = 0;
    unsigned associativity = 0;
    std::string replacementPolicy; // "LRU", "pseudo-LRU" or "randomized"

    /** Render as the paper's Table I. */
    std::string toTable() const;
};

/** Working-set sweep point (supporting evidence for the capacity). */
struct CapacityPoint
{
    std::uint64_t residentLines;
    double secondPassMissRate;
};

/** Orchestrates the reverse engineering experiments. */
class ReverseEngineer
{
  public:
    ReverseEngineer(rt::Runtime &rt, rt::Process &proc, GpuId gpu,
                    const TimingThresholds &thresholds);

    /** Run everything and return the recovered architecture. */
    CacheArchReport run(EvictionSetFinder &finder);

    /** Line-size co-residence experiment. */
    std::uint32_t discoverLineSize(std::uint32_t max_stride = 1024);

    /** Working-set sweep; the knee is the capacity. */
    std::vector<CapacityPoint>
    capacitySweep(const std::vector<std::uint64_t> &line_counts);

    /** Capacity from the sweep: largest count with ~zero miss rate. */
    std::uint64_t capacityFromSweep(const std::vector<CapacityPoint> &pts,
                                    std::uint32_t line_bytes) const;

    /**
     * Eviction-point determinism over @p trials repetitions.
     * @return observed eviction points (distinct same-set lines
     *         accessed before the target missed)
     */
    std::vector<unsigned> evictionPoints(EvictionSetFinder &finder,
                                         int trials = 12);

    /** Classify the policy from the eviction points. */
    static std::string classifyPolicy(const std::vector<unsigned> &points,
                                      unsigned associativity);

  private:
    rt::Runtime &rt_;
    rt::Process &proc_;
    GpuId gpu_;
    TimingThresholds thresholds_;
};

} // namespace gpubox::attack

#endif // GPUBOX_ATTACK_REVERSE_ENGINEER_HH
