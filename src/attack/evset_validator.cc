#include "attack/evset_validator.hh"

#include "util/log.hh"

namespace gpubox::attack
{

EvictionSetValidator::EvictionSetValidator(rt::Runtime &rt,
                                           rt::Process &proc,
                                           GpuId exec_gpu, GpuId mem_gpu,
                                           const TimingThresholds &th)
    : rt_(rt), proc_(proc), execGpu_(exec_gpu), memGpu_(mem_gpu),
      thresholds_(th)
{}

ValidationSeries
EvictionSetValidator::sweep(const EvictionSet &set, unsigned max_lines)
{
    if (set.lines.size() < max_lines + 1)
        fatal("validator sweep needs ", max_lines + 1,
              " conflict lines, got ", set.lines.size());

    ValidationSeries series;
    const bool remote = execGpu_ != memGpu_;

    for (unsigned n = 1; n <= max_lines; ++n) {
        const VAddr target = set.lines[0];
        Cycles probe = 0;

        auto kernel = [&, target, n](rt::BlockCtx &ctx) -> sim::Task {
            co_await ctx.ldcg64(target);
            for (unsigned i = 1; i <= n; ++i)
                co_await ctx.ldcg64(set.lines[i]);
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(target);
            const Cycles t1 = ctx.clock();
            probe = t1 - t0;
            co_await ctx.sharedAccess();
        };

        gpu::KernelConfig cfg;
        cfg.name = "evset-validate";
        cfg.sharedMemBytes = 16 * 1024;
        rt::Stream &stream = rt_.stream(proc_, execGpu_);
        stream.launch(cfg, kernel);
        rt_.sync(stream);

        const double cycles = static_cast<double>(probe);
        series.linesAccessed.push_back(n);
        series.probeCycles.push_back(cycles);
        series.probeMissed.push_back(remote
                                         ? thresholds_.isRemoteMiss(cycles)
                                         : thresholds_.isLocalMiss(cycles));
    }
    return series;
}

std::vector<double>
EvictionSetValidator::cyclicTrace(const EvictionSet &set, unsigned k,
                                  unsigned reps)
{
    if (set.lines.size() < k)
        fatal("cyclicTrace needs ", k, " lines, got ", set.lines.size());

    std::vector<Cycles> times(reps, 0);
    auto kernel = [&, k, reps](rt::BlockCtx &ctx) -> sim::Task {
        for (unsigned i = 0; i < reps; ++i) {
            const VAddr a = set.lines[i % k];
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(a);
            const Cycles t1 = ctx.clock();
            times[i] = t1 - t0;
            co_await ctx.sharedAccess();
        }
    };

    gpu::KernelConfig cfg;
    cfg.name = "evset-cyclic";
    cfg.sharedMemBytes = 16 * 1024;
    rt::Stream &stream = rt_.stream(proc_, execGpu_);
    stream.launch(cfg, kernel);
    rt_.sync(stream);

    std::vector<double> out;
    out.reserve(reps);
    for (Cycles t : times)
        out.push_back(static_cast<double>(t));
    return out;
}

} // namespace gpubox::attack
