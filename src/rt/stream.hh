/**
 * @file
 * CUDA-style streams over the simulated box.
 *
 * A Stream is an ordered work queue bound to one (process, GPU) pair:
 * kernel launches, stream-ordered copies/memsets and event operations
 * enqueued on it execute strictly in FIFO order, while work on
 * different streams overlaps freely in simulated time -- exactly the
 * concurrency model of the CUDA runtime the paper's attacks live in
 * (an attacker process probes on its streams while victim processes
 * run on theirs).
 *
 * Determinism: streams dispatch from host code and engine completion
 * callbacks only, so for a fixed program the dispatch order is fixed;
 * cross-stream ties (several streams released by one event) break by
 * (process id, stream id, enqueue order).
 */

#ifndef GPUBOX_RT_STREAM_HH
#define GPUBOX_RT_STREAM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/task.hh"
#include "util/types.hh"

namespace gpubox::rt
{

class BlockCtx;
class Event;
class Process;
class Runtime;
class Stream;

/** Kernel body: one coroutine per thread block. */
using KernelFn = std::function<sim::Task(BlockCtx &)>;

/** Handle to a launched kernel (all of its blocks). */
class KernelHandle
{
    friend class Runtime;
    friend class Stream;

  public:
    KernelHandle() = default;

    /** @return true when every block's coroutine has completed. */
    bool finished() const;

    /** Cooperatively stop all blocks (they must poll stopRequested). */
    void requestStop();

    const std::vector<BlockCtx *> &blocks() const { return blocks_; }

  private:
    std::vector<BlockCtx *> blocks_;
};

/** Per-(process, GPU) ordered work queue (cudaStream_t). */
class Stream
{
    friend class Runtime;
    friend class Event;

  public:
    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    int id() const { return id_; }
    const std::string &name() const { return name_; }
    Process &process() const { return *proc_; }
    GpuId gpu() const { return gpu_; }

    /**
     * Enqueue a kernel launch: one actor per block, placed on SMs by
     * the leftover policy once the launch reaches the stream head.
     * Blocks that do not fit wait until resident blocks finish.
     */
    KernelHandle launch(const gpu::KernelConfig &cfg, KernelFn fn);

    /**
     * Stream-ordered copy of @p bytes from @p src to @p dst inside the
     * owning process' address space (cudaMemcpyAsync). The copy engine
     * charges dmaSetupCycles + bytes / dmaBytesPerCycle and, when the
     * pages live on different GPUs, one NVLink traversal; values land
     * when the simulated transfer completes. Data values in gpubox
     * live in the VirtualSpace (caches track presence for timing
     * only), so DMA does not disturb L2 residency.
     */
    void memcpyAsync(VAddr dst, VAddr src, std::uint64_t bytes);

    /** Stream-ordered fill of @p bytes at @p dst (cudaMemsetAsync). */
    void memsetAsync(VAddr dst, std::uint8_t value, std::uint64_t bytes);

    /** Record @p event: it completes when all prior work has
     *  (cudaEventRecord). */
    void record(Event &event);

    /** All later work on this stream waits for @p event
     *  (cudaStreamWaitEvent). The wait parks while a record of the
     *  event is outstanding (including a re-record after an earlier
     *  completion); waiting on an event with no record outstanding is
     *  a no-op, as in CUDA. */
    void wait(Event &event);

    /** @return true when every enqueued op has completed. */
    bool idle() const { return !inFlight_ && queue_.empty(); }

    /** Ops enqueued and not yet completed (including the running one). */
    std::size_t
    pendingOps() const
    {
        return queue_.size() + (inFlight_ ? 1 : 0);
    }

  private:
    struct Op
    {
        enum class Kind
        {
            Kernel,
            Memcpy,
            Memset,
            Record,
            Wait,
        };

        Kind kind;
        /** Kernel: block contexts created at enqueue time. */
        std::vector<BlockCtx *> blocks;
        std::shared_ptr<const KernelFn> fn;
        std::string name;
        /** Memcpy/Memset. */
        VAddr dst = 0;
        VAddr src = 0;
        std::uint64_t bytes = 0;
        std::uint8_t value = 0;
        /** Record/Wait. */
        Event *event = nullptr;
    };

    Stream(Runtime &rt, Process &proc, GpuId gpu, int id,
           std::string name);

    void enqueue(Op op);

    /** Start queued ops until one is in flight (or a wait stalls). */
    void dispatch();

    /** Completion hook for the op in flight. */
    void opDone();

    /** One-line blocked-state description for deadlock diagnostics. */
    std::string describeBlocked() const;

    Runtime *rt_;
    Process *proc_;
    GpuId gpu_;
    int id_;
    std::string name_;
    std::deque<Op> queue_;
    /**
     * Per-stream transfer ordinal naming memcpy/memset actors. A
     * stream's transfers are numbered by its own enqueue order -- a
     * runtime-global counter would interleave nondeterministically
     * across schedule groups.
     */
    std::uint64_t transferSeq_ = 0;
    /** The head op started and has not completed yet. */
    bool inFlight_ = false;
    /** The head op is a Wait parked on an uncompleted event. */
    bool waitingOnEvent_ = false;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_STREAM_HH
