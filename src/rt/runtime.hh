/**
 * @file
 * The gpubox runtime: the CUDA-like host API over the simulated box.
 *
 * Owns the simulation engine, the GPUs, the NVLink fabric, the page
 * allocators and every process. The central piece is memRead/memWrite,
 * which implement the NUMA caching rule the paper reverse engineers:
 * a physical page is cached in the L2 of the GPU that owns it, so a
 * remote access traverses NVLink both ways and hits/misses in the
 * *remote* L2 -- never the local one.
 */

#ifndef GPUBOX_RT_RUNTIME_HH
#define GPUBOX_RT_RUNTIME_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/indexer.hh"
#include "gpu/device.hh"
#include "mem/address.hh"
#include "mem/page_allocator.hh"
#include "noc/fabric.hh"
#include "rt/block_ctx.hh"
#include "rt/config.hh"
#include "rt/process.hh"
#include "sim/engine.hh"
#include "util/contention.hh"

namespace gpubox::rt
{

/** Kernel body: one coroutine per thread block. */
using KernelFn = std::function<sim::Task(BlockCtx &)>;

/** Handle to a launched kernel (all of its blocks). */
class KernelHandle
{
    friend class Runtime;

  public:
    KernelHandle() = default;

    /** @return true when every block's coroutine has completed. */
    bool finished() const;

    /** Cooperatively stop all blocks (they must poll stopRequested). */
    void requestStop();

    const std::vector<BlockCtx *> &blocks() const { return blocks_; }

  private:
    std::vector<BlockCtx *> blocks_;
};

/** The box. */
class Runtime
{
  public:
    explicit Runtime(const SystemConfig &config);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    const SystemConfig &config() const { return config_; }
    const TimingParams &timing() const { return config_.timing; }
    const mem::AddressCodec &codec() const { return codec_; }
    const noc::Topology &topology() const { return config_.topology; }

    sim::Engine &engine() { return *engine_; }
    gpu::Device &device(GpuId id);
    noc::Fabric &fabric() { return *fabric_; }
    int numGpus() const { return config_.topology.numGpus(); }

    /** @name Host API (untimed) @{ */

    /** Create a process (CUDA context owner). */
    Process &createProcess(const std::string &name);

    /**
     * Allocate device memory physically resident on @p gpu (pages come
     * from that GPU's randomized frame pool).
     */
    VAddr deviceMalloc(Process &proc, GpuId gpu, std::uint64_t bytes);

    void deviceFree(Process &proc, VAddr base);

    /**
     * Enable peer access from @p from to @p to. Mirrors the CUDA
     * behaviour on the DGX-1: fatal() unless the GPUs share a direct
     * NVLink (single hop).
     */
    void enablePeerAccess(Process &proc, GpuId from, GpuId to);

    /**
     * MIG-style L2 way partitioning (paper Sec. VII): split every
     * GPU's L2 into @p slices isolated slices and confine each
     * process' traffic to its assigned slice. Requires a privileged
     * administrator on real hardware -- it is a *defense*, not
     * something the attacker can do.
     */
    void enableMigPartitioning(unsigned slices);

    /** Assign a process to an L2 slice (default slice 0). */
    void assignPartition(Process &proc, unsigned slice);

    /** Host-side typed write into device memory (cudaMemcpy H2D). */
    template <typename T>
    void
    hostWrite(Process &proc, VAddr addr, const T &v)
    {
        proc.space().write<T>(addr, v);
    }

    /** Host-side typed read from device memory (cudaMemcpy D2H). */
    template <typename T>
    T
    hostRead(Process &proc, VAddr addr) const
    {
        return proc.space().read<T>(addr);
    }

    /**
     * Launch a kernel on @p gpu: one actor per block, placed on SMs by
     * the leftover policy. Blocks that do not fit wait until resident
     * blocks finish.
     */
    KernelHandle launch(Process &proc, GpuId gpu,
                        const gpu::KernelConfig &cfg, KernelFn fn);

    /** Drive the engine until the kernel finishes; fatal on deadlock. */
    void runUntilDone(const KernelHandle &handle);

    /** Drive the engine until all actors complete. */
    void runAll();

    /** @} */

    /** @name Device-side timing (called from awaitables) @{ */
    MemOpResult memRead(BlockCtx &ctx, VAddr addr, unsigned size,
                        bool bypass_l1);
    MemOpResult memWrite(BlockCtx &ctx, VAddr addr, unsigned size,
                         std::uint64_t value, bool bypass_l1);
    ProbeResult probeLines(BlockCtx &ctx, const std::vector<VAddr> &addrs,
                           bool bypass_l1);
    /** @} */

    /** @name Ground-truth oracles (tests and validation only) @{ */

    /** Physical L2 set a virtual address maps to. */
    SetIndex l2SetOf(const Process &proc, VAddr addr) const;

    /** GPU whose HBM (and L2) own the page of @p addr. */
    GpuId homeGpuOf(const Process &proc, VAddr addr) const;

    /** The box-wide L2 set indexer. */
    const cache::SetIndexer &l2Indexer() const { return *l2Indexer_; }

    /** @} */

    /**
     * Deterministic progress metrics of this runtime's isolated
     * engine: scheduler steps, actors spawned, simulated cycles and
     * the corresponding simulated seconds at the configured clock.
     * Per-run experiment sweeps report these instead of host time.
     */
    struct SimMetrics
    {
        sim::EngineStats engine;
        double simSeconds = 0.0;
    };

    SimMetrics metrics() const;

  private:
    struct PendingBlock
    {
        BlockCtx *ctx;
        std::shared_ptr<const KernelFn> fn;
        std::string name;
    };

    /** Compute latency and touch caches/links for one access. */
    Cycles accessLatency(BlockCtx &ctx, PAddr paddr, bool bypass_l1);

    void dispatchPending(GpuId gpu);

    /**
     * Spawn one block actor. @p fn must be the heap-stable per-launch
     * copy: the coroutine frame keeps referring to the closure object
     * inside it for the block's whole lifetime.
     */
    void startBlock(BlockCtx *ctx, const std::shared_ptr<const KernelFn> &fn,
                    const std::string &name, SmId sm);

    SystemConfig config_;
    mem::AddressCodec codec_;
    std::unique_ptr<cache::SetIndexer> l2Indexer_;
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<noc::Fabric> fabric_;
    std::vector<std::unique_ptr<gpu::Device>> devices_;
    std::vector<std::unique_ptr<mem::PageAllocator>> allocators_;
    std::vector<ContentionMeter> l2Ports_;
    std::deque<std::unique_ptr<Process>> processes_;
    std::deque<std::unique_ptr<BlockCtx>> blockCtxs_;
    std::vector<std::deque<PendingBlock>> pending_; // per GPU
    Rng jitterRng_;
    int nextProcessId_ = 0;
    std::uint64_t kernelCounter_ = 0;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_RUNTIME_HH
