/**
 * @file
 * The gpubox runtime: the CUDA-like host API over the simulated box.
 *
 * Owns the simulation engine, the GPUs, the NVLink fabric, the page
 * allocators, every process and every stream/event. Work is enqueued
 * asynchronously on rt::Stream objects (kernel launches, stream-
 * ordered copies, event records) and the host blocks with
 * Runtime::sync(stream|event|handle) or Runtime::syncAll().
 *
 * The central piece is memRead/memWrite, which implement the NUMA
 * caching rule the paper reverse engineers: a physical page is cached
 * in the L2 of the GPU that owns it, so a remote access traverses
 * NVLink both ways and hits/misses in the *remote* L2 -- never the
 * local one.
 */

#ifndef GPUBOX_RT_RUNTIME_HH
#define GPUBOX_RT_RUNTIME_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/indexer.hh"
#include "gpu/device.hh"
#include "mem/address.hh"
#include "mem/page_allocator.hh"
#include "noc/fabric.hh"
#include "rt/block_ctx.hh"
#include "rt/config.hh"
#include "rt/error.hh"
#include "rt/event.hh"
#include "rt/process.hh"
#include "rt/stream.hh"
#include "sim/engine.hh"
#include "sim/sharded_engine.hh"
#include "util/arena.hh"
#include "util/contention.hh"

namespace gpubox::rt
{

/** The box. */
class Runtime
{
    friend class Stream;

  public:
    explicit Runtime(const SystemConfig &config);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    const SystemConfig &config() const { return config_; }
    const TimingParams &timing() const { return config_.timing; }
    const mem::AddressCodec &codec() const { return codec_; }
    const noc::Topology &topology() const { return config_.topology; }

    sim::ShardedEngine &engine() { return *engine_; }

    /**
     * Schedule shard of @p gpu: its fabric island folded onto the
     * configured shard count. Single-box topologies (island() < 0)
     * and shards=1 place everything on shard 0.
     */
    unsigned shardOf(GpuId gpu) const;

    /**
     * Device @p id, materialized on first use: a pod-scale platform
     * declares a thousand GPUs but a scenario touches a handful, and
     * each gpu::Device carries megabytes of cache directory. The
     * per-device RNG streams are split off the root seed by device id,
     * so materialization order cannot change any simulated byte.
     */
    gpu::Device &
    device(GpuId id)
    {
        if (id < 0 || id >= numGpus())
            fatal("device id ", id, " out of range (", numGpus(),
                  " GPUs)");
        if (!devices_[id])
            materializeDevice(id);
        return *devices_[id];
    }

    noc::Fabric &fabric() { return *fabric_; }
    int numGpus() const { return config_.topology.numGpus(); }

    /** @name Host API (untimed) @{ */

    /** Create a process (CUDA context owner). */
    Process &createProcess(const std::string &name);

    /**
     * Create an ordered work queue for @p proc on @p gpu
     * (cudaStreamCreate). Streams are owned by the runtime and live as
     * long as it does.
     */
    Stream &createStream(Process &proc, GpuId gpu,
                         const std::string &name = "");

    /**
     * The per-(process, GPU) default stream, created on first use --
     * the queue a plain `kernel<<<...>>>` launch would go to.
     */
    Stream &stream(Process &proc, GpuId gpu);

    /** Create an event (cudaEventCreate). Owned by the runtime. */
    Event &createEvent(const std::string &name = "");

    /**
     * Allocate device memory physically resident on @p gpu (pages come
     * from that GPU's randomized frame pool).
     */
    VAddr deviceMalloc(Process &proc, GpuId gpu, std::uint64_t bytes);

    void deviceFree(Process &proc, VAddr base);

    /**
     * Enable peer access from @p from to @p to. What succeeds is a
     * platform property: on the DGX-1 the driver refuses unless the
     * GPUs share a direct NVLink (single hop), exactly like
     * cudaDeviceEnablePeerAccess returning cudaErrorInvalidDevice;
     * platforms with SystemConfig::peerOverRoutes relay peer access
     * along the precomputed multi-hop route instead. The error Status
     * names both GPUs and the (absent) route. Callers that cannot
     * continue chain .orFatal().
     */
    Status enablePeerAccess(Process &proc, GpuId from, GpuId to);

    /**
     * True when this platform can grant peer access from @p from to
     * @p to: a direct NVLink, or any routed path on platforms whose
     * driver relays peer access over routes
     * (SystemConfig::peerOverRoutes).
     */
    bool
    peerReachable(GpuId from, GpuId to) const
    {
        if (from == to || from < 0 || to < 0 || from >= numGpus() ||
            to >= numGpus())
            return false;
        if (config_.topology.connected(from, to))
            return true;
        return config_.peerOverRoutes &&
               config_.topology.reachable(from, to);
    }

    /**
     * MIG-style L2 way partitioning (paper Sec. VII): split every
     * GPU's L2 into @p slices isolated slices and confine each
     * process' traffic to its assigned slice. Requires a privileged
     * administrator on real hardware -- it is a *defense*, not
     * something the attacker can do.
     */
    void enableMigPartitioning(unsigned slices);

    /** Assign a process to an L2 slice (default slice 0). */
    void assignPartition(Process &proc, unsigned slice);

    /** Host-side typed write into device memory (cudaMemcpy H2D). */
    template <typename T>
    void
    hostWrite(Process &proc, VAddr addr, const T &v)
    {
        proc.space().write<T>(addr, v);
    }

    /** Host-side typed read from device memory (cudaMemcpy D2H). */
    template <typename T>
    T
    hostRead(Process &proc, VAddr addr) const
    {
        return proc.space().read<T>(addr);
    }

    /** @} */

    /** @name Host-side synchronization @{ */

    /** Drive the engine until @p s drained (cudaStreamSynchronize);
     *  fatal with a blocked-stream diagnosis on deadlock. */
    void sync(Stream &s);

    /** Drive the engine until @p e completed (cudaEventSynchronize). */
    void sync(Event &e);

    /** Drive the engine until every block of @p handle finished. */
    void sync(const KernelHandle &handle);

    /** Drive the engine until every stream is idle
     *  (cudaDeviceSynchronize across the box). */
    void syncAll();

    /** @} */

    /** @name Device-side timing (called from awaitables) @{ */
    MemOpResult memRead(BlockCtx &ctx, VAddr addr, unsigned size,
                        bool bypass_l1);
    MemOpResult memWrite(BlockCtx &ctx, VAddr addr, unsigned size,
                         std::uint64_t value, bool bypass_l1);
    ProbeResult probeLines(BlockCtx &ctx, const std::vector<VAddr> &addrs,
                           bool bypass_l1);
    /** @} */

    /** @name Ground-truth oracles (tests and validation only) @{ */

    /** Physical L2 set a virtual address maps to. */
    SetIndex l2SetOf(const Process &proc, VAddr addr) const;

    /** GPU whose HBM (and L2) own the page of @p addr. */
    GpuId homeGpuOf(const Process &proc, VAddr addr) const;

    /** The box-wide L2 set indexer. */
    const cache::SetIndexer &l2Indexer() const { return *l2Indexer_; }

    /** @} */

    /**
     * Deterministic progress metrics of this runtime's isolated
     * engine: scheduler steps, actors spawned, simulated cycles and
     * the corresponding simulated seconds at the configured clock.
     * Per-run experiment sweeps report these instead of host time.
     */
    struct SimMetrics
    {
        sim::EngineStats engine;
        double simSeconds = 0.0;
    };

    SimMetrics metrics() const;

  private:
    struct PendingBlock
    {
        BlockCtx *ctx;
        std::shared_ptr<const KernelFn> fn;
        std::string name;
        /** Stream notified when the whole launch completes. */
        Stream *stream;
        std::shared_ptr<std::size_t> remaining;
    };

    /** Compute latency and touch caches/links for one access. */
    Cycles accessLatency(BlockCtx &ctx, PAddr paddr, bool bypass_l1);

    void dispatchPending(GpuId gpu);

    /**
     * Spawn one block actor. @p fn must be the heap-stable per-launch
     * copy: the coroutine frame keeps referring to the closure object
     * inside it for the block's whole lifetime.
     */
    void startBlock(BlockCtx *ctx, const std::shared_ptr<const KernelFn> &fn,
                    const std::string &name, SmId sm, Stream *stream,
                    const std::shared_ptr<std::size_t> &remaining);

    /** Stream front-op starters (called from Stream::dispatch). @{ */
    void startKernelOp(Stream &s, Stream::Op &op);
    void startTransferOp(Stream &s, const Stream::Op &op);
    /** @} */

    /** Create the BlockCtx objects of one launch at enqueue time. */
    std::vector<BlockCtx *> makeBlocks(Stream &s,
                                       const gpu::KernelConfig &cfg);

    /** fatal() with every blocked stream/actor named. */
    [[noreturn]] void reportDeadlock(const std::string &waitingFor);

    /**
     * @name Shard coupling hooks (host enqueue time)
     * Called by the host API wherever two GPUs start sharing
     * simulated state -- peer access, one process spanning islands, a
     * cross-GPU transfer, an event chaining streams -- *before* the
     * interacting actors run, so the ShardedEngine merges their
     * schedule groups ahead of any shared-state access.
     * @{
     */
    void coupleGpus(GpuId a, GpuId b);
    void coupleForEvent(Event &e, GpuId gpu);
    /** @} */

    /** Build devices_[id] (see device()). */
    void materializeDevice(GpuId id);

    /** Frame pool of @p gpu, materialized on first use like its
     *  device (the pool's shuffle RNG is split by GPU id). */
    mem::PageAllocator &allocator(GpuId gpu);

    SystemConfig config_;
    mem::AddressCodec codec_;
    std::unique_ptr<cache::SetIndexer> l2Indexer_;
    std::unique_ptr<sim::ShardedEngine> engine_;
    std::unique_ptr<noc::Fabric> fabric_;
    std::vector<std::unique_ptr<gpu::Device>> devices_;
    std::vector<std::unique_ptr<mem::PageAllocator>> allocators_;
    std::vector<ContentionMeter> l2Ports_;
    std::deque<std::unique_ptr<Process>> processes_;
    /** Block contexts of every launch, arena-backed: one bump
     *  allocation per block instead of a unique_ptr each, addresses
     *  stable for the runtime's life (coroutine frames point here). */
    Arena<BlockCtx> blockCtxs_;
    std::deque<std::unique_ptr<Stream>> streams_;
    std::deque<std::unique_ptr<Event>> events_;
    std::map<std::pair<int, GpuId>, Stream *> defaultStreams_;
    std::vector<std::deque<PendingBlock>> pending_; // per GPU
    /**
     * Per-GPU measurement-jitter streams, keyed by the *accessing*
     * block's GPU (remote accesses require peer access, which couples
     * the shards, so the accessor's GPU pins the stream to one
     * schedule group). One shared stream would serialize every shard
     * on a single RNG -- the one piece of cross-island state no
     * coupling rule could justify.
     */
    std::vector<Rng> jitterRngs_;
    /** Shard holding every spine user (kNoSpineShard until the first
     *  cross-island coupling; see coupleGpus). */
    static constexpr unsigned kNoSpineShard = ~0u;
    unsigned spineShard_ = kNoSpineShard;
    /** Active L2 way-partition count (applied to every device,
     *  including ones materialized later). */
    unsigned migSlices_ = 1;
    int nextProcessId_ = 0;
    int nextStreamId_ = 0;
    int nextEventId_ = 0;
    /** Launch ordinal naming kernels; only ever advanced host-side
     *  (Stream::launch), so it stays a single global sequence. */
    std::uint64_t kernelCounter_ = 0;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_RUNTIME_HH
