/**
 * @file
 * System-level configuration: box topology, per-GPU geometry and the
 * timing parameters calibrated against the paper's measurements.
 *
 * A SystemConfig is the *resolved* descriptor one Runtime consumes.
 * Prefer building it from a named rt::Platform (platform.hh), which
 * bundles topology, geometry, link generation and a calibrated
 * TimingParams set per simulated machine; the defaults here equal the
 * `dgx1-p100` platform so existing call sites keep meaning "the
 * paper's box".
 */

#ifndef GPUBOX_RT_CONFIG_HH
#define GPUBOX_RT_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "noc/fabric.hh"
#include "noc/topology.hh"

namespace gpubox::rt
{

/**
 * Latency parameters of the memory system.
 *
 * Defaults are calibrated to the four clusters of paper Fig. 4 on the
 * DGX-1 (P100): cached local access just over 250 cycles, local DRAM
 * ~450, remote L2 hit ~630 and remote miss ~950 (the '0'/'1' levels of
 * Fig. 10 are 630/950 cycles). Remote accesses add one NVLink
 * traversal each way (LinkParams::hopCycles per traversed link) plus
 * remoteMissExtra on the miss path. Other platforms install their own
 * calibration (rt::Platform).
 */
struct TimingParams
{
    Cycles l1HitCycles = 32;
    Cycles l2HitCycles = 270;
    /** Total latency of a local L2 miss serviced from HBM. */
    Cycles hbmCycles = 450;
    /** Extra cycles on the remote-miss path (DRAM + protocol). */
    Cycles remoteMissExtra = 140;
    /** Gaussian jitter applied to every memory access. */
    double jitterSigma = 5.0;
    /** Cost charged by clock(). */
    Cycles clockReadCycles = 4;
    /** Cost of one shared-memory access (off the L2 path). */
    Cycles sharedMemCycles = 24;
    /** Cycles per unit of dummy ALU work. */
    Cycles aluCyclesPerOp = 4;
    /**
     * Per-line issue gap for warp-parallel group probes: a block's 32
     * threads touch an eviction set concurrently, so the block is
     * throughput- rather than latency-bound.
     */
    Cycles pipelineGapCycles = 14;

    /**
     * @name L2 port contention (per device)
     * Short windows so that only instantaneously clustered traffic
     * queues: ~4 attack blocks probing at the same phase stay within
     * the hit/miss classification margin while 8+ push hit latencies
     * across the threshold -- the error-rate growth of paper Fig. 9.
     * Steady spread-out traffic (staggered probers, victims) is
     * unaffected.
     * @{
     */
    Cycles l2PortWindow = 256;
    std::uint32_t l2PortFreeSlots = 24;
    Cycles l2PortQueuePerExtra = 2;
    /** @} */

    /**
     * @name Stream-ordered DMA (memcpyAsync/memsetAsync)
     * Copy-engine model: fixed launch overhead plus a bulk bandwidth
     * term. dmaBytesPerCycle governs same-GPU (HBM-to-HBM) copies; a
     * cross-GPU copy instead serializes at the route's bottleneck
     * link bandwidth and pays every hop (Fabric::transferCycles).
     * @{
     */
    Cycles dmaSetupCycles = 800;
    std::uint32_t dmaBytesPerCycle = 32;
    /** @} */

    /** Simulated core clock, used to convert cycles to seconds. */
    double clockGhz = 1.48;
};

/** Full multi-GPU box configuration (resolved platform descriptor). */
struct SystemConfig
{
    std::uint64_t seed = 42;
    /** Name of the rt::Platform this config was derived from; kept
     *  for reporting (bench CSVs, results sink). */
    std::string platform = "dgx1-p100";
    noc::Topology topology = noc::Topology::dgx1();
    /**
     * Whether the driver relays peer access over multi-hop NVLink
     * routes. The DGX-1 driver refuses (paper Sec. III-A:
     * cudaErrorInvalidDevice between non-adjacent GPUs); NVSwitch-
     * class and routed platforms allow it.
     */
    bool peerOverRoutes = false;
    /** Device page size (GPU large page). */
    std::uint64_t pageBytes = 64 * 1024;
    /**
     * HBM frames modelled per GPU. 4096 x 64 KiB = 256 MiB; a subset
     * of the real 16 GiB that is still 64x the L2, which is all the
     * attacks exercise.
     */
    std::uint64_t framesPerGpu = 4096;
    gpu::DeviceParams device;
    TimingParams timing;
    /** Link generation applied to every fabric link (NVLink-V1:
     *  180 cy/hop, 32 B/cy bulk; queueing beyond ~120 transfer legs
     *  per 256-cycle window per link -- instantaneous bursts). */
    noc::LinkParams link = noc::LinkGen::nvlinkV1();
    /**
     * Heterogeneous fabrics: per-link parameters indexed like
     * Topology::links(). Empty means "uniform `link` everywhere";
     * non-empty must match the link count (the Fabric validates).
     */
    std::vector<noc::LinkParams> perLink;
    /** Crossbar timing of every switch node (unused on pure endpoint
     *  graphs like the DGX-1). */
    noc::SwitchParams switchParams;
    /**
     * Heterogeneous switch fabrics (superpods: NVSwitch planes vs
     * NICs vs spines): per-switch parameters indexed like the
     * topology's switch ids. Empty means "uniform `switchParams`
     * everywhere"; non-empty must match the switch count (the Fabric
     * validates).
     */
    std::vector<noc::SwitchParams> perSwitch;

    /** perSwitch with the uniform default applied. */
    std::vector<noc::SwitchParams>
    resolvedPerSwitch() const
    {
        if (!perSwitch.empty())
            return perSwitch;
        return std::vector<noc::SwitchParams>(
            static_cast<std::size_t>(topology.numSwitches()),
            switchParams);
    }
    /**
     * Administrative MIG way-partitioning baked into the platform
     * (paper Sec. VII promoted from a per-scenario defense knob):
     * the runtime boots with every L2 split into this many isolated
     * slices. 1 = unpartitioned. Processes still pick their slice via
     * Runtime::assignPartition (default slice 0).
     */
    unsigned migSlices = 1;
    /**
     * Schedule shards for intra-scenario parallelism: actors are
     * placed by fabric island (Topology::island) onto shards 0..N-1
     * of a sim::ShardedEngine, and shards whose islands interact are
     * coupled back into one schedule group at enqueue time, keeping
     * stdout/CSV/metrics byte-identical to shards=1. 1 = the plain
     * sequential engine behind the same facade.
     */
    unsigned shards = 1;
    /**
     * Worker threads driving shard windows; 0 = min(shards, hardware
     * concurrency). Tests pin this to exercise real parallelism on
     * small CI machines.
     */
    unsigned shardWorkers = 0;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_CONFIG_HH
