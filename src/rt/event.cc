#include "rt/event.hh"

#include <algorithm>

#include "rt/process.hh"
#include "rt/stream.hh"
#include "util/log.hh"

namespace gpubox::rt
{

Event::Event(Runtime &rt, int id, std::string name)
    : rt_(&rt), id_(id), name_(std::move(name))
{}

Cycles
Event::when() const
{
    if (!fired_)
        fatal("Event::when: event '", name_, "' has not completed");
    return time_;
}

Cycles
Event::elapsed(const Event &earlier) const
{
    if (!fired_ || !earlier.fired_)
        fatal("Event::elapsed: both events must have completed "
              "(this='", name_, "' earlier='", earlier.name_, "')");
    if (earlier.time_ > time_)
        fatal("Event::elapsed: event '", earlier.name_,
              "' completed after '", name_, "'");
    return time_ - earlier.time_;
}

void
Event::fire(Cycles now)
{
    fired_ = true;
    time_ = now;
    if (pendingRecords_ > 0)
        --pendingRecords_;

    // Release every parked stream in (process id, stream id) order so
    // same-instant wakeups are deterministic regardless of the order
    // the waits were registered in.
    std::vector<Stream *> woken;
    woken.swap(waiters_);
    std::sort(woken.begin(), woken.end(),
              [](const Stream *a, const Stream *b) {
                  if (a->process().id() != b->process().id())
                      return a->process().id() < b->process().id();
                  return a->id() < b->id();
              });
    for (Stream *s : woken)
        s->opDone(); // completes the parked Wait op, dispatch resumes
}

void
Event::addWaiter(Stream *s)
{
    waiters_.push_back(s);
}

} // namespace gpubox::rt
