#include "rt/platform.hh"

#include "util/log.hh"

namespace gpubox::rt
{

namespace
{

/**
 * The paper's machine: eight P100s on the NVLink-V1 hybrid cube-mesh.
 * Geometry and timing are the Fig. 4 calibration (local hit ~270,
 * local miss ~450, remote hit ~630, remote miss ~950 cycles); the
 * driver refuses peer access between non-adjacent GPUs, exactly like
 * cudaDeviceEnablePeerAccess on the real box.
 */
Platform
dgx1P100()
{
    Platform p;
    p.name = "dgx1-p100";
    p.description = "8x P100, NVLink-V1 hybrid cube-mesh (the paper's "
                    "DGX-1; peer access single-hop only)";
    p.linkGen = "nvlink-v1";
    p.topology = noc::Topology::dgx1();
    p.peerOverRoutes = false;
    p.link = noc::LinkGen::nvlinkV1();
    // DeviceParams/TimingParams defaults ARE the P100 calibration.
    return p;
}

/**
 * DGX-2 class box: sixteen V100s behind six modelled NVSwitch planes.
 * Every GPU-to-GPU route really traverses a crossbar -- two
 * nvswitch-port hops plus the switch transit, striped across the
 * planes by (src + dst) mod 6 -- so two transfers between disjoint
 * GPU pairs that land on the same plane now contend on its crossbar,
 * the interference the per-pair direct-link model of earlier
 * revisions could not express. The per-route latency budget matches
 * the old single-hop calibration (2 x 110 + 30 = 250 cycles/leg).
 * Bigger L2 (8 MiB -> 4096 sets, eight page colors) and a slightly
 * faster memory system than the P100.
 */
Platform
dgx2Nvswitch()
{
    Platform p;
    p.name = "dgx2-nvswitch";
    p.description = "16x V100 behind 6 NVSwitch planes (DGX-2 class; "
                    "any-pair peer access through real switch nodes)";
    p.linkGen = "nvswitch-port";
    p.topology = noc::Topology::crossbar("dgx2-crossbar", 16, 6);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvswitchPort();
    p.device.numSms = 80;
    p.device.l2.sizeBytes = 8ULL << 20;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

/**
 * dgx2-nvswitch with administrative MIG 2-way L2 slicing baked in
 * (paper Sec. VII promoted from a per-scenario defense knob to a
 * platform field): every L2 boots split into two isolated way
 * slices, so co-tenants in different slices cannot evict each other.
 * The fabric is NOT partitioned -- the cross-pair switch-port channel
 * still works, which is exactly the comparison the cross-system sweep
 * quantifies.
 */
Platform
dgx2Mig2()
{
    Platform p = dgx2Nvswitch();
    p.name = "dgx2-mig2";
    p.description = "dgx2-nvswitch with administrative 2-way MIG L2 "
                    "slicing (L2 channel closed, fabric still shared)";
    p.migSlices = 2;
    return p;
}

/**
 * Hybrid HGX-style box: two NVLink-V2 quads, each hanging off a host
 * PCIe switch, bridged by a single PCIe trunk. Intra-quad traffic
 * rides full-bandwidth NVLink; cross-quad traffic crosses both
 * switches and the trunk -- a 3-hop, two-crossbar route whose shared
 * trunk port every cross-quad pair contends on. The heterogeneous
 * link mix is the point: the same attack pipeline sees a fast seam
 * and a slow seam in one machine.
 */
Platform
hgxHybrid()
{
    Platform p;
    p.name = "hgx-hybrid";
    p.description = "2x NVLink-V2 quads bridged over a PCIe host "
                    "trunk (hetero link mix; shared trunk port)";
    p.linkGen = "nvlink-v2+pcie3";
    // Nodes 0-7 GPUs, 8 = quad-A host switch, 9 = quad-B host switch.
    std::vector<noc::Link> links;
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = a + 1; b < 4; ++b)
            links.emplace_back(a, b);
    for (GpuId a = 4; a < 8; ++a)
        for (GpuId b = a + 1; b < 8; ++b)
            links.emplace_back(a, b);
    for (GpuId g = 0; g < 4; ++g)
        links.emplace_back(g, 8);
    for (GpuId g = 4; g < 8; ++g)
        links.emplace_back(g, 9);
    links.emplace_back(8, 9); // the trunk
    p.topology =
        noc::Topology::switched("hgx-hybrid", 8, 2, std::move(links));
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvlinkV2();
    p.perLink.assign(12, noc::LinkGen::nvlinkV2());
    p.perLink.insert(p.perLink.end(), 9, noc::LinkGen::pcie3());
    p.linkMix = {{"nvlink-v2", 12}, {"pcie3", 9}};
    p.switchParams.crossbarCycles = 30;
    p.device.numSms = 80;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

/**
 * Four V100-class GPUs on an NVLink-V2 ring (workstation / cloud
 * quad); P100-sized L2, V100 SM count. Opposite GPUs are two hops
 * apart and the driver relays peer access over the routed path, so
 * this is the platform that exercises multi-hop NUMA-L2 attacks.
 */
Platform
quadRing()
{
    Platform p;
    p.name = "quad-ring";
    p.description = "4x V100 on an NVLink-V2 ring (routed peer access; "
                    "opposite GPUs are two hops)";
    p.linkGen = "nvlink-v2";
    p.topology = noc::Topology::ring(4);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvlinkV2();
    p.device.numSms = 80;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

/**
 * Commodity four-GPU server without NVLink: peer traffic crosses the
 * PCIe switch (high latency, narrow, shared). The NUMA-L2 property
 * still holds, so the attacks work -- at a fraction of the bandwidth,
 * which is exactly the cross-system comparison the extension bench
 * reports. Smaller Pascal-class GPUs (2 MiB L2 -> two page colors).
 */
Platform
pcieBox()
{
    Platform p;
    p.name = "pcie-box";
    p.description = "4x Pascal-class GPUs on a PCIe switch (no NVLink; "
                    "slow routed peer access)";
    p.linkGen = "pcie3";
    p.topology = noc::Topology::fullyConnected(4);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::pcie3();
    p.device.numSms = 28;
    p.device.l2.sizeBytes = 2ULL << 20;
    p.timing.l2HitCycles = 240;
    p.timing.hbmCycles = 480;
    p.timing.remoteMissExtra = 200;
    p.timing.jitterSigma = 8.0;
    p.timing.clockGhz = 1.60;
    return p;
}

/**
 * Multi-chassis DGX superpod: eight dgx2-nvswitch class boxes (128
 * V100s total) whose GPUs each own a ConnectX-class NIC, joined over
 * four shared RDMA spine switches. Intra-box traffic is exactly the
 * dgx2 model (two nvswitch-port hops plus a plane crossbar, striped
 * over six planes); cross-box traffic runs gpu -> nic -> spine ->
 * nic -> gpu with RDMA-class latency, striped over the spines by
 * (src + dst) mod 4, and never touches an NVSwitch plane. The spine
 * is therefore the *only* hardware two cross-chassis GPU pairs can
 * share -- the medium of the cross-box port channel, invisible to
 * every intra-box defense including MIG. At 308 nodes and 1408 links
 * this descriptor is also the registry's route-table scale test (the
 * construction perf budget is guarded in test_noc.cc).
 */
Platform
dgxSuperpod()
{
    Platform p;
    p.name = "dgx-superpod";
    p.description = "8 DGX-2 class boxes (128x V100) with per-GPU "
                    "NICs on a 4-spine RDMA fabric (cross-chassis "
                    "routed peer access)";
    p.linkGen = "nvswitch-port+rdma";
    p.topology = noc::Topology::superpod("dgx-superpod", 8, 16, 6, 4);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvswitchPort();

    // Parameters follow the node roles, not hand-counted link ranges:
    // GPU-plane links are NVSwitch ports, GPU-NIC links the DMA hop
    // into the HCA, NIC-spine links the RDMA trunks; planes, NICs and
    // spines each get their own crossbar flavor.
    std::size_t nvswitch_links = 0, nic_links = 0, rdma_links = 0;
    for (const noc::Link &l : p.topology.links()) {
        const bool spine_end =
            (p.topology.isSwitch(l.first) &&
             p.topology.switchRole(l.first) == noc::SwitchRole::Spine) ||
            (p.topology.isSwitch(l.second) &&
             p.topology.switchRole(l.second) == noc::SwitchRole::Spine);
        const bool nic_end =
            (p.topology.isSwitch(l.first) &&
             p.topology.switchRole(l.first) == noc::SwitchRole::Nic) ||
            (p.topology.isSwitch(l.second) &&
             p.topology.switchRole(l.second) == noc::SwitchRole::Nic);
        if (spine_end) {
            p.perLink.push_back(noc::LinkGen::rdmaSpine());
            ++rdma_links;
        } else if (nic_end) {
            p.perLink.push_back(noc::LinkGen::nicPort());
            ++nic_links;
        } else {
            p.perLink.push_back(noc::LinkGen::nvswitchPort());
            ++nvswitch_links;
        }
    }
    p.linkMix = {{"nvswitch-port", nvswitch_links},
                 {"nic-port", nic_links},
                 {"rdma-spine", rdma_links}};
    for (noc::NodeId sw = p.topology.numGpus();
         sw < p.topology.numNodes(); ++sw) {
        switch (p.topology.switchRole(sw)) {
        case noc::SwitchRole::Crossbar:
            p.perSwitch.push_back(noc::SwitchGen::nvswitchPlane());
            break;
        case noc::SwitchRole::Nic:
            p.perSwitch.push_back(noc::SwitchGen::nicEngine());
            break;
        case noc::SwitchRole::Spine:
            p.perSwitch.push_back(noc::SwitchGen::rdmaSpine());
            break;
        }
    }

    // Per-box hardware is the dgx2-nvswitch V100 calibration.
    p.device.numSms = 80;
    p.device.l2.sizeBytes = 8ULL << 20;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

/**
 * Production-scale gigapod: sixty-four DGX-2 class boxes (1024 V100s,
 * 2440 fabric nodes, 15360 links) behind eight shared RDMA spines --
 * the ROADMAP's thousand-GPU north star. The descriptor exists to
 * prove the route layer's O(n) scaling: with on-demand routing a pod
 * this size constructs in the time the 308-node superpod used to, and
 * Topology::routeTableBytes() stays within a few hundred kilobytes
 * where materialized all-pairs paths would be hundreds of megabytes
 * (the memory-ceiling regression test in tests/test_route_scaling.cc
 * pins the ratio). Per-box hardware, link generations and switch
 * flavors are exactly the dgx-superpod model, so every attack result
 * transfers; only the scale (and the spine fan-in: 1024 NICs over 8
 * spines vs 128 over 4) changes.
 */
Platform
dgxGigapod()
{
    Platform p;
    p.name = "dgx-gigapod";
    p.description = "64 DGX-2 class boxes (1024x V100) with per-GPU "
                    "NICs on an 8-spine RDMA fabric (pod-scale O(n) "
                    "routing)";
    p.linkGen = "nvswitch-port+rdma";
    p.topology = noc::Topology::superpod("dgx-gigapod", 64, 16, 6, 8);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvswitchPort();

    // Same role-driven parameter assignment as the superpod.
    std::size_t nvswitch_links = 0, nic_links = 0, rdma_links = 0;
    for (const noc::Link &l : p.topology.links()) {
        const bool spine_end =
            (p.topology.isSwitch(l.first) &&
             p.topology.switchRole(l.first) == noc::SwitchRole::Spine) ||
            (p.topology.isSwitch(l.second) &&
             p.topology.switchRole(l.second) == noc::SwitchRole::Spine);
        const bool nic_end =
            (p.topology.isSwitch(l.first) &&
             p.topology.switchRole(l.first) == noc::SwitchRole::Nic) ||
            (p.topology.isSwitch(l.second) &&
             p.topology.switchRole(l.second) == noc::SwitchRole::Nic);
        if (spine_end) {
            p.perLink.push_back(noc::LinkGen::rdmaSpine());
            ++rdma_links;
        } else if (nic_end) {
            p.perLink.push_back(noc::LinkGen::nicPort());
            ++nic_links;
        } else {
            p.perLink.push_back(noc::LinkGen::nvswitchPort());
            ++nvswitch_links;
        }
    }
    p.linkMix = {{"nvswitch-port", nvswitch_links},
                 {"nic-port", nic_links},
                 {"rdma-spine", rdma_links}};
    for (noc::NodeId sw = p.topology.numGpus();
         sw < p.topology.numNodes(); ++sw) {
        switch (p.topology.switchRole(sw)) {
        case noc::SwitchRole::Crossbar:
            p.perSwitch.push_back(noc::SwitchGen::nvswitchPlane());
            break;
        case noc::SwitchRole::Nic:
            p.perSwitch.push_back(noc::SwitchGen::nicEngine());
            break;
        case noc::SwitchRole::Spine:
            p.perSwitch.push_back(noc::SwitchGen::rdmaSpine());
            break;
        }
    }

    // Per-box hardware is the dgx2-nvswitch V100 calibration.
    p.device.numSms = 80;
    p.device.l2.sizeBytes = 8ULL << 20;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

} // namespace

std::vector<std::pair<std::string, std::size_t>>
Platform::resolvedLinkMix() const
{
    if (!linkMix.empty())
        return linkMix;
    return {{linkGen, topology.links().size()}};
}

SystemConfig
Platform::systemConfig(std::uint64_t seed) const
{
    SystemConfig cfg;
    cfg.seed = seed;
    cfg.platform = name;
    cfg.topology = topology;
    cfg.peerOverRoutes = peerOverRoutes;
    cfg.pageBytes = pageBytes;
    cfg.framesPerGpu = framesPerGpu;
    cfg.device = device;
    cfg.timing = timing;
    cfg.link = link;
    cfg.perLink = perLink;
    cfg.switchParams = switchParams;
    cfg.perSwitch = perSwitch;
    cfg.migSlices = migSlices;
    return cfg;
}

const std::vector<Platform> &
allPlatforms()
{
    static const std::vector<Platform> platforms = {
        dgx1P100(),
        dgx2Nvswitch(),
        dgx2Mig2(),
        hgxHybrid(),
        quadRing(),
        pcieBox(),
        dgxSuperpod(),
        dgxGigapod(),
    };
    return platforms;
}

const Platform &
platformByName(const std::string &name)
{
    for (const Platform &p : allPlatforms())
        if (p.name == name)
            return p;
    fatal("unknown platform '", name, "' (known platforms: ",
          platformNamesJoined(), ")");
}

bool
platformExists(const std::string &name)
{
    for (const Platform &p : allPlatforms())
        if (p.name == name)
            return true;
    return false;
}

std::vector<std::string>
platformNames()
{
    std::vector<std::string> names;
    names.reserve(allPlatforms().size());
    for (const Platform &p : allPlatforms())
        names.push_back(p.name);
    return names;
}

std::string
platformNamesJoined()
{
    std::string joined;
    for (const Platform &p : allPlatforms())
        joined += (joined.empty() ? "" : ", ") + p.name;
    return joined;
}

} // namespace gpubox::rt
