#include "rt/platform.hh"

#include "util/log.hh"

namespace gpubox::rt
{

namespace
{

/**
 * The paper's machine: eight P100s on the NVLink-V1 hybrid cube-mesh.
 * Geometry and timing are the Fig. 4 calibration (local hit ~270,
 * local miss ~450, remote hit ~630, remote miss ~950 cycles); the
 * driver refuses peer access between non-adjacent GPUs, exactly like
 * cudaDeviceEnablePeerAccess on the real box.
 */
Platform
dgx1P100()
{
    Platform p;
    p.name = "dgx1-p100";
    p.description = "8x P100, NVLink-V1 hybrid cube-mesh (the paper's "
                    "DGX-1; peer access single-hop only)";
    p.linkGen = "nvlink-v1";
    p.topology = noc::Topology::dgx1();
    p.peerOverRoutes = false;
    p.link = noc::LinkGen::nvlinkV1();
    // DeviceParams/TimingParams defaults ARE the P100 calibration.
    return p;
}

/**
 * DGX-2 class box: sixteen V100s behind NVSwitch planes. Every GPU
 * pair gets a full-bandwidth switched path, modelled as a direct link
 * whose hop latency includes the switch crossing; the driver enables
 * peer access between any pair. Bigger L2 (8 MiB -> 4096 sets, eight
 * page colors; the model's power-of-two geometry) and a slightly
 * faster memory system than the P100.
 */
Platform
dgx2Nvswitch()
{
    Platform p;
    p.name = "dgx2-nvswitch";
    p.description = "16x V100 behind NVSwitch (DGX-2 class; any-pair "
                    "peer access, switch hop in every path)";
    p.linkGen = "nvswitch";
    p.topology = noc::Topology::fullyConnected(16);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvswitch();
    p.device.numSms = 80;
    p.device.l2.sizeBytes = 8ULL << 20;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

/**
 * Four V100-class GPUs on an NVLink-V2 ring (workstation / cloud
 * quad); P100-sized L2, V100 SM count. Opposite GPUs are two hops
 * apart and the driver relays peer access over the routed path, so
 * this is the platform that exercises multi-hop NUMA-L2 attacks.
 */
Platform
quadRing()
{
    Platform p;
    p.name = "quad-ring";
    p.description = "4x V100 on an NVLink-V2 ring (routed peer access; "
                    "opposite GPUs are two hops)";
    p.linkGen = "nvlink-v2";
    p.topology = noc::Topology::ring(4);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::nvlinkV2();
    p.device.numSms = 80;
    p.timing.l2HitCycles = 215;
    p.timing.hbmCycles = 400;
    p.timing.remoteMissExtra = 120;
    p.timing.clockGhz = 1.53;
    return p;
}

/**
 * Commodity four-GPU server without NVLink: peer traffic crosses the
 * PCIe switch (high latency, narrow, shared). The NUMA-L2 property
 * still holds, so the attacks work -- at a fraction of the bandwidth,
 * which is exactly the cross-system comparison the extension bench
 * reports. Smaller Pascal-class GPUs (2 MiB L2 -> two page colors).
 */
Platform
pcieBox()
{
    Platform p;
    p.name = "pcie-box";
    p.description = "4x Pascal-class GPUs on a PCIe switch (no NVLink; "
                    "slow routed peer access)";
    p.linkGen = "pcie3";
    p.topology = noc::Topology::fullyConnected(4);
    p.peerOverRoutes = true;
    p.link = noc::LinkGen::pcie3();
    p.device.numSms = 28;
    p.device.l2.sizeBytes = 2ULL << 20;
    p.timing.l2HitCycles = 240;
    p.timing.hbmCycles = 480;
    p.timing.remoteMissExtra = 200;
    p.timing.jitterSigma = 8.0;
    p.timing.clockGhz = 1.60;
    return p;
}

} // namespace

SystemConfig
Platform::systemConfig(std::uint64_t seed) const
{
    SystemConfig cfg;
    cfg.seed = seed;
    cfg.platform = name;
    cfg.topology = topology;
    cfg.peerOverRoutes = peerOverRoutes;
    cfg.pageBytes = pageBytes;
    cfg.framesPerGpu = framesPerGpu;
    cfg.device = device;
    cfg.timing = timing;
    cfg.link = link;
    return cfg;
}

const std::vector<Platform> &
allPlatforms()
{
    static const std::vector<Platform> platforms = {
        dgx1P100(),
        dgx2Nvswitch(),
        quadRing(),
        pcieBox(),
    };
    return platforms;
}

const Platform &
platformByName(const std::string &name)
{
    for (const Platform &p : allPlatforms())
        if (p.name == name)
            return p;
    fatal("unknown platform '", name, "' (known platforms: ",
          platformNamesJoined(), ")");
}

bool
platformExists(const std::string &name)
{
    for (const Platform &p : allPlatforms())
        if (p.name == name)
            return true;
    return false;
}

std::vector<std::string>
platformNames()
{
    std::vector<std::string> names;
    names.reserve(allPlatforms().size());
    for (const Platform &p : allPlatforms())
        names.push_back(p.name);
    return names;
}

std::string
platformNamesJoined()
{
    std::string joined;
    for (const Platform &p : allPlatforms())
        joined += (joined.empty() ? "" : ", ") + p.name;
    return joined;
}

} // namespace gpubox::rt
