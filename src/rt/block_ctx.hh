/**
 * @file
 * Per-thread-block device API handed to kernel coroutines.
 *
 * This mirrors the slice of CUDA the paper's attack kernels use:
 * ldcg loads that bypass the L1 and hit only the L2 (`__ldcg`),
 * regular loads through the L1, stores, `clock()` cycle reads,
 * shared-memory accesses (off the L2 path, so timing buffers do not
 * pollute the attacked cache) and dummy ALU work used to pace the
 * trojan while transmitting a '0'.
 */

#ifndef GPUBOX_RT_BLOCK_CTX_HH
#define GPUBOX_RT_BLOCK_CTX_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/engine.hh"
#include "sim/task.hh"
#include "util/types.hh"

namespace gpubox::rt
{

class Runtime;
class Process;
class Stream;
class BlockCtx;

/** Value + latency of one device memory operation. */
struct MemOpResult
{
    std::uint64_t value = 0;
    Cycles cycles = 0;
};

/**
 * Result of a pipelined group access (one warp touching a whole
 * eviction set in parallel). perLineCycles[i] is the latency the
 * thread accessing line i measured; totalCycles is the wall time the
 * block was occupied (throughput-, not latency-bound, because the 32
 * threads of the warp issue their loads concurrently).
 */
struct ProbeResult
{
    std::vector<Cycles> perLineCycles;
    Cycles totalCycles = 0;
};

/**
 * Awaitable global-memory load. The access (cache mutation + latency
 * computation) happens at the actor's current simulated time; the
 * actor then suspends for the computed latency.
 */
class LoadAwait
{
  public:
    LoadAwait(BlockCtx &ctx, VAddr addr, unsigned size, bool bypass_l1)
        : ctx_(ctx), addr_(addr), size_(size), bypassL1_(bypass_l1)
    {}

    bool await_ready();

    void
    await_suspend(sim::Task::Handle h)
    {
        h.promise().pendingDelay = res_.cycles;
    }

    std::uint64_t await_resume() const { return res_.value; }

  private:
    BlockCtx &ctx_;
    VAddr addr_;
    unsigned size_;
    bool bypassL1_;
    MemOpResult res_;
};

/** Awaitable global-memory store (write-allocate). */
class StoreAwait
{
  public:
    StoreAwait(BlockCtx &ctx, VAddr addr, unsigned size,
               std::uint64_t value, bool bypass_l1)
        : ctx_(ctx), addr_(addr), size_(size), value_(value),
          bypassL1_(bypass_l1)
    {}

    bool await_ready();

    void
    await_suspend(sim::Task::Handle h)
    {
        h.promise().pendingDelay = res_.cycles;
    }

    void await_resume() const {}

  private:
    BlockCtx &ctx_;
    VAddr addr_;
    unsigned size_;
    std::uint64_t value_;
    bool bypassL1_;
    MemOpResult res_;
};

/**
 * Awaitable warp-parallel probe of a group of lines (an eviction set).
 * All lines are referenced at the current instant; the block suspends
 * for the pipelined duration.
 */
class GroupProbeAwait
{
  public:
    GroupProbeAwait(BlockCtx &ctx, const std::vector<VAddr> &addrs,
                    bool bypass_l1)
        : ctx_(ctx), addrs_(addrs), bypassL1_(bypass_l1)
    {}

    bool await_ready();

    void
    await_suspend(sim::Task::Handle h)
    {
        h.promise().pendingDelay = res_.totalCycles;
    }

    ProbeResult await_resume() { return std::move(res_); }

  private:
    BlockCtx &ctx_;
    const std::vector<VAddr> &addrs_;
    bool bypassL1_;
    ProbeResult res_;
};

/** Execution context of one thread block. */
class BlockCtx
{
    friend class Runtime;

  public:
    Runtime &runtime() { return *rt_; }
    Process &process() { return *proc_; }
    /** The stream this block's launch was enqueued on. */
    Stream &stream() { return *stream_; }
    GpuId gpu() const { return gpu_; }
    SmId sm() const { return sm_; }
    std::uint32_t blockIdx() const { return blockIdx_; }

    /** Valid only after the block was placed on an SM. */
    sim::ActorCtx &actor() { return *actor_; }
    const sim::ActorCtx &actor() const { return *actor_; }

    /** @return true once the block was placed and its actor spawned. */
    bool started() const { return actor_ != nullptr; }

    /** @return true when the block's coroutine ran to completion. */
    bool finished() const { return actor_ && actor_->finished(); }

    /**
     * Read the SM cycle counter. Charges the read cost so that
     * (end - start) around a load includes measurement overhead, as on
     * real hardware.
     */
    Cycles clock();

    /** Cooperative stop flag (set by the experiment harness). */
    bool
    stopRequested() const
    {
        return actor_ ? actor_->stopRequested() : earlyStop_;
    }

    /** Works for queued blocks too: they start already-stopped. */
    void
    requestStop()
    {
        if (actor_)
            actor_->requestStop();
        else
            earlyStop_ = true;
    }

    /** @name Global memory, L1-bypassing (__ldcg / __stcg) @{ */
    LoadAwait ldcg32(VAddr a) { return LoadAwait(*this, a, 4, true); }
    LoadAwait ldcg64(VAddr a) { return LoadAwait(*this, a, 8, true); }
    StoreAwait
    stcg32(VAddr a, std::uint32_t v)
    {
        return StoreAwait(*this, a, 4, v, true);
    }
    StoreAwait
    stcg64(VAddr a, std::uint64_t v)
    {
        return StoreAwait(*this, a, 8, v, true);
    }
    /** @} */

    /** @name Global memory through the per-SM L1 @{ */
    LoadAwait ld32(VAddr a) { return LoadAwait(*this, a, 4, false); }
    LoadAwait ld64(VAddr a) { return LoadAwait(*this, a, 8, false); }
    StoreAwait
    st32(VAddr a, std::uint32_t v)
    {
        return StoreAwait(*this, a, 4, v, false);
    }
    StoreAwait
    st64(VAddr a, std::uint64_t v)
    {
        return StoreAwait(*this, a, 8, v, false);
    }
    /** @} */

    /**
     * Warp-parallel ldcg of every line in @p addrs (prime or probe of
     * a whole eviction set by the block's 32 threads).
     */
    GroupProbeAwait
    probeSet(const std::vector<VAddr> &addrs)
    {
        return GroupProbeAwait(*this, addrs, true);
    }

    /** Dummy ALU work of @p ops operations (e.g. trigonometric spin). */
    sim::Delay compute(std::uint64_t ops);

    /** Suspend until absolute simulated time @p t (no-op if past). */
    sim::Delay
    waitUntil(Cycles t)
    {
        const Cycles now = actor_->now();
        return sim::Delay{t > now ? t - now : 0};
    }

    /** @p count shared-memory accesses; never touches the L2. */
    sim::Delay sharedAccess(std::uint32_t count = 1);

  private:
    Runtime *rt_ = nullptr;
    Process *proc_ = nullptr;
    Stream *stream_ = nullptr;
    GpuId gpu_ = -1;
    SmId sm_ = -1;
    std::uint32_t blockIdx_ = 0;
    sim::ActorCtx *actor_ = nullptr;
    bool earlyStop_ = false;
    gpu::BlockRequirements req_;
    /** Keeps the kernel closure alive while the coroutine runs. */
    std::shared_ptr<const std::function<sim::Task(BlockCtx &)>> kernelFn_;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_BLOCK_CTX_HH
