/**
 * @file
 * A process (CUDA context owner) on the box: its unified virtual
 * address space and the set of peer-access grants it has enabled.
 */

#ifndef GPUBOX_RT_PROCESS_HH
#define GPUBOX_RT_PROCESS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/virtual_space.hh"
#include "util/types.hh"

namespace gpubox::rt
{

class Runtime;
class Stream;

/** One user process with contexts on one or more GPUs. */
class Process
{
    friend class Runtime;

  public:
    int id() const { return id_; }
    const std::string &name() const { return name_; }

    mem::VirtualSpace &space() { return space_; }
    const mem::VirtualSpace &space() const { return space_; }

    /** @return true when peer access @p from -> @p to was enabled. */
    bool
    peerEnabled(GpuId from, GpuId to) const
    {
        const auto f = static_cast<unsigned>(from);
        const auto t = static_cast<unsigned>(to);
        if (f >= numGpus_ || t >= numGpus_)
            return false;
        return (peerBits_[f * peerWords_ + t / 64] >> (t % 64)) & 1;
    }

    /** MIG slice this process' L2 traffic is confined to. */
    unsigned partition() const { return partition_; }

    /** Streams created for this process, in creation order (used by
     *  the deadlock diagnostics to walk a process' queues). */
    const std::vector<Stream *> &streams() const { return streams_; }

  private:
    Process(int id, std::string name, const mem::AddressCodec &codec,
            int num_gpus)
        : id_(id), name_(std::move(name)), space_(codec),
          numGpus_(static_cast<unsigned>(num_gpus)),
          peerWords_((numGpus_ + 63) / 64),
          peerBits_(static_cast<std::size_t>(numGpus_) * peerWords_)
    {}

    int id_;
    std::string name_;
    mem::VirtualSpace space_;
    /** Peer grants as a bit matrix sized to the platform's GPU count
     *  (a pod has a thousand GPUs; the old fixed 64x64 array silently
     *  overflowed beyond it). Row = from, bit = to; checked on every
     *  remote access, so this must stay a couple of loads. */
    unsigned numGpus_;
    unsigned peerWords_;
    std::vector<std::uint64_t> peerBits_;
    std::vector<Stream *> streams_;
    unsigned partition_ = 0;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_PROCESS_HH
