/**
 * @file
 * CUDA-style events over the simulated box.
 *
 * An Event is recorded into a Stream (cudaEventRecord): it completes,
 * at the simulated instant all work enqueued before it on that stream
 * has finished, and remembers that instant. Other streams can make
 * their subsequent work depend on it (cudaStreamWaitEvent), and the
 * host can block on it (Runtime::sync) or read simulated-cycle
 * intervals between two completed events (cudaEventElapsedTime).
 */

#ifndef GPUBOX_RT_EVENT_HH
#define GPUBOX_RT_EVENT_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace gpubox::rt
{

class Runtime;
class Stream;

/** One timestamped cross-stream dependency token. */
class Event
{
    friend class Runtime;
    friend class Stream;

  public:
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    int id() const { return id_; }
    const std::string &name() const { return name_; }

    /** @return true once a recorded occurrence has completed. */
    bool completed() const { return fired_; }

    /** @return true while a record is enqueued but not yet complete. */
    bool pending() const { return pendingRecords_ > 0; }

    /** Simulated cycle the event (last) completed at; fatal before. */
    Cycles when() const;

    /**
     * Simulated cycles between @p earlier and this event
     * (cudaEventElapsedTime, in cycles). Both must have completed.
     */
    Cycles elapsed(const Event &earlier) const;

  private:
    Event(Runtime &rt, int id, std::string name);

    /** A record op reached the head of its stream: stamp and wake. */
    void fire(Cycles now);

    /** Park @p s until fire(); waiters wake ordered by
     *  (process id, stream id) so cross-stream ties are deterministic. */
    void addWaiter(Stream *s);

    Runtime *rt_;
    int id_;
    std::string name_;
    /**
     * Last GPU that recorded or waited on this event. Each new
     * record/wait couples its GPU's shard with this one (union-find
     * transitivity chains every stream the event ever synchronized),
     * so cross-stream wakeups stay inside one schedule group.
     */
    GpuId lastCoupleGpu_ = -1;
    bool fired_ = false;
    unsigned pendingRecords_ = 0;
    Cycles time_ = 0;
    std::vector<Stream *> waiters_;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_EVENT_HH
