#include "rt/block_ctx.hh"

#include "rt/runtime.hh"

namespace gpubox::rt
{

bool
LoadAwait::await_ready()
{
    res_ = ctx_.runtime().memRead(ctx_, addr_, size_, bypassL1_);
    return false;
}

bool
StoreAwait::await_ready()
{
    res_ = ctx_.runtime().memWrite(ctx_, addr_, size_, value_, bypassL1_);
    return false;
}

bool
GroupProbeAwait::await_ready()
{
    res_ = ctx_.runtime().probeLines(ctx_, addrs_, bypassL1_);
    return false;
}

Cycles
BlockCtx::clock()
{
    actor_->charge(rt_->timing().clockReadCycles);
    return actor_->now();
}

sim::Delay
BlockCtx::compute(std::uint64_t ops)
{
    return sim::Delay{ops * rt_->timing().aluCyclesPerOp};
}

sim::Delay
BlockCtx::sharedAccess(std::uint32_t count)
{
    return sim::Delay{static_cast<Cycles>(count) *
                      rt_->timing().sharedMemCycles};
}

} // namespace gpubox::rt
