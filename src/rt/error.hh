/**
 * @file
 * Typed status results for the host API, mirroring cudaError_t.
 *
 * Recoverable host-API failures (a peer-access request between
 * unconnected GPUs, for example) return a Status the caller can
 * inspect, exactly like the CUDA runtime returns cudaErrorInvalidDevice
 * instead of terminating the process. Callers that cannot continue
 * convert a bad Status into the classic fatal() path with orFatal().
 */

#ifndef GPUBOX_RT_ERROR_HH
#define GPUBOX_RT_ERROR_HH

#include <string>
#include <utility>

#include "util/log.hh"

namespace gpubox::rt
{

/** Error category of a host-API call, cudaError_t style. */
enum class StatusCode
{
    Ok,
    /** A GPU id outside the box. */
    InvalidDevice,
    /** Source and destination device are the same. */
    SameDevice,
    /** The GPUs share no direct NVLink (single hop). */
    NotConnected,
};

/** Stable short name for logs and tests. */
constexpr const char *
statusName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "Ok";
      case StatusCode::InvalidDevice:
        return "InvalidDevice";
      case StatusCode::SameDevice:
        return "SameDevice";
      case StatusCode::NotConnected:
        return "NotConnected";
    }
    return "Unknown";
}

/** Thrown by Status::orFatal(); a FatalError so existing handlers and
 *  test expectations keep working. */
class Error : public FatalError
{
  public:
    Error(StatusCode code, const std::string &msg)
        : FatalError(msg), code_(code)
    {}

    StatusCode code() const { return code_; }

  private:
    StatusCode code_;
};

/** Result of a fallible host-API call. */
class [[nodiscard]] Status
{
  public:
    static Status
    okStatus()
    {
        return Status(StatusCode::Ok, "");
    }

    static Status
    error(StatusCode code, std::string msg)
    {
        return Status(code, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return ok(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Keep the old fatal() behaviour: throw rt::Error unless ok. */
    void
    orFatal() const
    {
        if (!ok())
            throw Error(code_, message_);
    }

  private:
    Status(StatusCode code, std::string msg)
        : code_(code), message_(std::move(msg))
    {}

    StatusCode code_;
    std::string message_;
};

} // namespace gpubox::rt

#endif // GPUBOX_RT_ERROR_HH
