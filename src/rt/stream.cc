#include "rt/stream.hh"

#include "rt/event.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::rt
{

bool
KernelHandle::finished() const
{
    for (const BlockCtx *b : blocks_)
        if (!b->finished())
            return false;
    return true;
}

void
KernelHandle::requestStop()
{
    for (BlockCtx *b : blocks_)
        b->requestStop();
}

Stream::Stream(Runtime &rt, Process &proc, GpuId gpu, int id,
               std::string name)
    : rt_(&rt), proc_(&proc), gpu_(gpu), id_(id), name_(std::move(name))
{}

KernelHandle
Stream::launch(const gpu::KernelConfig &cfg, KernelFn fn)
{
    if (cfg.numBlocks == 0)
        fatal("launch with zero blocks on stream '", name_, "'");
    if (!fn)
        fatal("launch with empty kernel on stream '", name_, "'");

    Op op;
    op.kind = Op::Kind::Kernel;
    op.blocks = rt_->makeBlocks(*this, cfg);
    op.fn = std::make_shared<const KernelFn>(std::move(fn));
    // Same actor naming scheme as ever: <kernel>#<launch>.b<block>.
    op.name = cfg.name + "#" + std::to_string(rt_->kernelCounter_++);

    KernelHandle handle;
    handle.blocks_ = op.blocks;
    enqueue(std::move(op));
    return handle;
}

void
Stream::memcpyAsync(VAddr dst, VAddr src, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    // Translate both ends now so an unmapped range fails at the call
    // site, not inside a later engine step.
    proc_->space().translate(src);
    proc_->space().translate(src + bytes - 1);
    proc_->space().translate(dst);
    proc_->space().translate(dst + bytes - 1);

    // Couple at enqueue time, before the DMA actor can run: the
    // transfer touches both pages' home GPUs (route legs, meters) and
    // completes back into this stream.
    rt_->coupleGpus(gpu_, rt_->homeGpuOf(*proc_, src));
    rt_->coupleGpus(gpu_, rt_->homeGpuOf(*proc_, dst));

    Op op;
    op.kind = Op::Kind::Memcpy;
    op.dst = dst;
    op.src = src;
    op.bytes = bytes;
    enqueue(std::move(op));
}

void
Stream::memsetAsync(VAddr dst, std::uint8_t value, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    proc_->space().translate(dst);
    proc_->space().translate(dst + bytes - 1);

    rt_->coupleGpus(gpu_, rt_->homeGpuOf(*proc_, dst));

    Op op;
    op.kind = Op::Kind::Memset;
    op.dst = dst;
    op.value = value;
    op.bytes = bytes;
    enqueue(std::move(op));
}

void
Stream::record(Event &event)
{
    rt_->coupleForEvent(event, gpu_);

    Op op;
    op.kind = Op::Kind::Record;
    op.event = &event;
    ++event.pendingRecords_;
    enqueue(std::move(op));
}

void
Stream::wait(Event &event)
{
    rt_->coupleForEvent(event, gpu_);

    Op op;
    op.kind = Op::Kind::Wait;
    op.event = &event;
    enqueue(std::move(op));
}

void
Stream::enqueue(Op op)
{
    queue_.push_back(std::move(op));
    dispatch();
}

void
Stream::dispatch()
{
    while (!inFlight_ && !queue_.empty()) {
        Op &op = queue_.front();
        switch (op.kind) {
          case Op::Kind::Kernel:
            inFlight_ = true;
            rt_->startKernelOp(*this, op);
            return;
          case Op::Kind::Memcpy:
          case Op::Kind::Memset:
            inFlight_ = true;
            rt_->startTransferOp(*this, op);
            return;
          case Op::Kind::Record:
            // All prior work has drained: the event completes here, at
            // the engine instant of the last completion.
            op.event->fire(rt_->engine().now());
            queue_.pop_front();
            break;
          case Op::Kind::Wait:
            // Evaluated when the wait reaches the stream head: a wait
            // parks only while a record is outstanding -- the stream
            // must honour the *most recent* record, so a stale
            // completion does not satisfy it. An event that was never
            // recorded does not block (the CUDA no-op case).
            if (!op.event->pending()) {
                queue_.pop_front();
                break;
            }
            inFlight_ = true;
            waitingOnEvent_ = true;
            op.event->addWaiter(this);
            return;
        }
    }
}

void
Stream::opDone()
{
    if (!inFlight_)
        panic("stream '" + name_ + "': opDone with no op in flight");
    inFlight_ = false;
    waitingOnEvent_ = false;
    queue_.pop_front();
    dispatch();
}

std::string
Stream::describeBlocked() const
{
    std::string out = "stream '" + name_ + "' (process '" +
                      proc_->name() + "', GPU " + std::to_string(gpu_) +
                      "): " + std::to_string(pendingOps()) +
                      " pending op(s)";
    if (queue_.empty())
        return out;
    const Op &op = queue_.front();
    switch (op.kind) {
      case Op::Kind::Kernel:
        out += ", head kernel '" + op.name + "' (" +
               std::to_string(op.blocks.size()) + " blocks)";
        break;
      case Op::Kind::Memcpy:
        out += ", head memcpyAsync of " + std::to_string(op.bytes) +
               " bytes";
        break;
      case Op::Kind::Memset:
        out += ", head memsetAsync of " + std::to_string(op.bytes) +
               " bytes";
        break;
      case Op::Kind::Record:
        out += ", head record of event '" + op.event->name() + "'";
        break;
      case Op::Kind::Wait:
        out += ", blocked waiting on event '" + op.event->name() +
               "' (recorded: " + (op.event->completed() ? "yes" : "no") +
               ", pending records: " +
               std::to_string(op.event->pending() ? 1 : 0) + ")";
        break;
    }
    return out;
}

} // namespace gpubox::rt
