/**
 * @file
 * Named platform descriptors: the family of simulated multi-GPU
 * systems the attacks run on.
 *
 * The paper demonstrates everything on one machine -- the DGX-1
 * hybrid cube-mesh -- but argues (Sec. VIII) that the NUMA-L2 channel
 * generalizes to NVSwitch boxes and other multi-GPU systems. A
 * Platform bundles every machine-specific assumption into one value:
 * interconnect topology and link generation, per-GPU geometry (SMs,
 * L2 size/ways/line, page size, modelled HBM frames) and a calibrated
 * TimingParams set. The attack pipeline carries no baked timing
 * constants; its hit/miss thresholds are k-means-calibrated online
 * against whatever platform the scenario selects.
 */

#ifndef GPUBOX_RT_PLATFORM_HH
#define GPUBOX_RT_PLATFORM_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "rt/config.hh"

namespace gpubox::rt
{

/** One named multi-GPU system descriptor. */
struct Platform
{
    /** Registry key (e.g. "dgx1-p100"); also the Scenario label. */
    std::string name;
    /** One-line summary shown by `gpubox_bench --list-json`. */
    std::string description;
    /** Dominant link generation label ("nvlink-v1", "nvswitch-port",
     *  "pcie3"...); heterogeneous fabrics list the full mix in
     *  linkMix. */
    std::string linkGen;
    noc::Topology topology = noc::Topology::dgx1();
    bool peerOverRoutes = false;
    std::uint64_t pageBytes = 64 * 1024;
    std::uint64_t framesPerGpu = 4096;
    gpu::DeviceParams device;
    TimingParams timing;
    /** Defaults to NVLink-V1, matching SystemConfig's default. */
    noc::LinkParams link = noc::LinkGen::nvlinkV1();
    /** Heterogeneous fabrics: per-link parameters indexed like
     *  topology.links(); empty = uniform `link`. */
    std::vector<noc::LinkParams> perLink;
    /** Crossbar timing of the topology's switch nodes (if any). */
    noc::SwitchParams switchParams;
    /** Heterogeneous switch fabrics: per-switch parameters indexed
     *  like the topology's switch ids; empty = uniform
     *  `switchParams`. */
    std::vector<noc::SwitchParams> perSwitch;
    /** Administrative MIG L2 way-partitioning (1 = none). */
    unsigned migSlices = 1;
    /**
     * Link-generation mix, (preset label, link count) in descriptor
     * order; `gpubox_bench --list-json` emits it so CI can diff
     * descriptor changes without running benches. Uniform platforms
     * may leave it empty: it then defaults to {linkGen, all links}.
     */
    std::vector<std::pair<std::string, std::size_t>> linkMix;

    /** linkMix with the uniform-platform default applied. */
    std::vector<std::pair<std::string, std::size_t>>
    resolvedLinkMix() const;

    /** Resolve into the SystemConfig a Runtime consumes. */
    SystemConfig systemConfig(std::uint64_t seed) const;
};

/** @name Platform registry @{ */

/** Descriptor by name; fatal with the known names on a miss. */
const Platform &platformByName(const std::string &name);

/** True when @p name is registered. */
bool platformExists(const std::string &name);

/** Every registered platform, in registration order. */
const std::vector<Platform> &allPlatforms();

/** Registered names, in registration order. */
std::vector<std::string> platformNames();

/** Comma-joined registered names for diagnostics ("a, b, c"). */
std::string platformNamesJoined();

/** @} */

} // namespace gpubox::rt

#endif // GPUBOX_RT_PLATFORM_HH
