#include "rt/runtime.hh"

#include <algorithm>
#include <cmath>

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::rt
{

bool
KernelHandle::finished() const
{
    for (const BlockCtx *b : blocks_)
        if (!b->finished())
            return false;
    return true;
}

void
KernelHandle::requestStop()
{
    for (BlockCtx *b : blocks_)
        b->requestStop();
}

Runtime::Runtime(const SystemConfig &config)
    : config_(config), codec_(config.pageBytes),
      jitterRng_(Rng(config.seed).split(0xc0ffee))
{
    Rng root(config_.seed);

    l2Indexer_ = std::make_unique<cache::HashedPageIndexer>(
        config_.device.l2.numSets(), config_.device.l2.lineBytes,
        config_.pageBytes, mix64(config_.seed ^ 0x5a17ULL));

    engine_ = std::make_unique<sim::Engine>(config_.seed);
    fabric_ = std::make_unique<noc::Fabric>(config_.topology,
                                            config_.fabric);

    const int n = config_.topology.numGpus();
    for (GpuId g = 0; g < n; ++g) {
        devices_.push_back(std::make_unique<gpu::Device>(
            g, config_.device, *l2Indexer_, root.split(100 + g)));
        allocators_.push_back(std::make_unique<mem::PageAllocator>(
            config_.framesPerGpu, root.split(200 + g)));
        l2Ports_.emplace_back(config_.timing.l2PortWindow,
                              config_.timing.l2PortFreeSlots,
                              config_.timing.l2PortQueuePerExtra);
    }
    pending_.resize(n);
}

Runtime::~Runtime() = default;

gpu::Device &
Runtime::device(GpuId id)
{
    if (id < 0 || id >= numGpus())
        fatal("device id ", id, " out of range (", numGpus(), " GPUs)");
    return *devices_[id];
}

Process &
Runtime::createProcess(const std::string &name)
{
    processes_.push_back(std::unique_ptr<Process>(
        new Process(nextProcessId_++, name, codec_)));
    return *processes_.back();
}

VAddr
Runtime::deviceMalloc(Process &proc, GpuId gpu, std::uint64_t bytes)
{
    if (gpu < 0 || gpu >= numGpus())
        fatal("deviceMalloc on invalid GPU ", gpu);
    return proc.space().allocate(bytes, gpu, *allocators_[gpu]);
}

void
Runtime::deviceFree(Process &proc, VAddr base)
{
    const mem::Allocation &alloc = proc.space().allocationAt(base);
    const GpuId gpu = alloc.gpu;
    // The driver scrubs pages between owners: invalidate the freed
    // lines from the home L2 so a later allocation of the same frames
    // starts cold (and cannot leak through the cache).
    const std::uint32_t line = config_.device.l2.lineBytes;
    for (std::uint64_t frame : alloc.frames) {
        for (std::uint64_t off = 0; off < config_.pageBytes; off += line)
            device(gpu).l2().invalidate(codec_.pack(gpu, frame, off));
    }
    for (int sm = 0; sm < device(gpu).numSms(); ++sm)
        device(gpu).l1(sm).flush();
    proc.space().release(base, *allocators_[gpu]);
}

void
Runtime::enablePeerAccess(Process &proc, GpuId from, GpuId to)
{
    if (from < 0 || to < 0 || from >= numGpus() || to >= numGpus())
        fatal("enablePeerAccess: invalid GPU pair (", from, ",", to, ")");
    if (from == to)
        fatal("enablePeerAccess: same device");
    if (!config_.topology.connected(from, to)) {
        // The real CUDA runtime returns an error when the GPUs are not
        // connected by NVLink (paper Sec. III-A).
        fatal("enablePeerAccess: GPUs ", from, " and ", to,
              " are not connected by NVLink");
    }
    proc.peers_.insert({from, to});
}

void
Runtime::enableMigPartitioning(unsigned slices)
{
    for (auto &dev : devices_)
        dev->l2().setWayPartitions(slices);
}

void
Runtime::assignPartition(Process &proc, unsigned slice)
{
    const unsigned parts = devices_.front()->l2().numWayPartitions();
    if (slice >= parts)
        fatal("assignPartition: slice ", slice, " of ", parts);
    proc.partition_ = slice;
}

KernelHandle
Runtime::launch(Process &proc, GpuId gpu, const gpu::KernelConfig &cfg,
                KernelFn fn)
{
    if (gpu < 0 || gpu >= numGpus())
        fatal("launch on invalid GPU ", gpu);
    if (cfg.numBlocks == 0)
        fatal("launch with zero blocks");

    KernelHandle handle;
    const std::uint64_t kid = kernelCounter_++;
    // The kernel body must outlive every suspended block coroutine:
    // a coroutine created from a lambda keeps a reference to the
    // closure object, so the per-launch copy lives on the heap for
    // the runtime's lifetime.
    auto fn_stable = std::make_shared<const KernelFn>(std::move(fn));
    for (std::uint32_t b = 0; b < cfg.numBlocks; ++b) {
        blockCtxs_.push_back(std::make_unique<BlockCtx>());
        BlockCtx *ctx = blockCtxs_.back().get();
        ctx->rt_ = this;
        ctx->proc_ = &proc;
        ctx->gpu_ = gpu;
        ctx->blockIdx_ = b;
        ctx->req_ = {cfg.threadsPerBlock, cfg.sharedMemBytes};
        handle.blocks_.push_back(ctx);

        const std::string name = cfg.name + "#" + std::to_string(kid) +
                                 ".b" + std::to_string(b);
        auto sm = device(gpu).scheduler().tryPlace(ctx->req_);
        if (sm) {
            startBlock(ctx, fn_stable, name, *sm);
        } else {
            pending_[gpu].push_back(PendingBlock{ctx, fn_stable, name});
        }
    }
    return handle;
}

void
Runtime::startBlock(BlockCtx *ctx, const std::shared_ptr<const KernelFn> &fn,
                    const std::string &name, SmId sm)
{
    ctx->sm_ = sm;
    ctx->kernelFn_ = fn; // pin the closure for the coroutine's lifetime
    const GpuId gpu = ctx->gpu_;
    const gpu::BlockRequirements req = ctx->req_;
    sim::ActorCtx &actor = engine_->spawn(
        name, [&](sim::ActorCtx &) { return (*fn)(*ctx); },
        engine_->now());
    if (ctx->earlyStop_)
        actor.requestStop(); // stop arrived while the block was queued
    ctx->actor_ = &actor;
    actor.setOnDone([this, gpu, sm, req](sim::ActorCtx &) {
        device(gpu).scheduler().release(sm, req);
        dispatchPending(gpu);
    });
}

void
Runtime::dispatchPending(GpuId gpu)
{
    auto &queue = pending_[gpu];
    while (!queue.empty()) {
        PendingBlock &pb = queue.front();
        auto sm = device(gpu).scheduler().tryPlace(pb.ctx->req_);
        if (!sm)
            return;
        startBlock(pb.ctx, pb.fn, pb.name, *sm);
        queue.pop_front();
    }
}

void
Runtime::runUntilDone(const KernelHandle &handle)
{
    while (!handle.finished()) {
        if (!engine_->stepOne()) {
            fatal("runUntilDone: engine idle but kernel not finished "
                  "(blocks starved of SM resources?)");
        }
    }
}

void
Runtime::runAll()
{
    engine_->run();
}

Runtime::SimMetrics
Runtime::metrics() const
{
    SimMetrics m;
    m.engine = engine_->stats();
    m.simSeconds = static_cast<double>(m.engine.now) /
                   (config_.timing.clockGhz * 1e9);
    return m;
}

Cycles
Runtime::accessLatency(BlockCtx &ctx, PAddr paddr, bool bypass_l1)
{
    const TimingParams &t = config_.timing;
    const GpuId local = ctx.gpu();
    const GpuId home = codec_.gpuOf(paddr);
    const Cycles now = ctx.actor().now();

    if (home != local && !ctx.process().peerEnabled(local, home)) {
        fatal("process '", ctx.process().name(), "' touched GPU ", home,
              " memory from GPU ", local, " without peer access");
    }

    Cycles lat = 0;

    // L1 (per SM, local GPU) unless bypassed by ldcg/stcg.
    if (!bypass_l1) {
        auto l1out = device(local).l1(ctx.sm()).access(paddr);
        if (l1out.hit) {
            lat = t.l1HitCycles;
            const double jit = jitterRng_.normal(0.0, t.jitterSigma);
            return std::max<double>(1.0, static_cast<double>(lat) + jit);
        }
    }

    // Request leg over NVLink for remote pages.
    if (home != local)
        lat += fabric_->traverse(local, home, now);

    // The page is cached in its home GPU's L2 -- the NUMA property the
    // whole attack rests on. With MIG partitioning enabled the access
    // is confined to the process' slice of the ways.
    auto out = device(home).l2().access(paddr,
                                        ctx.process().partition());
    lat += l2Ports_[home].record(now);
    if (out.hit) {
        lat += t.l2HitCycles;
    } else {
        lat += t.hbmCycles;
        if (home != local)
            lat += t.remoteMissExtra;
    }

    // Response leg.
    if (home != local)
        lat += fabric_->traverse(home, local, now + lat);

    const double jit = jitterRng_.normal(0.0, t.jitterSigma);
    const double total = std::max(1.0, static_cast<double>(lat) + jit);
    return static_cast<Cycles>(std::llround(total));
}

MemOpResult
Runtime::memRead(BlockCtx &ctx, VAddr addr, unsigned size, bool bypass_l1)
{
    const PAddr paddr = ctx.process().space().translate(addr);
    MemOpResult res;
    res.cycles = accessLatency(ctx, paddr, bypass_l1);
    switch (size) {
      case 1:
        res.value = ctx.process().space().read<std::uint8_t>(addr);
        break;
      case 2:
        res.value = ctx.process().space().read<std::uint16_t>(addr);
        break;
      case 4:
        res.value = ctx.process().space().read<std::uint32_t>(addr);
        break;
      case 8:
        res.value = ctx.process().space().read<std::uint64_t>(addr);
        break;
      default:
        fatal("memRead: unsupported access size ", size);
    }
    return res;
}

MemOpResult
Runtime::memWrite(BlockCtx &ctx, VAddr addr, unsigned size,
                  std::uint64_t value, bool bypass_l1)
{
    const PAddr paddr = ctx.process().space().translate(addr);
    MemOpResult res;
    res.cycles = accessLatency(ctx, paddr, bypass_l1);
    switch (size) {
      case 1:
        ctx.process().space().write<std::uint8_t>(
            addr, static_cast<std::uint8_t>(value));
        break;
      case 2:
        ctx.process().space().write<std::uint16_t>(
            addr, static_cast<std::uint16_t>(value));
        break;
      case 4:
        ctx.process().space().write<std::uint32_t>(
            addr, static_cast<std::uint32_t>(value));
        break;
      case 8:
        ctx.process().space().write<std::uint64_t>(addr, value);
        break;
      default:
        fatal("memWrite: unsupported access size ", size);
    }
    return res;
}

ProbeResult
Runtime::probeLines(BlockCtx &ctx, const std::vector<VAddr> &addrs,
                    bool bypass_l1)
{
    ProbeResult res;
    res.perLineCycles.reserve(addrs.size());
    Cycles max_lat = 0;
    for (VAddr a : addrs) {
        const PAddr paddr = ctx.process().space().translate(a);
        const Cycles lat = accessLatency(ctx, paddr, bypass_l1);
        res.perLineCycles.push_back(lat);
        max_lat = std::max(max_lat, lat);
    }
    // Throughput model: the warp issues all loads concurrently, so the
    // block occupies the pipeline for the slowest load plus an issue
    // gap per additional line.
    const Cycles gap = config_.timing.pipelineGapCycles;
    res.totalCycles =
        max_lat + (addrs.empty() ? 0 : (addrs.size() - 1) * gap);
    return res;
}

SetIndex
Runtime::l2SetOf(const Process &proc, VAddr addr) const
{
    const PAddr paddr = proc.space().translate(addr);
    const PAddr line =
        paddr & ~(static_cast<PAddr>(config_.device.l2.lineBytes) - 1);
    return l2Indexer_->setFor(line);
}

GpuId
Runtime::homeGpuOf(const Process &proc, VAddr addr) const
{
    return codec_.gpuOf(proc.space().translate(addr));
}

} // namespace gpubox::rt
