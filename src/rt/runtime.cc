#include "rt/runtime.hh"

#include <algorithm>
#include <cmath>

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::rt
{

Runtime::Runtime(const SystemConfig &config)
    : config_(config), codec_(config.pageBytes)
{
    l2Indexer_ = std::make_unique<cache::HashedPageIndexer>(
        config_.device.l2.numSets(), config_.device.l2.lineBytes,
        config_.pageBytes, mix64(config_.seed ^ 0x5a17ULL));

    // Heterogeneous descriptors carry per-link (and, on superpods,
    // per-switch) parameters; uniform ones stamp the single link
    // generation and switch flavor across the topology.
    fabric_ = config_.perLink.empty()
                  ? std::make_unique<noc::Fabric>(
                        config_.topology, config_.link,
                        config_.resolvedPerSwitch())
                  : std::make_unique<noc::Fabric>(
                        config_.topology, config_.perLink,
                        config_.resolvedPerSwitch());

    // The engine follows the fabric: an island-sharded run derives
    // its conduction-window width from the cheapest island-crossing
    // route -- the latency floor of any future cross-group message.
    sim::ShardedEngine::Config ec;
    ec.shards = config_.shards ? config_.shards : 1;
    ec.seed = config_.seed;
    ec.workers = config_.shardWorkers;
    if (ec.shards > 1 && config_.topology.numIslands() > 1)
        ec.lookahead = fabric_->minCrossIslandBaseCycles();
    engine_ = std::make_unique<sim::ShardedEngine>(ec);

    // Devices and frame pools materialize on first use (device(),
    // allocator()): their RNG streams are split off the root seed by
    // GPU id, so a device built lazily is byte-identical to one built
    // here. Only the cheap per-GPU bookkeeping is laid out up front.
    const int n = config_.topology.numGpus();
    devices_.resize(static_cast<std::size_t>(n));
    allocators_.resize(static_cast<std::size_t>(n));
    for (GpuId g = 0; g < n; ++g) {
        l2Ports_.emplace_back(config_.timing.l2PortWindow,
                              config_.timing.l2PortFreeSlots,
                              config_.timing.l2PortQueuePerExtra);
    }
    pending_.resize(n);
    jitterRngs_.reserve(static_cast<std::size_t>(n));
    for (GpuId g = 0; g < n; ++g)
        jitterRngs_.push_back(
            Rng(config_.seed).split(0xc0ffee).split(
                static_cast<std::uint64_t>(g) + 1));

    // Platform-level MIG slicing (e.g. dgx2-mig2): the box boots
    // already way-partitioned, as a privileged administrator would
    // have configured it -- tenants cannot undo it.
    if (config_.migSlices > 1)
        enableMigPartitioning(config_.migSlices);
}

void
Runtime::materializeDevice(GpuId id)
{
    devices_[static_cast<std::size_t>(id)] =
        std::make_unique<gpu::Device>(id, config_.device, *l2Indexer_,
                                      Rng(config_.seed).split(100 + id));
    if (migSlices_ > 1)
        devices_[static_cast<std::size_t>(id)]->l2().setWayPartitions(
            migSlices_);
}

mem::PageAllocator &
Runtime::allocator(GpuId gpu)
{
    auto &pool = allocators_[static_cast<std::size_t>(gpu)];
    if (!pool)
        pool = std::make_unique<mem::PageAllocator>(
            config_.framesPerGpu, Rng(config_.seed).split(200 + gpu));
    return *pool;
}

Runtime::~Runtime() = default;

unsigned
Runtime::shardOf(GpuId gpu) const
{
    const unsigned shards = engine_->shards();
    if (shards <= 1)
        return 0;
    const int isl = config_.topology.island(gpu);
    if (isl < 0)
        return 0; // single-box topology: one island, one shard
    return static_cast<unsigned>(isl) % shards;
}

void
Runtime::coupleGpus(GpuId a, GpuId b)
{
    if (engine_->shards() <= 1)
        return;
    const unsigned sa = shardOf(a);
    const unsigned sb = shardOf(b);
    engine_->couple(sa, sb);
    if (config_.topology.crossIsland(a, b)) {
        // Every island-crossing route rides the pod spine, and the
        // spine's crossbar/port meters are shared by all of them: any
        // shard that talks across islands joins the one spine group.
        if (spineShard_ == kNoSpineShard)
            spineShard_ = std::min(sa, sb);
        else
            engine_->couple(sa, spineShard_);
    }
}

void
Runtime::coupleForEvent(Event &e, GpuId gpu)
{
    if (engine_->shards() <= 1)
        return;
    // Union-find transitivity chains every stream this event ever
    // synchronized into one group, whichever order they touched it.
    if (e.lastCoupleGpu_ >= 0)
        coupleGpus(e.lastCoupleGpu_, gpu);
    e.lastCoupleGpu_ = gpu;
}

Process &
Runtime::createProcess(const std::string &name)
{
    processes_.push_back(std::unique_ptr<Process>(
        new Process(nextProcessId_++, name, codec_, numGpus())));
    return *processes_.back();
}

Stream &
Runtime::createStream(Process &proc, GpuId gpu, const std::string &name)
{
    if (gpu < 0 || gpu >= numGpus())
        fatal("createStream on invalid GPU ", gpu);
    const int id = nextStreamId_++;
    std::string n = name.empty() ? "p" + std::to_string(proc.id()) +
                                       ".s" + std::to_string(id) +
                                       ".g" + std::to_string(gpu)
                                 : name;
    streams_.push_back(std::unique_ptr<Stream>(
        new Stream(*this, proc, gpu, id, std::move(n))));
    Stream *s = streams_.back().get();
    // A process' streams share its VirtualSpace: kernels it runs on
    // GPUs of different shards could mutate that space concurrently,
    // so every GPU a process opens a stream on shares one schedule
    // group.
    for (Stream *other : proc.streams_)
        coupleGpus(other->gpu(), gpu);
    proc.streams_.push_back(s);
    return *s;
}

Stream &
Runtime::stream(Process &proc, GpuId gpu)
{
    const auto key = std::make_pair(proc.id(), gpu);
    const auto it = defaultStreams_.find(key);
    if (it != defaultStreams_.end())
        return *it->second;
    Stream &s = createStream(proc, gpu,
                             "p" + std::to_string(proc.id()) +
                                 ".default.g" + std::to_string(gpu));
    defaultStreams_[key] = &s;
    return s;
}

Event &
Runtime::createEvent(const std::string &name)
{
    const int id = nextEventId_++;
    std::string n =
        name.empty() ? "event#" + std::to_string(id) : name;
    events_.push_back(std::unique_ptr<Event>(
        new Event(*this, id, std::move(n))));
    return *events_.back();
}

VAddr
Runtime::deviceMalloc(Process &proc, GpuId gpu, std::uint64_t bytes)
{
    if (gpu < 0 || gpu >= numGpus())
        fatal("deviceMalloc on invalid GPU ", gpu);
    return proc.space().allocate(bytes, gpu, allocator(gpu));
}

void
Runtime::deviceFree(Process &proc, VAddr base)
{
    const mem::Allocation &alloc = proc.space().allocationAt(base);
    const GpuId gpu = alloc.gpu;
    // The driver scrubs pages between owners: invalidate the freed
    // lines from the home L2 so a later allocation of the same frames
    // starts cold (and cannot leak through the cache).
    const std::uint32_t line = config_.device.l2.lineBytes;
    for (std::uint64_t frame : alloc.frames) {
        for (std::uint64_t off = 0; off < config_.pageBytes; off += line)
            device(gpu).l2().invalidate(codec_.pack(gpu, frame, off));
    }
    for (int sm = 0; sm < device(gpu).numSms(); ++sm)
        device(gpu).l1(sm).flush();
    proc.space().release(base, allocator(gpu));
}

Status
Runtime::enablePeerAccess(Process &proc, GpuId from, GpuId to)
{
    if (from < 0 || to < 0 || from >= numGpus() || to >= numGpus()) {
        return Status::error(
            StatusCode::InvalidDevice,
            "enablePeerAccess: invalid GPU pair (" +
                std::to_string(from) + "," + std::to_string(to) + ")");
    }
    if (from == to) {
        return Status::error(StatusCode::SameDevice,
                             "enablePeerAccess: same device");
    }
    if (!config_.topology.reachable(from, to)) {
        return Status::error(StatusCode::NotConnected,
                             "enablePeerAccess: no NVLink route exists "
                             "between GPU " +
                                 std::to_string(from) + " and GPU " +
                                 std::to_string(to) + " on platform '" +
                                 config_.platform + "' (route: " +
                                 config_.topology.routeString(from, to) +
                                 ")");
    }
    if (!config_.topology.connected(from, to) &&
        !config_.peerOverRoutes) {
        // The DGX-1 driver returns an error when the GPUs are not
        // directly connected by NVLink (paper Sec. III-A); platforms
        // with peerOverRoutes relay access along the routed path.
        return Status::error(
            StatusCode::NotConnected,
            "enablePeerAccess: GPU " + std::to_string(from) +
                " and GPU " + std::to_string(to) +
                " share no direct NVLink and platform '" +
                config_.platform +
                "' does not relay peer access over routed paths "
                "(shortest route " +
                config_.topology.routeString(from, to) + ", " +
                std::to_string(config_.topology.hopCount(from, to)) +
                " hops)");
    }
    proc.peerBits_[static_cast<std::size_t>(from) * proc.peerWords_ +
                   static_cast<unsigned>(to) / 64] |=
        1ULL << (static_cast<unsigned>(to) % 64);
    // Peer access is the license for device-side remote traffic:
    // from now on kernels on either GPU may touch the other's L2 and
    // links, so their shards must schedule together.
    coupleGpus(from, to);
    return Status::okStatus();
}

void
Runtime::enableMigPartitioning(unsigned slices)
{
    migSlices_ = slices;
    // Devices not yet materialized pick the partitioning up in
    // materializeDevice(); re-partitioning an already-running device
    // keeps the old flush semantics.
    for (auto &dev : devices_)
        if (dev)
            dev->l2().setWayPartitions(slices);
}

void
Runtime::assignPartition(Process &proc, unsigned slice)
{
    if (slice >= migSlices_)
        fatal("assignPartition: slice ", slice, " of ", migSlices_);
    proc.partition_ = slice;
}

std::vector<BlockCtx *>
Runtime::makeBlocks(Stream &s, const gpu::KernelConfig &cfg)
{
    std::vector<BlockCtx *> blocks;
    blocks.reserve(cfg.numBlocks);
    for (std::uint32_t b = 0; b < cfg.numBlocks; ++b) {
        BlockCtx *ctx = &blockCtxs_.emplace();
        ctx->rt_ = this;
        ctx->proc_ = &s.process();
        ctx->stream_ = &s;
        ctx->gpu_ = s.gpu();
        ctx->blockIdx_ = b;
        ctx->req_ = {cfg.threadsPerBlock, cfg.sharedMemBytes};
        blocks.push_back(ctx);
    }
    return blocks;
}

void
Runtime::startKernelOp(Stream &s, Stream::Op &op)
{
    // One shared countdown per launch: the op (and thus the stream)
    // completes when the last block's coroutine finishes.
    auto remaining = std::make_shared<std::size_t>(op.blocks.size());
    const GpuId gpu = s.gpu();
    for (std::size_t b = 0; b < op.blocks.size(); ++b) {
        BlockCtx *ctx = op.blocks[b];
        const std::string name = op.name + ".b" + std::to_string(b);
        auto sm = device(gpu).scheduler().tryPlace(ctx->req_);
        if (sm) {
            startBlock(ctx, op.fn, name, *sm, &s, remaining);
        } else {
            pending_[gpu].push_back(
                PendingBlock{ctx, op.fn, name, &s, remaining});
        }
    }
}

void
Runtime::startTransferOp(Stream &s, const Stream::Op &op)
{
    const TimingParams &t = config_.timing;
    const bool is_copy = op.kind == Stream::Op::Kind::Memcpy;
    Process &proc = s.process();

    Cycles cost = t.dmaSetupCycles;
    bool cross_gpu = false;
    GpuId src_home = 0, dst_home = 0;
    if (is_copy) {
        dst_home = codec_.gpuOf(proc.space().translate(op.dst));
        src_home = codec_.gpuOf(proc.space().translate(op.src));
        cross_gpu = src_home != dst_home;
    }
    if (cross_gpu) {
        // Cross-GPU DMA pays every hop of the route and serializes at
        // the bottleneck link's bandwidth (Fabric::transferCycles);
        // the traffic is visible to link monitors like any other leg.
        cost += fabric_->transferCycles(src_home, dst_home,
                                        engine_->now(), op.bytes);
    } else {
        cost += divCeil(op.bytes, static_cast<std::uint64_t>(
                                      t.dmaBytesPerCycle));
    }

    const std::string name =
        s.name() + (is_copy ? ".memcpy#" : ".memset#") +
        std::to_string(s.transferSeq_++);
    // Values move when the simulated transfer completes; gpubox data
    // lives in the VirtualSpace (caches only track presence), so the
    // DMA leaves L2 residency untouched.
    auto body = [&proc, op, cost, is_copy](sim::ActorCtx &) -> sim::Task {
        co_await sim::Delay{cost};
        if (is_copy)
            proc.space().copyBytes(op.dst, op.src, op.bytes);
        else
            proc.space().setBytes(op.dst, op.value, op.bytes);
    };
    sim::ActorCtx &actor = engine_->spawnOn(
        shardOf(s.gpu()), name, std::move(body), engine_->now());
    actor.setOnDone([&s](sim::ActorCtx &) { s.opDone(); });
}

void
Runtime::startBlock(BlockCtx *ctx, const std::shared_ptr<const KernelFn> &fn,
                    const std::string &name, SmId sm, Stream *stream,
                    const std::shared_ptr<std::size_t> &remaining)
{
    ctx->sm_ = sm;
    ctx->kernelFn_ = fn; // pin the closure for the coroutine's lifetime
    const GpuId gpu = ctx->gpu_;
    const gpu::BlockRequirements req = ctx->req_;
    sim::ActorCtx &actor = engine_->spawnOn(
        shardOf(gpu), name, [&](sim::ActorCtx &) { return (*fn)(*ctx); },
        engine_->now());
    if (ctx->earlyStop_)
        actor.requestStop(); // stop arrived while the block was queued
    ctx->actor_ = &actor;
    actor.setOnDone([this, gpu, sm, req, stream,
                     remaining](sim::ActorCtx &) {
        device(gpu).scheduler().release(sm, req);
        dispatchPending(gpu);
        if (--*remaining == 0)
            stream->opDone(); // the stream head advances
    });
}

void
Runtime::dispatchPending(GpuId gpu)
{
    auto &queue = pending_[gpu];
    while (!queue.empty()) {
        PendingBlock &pb = queue.front();
        auto sm = device(gpu).scheduler().tryPlace(pb.ctx->req_);
        if (!sm)
            return;
        startBlock(pb.ctx, pb.fn, pb.name, *sm, pb.stream, pb.remaining);
        queue.pop_front();
    }
}

void
Runtime::sync(Stream &s)
{
    if (!engine_->drive([&s] { return s.idle(); }))
        reportDeadlock("stream '" + s.name() + "'");
}

void
Runtime::sync(Event &e)
{
    // cudaEventSynchronize semantics: block on the most recent
    // outstanding record; an event that already completed -- or was
    // never recorded -- does not block.
    if (!engine_->drive([&e] { return !e.pending(); }))
        reportDeadlock("event '" + e.name() + "'");
}

void
Runtime::sync(const KernelHandle &handle)
{
    if (!engine_->drive([&handle] { return handle.finished(); })) {
        std::size_t done = 0;
        for (const BlockCtx *b : handle.blocks())
            done += b->finished() ? 1 : 0;
        reportDeadlock("kernel handle (" + std::to_string(done) + "/" +
                       std::to_string(handle.blocks().size()) +
                       " blocks finished)");
    }
}

void
Runtime::syncAll()
{
    engine_->run();
    for (const auto &s : streams_) {
        if (!s->idle())
            reportDeadlock("all streams to drain");
    }
}

void
Runtime::reportDeadlock(const std::string &waitingFor)
{
    std::string msg = "sync deadlock: engine idle while waiting for " +
                      waitingFor;
    for (const auto &s : streams_) {
        if (!s->idle())
            msg += "\n  " + s->describeBlocked();
    }
    for (GpuId g = 0; g < numGpus(); ++g) {
        for (const PendingBlock &pb : pending_[g]) {
            msg += "\n  block '" + pb.name + "' of stream '" +
                   pb.stream->name() + "' starved of SM resources on GPU " +
                   std::to_string(g);
        }
    }
    for (const std::string &a : engine_->unfinishedActorNames())
        msg += "\n  unfinished actor '" + a + "'";
    // detlint: allow(fatal-style) -- multi-line report built above
    fatal(msg);
}

Runtime::SimMetrics
Runtime::metrics() const
{
    SimMetrics m;
    m.engine = engine_->stats();
    m.simSeconds = static_cast<double>(m.engine.now) /
                   (config_.timing.clockGhz * 1e9);
    return m;
}

Cycles
Runtime::accessLatency(BlockCtx &ctx, PAddr paddr, bool bypass_l1)
{
    const TimingParams &t = config_.timing;
    const GpuId local = ctx.gpu();
    const GpuId home = codec_.gpuOf(paddr);
    const Cycles now = ctx.actor().now();

    if (home != local && !ctx.process().peerEnabled(local, home)) {
        fatal("process '", ctx.process().name(), "' touched GPU ", home,
              " memory from GPU ", local, " without peer access");
    }

    Cycles lat = 0;

    // L1 (per SM, local GPU) unless bypassed by ldcg/stcg.
    if (!bypass_l1) {
        auto l1out = device(local).l1(ctx.sm()).access(paddr);
        if (l1out.hit) {
            lat = t.l1HitCycles;
            const double jit =
                jitterRngs_[static_cast<std::size_t>(local)].normal(
                    0.0, t.jitterSigma);
            return std::max<double>(1.0, static_cast<double>(lat) + jit);
        }
    }

    // Request leg over NVLink for remote pages.
    if (home != local)
        lat += fabric_->traverse(local, home, now);

    // The page is cached in its home GPU's L2 -- the NUMA property the
    // whole attack rests on. With MIG partitioning enabled the access
    // is confined to the process' slice of the ways.
    auto out = device(home).l2().access(paddr,
                                        ctx.process().partition());
    lat += l2Ports_[home].record(now);
    if (out.hit) {
        lat += t.l2HitCycles;
    } else {
        lat += t.hbmCycles;
        if (home != local)
            lat += t.remoteMissExtra;
    }

    // Response leg.
    if (home != local)
        lat += fabric_->traverse(home, local, now + lat);

    const double jit =
        jitterRngs_[static_cast<std::size_t>(local)].normal(
            0.0, t.jitterSigma);
    const double total = std::max(1.0, static_cast<double>(lat) + jit);
    return static_cast<Cycles>(std::llround(total));
}

MemOpResult
Runtime::memRead(BlockCtx &ctx, VAddr addr, unsigned size, bool bypass_l1)
{
    const PAddr paddr = ctx.process().space().translate(addr);
    MemOpResult res;
    res.cycles = accessLatency(ctx, paddr, bypass_l1);
    switch (size) {
      case 1:
        res.value = ctx.process().space().read<std::uint8_t>(addr);
        break;
      case 2:
        res.value = ctx.process().space().read<std::uint16_t>(addr);
        break;
      case 4:
        res.value = ctx.process().space().read<std::uint32_t>(addr);
        break;
      case 8:
        res.value = ctx.process().space().read<std::uint64_t>(addr);
        break;
      default:
        fatal("memRead: unsupported access size ", size);
    }
    return res;
}

MemOpResult
Runtime::memWrite(BlockCtx &ctx, VAddr addr, unsigned size,
                  std::uint64_t value, bool bypass_l1)
{
    const PAddr paddr = ctx.process().space().translate(addr);
    MemOpResult res;
    res.cycles = accessLatency(ctx, paddr, bypass_l1);
    switch (size) {
      case 1:
        ctx.process().space().write<std::uint8_t>(
            addr, static_cast<std::uint8_t>(value));
        break;
      case 2:
        ctx.process().space().write<std::uint16_t>(
            addr, static_cast<std::uint16_t>(value));
        break;
      case 4:
        ctx.process().space().write<std::uint32_t>(
            addr, static_cast<std::uint32_t>(value));
        break;
      case 8:
        ctx.process().space().write<std::uint64_t>(addr, value);
        break;
      default:
        fatal("memWrite: unsupported access size ", size);
    }
    return res;
}

ProbeResult
Runtime::probeLines(BlockCtx &ctx, const std::vector<VAddr> &addrs,
                    bool bypass_l1)
{
    ProbeResult res;
    res.perLineCycles.reserve(addrs.size());
    Cycles max_lat = 0;
    for (VAddr a : addrs) {
        const PAddr paddr = ctx.process().space().translate(a);
        const Cycles lat = accessLatency(ctx, paddr, bypass_l1);
        res.perLineCycles.push_back(lat);
        max_lat = std::max(max_lat, lat);
    }
    // Throughput model: the warp issues all loads concurrently, so the
    // block occupies the pipeline for the slowest load plus an issue
    // gap per additional line.
    const Cycles gap = config_.timing.pipelineGapCycles;
    res.totalCycles =
        max_lat + (addrs.empty() ? 0 : (addrs.size() - 1) * gap);
    return res;
}

SetIndex
Runtime::l2SetOf(const Process &proc, VAddr addr) const
{
    const PAddr paddr = proc.space().translate(addr);
    const PAddr line =
        paddr & ~(static_cast<PAddr>(config_.device.l2.lineBytes) - 1);
    return l2Indexer_->setFor(line);
}

GpuId
Runtime::homeGpuOf(const Process &proc, VAddr addr) const
{
    return codec_.gpuOf(proc.space().translate(addr));
}

} // namespace gpubox::rt
