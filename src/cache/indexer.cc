#include "cache/indexer.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::cache
{

HashedPageIndexer::HashedPageIndexer(std::uint32_t num_sets,
                                     std::uint32_t line_bytes,
                                     std::uint64_t page_bytes,
                                     std::uint64_t salt)
    : numSets_(num_sets), lineBytes_(line_bytes), pageBytes_(page_bytes),
      salt_(salt)
{
    if (!isPowerOf2(num_sets) || !isPowerOf2(line_bytes) ||
        !isPowerOf2(page_bytes)) {
        fatal("HashedPageIndexer: geometry must be powers of two");
    }
    if (page_bytes < line_bytes)
        fatal("HashedPageIndexer: page smaller than a cache line");
    linesPerPage_ = static_cast<std::uint32_t>(page_bytes / line_bytes);
    numColors_ = colorCount(num_sets, line_bytes, page_bytes);
    pageShift_ = floorLog2(page_bytes);
    lineShift_ = floorLog2(line_bytes);
    if (num_sets > (1u << 16))
        fatal("HashedPageIndexer: more than 2^16 sets breaks the packed "
              "page memo");
    frameFieldBits_ = 32; // matches mem::AddressCodec's layout
    for (auto &e : memo_)
        e.store(~0ULL, std::memory_order_relaxed);
}

std::uint32_t
HashedPageIndexer::colorOf(std::uint64_t frame, GpuId gpu) const
{
    // Scramble frame and owning GPU together so that the mapping is
    // unpredictable without the salt but stable across runs.
    const std::uint64_t h =
        mix64(frame ^ (static_cast<std::uint64_t>(gpu) << 48) ^ salt_);
    return static_cast<std::uint32_t>(h % numColors_);
}

std::uint64_t
HashedPageIndexer::startOfPage(std::uint64_t page_key) const
{
    const std::uint64_t frame = page_key & ((1ULL << frameFieldBits_) - 1);
    const GpuId gpu = static_cast<GpuId>(page_key >> frameFieldBits_);
    return static_cast<std::uint64_t>(colorOf(frame, gpu)) *
           linesPerPage_;
}

} // namespace gpubox::cache
