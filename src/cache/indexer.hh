/**
 * @file
 * Physical-address-to-set index functions.
 *
 * The L2 is physically indexed and the index function is undocumented;
 * the paper observes (Sec. V-A) that "the hashing preserves page
 * boundaries; the addresses within a single page will hash to
 * consecutive sets". HashedPageIndexer reproduces exactly that
 * structure: the frame number is scrambled into a page "color" that
 * selects which aligned window of consecutive sets the page occupies,
 * and the line offset within the page walks that window linearly.
 * An unprivileged attacker cannot compute the color (it depends on the
 * physical frame), which is why eviction sets must be found online and
 * aligned across processes (Algorithms 1 and 2).
 */

#ifndef GPUBOX_CACHE_INDEXER_HH
#define GPUBOX_CACHE_INDEXER_HH

#include <array>
#include <atomic>
#include <cstdint>

#include "util/types.hh"

namespace gpubox::cache
{

/** Maps a physical line address to a cache set. */
class SetIndexer
{
  public:
    virtual ~SetIndexer() = default;

    /**
     * @param line_addr physical address of the first byte of the line
     * @return set index in [0, numSets)
     */
    virtual SetIndex setFor(PAddr line_addr) const = 0;
};

/** Simple modulo indexing; used by unit tests as a transparent oracle. */
class LinearIndexer final : public SetIndexer
{
  public:
    LinearIndexer(std::uint32_t num_sets, std::uint32_t line_bytes)
        : numSets_(num_sets), lineBytes_(line_bytes)
    {}

    SetIndex
    setFor(PAddr line_addr) const override
    {
        return static_cast<SetIndex>((line_addr / lineBytes_) %
                                     numSets_);
    }

  private:
    std::uint32_t numSets_;
    std::uint32_t lineBytes_;
};

/**
 * Page-boundary-preserving scrambled indexing (see file comment).
 * With the DGX-1 geometry (2048 sets, 128 B lines, 64 KiB pages) a page
 * spans 512 consecutive sets and there are 4 possible page colors.
 */
class HashedPageIndexer final : public SetIndexer
{
  public:
    /**
     * @param num_sets total sets; must be a multiple of lines per page
     *                 (or vice versa)
     * @param line_bytes cache line size
     * @param page_bytes physical page size
     * @param salt secret per-box scrambling salt
     */
    HashedPageIndexer(std::uint32_t num_sets, std::uint32_t line_bytes,
                      std::uint64_t page_bytes, std::uint64_t salt);

    /**
     * Inline hot path with a small direct-mapped page memo: probe
     * loops cycle through a handful of pages, so the color hash is
     * only recomputed on a memo miss. The memo is pure caching -- the
     * returned index is a function of the address alone -- and each
     * entry packs (page key << 16 | page start) into one word loaded
     * and stored atomically (relaxed), so concurrent shard groups can
     * never observe a key paired with another page's start. Any value
     * another thread raced in is either the sentinel (recompute) or
     * the correct packed pair for its key.
     */
    SetIndex
    setFor(PAddr line_addr) const override
    {
        const std::uint64_t page_key = line_addr >> pageShift_;
        const std::uint64_t line_in_page =
            (line_addr & (pageBytes_ - 1)) >> lineShift_;
        if (page_key >= (1ULL << kMemoKeyBits)) {
            // Key too wide to pack (pod-scale GPU ids): straight
            // recompute, still branch-free of any shared state.
            return static_cast<SetIndex>(
                (startOfPage(page_key) + line_in_page) & (numSets_ - 1));
        }
        const std::size_t slot = page_key & (kMemoSlots - 1);
        std::uint64_t entry =
            memo_[slot].load(std::memory_order_relaxed);
        if ((entry >> kMemoStartBits) != page_key) {
            entry = (page_key << kMemoStartBits) | startOfPage(page_key);
            memo_[slot].store(entry, std::memory_order_relaxed);
        }
        const std::uint64_t start = entry & ((1ULL << kMemoStartBits) - 1);
        return static_cast<SetIndex>((start + line_in_page) &
                                     (numSets_ - 1));
    }

    /**
     * Page colors (set windows) of a geometry -- the one formula all
     * color-dependent sizing (finder pools, platform checks) shares.
     */
    static std::uint32_t
    colorCount(std::uint32_t num_sets, std::uint32_t line_bytes,
               std::uint64_t page_bytes)
    {
        const auto lines_per_page =
            static_cast<std::uint32_t>(page_bytes / line_bytes);
        return num_sets > lines_per_page ? num_sets / lines_per_page
                                         : 1;
    }

    /** Number of distinct page colors (set windows). */
    std::uint32_t numColors() const { return numColors_; }

    /** Ground-truth color of a frame; used only by tests/oracles. */
    std::uint32_t colorOf(std::uint64_t frame, GpuId gpu) const;

  private:
    /** First set of the page with packed key @p page_key (frame + gpu
     *  fields above pageShift_), i.e. color * linesPerPage_. */
    std::uint64_t startOfPage(std::uint64_t page_key) const;

    std::uint32_t numSets_;
    std::uint32_t lineBytes_;
    std::uint64_t pageBytes_;
    std::uint32_t linesPerPage_;
    std::uint32_t numColors_;
    std::uint64_t salt_;
    unsigned pageShift_;
    unsigned lineShift_;
    unsigned frameFieldBits_;
    /** Direct-mapped page memo (pure cache; see setFor). Each entry
     *  is (page key << kMemoStartBits) | page start in one atomic
     *  word; the all-ones sentinel is never a real entry (its key
     *  field exceeds the packable range). */
    static constexpr std::size_t kMemoSlots = 256;
    static constexpr unsigned kMemoStartBits = 16;
    static constexpr unsigned kMemoKeyBits = 64 - kMemoStartBits;
    mutable std::array<std::atomic<std::uint64_t>, kMemoSlots> memo_;
};

} // namespace gpubox::cache

#endif // GPUBOX_CACHE_INDEXER_HH
