/**
 * @file
 * Set-associative cache model (used for each GPU's L2 and the per-SM
 * L1). Tag-only: data lives in the process backing store; the cache
 * tracks presence and replacement state and exposes per-set hit/miss
 * statistics that the side-channel memorygram benches aggregate.
 */

#ifndef GPUBOX_CACHE_SET_ASSOC_CACHE_HH
#define GPUBOX_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/indexer.hh"
#include "cache/replacement.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::cache
{

/** Geometry and policy of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 4ULL << 20; // 4 MiB, P100 L2
    std::uint32_t lineBytes = 128;        // P100 L2 line
    unsigned ways = 16;                   // paper Table I
    ReplPolicy policy = ReplPolicy::LRU;

    std::uint32_t
    numSets() const
    {
        return static_cast<std::uint32_t>(
            sizeBytes / (static_cast<std::uint64_t>(lineBytes) * ways));
    }
};

/** Result of one cache access. */
struct AccessOutcome
{
    bool hit = false;
    bool evicted = false;
    PAddr evictedLine = 0; // valid when evicted
    SetIndex set = 0;
};

/** Tag-array set-associative cache with pluggable replacement. */
class SetAssocCache
{
  public:
    /**
     * @param config geometry and replacement policy
     * @param indexer set index function (not owned; must outlive)
     * @param rng stream for the random replacement policy
     */
    SetAssocCache(const CacheConfig &config, const SetIndexer &indexer,
                  Rng rng);

    /**
     * Reference a byte address: lookup, fill on miss, update policy.
     * @param partition way-partition slice to operate in (always 0
     *        unless way partitioning is enabled)
     */
    AccessOutcome access(PAddr addr, unsigned partition = 0);

    /**
     * MIG-style isolation (paper Sec. VII): split the ways into
     * @p n equal, fully isolated slices. Lookups and fills of slice i
     * only see ways [i*ways/n, (i+1)*ways/n). n == 1 disables.
     * Resident lines are invalidated (the partitioning reconfiguration
     * flushes the cache on real hardware too).
     */
    void setWayPartitions(unsigned n);

    unsigned numWayPartitions() const { return partitions_; }

    /** Ways visible to each partition slice. */
    unsigned waysPerPartition() const
    {
        return config_.ways / partitions_;
    }

    /** @return true when the line holding @p addr is resident. */
    bool probe(PAddr addr) const;

    /** Invalidate everything (does not clear statistics). */
    void flush();

    /** Invalidate one line if present. @return true when it was. */
    bool invalidate(PAddr addr);

    SetIndex setOf(PAddr addr) const;
    const CacheConfig &config() const { return config_; }
    std::uint32_t numSets() const { return numSets_; }

    /** @name Statistics @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t setHits(SetIndex s) const { return perSetHits_[s]; }
    std::uint64_t setMisses(SetIndex s) const { return perSetMisses_[s]; }
    void resetStats();
    /** @} */

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0; // line_addr / lineBytes
    };

    PAddr lineBase(PAddr addr) const;

    CacheConfig config_;
    const SetIndexer &indexer_;
    std::uint32_t numSets_;
    unsigned partitions_ = 1;
    std::vector<Line> lines_; // numSets * ways
    std::unique_ptr<ReplacementPolicy> repl_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::vector<std::uint64_t> perSetHits_;
    std::vector<std::uint64_t> perSetMisses_;
};

} // namespace gpubox::cache

#endif // GPUBOX_CACHE_SET_ASSOC_CACHE_HH
