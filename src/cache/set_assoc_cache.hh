/**
 * @file
 * Set-associative cache model (used for each GPU's L2 and the per-SM
 * L1). Tag-only: data lives in the process backing store; the cache
 * tracks presence and replacement state and exposes per-set hit/miss
 * statistics that the side-channel memorygram benches aggregate.
 */

#ifndef GPUBOX_CACHE_SET_ASSOC_CACHE_HH
#define GPUBOX_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/indexer.hh"
#include "cache/replacement.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::cache
{

/** Geometry and policy of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 4ULL << 20; // 4 MiB, P100 L2
    std::uint32_t lineBytes = 128;        // P100 L2 line
    unsigned ways = 16;                   // paper Table I
    ReplPolicy policy = ReplPolicy::LRU;

    std::uint32_t
    numSets() const
    {
        return static_cast<std::uint32_t>(
            sizeBytes / (static_cast<std::uint64_t>(lineBytes) * ways));
    }
};

/** Result of one cache access. */
struct AccessOutcome
{
    bool hit = false;
    bool evicted = false;
    PAddr evictedLine = 0; // valid when evicted
    SetIndex set = 0;
};

/** Tag-array set-associative cache with pluggable replacement. */
class SetAssocCache
{
  public:
    /**
     * @param config geometry and replacement policy
     * @param indexer set index function (not owned; must outlive)
     * @param rng stream for the random replacement policy
     */
    SetAssocCache(const CacheConfig &config, const SetIndexer &indexer,
                  Rng rng);

    /**
     * Reference a byte address: lookup, fill on miss, update policy.
     * @param partition way-partition slice to operate in (always 0
     *        unless way partitioning is enabled)
     */
    AccessOutcome access(PAddr addr, unsigned partition = 0);

    /**
     * MIG-style isolation (paper Sec. VII): split the ways into
     * @p n equal, fully isolated slices. Lookups and fills of slice i
     * only see ways [i*ways/n, (i+1)*ways/n). n == 1 disables.
     * Resident lines are invalidated (the partitioning reconfiguration
     * flushes the cache on real hardware too).
     */
    void setWayPartitions(unsigned n);

    unsigned numWayPartitions() const { return partitions_; }

    /** Ways visible to each partition slice. */
    unsigned waysPerPartition() const { return waysPerPartition_; }

    /** @return true when the line holding @p addr is resident. */
    bool probe(PAddr addr) const;

    /** Invalidate everything (does not clear statistics). */
    void flush();

    /** Invalidate one line if present. @return true when it was. */
    bool invalidate(PAddr addr);

    SetIndex setOf(PAddr addr) const;
    const CacheConfig &config() const { return config_; }
    std::uint32_t numSets() const { return numSets_; }

    /** @name Statistics @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t setHits(SetIndex s) const { return perSetHits_[s]; }
    std::uint64_t setMisses(SetIndex s) const { return perSetMisses_[s]; }
    void resetStats();
    /** @} */

  private:
    /** High bit marking a resident line in the packed tag array. */
    static constexpr std::uint64_t kValidBit = 1ULL << 63;

    PAddr lineBase(PAddr addr) const;

    /**
     * Set lookup devirtualized for the two concrete (final) indexers;
     * only an exotic external SetIndexer pays the virtual call.
     */
    SetIndex
    fastSetFor(PAddr line_addr) const
    {
        if (hashedIdx_)
            return hashedIdx_->setFor(line_addr);
        if (linearIdx_)
            return linearIdx_->setFor(line_addr);
        return indexer_.setFor(line_addr);
    }

    CacheConfig config_;
    const SetIndexer &indexer_;
    const HashedPageIndexer *hashedIdx_ = nullptr;
    const LinearIndexer *linearIdx_ = nullptr;
    std::uint32_t numSets_;
    std::uint32_t lineShift_ = 0; // log2(lineBytes)
    unsigned partitions_ = 1;
    unsigned waysPerPartition_ = 0;
    /**
     * Packed tag array, numSets * ways: 0 when the way is invalid,
     * otherwise (line_addr >> lineShift_) | kValidBit. One 8-byte word
     * per way keeps the hot way scan to a single whole-word compare.
     */
    std::vector<std::uint64_t> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;
    /** Non-null when repl_ is the (final) LRU policy; lets the hot
     *  access path call touch/victim without a virtual dispatch. */
    LruPolicy *lru_ = nullptr;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::vector<std::uint64_t> perSetHits_;
    std::vector<std::uint64_t> perSetMisses_;
};

} // namespace gpubox::cache

#endif // GPUBOX_CACHE_SET_ASSOC_CACHE_HH
