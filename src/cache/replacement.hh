/**
 * @file
 * Cache replacement policies.
 *
 * The paper's reverse engineering (Table I, Fig. 5) finds the P100 L2
 * behaves as (pseudo-)LRU without randomization: a target line is
 * evicted deterministically after 16 distinct same-set accesses. We
 * provide true LRU (the default), tree-PLRU and random replacement so
 * the ablation benches can show how the attack degrades when the
 * deterministic-eviction assumption breaks.
 */

#ifndef GPUBOX_CACHE_REPLACEMENT_HH
#define GPUBOX_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace gpubox::cache
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    LRU,
    TREE_PLRU,
    RANDOM,
};

/** Parse/print helpers for configs and bench flags. */
std::string replPolicyName(ReplPolicy p);
ReplPolicy replPolicyFromName(const std::string &name);

/** Per-set replacement state shared interface. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** (Re)initialize state for the given geometry. */
    virtual void reset(std::size_t num_sets, unsigned ways) = 0;

    /** Record a reference to @p way of @p set (hit or fill). */
    virtual void touch(SetIndex set, unsigned way) = 0;

    /** Choose the way to evict from @p set. */
    virtual unsigned victim(SetIndex set) = 0;

    /**
     * Choose a victim restricted to ways [way_begin, way_end). Used by
     * MIG-style way partitioning (paper Sec. VII). Policies that
     * cannot honor a range (tree-PLRU) report so via
     * supportsRangeVictim().
     */
    virtual unsigned victimInRange(SetIndex set, unsigned way_begin,
                                   unsigned way_end) = 0;

    virtual bool supportsRangeVictim() const { return true; }
};

/** True LRU via per-way timestamps. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    void reset(std::size_t num_sets, unsigned ways) override;

    void
    touch(SetIndex set, unsigned way) override
    {
        lastUse_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
    }

    unsigned
    victim(SetIndex set) override
    {
        return victimInRange(set, 0, ways_);
    }

    unsigned
    victimInRange(SetIndex set, unsigned way_begin,
                  unsigned way_end) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        unsigned best = way_begin;
        std::uint64_t best_tick = lastUse_[base + way_begin];
        for (unsigned w = way_begin + 1; w < way_end; ++w) {
            if (lastUse_[base + w] < best_tick) {
                best_tick = lastUse_[base + w];
                best = w;
            }
        }
        return best;
    }

  private:
    unsigned ways_ = 0;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> lastUse_; // numSets * ways
};

/** Tree pseudo-LRU; requires the way count to be a power of two. */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    void reset(std::size_t num_sets, unsigned ways) override;
    void touch(SetIndex set, unsigned way) override;
    unsigned victim(SetIndex set) override;
    unsigned victimInRange(SetIndex set, unsigned way_begin,
                           unsigned way_end) override;
    bool supportsRangeVictim() const override { return false; }

  private:
    unsigned ways_ = 0;
    std::vector<std::uint8_t> bits_; // numSets * (ways-1) tree nodes
};

/** Uniform random victim selection (seeded). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(Rng rng) : rng_(rng) {}

    void reset(std::size_t num_sets, unsigned ways) override;
    void touch(SetIndex set, unsigned way) override;
    unsigned victim(SetIndex set) override;
    unsigned victimInRange(SetIndex set, unsigned way_begin,
                           unsigned way_end) override;

  private:
    unsigned ways_ = 0;
    Rng rng_;
};

/** Factory for a policy instance. */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(ReplPolicy p,
                                                         Rng rng);

} // namespace gpubox::cache

#endif // GPUBOX_CACHE_REPLACEMENT_HH
