#include "cache/set_assoc_cache.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::cache
{

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             const SetIndexer &indexer, Rng rng)
    : config_(config), indexer_(indexer),
      hashedIdx_(dynamic_cast<const HashedPageIndexer *>(&indexer)),
      linearIdx_(dynamic_cast<const LinearIndexer *>(&indexer))
{
    if (!isPowerOf2(config.lineBytes))
        fatal("cache line size must be a power of two");
    if (config.ways == 0)
        fatal("cache must have at least one way");
    if (config.sizeBytes %
        (static_cast<std::uint64_t>(config.lineBytes) * config.ways)) {
        fatal("cache size must be a multiple of lineBytes*ways");
    }
    numSets_ = config.numSets();
    lineShift_ = floorLog2(config.lineBytes);
    waysPerPartition_ = config.ways;
    lines_.assign(static_cast<std::size_t>(numSets_) * config.ways, 0);
    repl_ = makeReplacementPolicy(config.policy, rng);
    lru_ = dynamic_cast<LruPolicy *>(repl_.get());
    repl_->reset(numSets_, config.ways);
    perSetHits_.assign(numSets_, 0);
    perSetMisses_.assign(numSets_, 0);
}

PAddr
SetAssocCache::lineBase(PAddr addr) const
{
    return addr & ~(static_cast<PAddr>(config_.lineBytes) - 1);
}

SetIndex
SetAssocCache::setOf(PAddr addr) const
{
    return indexer_.setFor(lineBase(addr));
}

void
SetAssocCache::setWayPartitions(unsigned n)
{
    if (n == 0 || config_.ways % n != 0)
        fatal("cannot split ", config_.ways, " ways into ", n,
              " partitions");
    if (n > 1 && !repl_->supportsRangeVictim())
        fatal("replacement policy '", replPolicyName(config_.policy),
              "' does not support way partitioning");
    partitions_ = n;
    waysPerPartition_ = config_.ways / n;
    flush(); // reconfiguration invalidates resident lines
}

AccessOutcome
SetAssocCache::access(PAddr addr, unsigned partition)
{
    if (partition >= partitions_)
        fatal("cache access in partition ", partition, " of ",
              partitions_);
    const PAddr line_addr = lineBase(addr);
    // Valid lines store tag|kValidBit, so a whole-word compare is both
    // the tag match and the valid check; 0 is "invalid".
    const std::uint64_t want = (line_addr >> lineShift_) | kValidBit;
    const SetIndex set = fastSetFor(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;

    // The partition only sees its own slice of ways (isolated paths
    // through the memory system, as in MIG).
    const unsigned way_begin = partition * waysPerPartition_;
    const unsigned way_end = way_begin + waysPerPartition_;

    AccessOutcome out;
    out.set = set;

    int invalid_way = -1;
    for (unsigned w = way_begin; w < way_end; ++w) {
        const std::uint64_t line = lines_[base + w];
        if (line == want) {
            if (lru_)
                lru_->touch(set, w);
            else
                repl_->touch(set, w);
            ++hits_;
            ++perSetHits_[set];
            out.hit = true;
            return out;
        }
        if (line == 0 && invalid_way < 0)
            invalid_way = static_cast<int>(w);
    }

    // Miss: fill, evicting if the slice is full.
    ++misses_;
    ++perSetMisses_[set];
    unsigned way;
    if (invalid_way >= 0) {
        way = static_cast<unsigned>(invalid_way);
    } else {
        if (lru_) {
            way = partitions_ == 1
                      ? lru_->victim(set)
                      : lru_->victimInRange(set, way_begin, way_end);
        } else {
            way = partitions_ == 1
                      ? repl_->victim(set)
                      : repl_->victimInRange(set, way_begin, way_end);
        }
        out.evicted = true;
        out.evictedLine = (lines_[base + way] & ~kValidBit)
                          << lineShift_;
        ++evictions_;
    }
    lines_[base + way] = want;
    if (lru_)
        lru_->touch(set, way);
    else
        repl_->touch(set, way);
    return out;
}

bool
SetAssocCache::probe(PAddr addr) const
{
    const PAddr line_addr = lineBase(addr);
    const std::uint64_t want = (line_addr >> lineShift_) | kValidBit;
    const SetIndex set = fastSetFor(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (lines_[base + w] == want)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    std::fill(lines_.begin(), lines_.end(), 0);
}

bool
SetAssocCache::invalidate(PAddr addr)
{
    const PAddr line_addr = lineBase(addr);
    const std::uint64_t want = (line_addr >> lineShift_) | kValidBit;
    const SetIndex set = fastSetFor(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (lines_[base + w] == want) {
            lines_[base + w] = 0;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = evictions_ = 0;
    std::fill(perSetHits_.begin(), perSetHits_.end(), 0);
    std::fill(perSetMisses_.begin(), perSetMisses_.end(), 0);
}

} // namespace gpubox::cache
