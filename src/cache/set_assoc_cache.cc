#include "cache/set_assoc_cache.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::cache
{

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             const SetIndexer &indexer, Rng rng)
    : config_(config), indexer_(indexer)
{
    if (!isPowerOf2(config.lineBytes))
        fatal("cache line size must be a power of two");
    if (config.ways == 0)
        fatal("cache must have at least one way");
    if (config.sizeBytes %
        (static_cast<std::uint64_t>(config.lineBytes) * config.ways)) {
        fatal("cache size must be a multiple of lineBytes*ways");
    }
    numSets_ = config.numSets();
    lines_.assign(static_cast<std::size_t>(numSets_) * config.ways, Line{});
    repl_ = makeReplacementPolicy(config.policy, rng);
    repl_->reset(numSets_, config.ways);
    perSetHits_.assign(numSets_, 0);
    perSetMisses_.assign(numSets_, 0);
}

PAddr
SetAssocCache::lineBase(PAddr addr) const
{
    return addr & ~(static_cast<PAddr>(config_.lineBytes) - 1);
}

SetIndex
SetAssocCache::setOf(PAddr addr) const
{
    return indexer_.setFor(lineBase(addr));
}

void
SetAssocCache::setWayPartitions(unsigned n)
{
    if (n == 0 || config_.ways % n != 0)
        fatal("cannot split ", config_.ways, " ways into ", n,
              " partitions");
    if (n > 1 && !repl_->supportsRangeVictim())
        fatal("replacement policy '", replPolicyName(config_.policy),
              "' does not support way partitioning");
    partitions_ = n;
    flush(); // reconfiguration invalidates resident lines
}

AccessOutcome
SetAssocCache::access(PAddr addr, unsigned partition)
{
    if (partition >= partitions_)
        fatal("cache access in partition ", partition, " of ",
              partitions_);
    const PAddr line_addr = lineBase(addr);
    const std::uint64_t tag = line_addr / config_.lineBytes;
    const SetIndex set = indexer_.setFor(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;

    // The partition only sees its own slice of ways (isolated paths
    // through the memory system, as in MIG).
    const unsigned way_begin = partition * waysPerPartition();
    const unsigned way_end = way_begin + waysPerPartition();

    AccessOutcome out;
    out.set = set;

    int invalid_way = -1;
    for (unsigned w = way_begin; w < way_end; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            repl_->touch(set, w);
            ++hits_;
            ++perSetHits_[set];
            out.hit = true;
            return out;
        }
        if (!line.valid && invalid_way < 0)
            invalid_way = static_cast<int>(w);
    }

    // Miss: fill, evicting if the slice is full.
    ++misses_;
    ++perSetMisses_[set];
    unsigned way;
    if (invalid_way >= 0) {
        way = static_cast<unsigned>(invalid_way);
    } else {
        way = partitions_ == 1
                  ? repl_->victim(set)
                  : repl_->victimInRange(set, way_begin, way_end);
        out.evicted = true;
        out.evictedLine = lines_[base + way].tag * config_.lineBytes;
        ++evictions_;
    }
    lines_[base + way].valid = true;
    lines_[base + way].tag = tag;
    repl_->touch(set, way);
    return out;
}

bool
SetAssocCache::probe(PAddr addr) const
{
    const PAddr line_addr = lineBase(addr);
    const std::uint64_t tag = line_addr / config_.lineBytes;
    const SetIndex set = indexer_.setFor(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

bool
SetAssocCache::invalidate(PAddr addr)
{
    const PAddr line_addr = lineBase(addr);
    const std::uint64_t tag = line_addr / config_.lineBytes;
    const SetIndex set = indexer_.setFor(line_addr);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = evictions_ = 0;
    std::fill(perSetHits_.begin(), perSetHits_.end(), 0);
    std::fill(perSetMisses_.begin(), perSetMisses_.end(), 0);
}

} // namespace gpubox::cache
