#include "cache/replacement.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace gpubox::cache
{

std::string
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "lru";
      case ReplPolicy::TREE_PLRU:
        return "tree-plru";
      case ReplPolicy::RANDOM:
        return "random";
    }
    return "unknown";
}

ReplPolicy
replPolicyFromName(const std::string &name)
{
    if (name == "lru")
        return ReplPolicy::LRU;
    if (name == "tree-plru")
        return ReplPolicy::TREE_PLRU;
    if (name == "random")
        return ReplPolicy::RANDOM;
    fatal("unknown replacement policy '", name, "'");
}

// ---------------------------------------------------------------- LRU

void
LruPolicy::reset(std::size_t num_sets, unsigned ways)
{
    ways_ = ways;
    tick_ = 0;
    lastUse_.assign(num_sets * ways, 0);
}

// ---------------------------------------------------------- Tree PLRU

void
TreePlruPolicy::reset(std::size_t num_sets, unsigned ways)
{
    if (!isPowerOf2(ways))
        fatal("tree-plru requires a power-of-two way count, got ", ways);
    ways_ = ways;
    bits_.assign(num_sets * (ways - 1), 0);
}

void
TreePlruPolicy::touch(SetIndex set, unsigned way)
{
    // Walk from the root to the leaf, pointing each node away from the
    // touched way.
    const std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool right = way >= mid;
        bits_[base + node] = right ? 0 : 1; // point away
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

unsigned
TreePlruPolicy::victimInRange(SetIndex set, unsigned way_begin,
                              unsigned way_end)
{
    (void)set;
    (void)way_begin;
    (void)way_end;
    fatal("tree-PLRU does not support way-range victims; "
          "use LRU or random replacement with MIG partitioning");
}

unsigned
TreePlruPolicy::victim(SetIndex set)
{
    const std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool right = bits_[base + node] != 0;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

// ------------------------------------------------------------- Random

void
RandomPolicy::reset(std::size_t num_sets, unsigned ways)
{
    (void)num_sets;
    ways_ = ways;
}

void
RandomPolicy::touch(SetIndex set, unsigned way)
{
    (void)set;
    (void)way;
}

unsigned
RandomPolicy::victim(SetIndex set)
{
    (void)set;
    return static_cast<unsigned>(rng_.uniform(ways_));
}

unsigned
RandomPolicy::victimInRange(SetIndex set, unsigned way_begin,
                            unsigned way_end)
{
    (void)set;
    return way_begin +
           static_cast<unsigned>(rng_.uniform(way_end - way_begin));
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicy p, Rng rng)
{
    switch (p) {
      case ReplPolicy::LRU:
        return std::make_unique<LruPolicy>();
      case ReplPolicy::TREE_PLRU:
        return std::make_unique<TreePlruPolicy>();
      case ReplPolicy::RANDOM:
        return std::make_unique<RandomPolicy>(rng);
    }
    fatal("unreachable replacement policy");
}

} // namespace gpubox::cache
