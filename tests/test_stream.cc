/**
 * @file
 * Tests for the stream/event host API: FIFO ordering inside a stream,
 * overlap across streams, cross-stream event dependencies,
 * Event::elapsed against the documented timing parameters,
 * stream-ordered memcpy/memset, and the deadlock diagnostics that
 * name the blocked streams.
 */

#include <gtest/gtest.h>

#include <string>

#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox::rt
{
namespace
{

using test::smallConfig;

class StreamTest : public ::testing::Test
{
  protected:
    StreamTest() : rt_(smallConfig()) {}

    /** A kernel spinning for @p cycles, logging its start/end times. */
    static KernelFn
    spinKernel(Cycles cycles, Cycles *start, Cycles *end)
    {
        return [cycles, start, end](BlockCtx &ctx) -> sim::Task {
            if (start)
                *start = ctx.actor().now();
            co_await sim::Delay{cycles};
            if (end)
                *end = ctx.actor().now();
        };
    }

    Runtime rt_;
};

TEST_F(StreamTest, KernelsOnOneStreamRunFifo)
{
    Process &p = rt_.createProcess("p");
    Stream &s = rt_.createStream(p, 0, "fifo");

    Cycles a_start = 0, a_end = 0, b_start = 0, b_end = 0;
    gpu::KernelConfig cfg;
    s.launch(cfg, spinKernel(1000, &a_start, &a_end));
    s.launch(cfg, spinKernel(500, &b_start, &b_end));
    EXPECT_FALSE(s.idle());
    rt_.sync(s);
    EXPECT_TRUE(s.idle());

    // Strict stream order: the second kernel starts the instant the
    // first completes, never earlier.
    EXPECT_EQ(a_end, a_start + 1000);
    EXPECT_EQ(b_start, a_end);
    EXPECT_EQ(b_end, b_start + 500);
}

TEST_F(StreamTest, KernelsOnDifferentStreamsOverlap)
{
    Process &p = rt_.createProcess("p");
    Stream &s1 = rt_.createStream(p, 0, "s1");
    Stream &s2 = rt_.createStream(p, 0, "s2");

    Cycles a_start = 0, a_end = 0, b_start = 0, b_end = 0;
    gpu::KernelConfig cfg;
    s1.launch(cfg, spinKernel(1000, &a_start, &a_end));
    s2.launch(cfg, spinKernel(1000, &b_start, &b_end));
    rt_.syncAll();

    // Both started at enqueue time: full overlap, no serialization.
    EXPECT_EQ(a_start, b_start);
    EXPECT_EQ(a_end, b_end);
}

TEST_F(StreamTest, StreamWaitEventOrdersAcrossStreams)
{
    Process &p = rt_.createProcess("p");
    Stream &producer = rt_.createStream(p, 0, "producer");
    Stream &consumer = rt_.createStream(p, 1, "consumer");
    Event &ready = rt_.createEvent("ready");

    Cycles prod_end = 0, cons_start = 0;
    gpu::KernelConfig cfg;
    producer.launch(cfg, spinKernel(2000, nullptr, &prod_end));
    producer.record(ready);

    consumer.wait(ready);
    consumer.launch(cfg, spinKernel(10, &cons_start, nullptr));

    rt_.sync(consumer);

    EXPECT_TRUE(ready.completed());
    EXPECT_EQ(ready.when(), prod_end);
    // The consumer kernel started exactly when the event fired.
    EXPECT_EQ(cons_start, ready.when());
}

TEST_F(StreamTest, WaitOnUnrecordedEventIsNoOp)
{
    // CUDA semantics: waiting on an event nobody recorded proceeds.
    Process &p = rt_.createProcess("p");
    Stream &s = rt_.createStream(p, 0);
    Event &never = rt_.createEvent("never");

    Cycles start = 1;
    s.wait(never);
    gpu::KernelConfig cfg;
    s.launch(cfg, spinKernel(10, &start, nullptr));
    rt_.sync(s);
    EXPECT_EQ(start, 0u);
    EXPECT_FALSE(never.completed());
    // Host-side sync on it is equally a no-op (cudaEventSynchronize).
    EXPECT_NO_THROW(rt_.sync(never));
}

TEST_F(StreamTest, WaitHonorsReRecordedEvent)
{
    // Event reuse: a wait must park on the *outstanding* record, not
    // be satisfied by a stale completion from an earlier round.
    Process &p = rt_.createProcess("p");
    Stream &a = rt_.createStream(p, 0, "a");
    Stream &b = rt_.createStream(p, 1, "b");
    Event &e = rt_.createEvent("reused");

    gpu::KernelConfig cfg;
    a.launch(cfg, spinKernel(100, nullptr, nullptr));
    a.record(e);
    rt_.sync(a);
    const Cycles first = e.when();

    Cycles a_end = 0, b_start = 0;
    a.launch(cfg, spinKernel(5000, nullptr, &a_end));
    a.record(e);
    b.wait(e);
    b.launch(cfg, spinKernel(10, &b_start, nullptr));
    rt_.sync(b);

    EXPECT_GT(e.when(), first);
    EXPECT_EQ(e.when(), a_end);
    EXPECT_EQ(b_start, e.when());
}

TEST_F(StreamTest, EventElapsedMatchesTimingParams)
{
    Process &p = rt_.createProcess("p");
    Stream &s = rt_.createStream(p, 0);
    Event &begin = rt_.createEvent("begin");
    Event &end = rt_.createEvent("end");

    // compute(ops) charges ops * aluCyclesPerOp, jitter-free.
    const Cycles ops = 100;
    s.record(begin);
    gpu::KernelConfig cfg;
    s.launch(cfg, [ops](BlockCtx &ctx) -> sim::Task {
        co_await ctx.compute(ops);
    });
    s.record(end);
    rt_.sync(end);

    EXPECT_EQ(end.elapsed(begin),
              ops * rt_.timing().aluCyclesPerOp);
    // elapsed() demands completed events in order.
    Event &unrecorded = rt_.createEvent("unrecorded");
    EXPECT_THROW(unrecorded.elapsed(begin), FatalError);
    EXPECT_THROW(begin.elapsed(end), FatalError);
}

TEST_F(StreamTest, MemsetAsyncChargesDmaModelAndWrites)
{
    Process &p = rt_.createProcess("p");
    const VAddr buf = rt_.deviceMalloc(p, 0, 4096);
    Stream &s = rt_.createStream(p, 0);
    Event &begin = rt_.createEvent("m-begin");
    Event &end = rt_.createEvent("m-end");

    s.record(begin);
    s.memsetAsync(buf, 0xab, 4096);
    s.record(end);
    rt_.sync(s);

    const TimingParams &t = rt_.timing();
    EXPECT_EQ(end.elapsed(begin),
              t.dmaSetupCycles + 4096 / t.dmaBytesPerCycle);
    EXPECT_EQ(rt_.hostRead<std::uint8_t>(p, buf), 0xabu);
    EXPECT_EQ(rt_.hostRead<std::uint8_t>(p, buf + 4095), 0xabu);
}

TEST_F(StreamTest, MemcpyAsyncIsStreamOrdered)
{
    Process &p = rt_.createProcess("p");
    const VAddr src = rt_.deviceMalloc(p, 0, 4096);
    const VAddr dst = rt_.deviceMalloc(p, 0, 4096);
    rt_.hostWrite<std::uint64_t>(p, src + 128, 0xfeedULL);

    Stream &s = rt_.createStream(p, 0);
    s.memcpyAsync(dst, src, 4096);
    // The kernel is queued behind the copy: it must observe the data.
    std::uint64_t seen = 0;
    gpu::KernelConfig cfg;
    s.launch(cfg, [&, dst](BlockCtx &ctx) -> sim::Task {
        seen = co_await ctx.ldcg64(dst + 128);
    });
    rt_.sync(s);
    EXPECT_EQ(seen, 0xfeedULL);

    // Out-of-range transfers fail at the call site.
    EXPECT_THROW(s.memcpyAsync(dst, src, 2 * 4096), FatalError);
    EXPECT_THROW(s.memsetAsync(dst + 4000, 0, 1000), FatalError);
}

TEST_F(StreamTest, CrossGpuMemcpyMovesData)
{
    Process &p = rt_.createProcess("p");
    const VAddr src = rt_.deviceMalloc(p, 0, 4096);
    const VAddr dst = rt_.deviceMalloc(p, 1, 4096);
    rt_.hostWrite<std::uint32_t>(p, src, 0x5eedULL);

    Stream &s = rt_.createStream(p, 0);
    Event &begin = rt_.createEvent("x-begin");
    Event &end = rt_.createEvent("x-end");
    s.record(begin);
    s.memcpyAsync(dst, src, 4096);
    s.record(end);
    rt_.sync(s);

    EXPECT_EQ(rt_.hostRead<std::uint32_t>(p, dst), 0x5eedu);
    // The NVLink leg makes the cross-GPU copy strictly slower than
    // the same-GPU DMA cost.
    const TimingParams &t = rt_.timing();
    EXPECT_GT(end.elapsed(begin),
              t.dmaSetupCycles + 4096 / t.dmaBytesPerCycle);
}

TEST_F(StreamTest, DefaultStreamIsPerProcessPerGpu)
{
    Process &a = rt_.createProcess("a");
    Process &b = rt_.createProcess("b");
    Stream &a0 = rt_.stream(a, 0);
    EXPECT_EQ(&a0, &rt_.stream(a, 0));
    EXPECT_NE(&a0, &rt_.stream(a, 1));
    EXPECT_NE(&a0, &rt_.stream(b, 0));
    // Streams register with their process for diagnostics.
    EXPECT_EQ(a.streams().size(), 2u);
    EXPECT_EQ(a.streams()[0], &a0);
}

TEST_F(StreamTest, DeadlockDiagnosisNamesBlockedStreams)
{
    Process &p = rt_.createProcess("p");
    Stream &s1 = rt_.createStream(p, 0, "ping");
    Stream &s2 = rt_.createStream(p, 0, "pong");
    Event &e1 = rt_.createEvent("ping-done");
    Event &e2 = rt_.createEvent("pong-done");

    // Classic cycle: each stream records its event only after waiting
    // for the other's.
    gpu::KernelConfig cfg;
    s1.launch(cfg, spinKernel(10, nullptr, nullptr));
    s1.wait(e2);
    s1.record(e1);
    s2.launch(cfg, spinKernel(10, nullptr, nullptr));
    s2.wait(e1);
    s2.record(e2);

    try {
        rt_.sync(s1);
        FAIL() << "expected a deadlock diagnosis";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        // The diagnosis names both parked streams and their events.
        EXPECT_NE(msg.find("stream 'ping'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("stream 'pong'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("event 'pong-done'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace gpubox::rt
