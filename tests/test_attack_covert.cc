/**
 * @file
 * Tests for the cross-GPU covert channel: set alignment (Algorithm 2),
 * bit and message transmission, multi-set parallelism, trace levels.
 */

#include <gtest/gtest.h>

#include "attack/covert/channel.hh"
#include "attack/covert/port_channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "rt/platform.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox::attack
{
namespace
{

using covert::ChannelConfig;
using covert::ChannelStats;
using covert::CovertChannel;
using test::smallConfig;

/**
 * Expensive shared fixture: calibration, both finders, alignment.
 * Trojan on GPU 0 (owns the memory), spy on GPU 1.
 */
class CovertFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogEnabled(false);
        rt_ = new rt::Runtime(smallConfig(777));
        trojan_ = &rt_->createProcess("trojan");
        spy_ = &rt_->createProcess("spy");

        TimingOracle oracle(*rt_, *spy_);
        calib_ = new CalibrationResult(oracle.calibrate(1, 0, 32, 6));

        // Trojan finds sets locally over its buffer on GPU 0; the spy
        // finds sets remotely over its own buffer, also on GPU 0.
        tf_ = new EvictionSetFinder(*rt_, *trojan_, 0, 0,
                                    calib_->thresholds);
        tf_->run();
        sf_ = new EvictionSetFinder(*rt_, *spy_, 1, 0,
                                    calib_->thresholds);
        sf_->run();

        aligner_ = new SetAligner(*rt_, *trojan_, *spy_, 0, 1,
                                  calib_->thresholds);
        mapping_ = new std::vector<int>(
            aligner_->alignGroups(*tf_, *sf_));
        setLogEnabled(true);
    }

    static void
    TearDownTestSuite()
    {
        delete mapping_;
        delete aligner_;
        delete sf_;
        delete tf_;
        delete calib_;
        delete rt_;
        rt_ = nullptr;
    }

    CovertChannel
    makeChannel(unsigned sets, const ChannelConfig &cfg = ChannelConfig())
    {
        auto pairs = aligner_->alignedPairs(*tf_, *sf_, *mapping_, sets);
        return CovertChannel(*rt_, *trojan_, *spy_, 0, 1,
                             std::move(pairs), calib_->thresholds, cfg);
    }

    void
    SetUp() override
    {
        ASSERT_NE(rt_, nullptr) << "fixture setup failed earlier";
    }

    static rt::Runtime *rt_;
    static rt::Process *trojan_;
    static rt::Process *spy_;
    static CalibrationResult *calib_;
    static EvictionSetFinder *tf_;
    static EvictionSetFinder *sf_;
    static SetAligner *aligner_;
    static std::vector<int> *mapping_;
};

rt::Runtime *CovertFixture::rt_ = nullptr;
rt::Process *CovertFixture::trojan_ = nullptr;
rt::Process *CovertFixture::spy_ = nullptr;
CalibrationResult *CovertFixture::calib_ = nullptr;
EvictionSetFinder *CovertFixture::tf_ = nullptr;
EvictionSetFinder *CovertFixture::sf_ = nullptr;
SetAligner *CovertFixture::aligner_ = nullptr;
std::vector<int> *CovertFixture::mapping_ = nullptr;

TEST_F(CovertFixture, AlignmentMatchesEveryGroup)
{
    ASSERT_EQ(mapping_->size(), tf_->numGroups());
    std::set<int> used;
    for (int sg : *mapping_) {
        EXPECT_GE(sg, 0) << "unmatched trojan group";
        EXPECT_TRUE(used.insert(sg).second) << "spy group matched twice";
    }
}

TEST_F(CovertFixture, AlignmentIsPhysicallyCorrect)
{
    // Ground truth: matched (trojan, spy) group pairs map to the same
    // physical set window.
    for (std::size_t tg = 0; tg < mapping_->size(); ++tg) {
        const int sg = (*mapping_)[tg];
        ASSERT_GE(sg, 0);
        const auto tset = tf_->evictionSet(tg, 0);
        const auto sset = sf_->evictionSet(sg, 0);
        EXPECT_EQ(rt_->l2SetOf(*trojan_, tset.lines[0]),
                  rt_->l2SetOf(*spy_, sset.lines[0]));
    }
}

TEST_F(CovertFixture, TestPairDistinguishesMatchFromMismatch)
{
    const auto t0 = tf_->evictionSet(0, 1);
    const int sg = (*mapping_)[0];
    const auto matched = sf_->evictionSet(sg, 1);
    const auto unmatched = sf_->evictionSet(sg, 2);

    auto run_m = aligner_->testPair(t0, matched);
    auto run_u = aligner_->testPair(t0, unmatched);
    EXPECT_TRUE(run_m.matched);
    EXPECT_FALSE(run_u.matched);
    EXPECT_GT(run_m.avgProbeCycles, run_u.avgProbeCycles + 100);
}

TEST_F(CovertFixture, AlignedPairsAreOnDistinctSets)
{
    auto pairs = aligner_->alignedPairs(*tf_, *sf_, *mapping_, 8);
    ASSERT_EQ(pairs.size(), 8u);
    std::set<SetIndex> sets;
    for (const auto &[t, s] : pairs) {
        EXPECT_EQ(rt_->l2SetOf(*trojan_, t.lines[0]),
                  rt_->l2SetOf(*spy_, s.lines[0]));
        sets.insert(rt_->l2SetOf(*trojan_, t.lines[0]));
    }
    EXPECT_EQ(sets.size(), 8u);
}

TEST_F(CovertFixture, SingleSetTransmissionIsReliable)
{
    CovertChannel channel = makeChannel(1);
    std::vector<std::uint8_t> bits;
    Rng rng(101);
    for (int i = 0; i < 256; ++i)
        bits.push_back(rng.chance(0.5) ? 1 : 0);

    std::vector<std::uint8_t> rx;
    ChannelStats stats = channel.transmit(bits, rx);
    EXPECT_EQ(stats.bitsSent, 256u);
    EXPECT_LE(stats.errorRate, 0.02);
    EXPECT_GT(stats.bandwidthMbitPerSec, 0.1);
}

TEST_F(CovertFixture, MessageRoundtrip)
{
    CovertChannel channel = makeChannel(2);
    std::string decoded;
    ChannelStats stats =
        channel.transmitMessage("Hello! How are you? ", decoded);
    EXPECT_LE(stats.errorRate, 0.05);
    // Allow a few bit flips but the text must be mostly intact.
    ASSERT_EQ(decoded.size(), 20u);
    int same = 0;
    const std::string sent = "Hello! How are you? ";
    for (std::size_t i = 0; i < sent.size(); ++i)
        if (decoded[i] == sent[i])
            ++same;
    EXPECT_GE(same, 18);
}

TEST_F(CovertFixture, TraceLevelsSeparateZeroAndOne)
{
    CovertChannel channel = makeChannel(1);
    // Alternating bits: trace must alternate between the hit level
    // (~630 cy) and the miss level (~950 cy), paper Fig. 10.
    std::vector<std::uint8_t> bits;
    for (int i = 0; i < 64; ++i)
        bits.push_back(i % 2);
    std::vector<std::uint8_t> rx;
    ChannelStats stats = channel.transmit(bits, rx);
    ASSERT_EQ(stats.probeTraceSet0.size(), 64u);
    double zero_avg = 0, one_avg = 0;
    for (int i = 0; i < 64; ++i)
        (i % 2 ? one_avg : zero_avg) += stats.probeTraceSet0[i];
    zero_avg /= 32;
    one_avg /= 32;
    EXPECT_NEAR(zero_avg, 630, 120);
    EXPECT_NEAR(one_avg, 950, 120);
    EXPECT_GT(one_avg, zero_avg + 150);
}

TEST_F(CovertFixture, MoreSetsIncreaseBandwidth)
{
    std::vector<std::uint8_t> bits(512, 1);
    for (std::size_t i = 0; i < bits.size(); i += 3)
        bits[i] = 0;

    std::vector<std::uint8_t> rx;
    CovertChannel c1 = makeChannel(1);
    CovertChannel c4 = makeChannel(4);
    const double bw1 = c1.transmit(bits, rx).bandwidthMbitPerSec;
    const double bw4 = c4.transmit(bits, rx).bandwidthMbitPerSec;
    EXPECT_GT(bw4, 3.0 * bw1);
}

TEST_F(CovertFixture, BitPackingRoundtrip)
{
    const std::string msg = "gpubox\x01\xff";
    auto bits = CovertChannel::toBits(msg);
    EXPECT_EQ(bits.size(), msg.size() * 8);
    EXPECT_EQ(CovertChannel::fromBits(bits), msg);
}

TEST_F(CovertFixture, EmptyPairsAreFatal)
{
    EXPECT_THROW(CovertChannel(*rt_, *trojan_, *spy_, 0, 1, {},
                               calib_->thresholds),
                 FatalError);
}

TEST_F(CovertFixture, TooManyPairsRequestedIsFatal)
{
    EXPECT_THROW(aligner_->alignedPairs(*tf_, *sf_, *mapping_, 100000),
                 FatalError);
}

// ---- cross-pair switch-port channel ------------------------------------

using covert::GpuPair;
using covert::PortChannel;

TEST(PortChannel, FinderLocatesInterferingPairOnSwitchedFabric)
{
    rt::Runtime rt(
        rt::platformByName("dgx2-nvswitch").systemConfig(11));
    GpuPair spy_pair;
    ASSERT_TRUE(PortChannel::findInterferingPair(rt, GpuPair{0, 1},
                                                 &spy_pair));
    // Lowest disjoint pair striped onto the same plane as (0,1):
    // plane (0+1) % 6 == (2+5) % 6.
    EXPECT_EQ(spy_pair.src, 2);
    EXPECT_EQ(spy_pair.dst, 5);
    EXPECT_TRUE(PortChannel::routesInterfere(
        rt.topology(), GpuPair{0, 1}, spy_pair));
    // Pairs striped onto different planes do not interfere.
    EXPECT_FALSE(PortChannel::routesInterfere(
        rt.topology(), GpuPair{0, 1}, GpuPair{2, 6}));
}

TEST(PortChannel, PointToPointBoxesOfferNoInterferingPair)
{
    // On the DGX-1 peer access is single-hop only, and two disjoint
    // direct links share nothing: the cross-pair channel cannot
    // exist. This is the (measurable) cost of a point-to-point
    // fabric -- and the vulnerability switches introduce.
    rt::Runtime rt(rt::platformByName("dgx1-p100").systemConfig(11));
    EXPECT_FALSE(
        PortChannel::findInterferingPair(rt, GpuPair{0, 1}, nullptr));
}

TEST(PortChannel, CrossBoxFinderNeedsFourChassis)
{
    // On the superpod the finder must place all four GPUs in four
    // different chassis and still land both routes on one spine.
    rt::Runtime rt(
        rt::platformByName("dgx-superpod").systemConfig(11));
    GpuPair spy_pair;
    ASSERT_TRUE(PortChannel::findCrossBoxInterferingPair(
        rt, GpuPair{0, 16}, &spy_pair));
    // Lowest candidate in fresh chassis striped onto the trojan's
    // spine: (0+16) % 4 == (32+48) % 4.
    EXPECT_EQ(spy_pair.src, 32);
    EXPECT_EQ(spy_pair.dst, 48);
    const noc::Topology &t = rt.topology();
    EXPECT_TRUE(t.crossIsland(spy_pair.src, spy_pair.dst));
    EXPECT_TRUE(t.crossIsland(spy_pair.src, 0));
    EXPECT_TRUE(t.crossIsland(spy_pair.dst, 16));
    EXPECT_TRUE(PortChannel::routesInterfere(t, GpuPair{0, 16},
                                             spy_pair));
    // An intra-box trojan pair has no cross-box route to flood.
    EXPECT_FALSE(PortChannel::findCrossBoxInterferingPair(
        rt, GpuPair{0, 1}, nullptr));
}

TEST(PortChannel, CrossBoxFinderIsImpossibleInsideOneChassis)
{
    // A single-chassis platform has one island: the cross-box channel
    // is structurally impossible, whatever pairs are offered.
    rt::Runtime rt(
        rt::platformByName("dgx2-nvswitch").systemConfig(11));
    EXPECT_FALSE(PortChannel::findCrossBoxInterferingPair(
        rt, GpuPair{0, 1}, nullptr));
}

TEST(PortChannel, ConstructionValidatesPairs)
{
    rt::Runtime rt(
        rt::platformByName("dgx2-nvswitch").systemConfig(11));
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");
    // Overlapping pairs break the cross-pair premise.
    EXPECT_THROW(PortChannel(rt, trojan, spy, GpuPair{0, 1},
                             GpuPair{1, 2}),
                 FatalError);
    // Disjoint but non-interfering routes (different planes).
    EXPECT_THROW(PortChannel(rt, trojan, spy, GpuPair{0, 1},
                             GpuPair{2, 6}),
                 FatalError);
    // Degenerate pair.
    EXPECT_THROW(PortChannel(rt, trojan, spy, GpuPair{0, 0},
                             GpuPair{2, 5}),
                 FatalError);
}

TEST(PortChannel, TransmitsThroughSharedCrossbar)
{
    rt::Runtime rt(
        rt::platformByName("dgx2-nvswitch").systemConfig(11));
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");
    PortChannel port(rt, trojan, spy, GpuPair{0, 1}, GpuPair{2, 5});
    // Symbols are aligned to the switch contention window so the
    // trojan's burst and the spy's probe meet deterministically.
    EXPECT_EQ(port.symbolCycles() % 2000, 0u);
    EXPECT_EQ(port.sharedResourceString(), "sw1");

    Rng rng(99);
    std::vector<std::uint8_t> bits(48);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    const covert::ChannelStats stats = port.transmit(bits, rx);
    EXPECT_EQ(stats.bitsSent, bits.size());
    EXPECT_GT(stats.bandwidthMbitPerSec, 0.0);
    // The two processes share no L2 set, no eviction set, not even a
    // GPU -- yet the crossbar leaks the bits.
    EXPECT_LE(stats.errorRate, 0.05);
}

TEST(PortChannel, TransmitSerializesDeterministically)
{
    // Two identical runtimes, same seed: the port channel's decode
    // (and therefore the arbitration order underneath it) must be
    // byte-identical -- the serialization regression for disjoint-
    // pair transfers through one switch.
    const auto run = [] {
        rt::Runtime rt(
            rt::platformByName("dgx2-nvswitch").systemConfig(17));
        rt::Process &trojan = rt.createProcess("trojan");
        rt::Process &spy = rt.createProcess("spy");
        PortChannel port(rt, trojan, spy, GpuPair{0, 1},
                         GpuPair{2, 5});
        Rng rng(7);
        std::vector<std::uint8_t> bits(24);
        for (auto &b : bits)
            b = rng.chance(0.5) ? 1 : 0;
        std::vector<std::uint8_t> rx;
        const covert::ChannelStats stats = port.transmit(bits, rx);
        return std::make_pair(rx, stats.probeTraceSet0);
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
}

} // namespace
} // namespace gpubox::attack
