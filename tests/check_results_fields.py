#!/usr/bin/env python3
"""Regression test: no wall-clock-derived value reaches
BENCH_results.json or a bench CSV outside the documented fields.

The results schema documents exactly three host-time fields --
`wall_seconds_total` (driver), `wall_seconds` and `wall_seconds_mean`
(per bench); `repeats` counts repetitions and is deterministic.
Everything else in the JSON, and every byte of every CSV, must be
identical across two runs of the same bench. A new timing field, a
timestamp, or hash-order leakage would show up here as a diff.

Usage: check_results_fields.py <path-to-gpubox_bench>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH = "fig04_access_timing"  # fastest registered bench
VOLATILE_KEYS = {"wall_seconds_total", "wall_seconds",
                 "wall_seconds_mean"}
# Substrings that smell like host time; any key matching one of these
# outside VOLATILE_KEYS is an undocumented timing field.
TIMEY = ("wall", "seconds", "timestamp", "date", "elapsed")


def run_bench(bench_bin, outdir):
    cmd = [bench_bin, "--only", BENCH, "--quiet",
           "--out-dir", str(outdir),
           "--results", str(outdir / "BENCH_results.json")]
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          timeout=300)
    if proc.returncode != 0:
        print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}\n"
              f"{proc.stdout}\n{proc.stderr}", file=sys.stderr)
        sys.exit(1)


def walk_keys(node, path, out):
    if isinstance(node, dict):
        for k, v in node.items():
            out.append((path + "/" + k, k))
            walk_keys(v, path + "/" + k, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk_keys(v, f"{path}[{i}]", out)


def strip_volatile(node):
    if isinstance(node, dict):
        return {k: strip_volatile(v) for k, v in node.items()
                if k not in VOLATILE_KEYS}
    if isinstance(node, list):
        return [strip_volatile(v) for v in node]
    return node


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench_bin = sys.argv[1]
    failures = 0

    with tempfile.TemporaryDirectory() as tmp:
        dir_a = Path(tmp) / "a"
        dir_b = Path(tmp) / "b"
        dir_a.mkdir()
        dir_b.mkdir()
        run_bench(bench_bin, dir_a)
        run_bench(bench_bin, dir_b)

        ja = json.loads((dir_a / "BENCH_results.json").read_text())
        jb = json.loads((dir_b / "BENCH_results.json").read_text())

        # 1. The documented wall fields must actually exist (else the
        #    allowlist has drifted from the schema).
        if "wall_seconds_total" not in ja:
            print("FAIL: wall_seconds_total missing from results")
            failures += 1
        for bench in ja.get("benches", []):
            for key in ("wall_seconds", "wall_seconds_mean",
                        "repeats"):
                if key not in bench:
                    print(f"FAIL: {key} missing from bench entry")
                    failures += 1

        # 2. No undocumented time-smelling key anywhere.
        keys = []
        walk_keys(ja, "", keys)
        for path, key in keys:
            if key in VOLATILE_KEYS:
                continue
            if any(t in key.lower() for t in TIMEY):
                print(f"FAIL: undocumented timing field {path}")
                failures += 1

        # 3. Everything except the volatile fields is run-invariant.
        sa = strip_volatile(ja)
        sb = strip_volatile(jb)
        if sa != sb:
            print("FAIL: results differ outside wall_seconds* fields")
            print(json.dumps(sa, indent=1)[:2000])
            print("---- vs ----")
            print(json.dumps(sb, indent=1)[:2000])
            failures += 1

        # 4. CSVs are byte-identical (no timing column can hide there).
        csvs_a = sorted(p.name for p in dir_a.glob("*.csv"))
        csvs_b = sorted(p.name for p in dir_b.glob("*.csv"))
        if not csvs_a:
            print(f"FAIL: bench {BENCH} produced no CSV")
            failures += 1
        if csvs_a != csvs_b:
            print(f"FAIL: CSV sets differ: {csvs_a} vs {csvs_b}")
            failures += 1
        for name in csvs_a:
            if (dir_a / name).read_bytes() != (dir_b / name).read_bytes():
                print(f"FAIL: {name} differs between runs")
                failures += 1

    if failures:
        return 1
    print(f"OK: {BENCH} results stable outside "
          f"{sorted(VOLATILE_KEYS)}; {len(csvs_a)} CSV(s) "
          "byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
