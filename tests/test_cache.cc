/**
 * @file
 * Unit and property tests for the cache model: replacement policies,
 * set-associative behaviour, the page-preserving index hash.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/indexer.hh"
#include "cache/replacement.hh"
#include "cache/set_assoc_cache.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gpubox::cache
{
namespace
{

CacheConfig
tinyConfig(ReplPolicy policy = ReplPolicy::LRU)
{
    CacheConfig cfg;
    cfg.sizeBytes = 8 * 1024; // 4 sets x 16 ways x 128 B
    cfg.lineBytes = 128;
    cfg.ways = 16;
    cfg.policy = policy;
    return cfg;
}

TEST(ReplPolicyNames, RoundTrip)
{
    for (auto p : {ReplPolicy::LRU, ReplPolicy::TREE_PLRU,
                   ReplPolicy::RANDOM})
        EXPECT_EQ(replPolicyFromName(replPolicyName(p)), p);
    EXPECT_THROW(replPolicyFromName("bogus"), FatalError);
}

TEST(LruPolicy, EvictsLeastRecent)
{
    LruPolicy lru;
    lru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.touch(0, w);
    EXPECT_EQ(lru.victim(0), 0u);
    lru.touch(0, 0);
    EXPECT_EQ(lru.victim(0), 1u);
}

TEST(TreePlru, RequiresPowerOfTwoWays)
{
    TreePlruPolicy plru;
    EXPECT_THROW(plru.reset(4, 12), FatalError);
}

TEST(TreePlru, VictimAvoidsMostRecent)
{
    TreePlruPolicy plru;
    plru.reset(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        plru.touch(0, w);
    // The most recently touched way must never be the victim.
    for (int i = 0; i < 16; ++i) {
        const unsigned v = plru.victim(0);
        EXPECT_NE(v, 7u);
        plru.touch(0, v);
        plru.touch(0, 7);
    }
}

TEST(RandomPolicy, CoversAllWays)
{
    RandomPolicy rnd{Rng(3)};
    rnd.reset(1, 8);
    std::set<unsigned> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rnd.victim(0));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(LinearIndexer, WrapsModuloSets)
{
    LinearIndexer idx(64, 128);
    EXPECT_EQ(idx.setFor(0), 0u);
    EXPECT_EQ(idx.setFor(128), 1u);
    EXPECT_EQ(idx.setFor(64 * 128), 0u);
}

TEST(HashedPageIndexer, ConsecutiveWithinPage)
{
    // 2048 sets, 128 B lines, 64 KiB pages: 512 lines/page, 4 colors.
    HashedPageIndexer idx(2048, 128, 64 * 1024, 0x5a17);
    const PAddr page = static_cast<PAddr>(77) << 16;
    const SetIndex s0 = idx.setFor(page);
    for (std::uint32_t l = 1; l < 512; ++l)
        EXPECT_EQ(idx.setFor(page + l * 128), (s0 + l) % 2048);
}

TEST(HashedPageIndexer, PageStartsAreColorAligned)
{
    HashedPageIndexer idx(2048, 128, 64 * 1024, 0x5a17);
    EXPECT_EQ(idx.numColors(), 4u);
    for (std::uint64_t frame = 0; frame < 200; ++frame) {
        const PAddr page = frame << 16;
        const SetIndex s0 = idx.setFor(page);
        EXPECT_EQ(s0 % 512, 0u) << "page window must be aligned";
        EXPECT_EQ(s0 / 512, idx.colorOf(frame, 0));
    }
}

TEST(HashedPageIndexer, ColorsRoughlyBalanced)
{
    HashedPageIndexer idx(2048, 128, 64 * 1024, 0xfeed);
    std::map<std::uint32_t, int> counts;
    const int frames = 4000;
    for (std::uint64_t f = 0; f < frames; ++f)
        ++counts[idx.colorOf(f, 0)];
    ASSERT_EQ(counts.size(), 4u);
    for (auto [color, count] : counts) {
        (void)color;
        EXPECT_GT(count, frames / 4 - 150);
        EXPECT_LT(count, frames / 4 + 150);
    }
}

TEST(HashedPageIndexer, GpuChangesColoring)
{
    HashedPageIndexer idx(2048, 128, 64 * 1024, 0x5a17);
    int diffs = 0;
    for (std::uint64_t f = 0; f < 64; ++f)
        if (idx.colorOf(f, 0) != idx.colorOf(f, 1))
            ++diffs;
    EXPECT_GT(diffs, 16);
}

TEST(HashedPageIndexer, SaltChangesMapping)
{
    HashedPageIndexer a(2048, 128, 64 * 1024, 1);
    HashedPageIndexer b(2048, 128, 64 * 1024, 2);
    int diffs = 0;
    for (std::uint64_t f = 0; f < 64; ++f)
        if (a.colorOf(f, 0) != b.colorOf(f, 0))
            ++diffs;
    EXPECT_GT(diffs, 16);
}

TEST(HashedPageIndexer, RejectsBadGeometry)
{
    EXPECT_THROW(HashedPageIndexer(2048, 100, 65536, 0), FatalError);
    EXPECT_THROW(HashedPageIndexer(2048, 256, 128, 0), FatalError);
}

TEST(SetAssocCache, MissThenHit)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    auto out1 = cache.access(0x1000);
    EXPECT_FALSE(out1.hit);
    auto out2 = cache.access(0x1000);
    EXPECT_TRUE(out2.hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, SameLineDifferentBytesHit)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    cache.access(0x1000);
    EXPECT_TRUE(cache.access(0x1000 + 127).hit);
    EXPECT_FALSE(cache.access(0x1000 + 128).hit);
}

TEST(SetAssocCache, LruEvictionAtAssociativity)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    const PAddr target = 0; // set 0
    cache.access(target);
    // 15 more distinct lines in set 0: target stays.
    for (int i = 1; i <= 15; ++i)
        cache.access(target + static_cast<PAddr>(i) * 4 * 128);
    EXPECT_TRUE(cache.probe(target));
    // The 16th distinct line evicts the LRU target.
    auto out = cache.access(target + 16ULL * 4 * 128);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, target);
    EXPECT_FALSE(cache.probe(target));
}

TEST(SetAssocCache, ProbeDoesNotMutate)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_EQ(cache.misses(), 0u);
    cache.access(0x2000);
    EXPECT_TRUE(cache.probe(0x2000));
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(SetAssocCache, FlushInvalidatesEverything)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    for (int i = 0; i < 32; ++i)
        cache.access(static_cast<PAddr>(i) * 128);
    cache.flush();
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(cache.probe(static_cast<PAddr>(i) * 128));
}

TEST(SetAssocCache, InvalidateSingleLine)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    cache.access(0x1000);
    cache.access(0x2000);
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_TRUE(cache.probe(0x2000));
}

TEST(SetAssocCache, PerSetStats)
{
    LinearIndexer idx(4, 128);
    SetAssocCache cache(tinyConfig(), idx, Rng(1));
    cache.access(0);          // set 0 miss
    cache.access(0);          // set 0 hit
    cache.access(128);        // set 1 miss
    EXPECT_EQ(cache.setMisses(0), 1u);
    EXPECT_EQ(cache.setHits(0), 1u);
    EXPECT_EQ(cache.setMisses(1), 1u);
    EXPECT_EQ(cache.setHits(1), 0u);
    cache.resetStats();
    EXPECT_EQ(cache.setMisses(0), 0u);
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

TEST(SetAssocCache, RejectsBadGeometry)
{
    LinearIndexer idx(4, 128);
    CacheConfig bad = tinyConfig();
    bad.sizeBytes = 1000;
    EXPECT_THROW(SetAssocCache(bad, idx, Rng(1)), FatalError);
    bad = tinyConfig();
    bad.ways = 0;
    EXPECT_THROW(SetAssocCache(bad, idx, Rng(1)), FatalError);
}

TEST(SetAssocCache, ConfigNumSets)
{
    CacheConfig cfg; // P100 defaults
    EXPECT_EQ(cfg.numSets(), 2048u);
    EXPECT_EQ(tinyConfig().numSets(), 4u);
}

// Property: with LRU, any working set not exceeding the associativity
// always hits after the first pass, for several geometries.
class WorkingSetFits
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(WorkingSetFits, SecondPassAllHits)
{
    const auto [ways, lines] = GetParam();
    CacheConfig cfg;
    cfg.lineBytes = 128;
    cfg.ways = ways;
    cfg.sizeBytes = static_cast<std::uint64_t>(128) * ways * 8; // 8 sets
    LinearIndexer idx(8, 128);
    SetAssocCache cache(cfg, idx, Rng(2));

    // `lines` distinct lines, all mapping to set 3.
    std::vector<PAddr> addrs;
    for (unsigned i = 0; i < lines; ++i)
        addrs.push_back((3 + static_cast<PAddr>(i) * 8) * 128);

    for (PAddr a : addrs)
        cache.access(a);
    for (PAddr a : addrs)
        EXPECT_TRUE(cache.access(a).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WorkingSetFits,
    ::testing::Values(std::make_tuple(4u, 4u), std::make_tuple(8u, 8u),
                      std::make_tuple(16u, 16u), std::make_tuple(16u, 8u),
                      std::make_tuple(2u, 2u)));

// Property: one line more than the associativity thrashes under LRU.
class WorkingSetThrashes : public ::testing::TestWithParam<unsigned>
{};

TEST_P(WorkingSetThrashes, SecondPassAllMisses)
{
    const unsigned ways = GetParam();
    CacheConfig cfg;
    cfg.lineBytes = 128;
    cfg.ways = ways;
    cfg.sizeBytes = static_cast<std::uint64_t>(128) * ways * 4; // 4 sets
    LinearIndexer idx(4, 128);
    SetAssocCache cache(cfg, idx, Rng(2));

    std::vector<PAddr> addrs;
    for (unsigned i = 0; i < ways + 1; ++i)
        addrs.push_back(static_cast<PAddr>(i) * 4 * 128); // all set 0

    for (PAddr a : addrs)
        cache.access(a);
    for (PAddr a : addrs)
        EXPECT_FALSE(cache.access(a).hit);
}

INSTANTIATE_TEST_SUITE_P(Ways, WorkingSetThrashes,
                         ::testing::Values(2u, 4u, 8u, 16u));

// Property: the hashed indexer never exceeds the set range and uses
// every set when given every page color.
TEST(HashedPageIndexerProperty, FullCoverage)
{
    HashedPageIndexer idx(128, 128, 4096, 0x77);
    std::set<SetIndex> used;
    for (std::uint64_t frame = 0; frame < 64; ++frame) {
        for (std::uint32_t l = 0; l < 32; ++l) {
            const SetIndex s = idx.setFor((frame << 12) + l * 128);
            ASSERT_LT(s, 128u);
            used.insert(s);
        }
    }
    EXPECT_EQ(used.size(), 128u);
}

} // namespace
} // namespace gpubox::cache
