/**
 * @file
 * Unit tests for the GPU device model: block scheduler (leftover
 * policy), SM occupancy accounting, device construction.
 */

#include <gtest/gtest.h>

#include "cache/indexer.hh"
#include "gpu/block_scheduler.hh"
#include "gpu/device.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gpubox::gpu
{
namespace
{

SmLimits
limits(std::uint32_t shmem = 64 * 1024, std::uint32_t threads = 2048,
       std::uint32_t blocks = 32)
{
    return SmLimits{shmem, threads, blocks};
}

TEST(BlockScheduler, SpreadsAcrossSms)
{
    BlockScheduler sched(4, limits());
    BlockRequirements req{256, 1024};
    std::vector<SmId> placed;
    for (int i = 0; i < 4; ++i) {
        auto sm = sched.tryPlace(req);
        ASSERT_TRUE(sm.has_value());
        placed.push_back(*sm);
    }
    // Leftover policy spreads: each SM hosts exactly one block.
    std::sort(placed.begin(), placed.end());
    EXPECT_EQ(placed, (std::vector<SmId>{0, 1, 2, 3}));
    for (int sm = 0; sm < 4; ++sm)
        EXPECT_EQ(sched.residentBlocks(sm), 1u);
}

TEST(BlockScheduler, SharedMemoryLimitsCoResidency)
{
    BlockScheduler sched(2, limits(64 * 1024));
    BlockRequirements big{32, 33 * 1024}; // more than half an SM
    EXPECT_TRUE(sched.tryPlace(big).has_value());
    EXPECT_TRUE(sched.tryPlace(big).has_value());
    // Both SMs now hold one big block; a second cannot co-locate.
    EXPECT_FALSE(sched.tryPlace(big).has_value());
    EXPECT_FALSE(sched.canPlace(big));
    // But a small block still fits in the leftover shared memory.
    BlockRequirements small{32, 16 * 1024};
    EXPECT_TRUE(sched.tryPlace(small).has_value());
}

TEST(BlockScheduler, ThreadLimit)
{
    BlockScheduler sched(1, limits(64 * 1024, 2048));
    BlockRequirements req{1024, 0};
    EXPECT_TRUE(sched.tryPlace(req).has_value());
    EXPECT_TRUE(sched.tryPlace(req).has_value());
    EXPECT_FALSE(sched.tryPlace(req).has_value());
}

TEST(BlockScheduler, MaxBlockLimit)
{
    BlockScheduler sched(1, limits(64 * 1024, 2048, 3));
    BlockRequirements req{32, 0};
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(sched.tryPlace(req).has_value());
    EXPECT_FALSE(sched.tryPlace(req).has_value());
}

TEST(BlockScheduler, ReleaseRestoresCapacity)
{
    BlockScheduler sched(1, limits(64 * 1024));
    BlockRequirements req{512, 48 * 1024};
    auto sm = sched.tryPlace(req);
    ASSERT_TRUE(sm.has_value());
    EXPECT_EQ(sched.usedSharedMem(*sm), 48u * 1024u);
    EXPECT_EQ(sched.usedThreads(*sm), 512u);
    EXPECT_FALSE(sched.tryPlace(req).has_value());
    sched.release(*sm, req);
    EXPECT_EQ(sched.usedSharedMem(*sm), 0u);
    EXPECT_EQ(sched.totalResidentBlocks(), 0u);
    EXPECT_TRUE(sched.tryPlace(req).has_value());
}

TEST(BlockScheduler, ImpossibleDemandIsFatal)
{
    BlockScheduler sched(2, limits(64 * 1024, 2048));
    EXPECT_THROW(sched.tryPlace(BlockRequirements{4096, 0}), FatalError);
    EXPECT_THROW(sched.tryPlace(BlockRequirements{32, 128 * 1024}),
                 FatalError);
}

TEST(BlockScheduler, ReleaseUnderflowIsFatal)
{
    BlockScheduler sched(1, limits());
    EXPECT_THROW(sched.release(0, BlockRequirements{32, 0}), FatalError);
    EXPECT_THROW(sched.release(5, BlockRequirements{32, 0}), FatalError);
}

TEST(BlockScheduler, SaturationBlocksOtherKernels)
{
    // The Sec. VI noise mitigation: an attacker block (32 KiB shared)
    // plus an idle filler block (32 KiB) saturate each SM so no other
    // application can co-locate.
    BlockScheduler sched(4, limits(64 * 1024));
    BlockRequirements attacker{32, 32 * 1024};
    BlockRequirements filler{32, 32 * 1024};
    for (int sm = 0; sm < 4; ++sm) {
        EXPECT_TRUE(sched.tryPlace(attacker).has_value());
        EXPECT_TRUE(sched.tryPlace(filler).has_value());
    }
    BlockRequirements noisy{32, 1024};
    EXPECT_FALSE(sched.canPlace(noisy));
}

TEST(Device, ConstructsP100Geometry)
{
    DeviceParams params; // defaults
    cache::HashedPageIndexer idx(params.l2.numSets(), params.l2.lineBytes,
                                 64 * 1024, 1);
    Device dev(3, params, idx, Rng(1));
    EXPECT_EQ(dev.id(), 3);
    EXPECT_EQ(dev.numSms(), 56);
    EXPECT_EQ(dev.l2().numSets(), 2048u);
    EXPECT_EQ(dev.l2().config().ways, 16u);
    EXPECT_EQ(dev.scheduler().numSms(), 56);
}

TEST(Device, PerSmL1sAreIndependent)
{
    DeviceParams params;
    params.numSms = 2;
    cache::HashedPageIndexer idx(params.l2.numSets(), params.l2.lineBytes,
                                 64 * 1024, 1);
    Device dev(0, params, idx, Rng(1));
    dev.l1(0).access(0x1000);
    EXPECT_TRUE(dev.l1(0).probe(0x1000));
    EXPECT_FALSE(dev.l1(1).probe(0x1000));
}

} // namespace
} // namespace gpubox::gpu
