/**
 * @file
 * Tests for the side channel: memorygram data structure, remote
 * prober, application fingerprinting, MLP model extraction.
 */

#include <gtest/gtest.h>

#include "attack/evset_finder.hh"
#include "attack/side/fingerprint.hh"
#include "attack/side/memorygram.hh"
#include "attack/side/model_extract.hh"
#include "attack/side/prober.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"
#include "victim/workload.hh"

namespace gpubox::attack::side
{
namespace
{

using test::smallConfig;

TEST(MemorygramUnit, AccumulatesAndIgnoresOutOfRange)
{
    Memorygram g(4, 8);
    g.addMiss(1, 2, 3);
    g.addMiss(1, 2);
    g.addProbe(1, 2);
    g.addMiss(99, 0);  // silently dropped
    g.addMiss(0, 99);  // silently dropped
    EXPECT_DOUBLE_EQ(g.missAt(1, 2), 4.0);
    EXPECT_EQ(g.probesAt(1, 2), 1u);
    EXPECT_EQ(g.totalMisses(), 4u);
    EXPECT_EQ(g.totalProbes(), 1u);
    EXPECT_EQ(g.setMisses(1), 4u);
    EXPECT_EQ(g.windowMisses(2), 4u);
    EXPECT_DOUBLE_EQ(g.avgMissesPerSet(), 1.0);
}

TEST(MemorygramUnit, PooledFeaturesShape)
{
    Memorygram g(16, 32);
    g.addMiss(0, 0, 8);
    g.addMiss(15, 31, 4);
    auto f = g.pooledFeatures(4, 4);
    ASSERT_EQ(f.size(), 16u);
    EXPECT_GT(f[0], 0.0);
    EXPECT_GT(f[15], 0.0);
    double sum = 0;
    for (double v : f)
        sum += v;
    EXPECT_GT(sum, 0.0);
}

TEST(MemorygramUnit, DistanceAndRender)
{
    Memorygram a(2, 2), b(2, 2);
    a.addMiss(0, 0, 3);
    b.addMiss(1, 1, 4);
    EXPECT_DOUBLE_EQ(Memorygram::distance(a, b), 5.0);
    EXPECT_FALSE(a.render().empty());
    Memorygram c(3, 2);
    EXPECT_THROW(Memorygram::distance(a, c), FatalError);
    EXPECT_THROW(Memorygram(0, 5), FatalError);
}

/** Shared fixture with a remote spy finder on the victim GPU. */
class SideFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogEnabled(false);
        rt_ = new rt::Runtime(smallConfig(4242));
        spy_ = &rt_->createProcess("spy");
        victim_ = &rt_->createProcess("victim");

        TimingOracle oracle(*rt_, *spy_);
        calib_ = new CalibrationResult(oracle.calibrate(1, 0, 32, 6));
        // Spy runs on GPU 1, monitors GPU 0's L2.
        finder_ = new EvictionSetFinder(*rt_, *spy_, 1, 0,
                                        calib_->thresholds);
        finder_->run();
        setLogEnabled(true);
    }

    static void
    TearDownTestSuite()
    {
        delete finder_;
        delete calib_;
        delete rt_;
        rt_ = nullptr;
    }

    static ProberConfig
    fastProber()
    {
        ProberConfig cfg;
        cfg.monitoredSets = 32;
        cfg.samplePeriod = 3000;
        cfg.windowCycles = 6000;
        cfg.duration = 250000;
        return cfg;
    }

    void
    SetUp() override
    {
        ASSERT_NE(rt_, nullptr) << "fixture setup failed earlier";
    }

    static rt::Runtime *rt_;
    static rt::Process *spy_;
    static rt::Process *victim_;
    static CalibrationResult *calib_;
    static EvictionSetFinder *finder_;
};

rt::Runtime *SideFixture::rt_ = nullptr;
rt::Process *SideFixture::spy_ = nullptr;
rt::Process *SideFixture::victim_ = nullptr;
CalibrationResult *SideFixture::calib_ = nullptr;
EvictionSetFinder *SideFixture::finder_ = nullptr;

TEST_F(SideFixture, IdleVictimYieldsQuietMemorygram)
{
    RemoteProber prober(*rt_, *spy_, 1, *finder_, calib_->thresholds,
                        fastProber());
    Memorygram gram(fastProber().monitoredSets, prober.numWindows());
    const Cycles t0 = rt_->engine().now() + 6000;
    rt::Stream &spy_stream = rt_->createStream(*spy_, 1, "idle-prober");
    prober.prime(spy_stream);
    prober.monitor(spy_stream, gram, t0);
    rt_->sync(spy_stream);
    // Nothing ran on the victim GPU: after the first priming probes,
    // the spy sees (almost) no misses.
    EXPECT_GT(gram.totalProbes(), 100u);
    const double miss_rate =
        static_cast<double>(gram.totalMisses()) /
        static_cast<double>(gram.totalProbes() *
                            finder_->associativity());
    EXPECT_LT(miss_rate, 0.08);
}

TEST_F(SideFixture, ActiveVictimLightsUpMemorygram)
{
    FingerprintConfig cfg;
    cfg.prober = fastProber();
    Fingerprinter fp(*rt_, *spy_, 1, *victim_, 0, *finder_,
                     calib_->thresholds, cfg);
    Memorygram gram = fp.collectSample(victim::AppKind::VECTOR_ADD, 1);
    EXPECT_GT(gram.totalMisses(), 50u);
}

TEST_F(SideFixture, DifferentAppsDifferentMemorygrams)
{
    FingerprintConfig cfg;
    cfg.prober = fastProber();
    Fingerprinter fp(*rt_, *spy_, 1, *victim_, 0, *finder_,
                     calib_->thresholds, cfg);
    Memorygram va = fp.collectSample(victim::AppKind::VECTOR_ADD, 1);
    Memorygram mm = fp.collectSample(victim::AppKind::MATRIX_MUL, 1);
    EXPECT_GT(Memorygram::distance(va, mm), 10.0);
}

TEST_F(SideFixture, FingerprintingReachesHighAccuracy)
{
    setLogEnabled(false);
    FingerprintConfig cfg;
    cfg.prober = fastProber();
    cfg.samplesPerApp = 8;
    cfg.trainPerApp = 4;
    cfg.valPerApp = 1;
    cfg.featureRows = 8;
    cfg.featureCols = 8;
    Fingerprinter fp(*rt_, *spy_, 1, *victim_, 0, *finder_,
                     calib_->thresholds, cfg);
    FingerprintResult result = fp.run();
    setLogEnabled(true);

    EXPECT_EQ(result.classNames.size(), 6u);
    EXPECT_EQ(result.exemplars.size(), 6u);
    EXPECT_EQ(result.confusion.total(), 6u * 3u); // 3 test per class
    EXPECT_GE(result.testAccuracy, 0.8);
}

TEST_F(SideFixture, MlpExtractionMissesIncreaseWithNeurons)
{
    setLogEnabled(false);
    ExtractionConfig cfg;
    cfg.prober = fastProber();
    cfg.prober.duration = 500000;
    cfg.neuronCounts = {32, 64, 128};
    cfg.mlpBase.batchesPerEpoch = 2;
    ModelExtractor extractor(*rt_, *spy_, 1, *victim_, 0, *finder_,
                             calib_->thresholds, cfg);
    auto runs = extractor.sweepNeurons();
    setLogEnabled(true);

    ASSERT_EQ(runs.size(), 3u);
    EXPECT_LT(runs[0].avgMissesPerSet, runs[1].avgMissesPerSet);
    EXPECT_LT(runs[1].avgMissesPerSet, runs[2].avgMissesPerSet);

    // The nearest-reference inference recovers each width.
    for (const auto &run : runs)
        EXPECT_EQ(ModelExtractor::inferNeurons(run.avgMissesPerSet, runs),
                  run.neurons);
}

TEST_F(SideFixture, EpochCountIsInferable)
{
    setLogEnabled(false);
    ExtractionConfig cfg;
    cfg.prober = fastProber();
    cfg.prober.duration = 900000;
    cfg.mlpBase.batchesPerEpoch = 2;
    cfg.mlpBase.interEpochGapCycles = 100000;
    ModelExtractor extractor(*rt_, *spy_, 1, *victim_, 0, *finder_,
                             calib_->thresholds, cfg);
    auto run2 = extractor.observe(64, 2);
    setLogEnabled(true);
    EXPECT_EQ(ModelExtractor::inferEpochs(run2.gram), 2u);
}

TEST_F(SideFixture, InferEpochsEdgeCases)
{
    Memorygram quiet(4, 10);
    EXPECT_EQ(ModelExtractor::inferEpochs(quiet), 0u);
    Memorygram one_burst(4, 10);
    for (int w = 3; w <= 5; ++w)
        one_burst.addMiss(0, w, 10);
    EXPECT_EQ(ModelExtractor::inferEpochs(one_burst), 1u);
}

TEST_F(SideFixture, InferNeuronsEmptyIsFatal)
{
    EXPECT_THROW(ModelExtractor::inferNeurons(1.0, {}), FatalError);
}

} // namespace
} // namespace gpubox::attack::side
