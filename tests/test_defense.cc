/**
 * @file
 * Tests for the Sec. VII defenses: MIG-style L2 way partitioning
 * (cache-level isolation, runtime plumbing, end-to-end attack defeat)
 * and the NVLink traffic monitor.
 */

#include <gtest/gtest.h>

#include "attack/covert/channel.hh"
#include "attack/side/memorygram.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "cache/set_assoc_cache.hh"
#include "defense/dynamic_partitioner.hh"
#include "defense/link_monitor.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox
{
namespace
{

using test::smallConfig;

cache::CacheConfig
tinyCache()
{
    cache::CacheConfig cfg;
    cfg.sizeBytes = 8 * 1024; // 4 sets x 16 ways
    cfg.lineBytes = 128;
    cfg.ways = 16;
    return cfg;
}

TEST(WayPartition, SlicesAreIsolated)
{
    cache::LinearIndexer idx(4, 128);
    cache::SetAssocCache c(tinyCache(), idx, Rng(1));
    c.setWayPartitions(2);
    EXPECT_EQ(c.waysPerPartition(), 8u);

    // Partition 1 caches a line; partition 0 cannot see it...
    c.access(0x1000, 1);
    EXPECT_FALSE(c.access(0x1000, 0).hit);
    // ...and partition 1 still hits its own copy afterwards.
    EXPECT_TRUE(c.access(0x1000, 1).hit);
}

TEST(WayPartition, FillsCannotEvictOtherSlice)
{
    cache::LinearIndexer idx(4, 128);
    cache::SetAssocCache c(tinyCache(), idx, Rng(1));
    c.setWayPartitions(2);

    // Partition 1 holds a line in set 0.
    const PAddr victim_line = 0;
    c.access(victim_line, 1);

    // Partition 0 thrashes set 0 with far more lines than the whole
    // cache associativity.
    for (int i = 1; i <= 64; ++i)
        c.access(static_cast<PAddr>(i) * 4 * 128, 0);

    // The victim's line is untouched.
    EXPECT_TRUE(c.access(victim_line, 1).hit);
}

TEST(WayPartition, EffectiveAssociativityHalves)
{
    cache::LinearIndexer idx(4, 128);
    cache::SetAssocCache c(tinyCache(), idx, Rng(1));
    c.setWayPartitions(2);

    // 8 distinct lines fit a slice of set 0; 8 further lines replace
    // the whole slice.
    const PAddr first = 0;
    c.access(first, 0);
    for (int i = 1; i <= 7; ++i)
        c.access(static_cast<PAddr>(i) * 4 * 128, 0);
    EXPECT_TRUE(c.access(first, 0).hit); // first is now MRU again
    for (int i = 8; i <= 15; ++i)
        c.access(static_cast<PAddr>(i) * 4 * 128, 0);
    EXPECT_FALSE(c.access(first, 0).hit);
}

TEST(WayPartition, ReconfigurationFlushes)
{
    cache::LinearIndexer idx(4, 128);
    cache::SetAssocCache c(tinyCache(), idx, Rng(1));
    c.access(0x2000);
    EXPECT_TRUE(c.probe(0x2000));
    c.setWayPartitions(4);
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(WayPartition, InvalidConfigsAreFatal)
{
    cache::LinearIndexer idx(4, 128);
    cache::SetAssocCache c(tinyCache(), idx, Rng(1));
    EXPECT_THROW(c.setWayPartitions(0), FatalError);
    EXPECT_THROW(c.setWayPartitions(5), FatalError); // 16 % 5 != 0
    c.setWayPartitions(2);
    EXPECT_THROW(c.access(0, 2), FatalError);

    cache::CacheConfig plru = tinyCache();
    plru.policy = cache::ReplPolicy::TREE_PLRU;
    cache::SetAssocCache c2(plru, idx, Rng(1));
    EXPECT_THROW(c2.setWayPartitions(2), FatalError);
}

TEST(MigRuntime, CrossPartitionEvictionImpossible)
{
    rt::Runtime rt(smallConfig(99));
    rt.enableMigPartitioning(2);
    rt::Process &a = rt.createProcess("a");
    rt::Process &b = rt.createProcess("b");
    rt.assignPartition(a, 0);
    rt.assignPartition(b, 1);
    EXPECT_EQ(a.partition(), 0u);
    EXPECT_EQ(b.partition(), 1u);
    EXPECT_THROW(rt.assignPartition(a, 2), FatalError);

    // b caches a line; a thrashes the same physical set from its own
    // slice; b still hits.
    const std::uint32_t line = rt.config().device.l2.lineBytes;
    const VAddr vb = rt.deviceMalloc(b, 0, line);
    const VAddr va = rt.deviceMalloc(a, 0, 64 * rt.config().pageBytes);

    auto warm_b = [&](Cycles &time_out) {
        auto kernel = [&, vb](rt::BlockCtx &ctx) -> sim::Task {
            const Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(vb);
            time_out = ctx.clock() - t0;
        };
        gpu::KernelConfig cfg;
        auto h = rt.stream(b, 0).launch(cfg, kernel);
        rt.sync(h);
    };

    Cycles cold = 0, warm = 0, after_thrash = 0;
    warm_b(cold);
    warm_b(warm);
    EXPECT_GT(cold, warm); // second access is an L2 hit

    // a floods every set of its own slice.
    auto flood = [&](rt::BlockCtx &ctx) -> sim::Task {
        const std::uint64_t lines =
            64 * rt.config().pageBytes / rt.config().device.l2.lineBytes;
        for (std::uint64_t i = 0; i < lines; ++i)
            co_await ctx.ldcg64(va + i * rt.config().device.l2.lineBytes);
    };
    gpu::KernelConfig cfg;
    auto h = rt.stream(a, 0).launch(cfg, flood);
    rt.sync(h);

    warm_b(after_thrash);
    // Still a hit: a's flood could not evict b's line.
    EXPECT_LT(after_thrash, cold);
    EXPECT_NEAR(static_cast<double>(after_thrash),
                static_cast<double>(warm), 40.0);
}

TEST(MigRuntime, AlignmentFindsNothingAcrossSlices)
{
    setLogEnabled(false);
    rt::Runtime rt(smallConfig(4321));
    rt.enableMigPartitioning(2);
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");
    rt.assignPartition(trojan, 0);
    rt.assignPartition(spy, 1);

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0, 32, 6);

    attack::EvictionSetFinder tf(rt, trojan, 0, 0, calib.thresholds);
    tf.run();
    attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds);
    sf.run();
    // Attackers see the halved associativity of their own slice.
    EXPECT_EQ(tf.associativity(), 8u);
    EXPECT_EQ(sf.associativity(), 8u);

    attack::SetAligner aligner(rt, trojan, spy, 0, 1, calib.thresholds);
    auto mapping = aligner.alignGroups(tf, sf);
    setLogEnabled(true);
    for (int m : mapping)
        EXPECT_EQ(m, -1) << "no cross-slice collision should exist";
}

TEST(LinkMonitor, FlagsSustainedTrafficOnly)
{
    rt::Runtime rt(smallConfig(777));
    rt::Process &p = rt.createProcess("p");
    rt.enablePeerAccess(p, 1, 0).orFatal();
    const std::uint32_t line = rt.config().device.l2.lineBytes;
    const VAddr buf = rt.deviceMalloc(p, 0, 64 * line);

    defense::MonitorConfig mcfg;
    mcfg.sampleWindow = 5000;
    mcfg.flagRatePerKcycle = 10.0;
    mcfg.consecutiveWindows = 3;

    // Scenario 1: short burst then idle -- not flagged.
    {
        defense::LinkMonitor mon(rt, 0, 1, mcfg);
        mon.start();
        auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
            for (int i = 0; i < 64; ++i)
                co_await ctx.ldcg64(buf + i * line);
            co_await ctx.compute(30000);
        };
        gpu::KernelConfig cfg;
        auto h = rt.stream(p, 1).launch(cfg, kernel);
        rt.sync(h);
        mon.stop();
        EXPECT_FALSE(mon.attackFlagged());
        EXPECT_GT(mon.ratePerWindow().size(), 3u);
    }

    // Scenario 2: sustained probing -- flagged.
    {
        defense::LinkMonitor mon(rt, 0, 1, mcfg);
        mon.start();
        std::vector<VAddr> lines;
        for (int i = 0; i < 16; ++i)
            lines.push_back(buf + i * line);
        auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
            for (int r = 0; r < 120; ++r) {
                co_await ctx.probeSet(lines);
                co_await ctx.compute(100);
            }
        };
        gpu::KernelConfig cfg;
        auto h = rt.stream(p, 1).launch(cfg, kernel);
        rt.sync(h);
        mon.stop();
        EXPECT_TRUE(mon.attackFlagged());
        EXPECT_GT(mon.firstFlagTime(), 0u);
        EXPECT_GT(mon.peakRate(), 10.0);
    }
}

TEST(LinkMonitor, RejectsBadConfig)
{
    rt::SystemConfig cfg = smallConfig();
    cfg.topology = noc::Topology::ring(4);
    rt::Runtime rt(cfg);
    EXPECT_THROW(defense::LinkMonitor(rt, 0, 2), FatalError);
    defense::MonitorConfig bad;
    bad.sampleWindow = 0;
    EXPECT_THROW(defense::LinkMonitor(rt, 0, 1, bad), FatalError);
}

TEST(LinkMonitor, DoubleStartIsFatal)
{
    rt::Runtime rt(smallConfig());
    defense::LinkMonitor mon(rt, 0, 1);
    mon.start();
    EXPECT_THROW(mon.start(), FatalError);
    mon.stop();
}

TEST(LinkMonitor, SafeAfterDestruction)
{
    rt::Runtime rt(smallConfig(5));
    rt::Process &p = rt.createProcess("p");
    rt.enablePeerAccess(p, 1, 0).orFatal();
    const VAddr buf = rt.deviceMalloc(p, 0, 4096);
    {
        defense::LinkMonitor mon(rt, 0, 1);
        mon.start();
        // Destroyed while its sampler actor is still suspended.
    }
    // Driving the engine afterwards must not touch freed state.
    auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
        for (int i = 0; i < 40; ++i)
            co_await ctx.ldcg64(buf);
        co_await ctx.compute(20000);
    };
    gpu::KernelConfig cfg;
    auto h = rt.stream(p, 1).launch(cfg, kernel);
    EXPECT_NO_THROW(rt.sync(h));
}

TEST(DynamicPartitioner, TriggersOnSustainedTrafficAndPartitions)
{
    rt::Runtime rt(smallConfig(6));
    rt::Process &a = rt.createProcess("a");
    rt::Process &b = rt.createProcess("b");
    rt.enablePeerAccess(b, 1, 0).orFatal();
    const std::uint32_t line = rt.config().device.l2.lineBytes;
    const VAddr buf = rt.deviceMalloc(b, 0, 16 * line);

    defense::MonitorConfig mcfg;
    mcfg.sampleWindow = 5000;
    mcfg.flagRatePerKcycle = 10.0;
    mcfg.consecutiveWindows = 3;
    defense::DynamicPartitioner guard(rt, 0, 1, 2, {{&a, 0u}, {&b, 1u}},
                                      mcfg);
    guard.start();
    EXPECT_FALSE(guard.triggered());

    std::vector<VAddr> lines;
    for (int i = 0; i < 16; ++i)
        lines.push_back(buf + i * line);
    auto kernel = [&](rt::BlockCtx &ctx) -> sim::Task {
        for (int r = 0; r < 150; ++r) {
            co_await ctx.probeSet(lines);
            co_await ctx.compute(100);
        }
    };
    gpu::KernelConfig cfg;
    auto h = rt.stream(b, 1).launch(cfg, kernel);
    rt.sync(h);
    guard.stop();

    EXPECT_TRUE(guard.triggered());
    EXPECT_GT(guard.triggerTime(), 0u);
    EXPECT_EQ(rt.device(0).l2().numWayPartitions(), 2u);
    EXPECT_EQ(a.partition(), 0u);
    EXPECT_EQ(b.partition(), 1u);
}

TEST(DynamicPartitioner, RejectsBadConfig)
{
    rt::Runtime rt(smallConfig());
    rt::Process &a = rt.createProcess("a");
    EXPECT_THROW(defense::DynamicPartitioner(rt, 0, 1, 1, {{&a, 0u}}),
                 FatalError);
    EXPECT_THROW(defense::DynamicPartitioner(rt, 0, 1, 2, {{&a, 2u}}),
                 FatalError);
    EXPECT_THROW(defense::DynamicPartitioner(rt, 0, 1, 2,
                                             {{nullptr, 0u}}),
                 FatalError);
}

TEST(MemorygramTrim, ClipsToObservedHorizon)
{
    attack::side::Memorygram g(3, 50);
    g.addProbe(0, 2);
    g.addMiss(2, 9, 4);
    auto t = g.trimmed();
    EXPECT_EQ(t.numSets(), 3u);
    EXPECT_EQ(t.numWindows(), 10u);
    EXPECT_DOUBLE_EQ(t.missAt(2, 9), 4.0);
    EXPECT_EQ(t.probesAt(0, 2), 1u);
    EXPECT_EQ(t.totalMisses(), g.totalMisses());

    attack::side::Memorygram empty(2, 8);
    auto te = empty.trimmed();
    EXPECT_EQ(te.numWindows(), 1u);
}

} // namespace
} // namespace gpubox
