/**
 * @file
 * Tests for sim::ShardedEngine: sequential equivalence at shards=1,
 * coupling and fusion semantics, the windowed conduction loop and its
 * worker pool, the fatal cross-group spawn guard -- plus the
 * shard-count determinism matrix: byte-identical rows/texts/metrics
 * for shards 1/2/8 on dgx2-nvswitch, dgx-superpod and dgx-gigapod,
 * with the worker pool forced on (shardWorkers=4) so the parallel
 * path is exercised even on a single-core host. Compiled in both the
 * normal and GPUBOX_CHECKED tiers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment_runner.hh"
#include "exp/scenario.hh"
#include "rt/runtime.hh"
#include "sim/engine.hh"
#include "sim/sharded_engine.hh"
#include "util/log.hh"

namespace gpubox
{
namespace
{

using sim::ActorCtx;
using sim::Delay;
using sim::Engine;
using sim::ShardedEngine;
using sim::Task;

/** (actor name, local time, rng draw) event trace: the exactness
 *  surface the sequential-equivalence tests compare on. */
struct TraceEntry
{
    std::string name;
    Cycles time;
    std::uint64_t draw;

    bool operator==(const TraceEntry &) const = default;
};

Task
traceLoop(ActorCtx &ctx, int steps, Cycles step,
          std::vector<TraceEntry> *trace)
{
    for (int i = 0; i < steps; ++i) {
        co_await Delay{step};
        trace->push_back({ctx.name(), ctx.now(), ctx.rng().next()});
    }
}

ShardedEngine::Config
config(unsigned shards, unsigned workers = 1, Cycles lookahead = 4096)
{
    ShardedEngine::Config cfg;
    cfg.shards = shards;
    cfg.seed = 99;
    cfg.lookahead = lookahead;
    cfg.workers = workers;
    return cfg;
}

TEST(ShardedEngine, SingleShardMatchesSequentialEngine)
{
    // Identical spawn sequence into a plain Engine and a 1-shard
    // facade: traces (including per-actor RNG streams keyed by actor
    // id) must agree entry for entry.
    std::vector<TraceEntry> seq, sharded;
    {
        Engine eng(99);
        for (int a = 0; a < 4; ++a) {
            eng.spawn("a" + std::to_string(a), [&, a](ActorCtx &ctx) {
                return traceLoop(ctx, 5, 50 + 10 * a, &seq);
            });
        }
        eng.run();
    }
    ShardedEngine se(config(1));
    for (int a = 0; a < 4; ++a) {
        se.spawnOn(0, "a" + std::to_string(a), [&, a](ActorCtx &ctx) {
            return traceLoop(ctx, 5, 50 + 10 * a, &sharded);
        });
    }
    se.run();

    EXPECT_EQ(seq, sharded);
    EXPECT_EQ(se.totalSpawned(), 4u);
    EXPECT_EQ(se.liveActors(), 0u);
}

TEST(ShardedEngine, CoupledShardsReproduceSequentialInterleaving)
{
    // All 8 shards coupled up front: one engine, sequential actor
    // ids, so the trace is the shards=1 trace bit for bit even
    // though spawns target 8 different shard slots.
    std::vector<TraceEntry> one, eight;
    {
        ShardedEngine se(config(1));
        for (int a = 0; a < 8; ++a) {
            se.spawnOn(0, "a" + std::to_string(a), [&, a](ActorCtx &ctx) {
                return traceLoop(ctx, 6, 30 + 7 * a, &one);
            });
        }
        se.run();
    }
    ShardedEngine se(config(8));
    se.coupleAll();
    for (int a = 0; a < 8; ++a) {
        se.spawnOn(static_cast<unsigned>(a), "a" + std::to_string(a),
                   [&, a](ActorCtx &ctx) {
                       return traceLoop(ctx, 6, 30 + 7 * a, &eight);
                   });
    }
    EXPECT_EQ(se.groupCount(), 1u);
    se.run();
    EXPECT_EQ(one, eight);
}

TEST(ShardedEngine, DisjointGroupsMatchIsolatedEngines)
{
    // Four uncoupled shards: each group's trace must equal a
    // dedicated single-engine run of just that shard's actor -- the
    // disjointness half of the determinism argument.
    std::vector<std::vector<TraceEntry>> isolated(4), grouped(4);
    for (int s = 0; s < 4; ++s) {
        Engine eng(99);
        eng.spawn("only", [&, s](ActorCtx &ctx) {
            return traceLoop(ctx, 8, 20 + 5 * s, &isolated[s]);
        });
        eng.run();
    }
    ShardedEngine se(config(4, 1, 64));
    for (int s = 0; s < 4; ++s) {
        se.spawnOn(static_cast<unsigned>(s), "only",
                   [&, s](ActorCtx &ctx) {
                       return traceLoop(ctx, 8, 20 + 5 * s, &grouped[s]);
                   });
    }
    EXPECT_EQ(se.groupCount(), 4u);
    se.run();

    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(isolated[s], grouped[s]) << "shard " << s;
    EXPECT_GT(se.windowsRun(), 0u);
}

TEST(ShardedEngine, WorkerPoolWindowsAreDeterministic)
{
    // The same 8-shard workload serial (workers=1) and on a real
    // 4-thread pool: traces and merged counters must be identical,
    // and the pool run must actually have dispatched windows in
    // parallel.
    auto run = [](unsigned workers, std::vector<std::vector<TraceEntry>> *t,
                  sim::EngineStats *stats, std::uint64_t *parallel) {
        ShardedEngine se(config(8, workers, 128));
        for (int s = 0; s < 8; ++s) {
            se.spawnOn(static_cast<unsigned>(s), "w",
                       [&, s](ActorCtx &ctx) {
                           return traceLoop(ctx, 40, 11 + 3 * s,
                                            &(*t)[s]);
                       });
        }
        se.run();
        *stats = se.stats();
        *parallel = se.parallelWindows();
    };

    std::vector<std::vector<TraceEntry>> serial(8), pooled(8);
    sim::EngineStats serial_stats, pooled_stats;
    std::uint64_t serial_parallel = 0, pooled_parallel = 0;
    run(1, &serial, &serial_stats, &serial_parallel);
    run(4, &pooled, &pooled_stats, &pooled_parallel);

    EXPECT_EQ(serial, pooled);
    EXPECT_EQ(serial_stats, pooled_stats);
    EXPECT_EQ(serial_parallel, 0u);
    EXPECT_GT(pooled_parallel, 0u);
}

TEST(ShardedEngine, CoupledSpawnsShareSequentialActorIds)
{
    ShardedEngine se(config(8));
    se.couple(2, 5);
    EXPECT_TRUE(se.coupled(2, 5));
    EXPECT_FALSE(se.coupled(2, 3));
    ActorCtx &a = se.spawnOn(2, "a", [](ActorCtx &) -> Task { co_return; });
    ActorCtx &b = se.spawnOn(5, "b", [](ActorCtx &) -> Task { co_return; });
    // One engine, ids counting as in the sequential run.
    EXPECT_EQ(a.id(), 0u);
    EXPECT_EQ(b.id(), 1u);
    EXPECT_EQ(se.groupCount(), 1u);
    se.run();
}

TEST(ShardedEngine, PostSpawnCouplingFusesLiveGroups)
{
    ShardedEngine se(config(2, 1, 64));
    std::vector<TraceEntry> t0, t1;
    se.spawnOn(0, "a", [&](ActorCtx &ctx) {
        return traceLoop(ctx, 10, 100, &t0);
    });
    se.spawnOn(1, "b", [&](ActorCtx &ctx) {
        return traceLoop(ctx, 10, 100, &t1);
    });
    EXPECT_EQ(se.groupCount(), 2u);

    // Advance both groups mid-flight, then fuse them.
    se.runUntil(500);
    se.couple(0, 1);
    EXPECT_EQ(se.groupCount(), 1u);
    se.run();

    EXPECT_EQ(t0.size(), 10u);
    EXPECT_EQ(t1.size(), 10u);
    EXPECT_EQ(se.now(), 1000u);
    EXPECT_EQ(se.liveActors(), 0u);
}

TEST(ShardedEngine, ActorSpawnIntoOwnGroupWorks)
{
    ShardedEngine se(config(2, 1, 64));
    int children_done = 0;
    se.spawnOn(0, "parent", [&](ActorCtx &) -> Task {
        co_await Delay{10};
        se.spawnOn(0, "child", [&](ActorCtx &) -> Task {
            co_await Delay{5};
            ++children_done;
        });
    });
    // A second runnable group forces the windowed path (the worker-
    // context spawn goes through activeGroup()).
    se.spawnOn(1, "other", [](ActorCtx &) -> Task {
        co_await Delay{100};
    });
    se.run();
    EXPECT_EQ(children_done, 1);
    EXPECT_EQ(se.totalSpawned(), 3u);
}

TEST(ShardedEngine, CrossGroupActorSpawnIsFatal)
{
    ShardedEngine se(config(2, 1, 64));
    se.spawnOn(0, "offender", [&](ActorCtx &) -> Task {
        co_await Delay{10};
        // Shard 1 was never coupled with shard 0: a missed coupling
        // edge must fail loudly, not race.
        se.spawnOn(1, "smuggled", [](ActorCtx &) -> Task { co_return; });
    });
    se.spawnOn(1, "other", [](ActorCtx &) -> Task {
        co_await Delay{100};
    });
    EXPECT_THROW(se.run(), FatalError);
}

TEST(ShardedEngine, GlobalSpawnCouplesEveryShard)
{
    ShardedEngine se(config(4, 1, 64));
    std::vector<TraceEntry> trace;
    se.spawnOn(1, "t1", [&](ActorCtx &ctx) {
        return traceLoop(ctx, 3, 40, &trace);
    });
    se.spawnOn(3, "t3", [&](ActorCtx &ctx) {
        return traceLoop(ctx, 3, 60, &trace);
    });
    EXPECT_EQ(se.groupCount(), 2u);
    // A global observer (defense monitor) must see every shard.
    se.spawn("monitor", [&](ActorCtx &ctx) {
        return traceLoop(ctx, 3, 80, &trace);
    });
    EXPECT_TRUE(se.coupled(0, 3));
    EXPECT_TRUE(se.coupled(1, 2));
    EXPECT_EQ(se.groupCount(), 1u);
    se.run();
    EXPECT_EQ(trace.size(), 9u);
}

TEST(ShardedEngine, DriveReportsDrainWithUnsatisfiedPredicate)
{
    ShardedEngine se(config(2, 1, 64));
    se.spawnOn(0, "a", [](ActorCtx &) -> Task { co_await Delay{10}; });
    se.spawnOn(1, "b", [](ActorCtx &) -> Task { co_await Delay{10}; });
    bool flag = false;
    EXPECT_FALSE(se.drive([&] { return flag; }));
    EXPECT_EQ(se.liveActors(), 0u);
    // The deadlock diagnostics surface: nothing unfinished here.
    EXPECT_TRUE(se.unfinishedActorNames().empty());
}

TEST(ShardedEngine, RunUntilIsWindowCappedAtTheLimit)
{
    ShardedEngine se(config(2, 1, 64));
    for (int s = 0; s < 2; ++s) {
        se.spawnOn(static_cast<unsigned>(s), "a",
                   [](ActorCtx &) -> Task {
                       for (int i = 0; i < 10; ++i)
                           co_await Delay{100};
                   });
    }
    se.runUntil(350);
    EXPECT_LE(se.stats().now, 350u);
    EXPECT_EQ(se.liveActors(), 2u);
    se.run();
    EXPECT_EQ(se.now(), 1000u);
    EXPECT_EQ(se.liveActors(), 0u);
}

/**
 * Shard-count determinism matrix. One scenario per multi-chassis-
 * capable platform runs per-island tenants (island-local kernels plus
 * intra-island DMA, and one cross-island DMA where the platform has
 * islands, exercising spine-shard coupling and group fusion); the
 * recorded rows, texts and metrics must be byte-identical for shards
 * 1, 2 and 8. shardWorkers=4 forces the conduction pool on, so the
 * parallel windows run on real threads regardless of host cores (and
 * under TSan in CI).
 */

void
tenantScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    setLogEnabled(false);
    rt::Runtime rt(sc.system);
    const noc::Topology &topo = rt.config().topology;
    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int lines_n = 48;
    const int tenants = std::max(1, std::min(topo.numIslands(), 4));

    std::vector<GpuId> island_gpu(static_cast<std::size_t>(tenants), -1);
    for (GpuId g = 0; g < rt.numGpus(); ++g) {
        const int isl = std::max(0, topo.island(g));
        if (isl < tenants && island_gpu[static_cast<std::size_t>(isl)] < 0)
            island_gpu[static_cast<std::size_t>(isl)] = g;
    }

    std::vector<rt::Stream *> streams(static_cast<std::size_t>(tenants));
    std::vector<std::uint64_t> sums(static_cast<std::size_t>(tenants), 0);
    std::vector<VAddr> bufs(static_cast<std::size_t>(tenants));

    for (int t = 0; t < tenants; ++t) {
        const GpuId g = island_gpu[static_cast<std::size_t>(t)];
        rt::Process &p = rt.createProcess("tenant" + std::to_string(t));
        bufs[static_cast<std::size_t>(t)] = rt.deviceMalloc(
            p, g, static_cast<std::uint64_t>(lines_n) * line);
        const VAddr buf = bufs[static_cast<std::size_t>(t)];
        streams[static_cast<std::size_t>(t)] = &rt.stream(p, g);
        rt::Stream &stream = *streams[static_cast<std::size_t>(t)];

        if (t == 1 && topo.numIslands() > 1) {
            // Cross-island DMA: tenant 1 pulls a buffer homed on
            // island 0, coupling the two islands through the spine
            // shard -- the fusion path the matrix must keep exact.
            const VAddr remote = rt.deviceMalloc(
                p, island_gpu[0],
                static_cast<std::uint64_t>(lines_n) * line);
            stream.memcpyAsync(buf, remote,
                               static_cast<std::uint64_t>(lines_n) *
                                   line);
        } else {
            stream.memsetAsync(buf, 0x5a,
                               static_cast<std::uint64_t>(lines_n) *
                                   line);
        }

        for (int l = 0; l < 2; ++l) {
            auto kernel = [=, &sum = sums[static_cast<std::size_t>(t)]](
                              rt::BlockCtx &bctx) -> sim::Task {
                for (int i = 0; i < lines_n; ++i) {
                    const Cycles t0 = bctx.actor().now();
                    co_await bctx.ldcg64(
                        buf + ((i * (t + 1)) % lines_n) * line);
                    sum += bctx.actor().now() - t0;
                }
            };
            gpu::KernelConfig kcfg;
            stream.launch(kcfg, kernel);
        }
    }
    for (int t = 0; t < tenants; ++t)
        rt.sync(*streams[static_cast<std::size_t>(t)]);

    for (int t = 0; t < tenants; ++t)
        ctx.row(sc.system.platform, t,
                sums[static_cast<std::size_t>(t)]);
    const auto stats = rt.metrics().engine;
    ctx.metric("engine_steps", static_cast<double>(stats.steps));
    ctx.metric("spawned", static_cast<double>(stats.spawned));
    ctx.text("tenants=" + std::to_string(tenants) + " steps=" +
             std::to_string(stats.steps) + " now=" +
             std::to_string(stats.now) + "\n");
}

/** The deterministic surface of a Report, flattened for comparison. */
std::string
reportSurface(const exp::Report &report)
{
    std::string out;
    for (const auto &r : report.results) {
        out += r.name + "|" + (r.ok ? "ok" : "FAIL:" + r.error) + "\n";
        for (const auto &row : r.rows)
            for (const auto &cell : row)
                out += cell + ",";
        out += "\n";
        for (const auto &t : r.texts)
            out += t;
        for (const auto &[k, v] : r.metrics)
            out += k + "=" + std::to_string(v) + ";";
        out += "\n";
    }
    return out;
}

TEST(ShardMatrix, ByteIdenticalAcrossShardCountsOnEveryPlatform)
{
    setLogEnabled(false);
    for (const char *platform :
         {"dgx2-nvswitch", "dgx-superpod", "dgx-gigapod"}) {
        exp::Scenario sc;
        sc.name = std::string("matrix/") + platform;
        sc.applyDefaults(7, platform);
        sc.system.shardWorkers = 4;

        std::string reference;
        for (unsigned shards : {1u, 2u, 8u}) {
            exp::ExperimentRunner runner({.threads = 1,
                                          .progress = false,
                                          .shards = shards});
            const exp::Report report =
                runner.run({sc}, tenantScenario);
            ASSERT_EQ(report.failures(), 0u)
                << platform << " shards=" << shards << ": "
                << report.results[0].error;
            const std::string surface = reportSurface(report);
            if (shards == 1)
                reference = surface;
            else
                EXPECT_EQ(surface, reference)
                    << platform << " shards=" << shards;
        }
        EXPECT_FALSE(reference.empty());
    }
}

} // namespace
} // namespace gpubox
