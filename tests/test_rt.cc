/**
 * @file
 * Unit tests for the runtime: allocation NUMA-ness, peer access rules,
 * the four latency clusters, the NUMA L2 caching rule, kernel launch
 * and block queueing, group probes.
 */

#include <gtest/gtest.h>

#include <set>

#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"
#include "util/stats.hh"

namespace gpubox::rt
{
namespace
{

using test::smallConfig;

class RtTest : public ::testing::Test
{
  protected:
    RtTest() : rt_(smallConfig()) {}

    /** Run a single-block kernel on @p gpu and wait for it. */
    void
    runKernel(Process &proc, GpuId gpu, const KernelFn &fn,
              std::uint32_t shmem = 0)
    {
        gpu::KernelConfig cfg;
        cfg.name = "test";
        cfg.sharedMemBytes = shmem;
        auto h = rt_.stream(proc, gpu).launch(cfg, fn);
        rt_.sync(h);
    }

    Runtime rt_;
};

TEST_F(RtTest, MallocLandsOnRequestedGpu)
{
    Process &p = rt_.createProcess("p");
    for (GpuId g = 0; g < rt_.numGpus(); ++g) {
        const VAddr a = rt_.deviceMalloc(p, g, 4096);
        EXPECT_EQ(rt_.homeGpuOf(p, a), g);
    }
}

TEST_F(RtTest, HostReadWriteRoundtrip)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 0, 4096);
    rt_.hostWrite<std::uint64_t>(p, a + 16, 0xdeadbeefULL);
    EXPECT_EQ(rt_.hostRead<std::uint64_t>(p, a + 16), 0xdeadbeefULL);
}

TEST_F(RtTest, ProcessesAreIsolated)
{
    Process &a = rt_.createProcess("a");
    Process &b = rt_.createProcess("b");
    const VAddr va = rt_.deviceMalloc(a, 0, 4096);
    const VAddr vb = rt_.deviceMalloc(b, 0, 4096);
    // Same VA range bases but distinct physical frames.
    EXPECT_NE(a.space().translate(va), b.space().translate(vb));
}

TEST_F(RtTest, PeerAccessRequiresLink)
{
    // smallConfig is fully connected; a ring exposes the error.
    rt::SystemConfig cfg = smallConfig();
    cfg.topology = noc::Topology::ring(4);
    Runtime rt(cfg);
    Process &p = rt.createProcess("p");
    // Typed status results, cudaError_t style.
    EXPECT_TRUE(rt.enablePeerAccess(p, 0, 1).ok());
    EXPECT_EQ(rt.enablePeerAccess(p, 0, 2).code(),
              StatusCode::NotConnected);
    EXPECT_EQ(rt.enablePeerAccess(p, 1, 1).code(),
              StatusCode::SameDevice);
    EXPECT_EQ(rt.enablePeerAccess(p, 0, 99).code(),
              StatusCode::InvalidDevice);
    // orFatal() restores the throwing behaviour for callers that
    // cannot continue.
    EXPECT_THROW(rt.enablePeerAccess(p, 0, 2).orFatal(), FatalError);
    EXPECT_TRUE(p.peerEnabled(0, 1));
    EXPECT_FALSE(p.peerEnabled(1, 0)); // directed
}

TEST_F(RtTest, PeerAccessFailureNamesGpusAndRoute)
{
    rt::SystemConfig cfg = smallConfig();
    cfg.topology = noc::Topology::ring(4);
    cfg.platform = "test-ring";
    Runtime rt(cfg);
    Process &p = rt.createProcess("p");

    // Non-adjacent pair on a platform that refuses routed peer
    // access: the message names both GPUs, the platform and the
    // (unused) shortest route.
    const Status st = rt.enablePeerAccess(p, 0, 2);
    ASSERT_EQ(st.code(), StatusCode::NotConnected);
    EXPECT_NE(st.message().find("GPU 0"), std::string::npos)
        << st.message();
    EXPECT_NE(st.message().find("GPU 2"), std::string::npos);
    EXPECT_NE(st.message().find("test-ring"), std::string::npos);
    EXPECT_NE(st.message().find("0 -> 1 -> 2"), std::string::npos);
    EXPECT_NE(st.message().find("2 hops"), std::string::npos);

    // A genuinely routeless pair reports the absent route.
    rt::SystemConfig split = smallConfig();
    split.topology =
        noc::Topology::custom("islands", 4, {{0, 1}, {2, 3}});
    split.peerOverRoutes = true; // routes still don't exist
    Runtime rt2(split);
    Process &q = rt2.createProcess("q");
    const Status none = rt2.enablePeerAccess(q, 0, 3);
    ASSERT_EQ(none.code(), StatusCode::NotConnected);
    EXPECT_NE(none.message().find("no NVLink route"),
              std::string::npos)
        << none.message();
    EXPECT_NE(none.message().find("(none)"), std::string::npos);
}

TEST_F(RtTest, PeerAccessOverRoutedPathWhenPlatformAllows)
{
    rt::SystemConfig cfg = smallConfig();
    cfg.topology = noc::Topology::ring(4);
    cfg.peerOverRoutes = true;
    Runtime rt(cfg);
    Process &p = rt.createProcess("p");
    ASSERT_TRUE(rt.enablePeerAccess(p, 0, 2).ok());
    EXPECT_TRUE(p.peerEnabled(0, 2));
    EXPECT_TRUE(rt.peerReachable(0, 2));

    // A remote access over the two-hop route pays both links each
    // way: the remote-hit latency sits two hop charges above the
    // local L2 hit.
    const VAddr remote = rt.deviceMalloc(p, 2, 4096);
    Cycles cold = 0, warm = 0;
    auto kernel = [&, remote](BlockCtx &ctx) -> sim::Task {
        Cycles t0 = ctx.clock();
        co_await ctx.ldcg64(remote);
        cold = ctx.clock() - t0;
        t0 = ctx.clock();
        co_await ctx.ldcg64(remote);
        warm = ctx.clock() - t0;
    };
    gpu::KernelConfig kcfg;
    auto h = rt.stream(p, 0).launch(kcfg, kernel);
    rt.sync(h);

    const TimingParams &t = rt.timing();
    const Cycles hop = rt.config().link.hopCycles;
    EXPECT_NEAR(static_cast<double>(warm),
                static_cast<double>(t.l2HitCycles + 4 * hop +
                                    t.clockReadCycles),
                40.0);
    EXPECT_NEAR(static_cast<double>(cold),
                static_cast<double>(t.hbmCycles + t.remoteMissExtra +
                                    4 * hop + t.clockReadCycles),
                40.0);
}

TEST_F(RtTest, RemoteAccessWithoutPeerIsFatal)
{
    Process &p = rt_.createProcess("p");
    const VAddr remote = rt_.deviceMalloc(p, 1, 4096);
    auto kernel = [remote](BlockCtx &ctx) -> sim::Task {
        co_await ctx.ldcg64(remote);
    };
    gpu::KernelConfig cfg;
    auto h = rt_.stream(p, 0).launch(cfg, kernel);
    EXPECT_THROW(rt_.sync(h), FatalError);
}

TEST_F(RtTest, FourLatencyClustersAreOrderedAndSeparable)
{
    Process &p = rt_.createProcess("p");
    rt_.enablePeerAccess(p, 0, 1).orFatal();
    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    const int n = 24;
    const VAddr local = rt_.deviceMalloc(p, 0, n * line);
    const VAddr remote = rt_.deviceMalloc(p, 1, n * line);

    RunningStats lh, lm, rh, rm;
    auto kernel = [&](BlockCtx &ctx) -> sim::Task {
        for (int i = 0; i < n; ++i) {
            Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(local + i * line);
            lm.add(static_cast<double>(ctx.clock() - t0)); // cold: miss
        }
        for (int i = 0; i < n; ++i) {
            Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(local + i * line);
            lh.add(static_cast<double>(ctx.clock() - t0)); // warm: hit
        }
        for (int i = 0; i < n; ++i) {
            Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(remote + i * line);
            rm.add(static_cast<double>(ctx.clock() - t0));
        }
        for (int i = 0; i < n; ++i) {
            Cycles t0 = ctx.clock();
            co_await ctx.ldcg64(remote + i * line);
            rh.add(static_cast<double>(ctx.clock() - t0));
        }
    };
    runKernel(p, 0, kernel);

    // Cluster ordering: LH < LM < RH < RM (paper Fig. 4), separated by
    // more than the jitter.
    EXPECT_LT(lh.max(), lm.min());
    EXPECT_LT(lm.max(), rh.min());
    EXPECT_LT(rh.max(), rm.min());
    // Centers near the calibrated values.
    EXPECT_NEAR(lh.mean(), 270 + 8, 30);
    EXPECT_NEAR(lm.mean(), 450 + 8, 30);
    EXPECT_NEAR(rh.mean(), 270 + 360 + 8, 40);
    EXPECT_NEAR(rm.mean(), 450 + 360 + 140 + 8, 40);
}

TEST_F(RtTest, RemoteDataCachesInHomeL2Only)
{
    Process &p = rt_.createProcess("p");
    rt_.enablePeerAccess(p, 0, 1).orFatal();
    const VAddr remote = rt_.deviceMalloc(p, 1, 4096);
    auto kernel = [remote](BlockCtx &ctx) -> sim::Task {
        co_await ctx.ldcg64(remote);
    };
    runKernel(p, 0, kernel);

    const PAddr paddr = p.space().translate(remote);
    // The paper's key reverse-engineered property: the line is cached
    // at the HOME GPU's L2, not the accessor's.
    EXPECT_TRUE(rt_.device(1).l2().probe(paddr));
    EXPECT_FALSE(rt_.device(0).l2().probe(paddr));
}

TEST_F(RtTest, LdcgBypassesL1ButLdFillsIt)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 0, 4096);
    const VAddr b = rt_.deviceMalloc(p, 0, 4096);
    SmId sm = -1;
    auto kernel = [&, a, b](BlockCtx &ctx) -> sim::Task {
        sm = ctx.sm();
        co_await ctx.ldcg64(a);
        co_await ctx.ld64(b);
    };
    runKernel(p, 0, kernel);
    ASSERT_GE(sm, 0);
    EXPECT_FALSE(rt_.device(0).l1(sm).probe(p.space().translate(a)));
    EXPECT_TRUE(rt_.device(0).l1(sm).probe(p.space().translate(b)));
    EXPECT_TRUE(rt_.device(0).l2().probe(p.space().translate(a)));
}

TEST_F(RtTest, L1HitIsFasterThanL2Hit)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 0, 4096);
    Cycles l1_hit = 0, l2_hit = 0;
    auto kernel = [&, a](BlockCtx &ctx) -> sim::Task {
        co_await ctx.ld64(a); // fills L1 + L2
        Cycles t0 = ctx.clock();
        co_await ctx.ld64(a);
        l1_hit = ctx.clock() - t0;
        t0 = ctx.clock();
        co_await ctx.ldcg64(a); // bypasses L1, hits L2
        l2_hit = ctx.clock() - t0;
    };
    runKernel(p, 0, kernel);
    EXPECT_LT(l1_hit, l2_hit);
    EXPECT_LT(l1_hit, 80u);
}

TEST_F(RtTest, StoresAllocateInL2)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 0, 4096);
    auto kernel = [a](BlockCtx &ctx) -> sim::Task {
        co_await ctx.stcg64(a, 42);
    };
    runKernel(p, 0, kernel);
    EXPECT_TRUE(rt_.device(0).l2().probe(p.space().translate(a)));
    EXPECT_EQ(rt_.hostRead<std::uint64_t>(p, a), 42u);
}

TEST_F(RtTest, LoadReturnsStoredValue)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 0, 4096);
    rt_.hostWrite<std::uint64_t>(p, a + 256, 0x12345678ULL);
    std::uint64_t seen = 0;
    auto kernel = [&, a](BlockCtx &ctx) -> sim::Task {
        seen = co_await ctx.ldcg64(a + 256);
    };
    runKernel(p, 0, kernel);
    EXPECT_EQ(seen, 0x12345678ULL);
}

TEST_F(RtTest, ClockChargesOverhead)
{
    Process &p = rt_.createProcess("p");
    Cycles t0 = 0, t1 = 0;
    auto kernel = [&](BlockCtx &ctx) -> sim::Task {
        t0 = ctx.clock();
        t1 = ctx.clock();
        co_return;
    };
    runKernel(p, 0, kernel);
    EXPECT_EQ(t1 - t0, rt_.timing().clockReadCycles);
}

TEST_F(RtTest, GroupProbeChargesPipelinedTime)
{
    Process &p = rt_.createProcess("p");
    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    const VAddr a = rt_.deviceMalloc(p, 0, 16 * line);
    std::vector<VAddr> lines;
    for (int i = 0; i < 16; ++i)
        lines.push_back(a + i * line);

    Cycles wall = 0;
    std::size_t reported = 0;
    double max_line = 0;
    auto kernel = [&](BlockCtx &ctx) -> sim::Task {
        const Cycles t0 = ctx.actor().now();
        auto res = co_await ctx.probeSet(lines);
        wall = ctx.actor().now() - t0;
        reported = res.perLineCycles.size();
        for (Cycles c : res.perLineCycles)
            max_line = std::max(max_line, static_cast<double>(c));
    };
    runKernel(p, 0, kernel);

    EXPECT_EQ(reported, 16u);
    // Throughput-bound: wall ~= max line latency + 15 * gap, far less
    // than the sum of individual latencies (16 * ~450).
    EXPECT_LT(wall, 16 * 400u);
    EXPECT_EQ(wall,
              static_cast<Cycles>(max_line) +
                  15 * rt_.timing().pipelineGapCycles);
}

TEST_F(RtTest, MultiBlockKernelRunsAllBlocks)
{
    Process &p = rt_.createProcess("p");
    std::vector<int> seen(8, 0);
    auto kernel = [&](BlockCtx &ctx) -> sim::Task {
        seen[ctx.blockIdx()] = 1;
        co_await ctx.compute(10);
    };
    gpu::KernelConfig cfg;
    cfg.numBlocks = 8;
    auto h = rt_.stream(p, 0).launch(cfg, kernel);
    rt_.sync(h);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(seen[i], 1) << "block " << i;
}

TEST_F(RtTest, OversubscribedBlocksQueueAndEventuallyRun)
{
    // 16 SMs x 64 KiB; blocks demanding the full SM shared memory can
    // only run 16 at a time.
    Process &p = rt_.createProcess("p");
    int completed = 0;
    auto kernel = [&](BlockCtx &ctx) -> sim::Task {
        co_await ctx.compute(100);
        ++completed;
    };
    gpu::KernelConfig cfg;
    cfg.numBlocks = 40;
    cfg.sharedMemBytes = 64 * 1024;
    auto h = rt_.stream(p, 0).launch(cfg, kernel);
    EXPECT_FALSE(h.finished());
    rt_.sync(h);
    EXPECT_EQ(completed, 40);
    // All SM resources released at the end.
    EXPECT_EQ(rt_.device(0).scheduler().totalResidentBlocks(), 0u);
}

TEST_F(RtTest, DeviceFreeReturnsFrames)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 2, 8 * 4096);
    rt_.deviceFree(p, a);
    EXPECT_THROW(p.space().translate(a), FatalError);
}

TEST_F(RtTest, DeviceFreeRecyclesPhysicalFrames)
{
    // Regression test for the free-list round trip: alloc the whole
    // GPU, free, realloc -- the second allocation must draw from the
    // frames the first one returned (same physical set), and the
    // driver scrub must leave the reused lines cold in the L2.
    Process &p = rt_.createProcess("p");
    const std::uint64_t page = rt_.config().pageBytes;
    const std::uint64_t frames = rt_.config().framesPerGpu;

    const VAddr a = rt_.deviceMalloc(p, 0, frames * page);
    std::set<PAddr> first;
    for (std::uint64_t i = 0; i < frames; ++i)
        first.insert(p.space().translate(a + i * page));
    EXPECT_EQ(first.size(), frames);
    // The pool is exhausted: one more page must fail.
    EXPECT_THROW(rt_.deviceMalloc(p, 0, page), FatalError);

    // Warm one line so the scrub-on-free is observable.
    const VAddr warm_line = a;
    auto kernel = [warm_line](BlockCtx &ctx) -> sim::Task {
        co_await ctx.ldcg64(warm_line);
    };
    const PAddr warm_paddr = p.space().translate(warm_line);
    runKernel(p, 0, kernel);
    EXPECT_TRUE(rt_.device(0).l2().probe(warm_paddr));

    rt_.deviceFree(p, a);
    EXPECT_FALSE(rt_.device(0).l2().probe(warm_paddr));

    const VAddr b = rt_.deviceMalloc(p, 0, frames * page);
    std::set<PAddr> second;
    for (std::uint64_t i = 0; i < frames; ++i)
        second.insert(p.space().translate(b + i * page));
    EXPECT_EQ(first, second);
    rt_.deviceFree(p, b);
}

TEST_F(RtTest, OracleSetMatchesIndexer)
{
    Process &p = rt_.createProcess("p");
    const VAddr a = rt_.deviceMalloc(p, 0, 4096);
    const SetIndex s = rt_.l2SetOf(p, a);
    EXPECT_LT(s, rt_.config().device.l2.numSets());
    // Consecutive lines in the page map to consecutive sets.
    const std::uint32_t line = rt_.config().device.l2.lineBytes;
    const std::uint32_t sets = rt_.config().device.l2.numSets();
    EXPECT_EQ(rt_.l2SetOf(p, a + line), (s + 1) % sets);
}

TEST_F(RtTest, InvalidArgumentsAreFatal)
{
    Process &p = rt_.createProcess("p");
    EXPECT_THROW(rt_.deviceMalloc(p, 99, 4096), FatalError);
    EXPECT_THROW(rt_.device(99), FatalError);
    gpu::KernelConfig cfg;
    cfg.numBlocks = 0;
    EXPECT_THROW(rt_.stream(p, 0).launch(cfg, nullptr), FatalError);
    EXPECT_THROW(rt_.createStream(p, 99), FatalError);
}

TEST_F(RtTest, DeterministicTimingForSeed)
{
    auto measure = [](std::uint64_t seed) {
        Runtime rt(smallConfig(seed));
        Process &p = rt.createProcess("p");
        const VAddr a = rt.deviceMalloc(p, 0, 4096);
        std::vector<Cycles> times;
        auto kernel = [&](BlockCtx &ctx) -> sim::Task {
            for (int i = 0; i < 10; ++i) {
                const Cycles t0 = ctx.clock();
                co_await ctx.ldcg64(a);
                times.push_back(ctx.clock() - t0);
            }
        };
        gpu::KernelConfig cfg;
        auto h = rt.stream(p, 0).launch(cfg, kernel);
        rt.sync(h);
        return times;
    };
    EXPECT_EQ(measure(5), measure(5));
    EXPECT_NE(measure(5), measure(6));
}

} // namespace
} // namespace gpubox::rt
