/**
 * @file
 * Parameterized property tests sweeping seeds, NVLink pairs and cache
 * geometries: the invariants the attacks rely on must hold regardless
 * of the randomized page placement, of which peer GPUs are used
 * (paper Sec. III-A: "we repeated the experiment by selecting
 * different peer-to-peer GPUs connected via NVLink and we have
 * observed similar timing"), and of the exact cache shape.
 */

#include <gtest/gtest.h>

#include <set>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/timing_oracle.hh"
#include "cache/indexer.hh"
#include "cache/set_assoc_cache.hh"
#include "mem/address.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"
#include "util/stats.hh"

namespace gpubox
{
namespace
{

// ---------------------------------------------------------------------
// Timing clusters hold on every NVLink pair of the DGX-1.
// ---------------------------------------------------------------------

class NvlinkPair
    : public ::testing::TestWithParam<std::pair<GpuId, GpuId>>
{};

TEST_P(NvlinkPair, TimingClustersSimilarOnEveryLink)
{
    const auto [local, remote] = GetParam();
    setLogEnabled(false);
    rt::Runtime rt(test::dgx1Config(13));
    rt::Process &p = rt.createProcess("spy");
    attack::TimingOracle oracle(rt, p);
    auto calib = oracle.calibrate(local, remote, 24, 3);
    setLogEnabled(true);

    ASSERT_EQ(calib.clusters.centers.size(), 4u);
    EXPECT_NEAR(calib.clusters.centers[0], 278, 25);
    EXPECT_NEAR(calib.clusters.centers[1], 458, 25);
    EXPECT_NEAR(calib.clusters.centers[2], 638, 35);
    EXPECT_NEAR(calib.clusters.centers[3], 958, 35);
}

INSTANTIATE_TEST_SUITE_P(
    Dgx1Links, NvlinkPair,
    ::testing::Values(std::make_pair(0, 1), std::make_pair(0, 4),
                      std::make_pair(2, 6), std::make_pair(3, 7),
                      std::make_pair(5, 6), std::make_pair(4, 7)),
    [](const auto &pinfo) {
        return "gpu" + std::to_string(pinfo.param.first) + "to" +
               std::to_string(pinfo.param.second);
    });

// ---------------------------------------------------------------------
// Eviction set discovery is correct for every seed (random placement).
// ---------------------------------------------------------------------

class FinderSeed : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FinderSeed, GroupsAreColorPureAndSetsCollide)
{
    setLogEnabled(false);
    rt::Runtime rt(test::smallConfig(GetParam()));
    rt::Process &p = rt.createProcess("attacker");
    attack::TimingOracle oracle(rt, p);
    auto calib = oracle.calibrate(0, 1, 24, 4);
    attack::EvictionSetFinder finder(rt, p, 0, 0, calib.thresholds);
    finder.run();
    setLogEnabled(true);

    EXPECT_EQ(finder.associativity(), rt.config().device.l2.ways);
    ASSERT_GE(finder.numGroups(), 1u);

    for (std::size_t g = 0; g < finder.numGroups(); ++g) {
        const auto set = finder.evictionSet(g, 3);
        std::set<SetIndex> phys;
        for (VAddr v : set.lines)
            phys.insert(rt.l2SetOf(p, v));
        EXPECT_EQ(phys.size(), 1u) << "seed " << GetParam() << " group "
                                   << g;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FinderSeed,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u, 21u));

// ---------------------------------------------------------------------
// The remote finder works from every peer of the memory GPU.
// ---------------------------------------------------------------------

class RemoteFinderPeer : public ::testing::TestWithParam<GpuId>
{};

TEST_P(RemoteFinderPeer, DiscoversSameGeometry)
{
    setLogEnabled(false);
    rt::Runtime rt(test::smallConfig(77));
    rt::Process &p = rt.createProcess("spy");
    attack::TimingOracle oracle(rt, p);
    auto calib = oracle.calibrate(GetParam(), 0, 24, 4);
    attack::EvictionSetFinder finder(rt, p, GetParam(), 0,
                                     calib.thresholds);
    finder.run();
    setLogEnabled(true);
    EXPECT_EQ(finder.associativity(), 16u);
    EXPECT_EQ(finder.numGroups(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Peers, RemoteFinderPeer,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Covert channel quality holds across seeds.
// ---------------------------------------------------------------------

class ChannelSeed : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChannelSeed, LowErrorOverTwoSets)
{
    setLogEnabled(false);
    rt::Runtime rt(test::smallConfig(GetParam()));
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0, 24, 4);
    attack::EvictionSetFinder tf(rt, trojan, 0, 0, calib.thresholds);
    tf.run();
    attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds);
    sf.run();
    attack::SetAligner aligner(rt, trojan, spy, 0, 1, calib.thresholds);
    auto mapping = aligner.alignGroups(tf, sf);
    auto pairs = aligner.alignedPairs(tf, sf, mapping, 2);
    attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1, pairs,
                                          calib.thresholds);

    Rng rng(GetParam() ^ 0x600d);
    std::vector<std::uint8_t> bits(512);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    auto stats = channel.transmit(bits, rx);
    setLogEnabled(true);

    EXPECT_LE(stats.errorRate, 0.05) << "seed " << GetParam();
    EXPECT_GT(stats.bandwidthMbitPerSec, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSeed,
                         ::testing::Values(101u, 202u, 303u, 404u));

// ---------------------------------------------------------------------
// Cache invariants across geometries.
// ---------------------------------------------------------------------

struct Geometry
{
    std::uint64_t sizeBytes;
    std::uint32_t lineBytes;
    unsigned ways;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{};

TEST_P(CacheGeometry, FillThenRereadAllHits)
{
    const Geometry g = GetParam();
    cache::CacheConfig cfg;
    cfg.sizeBytes = g.sizeBytes;
    cfg.lineBytes = g.lineBytes;
    cfg.ways = g.ways;
    cache::LinearIndexer idx(cfg.numSets(), cfg.lineBytes);
    cache::SetAssocCache cache(cfg, idx, Rng(1));

    const std::uint64_t lines = g.sizeBytes / g.lineBytes;
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * g.lineBytes);
    // Exactly at capacity: everything still resident under LRU.
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(i * g.lineBytes).hit) << "line " << i;
    EXPECT_EQ(cache.misses(), lines);
}

TEST_P(CacheGeometry, EvictionsReportTheEvictedLine)
{
    const Geometry g = GetParam();
    cache::CacheConfig cfg;
    cfg.sizeBytes = g.sizeBytes;
    cfg.lineBytes = g.lineBytes;
    cfg.ways = g.ways;
    cache::LinearIndexer idx(cfg.numSets(), cfg.lineBytes);
    cache::SetAssocCache cache(cfg, idx, Rng(1));

    const std::uint64_t stride =
        static_cast<std::uint64_t>(cfg.numSets()) * g.lineBytes;
    for (unsigned i = 0; i < g.ways; ++i)
        cache.access(i * stride);
    auto out = cache.access(static_cast<std::uint64_t>(g.ways) * stride);
    ASSERT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, 0u); // LRU victim is the first line
    EXPECT_FALSE(cache.probe(0));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(Geometry{8 * 1024, 128, 16},
                      Geometry{64 * 1024, 128, 16},
                      Geometry{32 * 1024, 64, 8},
                      Geometry{16 * 1024, 32, 4},
                      Geometry{4ULL << 20, 128, 16}));

// ---------------------------------------------------------------------
// Indexer page-window property across page sizes.
// ---------------------------------------------------------------------

class IndexerPageSize : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(IndexerPageSize, ConsecutiveLinesConsecutiveSets)
{
    const std::uint64_t page = GetParam();
    cache::HashedPageIndexer idx(2048, 128, page, 0xabc);
    const std::uint32_t lines_per_page =
        static_cast<std::uint32_t>(page / 128);
    for (std::uint64_t frame : {0ULL, 5ULL, 99ULL}) {
        const PAddr base = frame * page;
        const SetIndex s0 = idx.setFor(base);
        for (std::uint32_t l = 1; l < lines_per_page; ++l)
            ASSERT_EQ(idx.setFor(base + l * 128), (s0 + l) % 2048);
    }
}

INSTANTIATE_TEST_SUITE_P(Pages, IndexerPageSize,
                         ::testing::Values(4096u, 16384u, 65536u,
                                           262144u));

// ---------------------------------------------------------------------
// Deterministic end-to-end reproducibility: identical seed, identical
// transmission outcome.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// The L2 index hash preserves page boundaries (paper Sec. V-A): every
// line of a physical page lands in the page's color window, walking
// consecutive sets. The eviction-set attacks depend on this invariant.
// ---------------------------------------------------------------------

class IndexerSeed : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(IndexerSeed, PageColorPreservedUnderRandomLineAddresses)
{
    Rng rng(GetParam());

    // Random-but-valid geometries: sets x line x page all powers of
    // two, pages spanning at least one set window.
    const struct
    {
        std::uint32_t sets, line;
        std::uint64_t page;
    } geometries[] = {
        {2048, 128, 64 * 1024}, // DGX-1 P100
        {128, 128, 4096},       // smallConfig
        {1024, 64, 32 * 1024},
        {4096, 32, 4096},
    };

    for (const auto &g : geometries) {
        const std::uint64_t salt = rng.next();
        cache::HashedPageIndexer idx(g.sets, g.line, g.page, salt);
        mem::AddressCodec codec(g.page);
        const std::uint32_t lines_per_page =
            static_cast<std::uint32_t>(g.page / g.line);

        for (int trial = 0; trial < 256; ++trial) {
            const GpuId gpu = static_cast<GpuId>(rng.uniform(8));
            const std::uint64_t frame = rng.uniform(1u << 20);
            const std::uint32_t line_in_page = static_cast<std::uint32_t>(
                rng.uniform(lines_per_page));
            const PAddr addr = codec.pack(
                gpu, frame,
                static_cast<std::uint64_t>(line_in_page) * g.line);

            const SetIndex set = idx.setFor(addr);
            ASSERT_LT(set, g.sets);

            // The whole page occupies one aligned window of
            // consecutive sets selected by the page color...
            const std::uint32_t color = idx.colorOf(frame, gpu);
            ASSERT_LT(color, idx.numColors());
            EXPECT_EQ(set,
                      (static_cast<std::uint64_t>(color) *
                           lines_per_page +
                       line_in_page) %
                          g.sets);

            // ...lines within a page walk consecutive sets...
            if (line_in_page + 1 < lines_per_page) {
                EXPECT_EQ(idx.setFor(addr + g.line), (set + 1) % g.sets);
            }

            // ...byte offsets within one line do not change the set,
            // and the mapping is a pure function of the address.
            EXPECT_EQ(idx.setFor(addr + rng.uniform(g.line)), set);
            EXPECT_EQ(idx.setFor(addr), set);
        }

        // Every color occurs across many random frames (the scramble
        // must not collapse the color space).
        std::set<std::uint32_t> colors;
        for (int f = 0; f < 512; ++f)
            colors.insert(idx.colorOf(rng.uniform(1u << 20),
                                      static_cast<GpuId>(rng.uniform(8))));
        EXPECT_EQ(colors.size(), idx.numColors());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexerSeed,
                         ::testing::Values(1u, 17u, 4242u, 0xdeadbeefu));

TEST(Reproducibility, CovertTransmissionBitExact)
{
    auto run_once = [](std::uint64_t seed) {
        setLogEnabled(false);
        rt::Runtime rt(test::smallConfig(seed));
        rt::Process &trojan = rt.createProcess("trojan");
        rt::Process &spy = rt.createProcess("spy");
        attack::TimingOracle oracle(rt, spy);
        auto calib = oracle.calibrate(1, 0, 24, 4);
        attack::EvictionSetFinder tf(rt, trojan, 0, 0, calib.thresholds);
        tf.run();
        attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds);
        sf.run();
        attack::SetAligner aligner(rt, trojan, spy, 0, 1,
                                   calib.thresholds);
        auto mapping = aligner.alignGroups(tf, sf);
        auto pairs = aligner.alignedPairs(tf, sf, mapping, 2);
        attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1,
                                              pairs, calib.thresholds);
        std::string decoded;
        auto stats = channel.transmitMessage("determinism", decoded);
        setLogEnabled(true);
        return std::make_tuple(decoded, stats.bitErrors,
                               stats.elapsedCycles);
    };
    EXPECT_EQ(run_once(55), run_once(55));
}

} // namespace
} // namespace gpubox
