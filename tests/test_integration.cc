/**
 * @file
 * End-to-end integration tests on the full DGX-1 geometry: the whole
 * attack pipeline from calibration through covert transmission, and a
 * mini fingerprinting run -- everything an attacker would actually do,
 * with nothing pre-seeded.
 */

#include <gtest/gtest.h>

#include "attack/covert/channel.hh"
#include "attack/evset_finder.hh"
#include "attack/set_aligner.hh"
#include "attack/side/fingerprint.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox
{
namespace
{

TEST(Integration, FullCovertPipelineOnDgx1)
{
    setLogEnabled(false);
    // Full-size box: 8 P100s, hybrid cube-mesh, 4 MiB 16-way L2.
    rt::Runtime rt(test::dgx1Config(2026));
    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");

    // 1. Reverse engineer timing from user level (Fig. 4).
    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(/*local=*/1, /*remote=*/0, 48, 4);
    ASSERT_EQ(calib.clusters.centers.size(), 4u);

    // 2. Both processes find eviction sets over buffers on GPU 0.
    //    (Smaller pool: the full-size cache has 4 colors over 64 KiB
    //    pages, so 140 pages give ~35 pages per color.)
    attack::FinderConfig fcfg;
    fcfg.poolPages = 140;
    attack::EvictionSetFinder tf(rt, trojan, 0, 0, calib.thresholds,
                                 fcfg);
    tf.run();
    attack::EvictionSetFinder sf(rt, spy, 1, 0, calib.thresholds, fcfg);
    sf.run();
    EXPECT_EQ(tf.associativity(), 16u);
    EXPECT_EQ(sf.associativity(), 16u);

    // 3. Align eviction sets across the processes (Algorithm 2).
    attack::SetAligner aligner(rt, trojan, spy, 0, 1, calib.thresholds);
    auto mapping = aligner.alignGroups(tf, sf);
    int matched = 0;
    for (int m : mapping)
        if (m >= 0)
            ++matched;
    ASSERT_GE(matched, 1);

    // 4. Transmit a covert message over 4 parallel sets (Fig. 10).
    auto pairs = aligner.alignedPairs(tf, sf, mapping, 4);
    attack::covert::CovertChannel channel(rt, trojan, spy, 0, 1, pairs,
                                          calib.thresholds);
    std::string decoded;
    auto stats = channel.transmitMessage("Hello! How are you? ", decoded);
    setLogEnabled(true);

    EXPECT_LE(stats.errorRate, 0.05);
    EXPECT_GT(stats.bandwidthMbitPerSec, 1.0);
    int same = 0;
    const std::string sent = "Hello! How are you? ";
    for (std::size_t i = 0; i < sent.size(); ++i)
        if (i < decoded.size() && decoded[i] == sent[i])
            ++same;
    EXPECT_GE(same, 18);
}

TEST(Integration, CrossGpuSideChannelSeesVictim)
{
    setLogEnabled(false);
    rt::Runtime rt(test::smallConfig(31337));
    rt::Process &spy = rt.createProcess("spy");
    rt::Process &victim = rt.createProcess("victim");

    attack::TimingOracle oracle(rt, spy);
    auto calib = oracle.calibrate(1, 0, 32, 4);
    attack::EvictionSetFinder finder(rt, spy, 1, 0, calib.thresholds);
    finder.run();

    attack::side::FingerprintConfig cfg;
    cfg.prober.monitoredSets = 32;
    cfg.prober.samplePeriod = 3000;
    cfg.prober.windowCycles = 6000;
    cfg.prober.duration = 250000;
    attack::side::Fingerprinter fp(rt, spy, 1, victim, 0, finder,
                                   calib.thresholds, cfg);

    auto busy = fp.collectSample(victim::AppKind::HISTOGRAM, 3);
    setLogEnabled(true);
    EXPECT_GT(busy.totalMisses(), 20u);
}

TEST(Integration, NonAdjacentGpusCannotAttack)
{
    // On the DGX-1, GPUs 0 and 5 are not NVLink peers: the runtime
    // refuses peer access, closing the remote cache channel entirely.
    rt::Runtime rt(test::dgx1Config());
    rt::Process &p = rt.createProcess("p");
    EXPECT_EQ(rt.enablePeerAccess(p, 0, 5).code(),
              rt::StatusCode::NotConnected);
    attack::TimingOracle oracle(rt, p);
    EXPECT_THROW(oracle.calibrate(0, 5, 8, 1), FatalError);
}

} // namespace
} // namespace gpubox
