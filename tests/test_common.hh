/**
 * @file
 * Shared fixtures for gpubox tests: a scaled-down box configuration
 * (small caches, small pages) that keeps simulations fast while
 * preserving the geometry relationships the attacks depend on
 * (multiple page colors, 16-way associativity, NUMA L2).
 */

#ifndef GPUBOX_TESTS_TEST_COMMON_HH
#define GPUBOX_TESTS_TEST_COMMON_HH

#include "rt/config.hh"

namespace gpubox::test
{

/**
 * Small box: 4 GPUs (ring), 256 KiB 16-way L2 (128 sets), 4 KiB pages
 * (32 lines per page -> 4 page colors), 512 frames per GPU (2 MiB).
 */
inline rt::SystemConfig
smallConfig(std::uint64_t seed = 42)
{
    rt::SystemConfig cfg;
    cfg.seed = seed;
    cfg.topology = noc::Topology::fullyConnected(4);
    cfg.pageBytes = 4096;
    cfg.framesPerGpu = 512;
    cfg.device.l2.sizeBytes = 256 * 1024;
    cfg.device.l2.lineBytes = 128;
    cfg.device.l2.ways = 16;
    cfg.device.numSms = 16;
    return cfg;
}

/**
 * Full-size DGX-1 configuration (the benchmark setup): 8 P100s on the
 * hybrid cube-mesh, 4 MiB 16-way L2 (2048 sets), 64 KiB pages
 * (512 lines per page -> 4 page colors), 256 MiB of modelled HBM per
 * GPU. Populated explicitly so the tests pin the paper geometry even
 * if the library defaults drift.
 */
inline rt::SystemConfig
dgx1Config(std::uint64_t seed = 42)
{
    rt::SystemConfig cfg;
    cfg.seed = seed;
    cfg.topology = noc::Topology::dgx1();
    cfg.pageBytes = 64 * 1024;
    cfg.framesPerGpu = 4096;
    cfg.device.numSms = 56;
    cfg.device.l2.sizeBytes = 4ULL << 20;
    cfg.device.l2.lineBytes = 128;
    cfg.device.l2.ways = 16;
    cfg.device.l2.policy = cache::ReplPolicy::LRU;
    return cfg;
}

} // namespace gpubox::test

#endif // GPUBOX_TESTS_TEST_COMMON_HH
