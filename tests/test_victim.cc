/**
 * @file
 * Unit tests for the victim workloads: they run to completion, touch
 * their own GPU's L2, produce distinct per-set footprints, and the MLP
 * trainer's traffic scales with the hidden width.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "rt/runtime.hh"
#include "test_common.hh"
#include "victim/mlp_trainer.hh"
#include "victim/workload.hh"

namespace gpubox::victim
{
namespace
{

using test::smallConfig;

TEST(WorkloadMeta, NamesAreUniqueAndOrdered)
{
    const auto &kinds = allAppKinds();
    EXPECT_EQ(kinds.size(), 6u);
    std::set<std::string> names, shorts;
    for (auto k : kinds) {
        names.insert(appName(k));
        shorts.insert(appShortName(k));
    }
    EXPECT_EQ(names.size(), 6u);
    EXPECT_EQ(shorts.size(), 6u);
    // Confusion-matrix order from the paper's Fig. 12.
    EXPECT_EQ(appShortName(kinds[0]), "BS");
    EXPECT_EQ(appShortName(kinds[5]), "WT");
}

class VictimRun : public ::testing::TestWithParam<AppKind>
{};

TEST_P(VictimRun, CompletesAndTouchesL2)
{
    rt::Runtime rt(smallConfig());
    rt::Process &p = rt.createProcess("victim");
    WorkloadConfig cfg;
    cfg.scale = 0.2; // small for unit tests
    Workload w(rt, p, 0, GetParam(), cfg);
    auto h = w.launch();
    rt.sync(h);
    EXPECT_TRUE(h.finished());
    // The victim's accesses reached GPU 0's L2 and missed at least
    // once per buffer line.
    EXPECT_GT(rt.device(0).l2().misses(), 50u);
    // No traffic on any other GPU's L2.
    for (GpuId g = 1; g < rt.numGpus(); ++g)
        EXPECT_EQ(rt.device(g).l2().misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, VictimRun,
    ::testing::ValuesIn(allAppKinds()),
    [](const ::testing::TestParamInfo<AppKind> &pinfo) {
        return appShortName(pinfo.param);
    });

TEST(Victim, StreamOrderStagesTheVictim)
{
    // The old startDelayCycles staging, expressed the CUDA way: a
    // pacing kernel occupies the victim's stream first, so the victim
    // kernel cannot touch memory before the stream reaches it.
    rt::Runtime rt(smallConfig());
    rt::Process &p = rt.createProcess("victim");
    WorkloadConfig cfg;
    cfg.scale = 0.1;
    Workload w(rt, p, 0, AppKind::VECTOR_ADD, cfg);

    rt::Stream &stream = rt.createStream(p, 0, "victim");
    gpu::KernelConfig pace_cfg;
    pace_cfg.name = "pacer";
    stream.launch(pace_cfg, [](rt::BlockCtx &ctx) -> sim::Task {
        (void)ctx;
        co_await sim::Delay{50000};
    });
    auto h = w.launch(stream);

    // Run only the pacing window: no memory traffic yet.
    rt.engine().runUntil(40000);
    EXPECT_EQ(rt.device(0).l2().misses() + rt.device(0).l2().hits(), 0u);
    rt.sync(h);
    EXPECT_GT(rt.device(0).l2().misses(), 0u);
}

TEST(Victim, FootprintsDifferAcrossApps)
{
    // Per-set L2 miss profiles must differ between apps: this is the
    // signal the fingerprinting side channel classifies.
    auto profile = [](AppKind kind) {
        rt::Runtime rt(smallConfig(99));
        rt::Process &p = rt.createProcess("victim");
        WorkloadConfig cfg;
        cfg.scale = 0.3;
        Workload w(rt, p, 0, kind, cfg);
        auto h = w.launch();
        rt.sync(h);
        std::vector<double> prof;
        for (SetIndex s = 0; s < rt.device(0).l2().numSets(); ++s)
            prof.push_back(static_cast<double>(
                rt.device(0).l2().setMisses(s)));
        return prof;
    };

    const auto &kinds = allAppKinds();
    std::vector<std::vector<double>> profiles;
    for (auto k : kinds)
        profiles.push_back(profile(k));

    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j) {
            double dist = 0;
            for (std::size_t s = 0; s < profiles[i].size(); ++s) {
                const double d = profiles[i][s] - profiles[j][s];
                dist += d * d;
            }
            EXPECT_GT(dist, 100.0)
                << appShortName(kinds[i]) << " vs "
                << appShortName(kinds[j]);
        }
    }
}

TEST(Victim, RepeatableForSameSeed)
{
    auto misses = [](std::uint64_t seed) {
        rt::Runtime rt(smallConfig(seed));
        rt::Process &p = rt.createProcess("victim");
        WorkloadConfig cfg;
        cfg.scale = 0.2;
        cfg.seed = 5;
        Workload w(rt, p, 0, AppKind::HISTOGRAM, cfg);
        auto h = w.launch();
        rt.sync(h);
        return rt.device(0).l2().misses();
    };
    EXPECT_EQ(misses(31), misses(31));
}

TEST(MlpTrainerVictim, CompletesAndScalesWithWidth)
{
    auto traffic = [](unsigned neurons) {
        rt::Runtime rt(smallConfig());
        rt::Process &p = rt.createProcess("trainer");
        MlpConfig cfg;
        cfg.hiddenNeurons = neurons;
        cfg.batchesPerEpoch = 2;
        MlpTrainer trainer(rt, p, 0, cfg);
        auto h = trainer.launch();
        rt.sync(h);
        return rt.device(0).l2().hits() + rt.device(0).l2().misses();
    };
    const auto t64 = traffic(64);
    const auto t128 = traffic(128);
    const auto t256 = traffic(256);
    EXPECT_LT(t64, t128);
    EXPECT_LT(t128, t256);
    // Roughly linear in the width: W1 dominates.
    EXPECT_GT(static_cast<double>(t256), 1.5 * static_cast<double>(t128));
}

TEST(MlpTrainerVictim, EpochsMultiplyWork)
{
    auto traffic = [](unsigned epochs) {
        rt::Runtime rt(smallConfig());
        rt::Process &p = rt.createProcess("trainer");
        MlpConfig cfg;
        cfg.hiddenNeurons = 64;
        cfg.batchesPerEpoch = 2;
        cfg.epochs = epochs;
        MlpTrainer trainer(rt, p, 0, cfg);
        auto h = trainer.launch();
        rt.sync(h);
        return rt.device(0).l2().hits() + rt.device(0).l2().misses();
    };
    const auto t1 = traffic(1);
    const auto t2 = traffic(2);
    EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
                0.1 * static_cast<double>(t2));
}

TEST(MlpTrainerVictim, InterEpochGapCreatesQuietTime)
{
    rt::Runtime rt(smallConfig());
    rt::Process &p = rt.createProcess("trainer");
    MlpConfig cfg;
    cfg.hiddenNeurons = 32;
    cfg.batchesPerEpoch = 1;
    cfg.epochs = 2;
    cfg.interEpochGapCycles = 200000;
    MlpTrainer trainer(rt, p, 0, cfg);
    auto h = trainer.launch();
    Cycles end_time = 0;
    rt.sync(h);
    end_time = rt.engine().now();
    // The run must take at least the inter-epoch gap.
    EXPECT_GT(end_time, 200000u);
}

} // namespace
} // namespace gpubox::victim
