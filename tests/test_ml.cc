/**
 * @file
 * Unit tests for the ML module: dataset splitting, standardization,
 * softmax and MLP classifiers, confusion matrix.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/confusion.hh"
#include "ml/dataset.hh"
#include "ml/mlp.hh"
#include "ml/softmax.hh"
#include "util/log.hh"

namespace gpubox::ml
{
namespace
{

/** Gaussian blobs, one per class, trivially separable. */
Dataset
blobs(int classes, int per_class, double sep, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    for (int c = 0; c < classes; ++c) {
        for (int i = 0; i < per_class; ++i) {
            Sample s;
            s.label = c;
            for (int d = 0; d < 4; ++d)
                s.x.push_back(rng.normal(c * sep * ((d % 2) ? 1 : -1),
                                         1.0));
            data.push_back(s);
        }
    }
    return data;
}

TEST(Dataset, SplitSizesAndBalance)
{
    Dataset data = blobs(3, 20, 5.0, 1);
    Split split = splitDataset(data, 10, 5, Rng(2));
    EXPECT_EQ(split.train.size(), 30u);
    EXPECT_EQ(split.validation.size(), 15u);
    EXPECT_EQ(split.test.size(), 15u);
    // Per-class balance in train.
    int counts[3] = {0, 0, 0};
    for (const auto &s : split.train)
        ++counts[s.label];
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(counts[c], 10);
}

TEST(Dataset, SplitTooSmallIsFatal)
{
    Dataset data = blobs(2, 5, 5.0, 1);
    EXPECT_THROW(splitDataset(data, 4, 2, Rng(1)), FatalError);
}

TEST(Dataset, NumClassesAndDim)
{
    Dataset data = blobs(4, 3, 1.0, 1);
    EXPECT_EQ(numClasses(data), 4);
    EXPECT_EQ(featureDim(data), 4u);
    data[0].x.push_back(1.0);
    EXPECT_THROW(featureDim(data), FatalError);
}

TEST(Standardizer, ZeroMeanUnitVariance)
{
    Dataset data = blobs(2, 200, 3.0, 3);
    Standardizer norm;
    norm.fit(data);
    Dataset out = norm.apply(data);
    double mean = 0;
    for (const auto &s : out)
        mean += s.x[0];
    mean /= static_cast<double>(out.size());
    EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(Standardizer, ConstantFeatureSafe)
{
    Dataset data;
    for (int i = 0; i < 10; ++i)
        data.push_back(Sample{{5.0, static_cast<double>(i)}, 0});
    Standardizer norm;
    norm.fit(data);
    auto x = norm.apply(std::vector<double>{5.0, 0.0});
    EXPECT_TRUE(std::isfinite(x[0]));
    EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(Softmax, LearnsSeparableBlobs)
{
    Dataset train = blobs(3, 60, 4.0, 5);
    Dataset test = blobs(3, 30, 4.0, 6);
    Standardizer norm;
    norm.fit(train);
    SoftmaxClassifier clf(4, 3);
    clf.fit(norm.apply(train), Rng(7));
    EXPECT_GE(clf.score(norm.apply(test)), 0.95);
}

TEST(Softmax, ProbabilitiesSumToOne)
{
    SoftmaxClassifier clf(4, 3);
    auto p = clf.predictProba({1, 2, 3, 4});
    double sum = 0;
    for (double v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Softmax, DimensionMismatchIsFatal)
{
    SoftmaxClassifier clf(4, 3);
    EXPECT_THROW(clf.predict({1.0, 2.0}), FatalError);
    EXPECT_THROW(SoftmaxClassifier(0, 3), FatalError);
    EXPECT_THROW(SoftmaxClassifier(4, 1), FatalError);
}

TEST(Mlp, LearnsXorLikeProblem)
{
    // XOR in 2-D: not linearly separable; the MLP must beat chance by
    // a wide margin where a linear model cannot.
    Rng rng(11);
    Dataset data;
    for (int i = 0; i < 400; ++i) {
        const double x = rng.normal(0, 1);
        const double y = rng.normal(0, 1);
        Sample s;
        s.x = {x, y};
        s.label = (x > 0) != (y > 0) ? 1 : 0;
        data.push_back(s);
    }
    Split split = splitDataset(data, 140, 20, Rng(12));
    MlpClassifierConfig cfg;
    cfg.hidden = 24;
    cfg.epochs = 400;
    cfg.learningRate = 0.03;
    MlpClassifier clf(2, 2, cfg);
    clf.fit(split.train, Rng(13));
    EXPECT_GE(clf.score(split.test), 0.85);
}

TEST(Mlp, LearnsBlobs)
{
    Dataset train = blobs(3, 60, 4.0, 15);
    Dataset test = blobs(3, 30, 4.0, 16);
    Standardizer norm;
    norm.fit(train);
    MlpClassifier clf(4, 3);
    clf.fit(norm.apply(train), Rng(17));
    EXPECT_GE(clf.score(norm.apply(test)), 0.95);
}

TEST(Confusion, CountsAndAccuracy)
{
    ConfusionMatrix cm(3);
    cm.add(0, 0);
    cm.add(0, 0);
    cm.add(0, 1);
    cm.add(1, 1);
    cm.add(2, 2);
    EXPECT_EQ(cm.total(), 5u);
    EXPECT_EQ(cm.count(0, 1), 1u);
    EXPECT_EQ(cm.rowTotal(0), 3u);
    EXPECT_NEAR(cm.accuracy(), 4.0 / 5.0, 1e-12);
    EXPECT_NEAR(cm.classAccuracy(0), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(cm.classAccuracy(1), 1.0);
}

TEST(Confusion, RenderContainsNames)
{
    ConfusionMatrix cm(2);
    cm.add(0, 0);
    cm.add(1, 0);
    const std::string out = cm.render({"AA", "BB"});
    EXPECT_NE(out.find("AA"), std::string::npos);
    EXPECT_NE(out.find("BB"), std::string::npos);
    EXPECT_NE(out.find("accuracy"), std::string::npos);
}

TEST(Confusion, BadInputsAreFatal)
{
    EXPECT_THROW(ConfusionMatrix(0), FatalError);
    ConfusionMatrix cm(2);
    EXPECT_THROW(cm.add(2, 0), FatalError);
    EXPECT_THROW(cm.add(0, -1), FatalError);
    EXPECT_THROW(cm.render({"only-one"}), FatalError);
}

TEST(Confusion, EmptyAccuracyIsZero)
{
    ConfusionMatrix cm(2);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(cm.classAccuracy(0), 0.0);
}

} // namespace
} // namespace gpubox::ml
